//! Whole-pipeline integration tests through the public facade: generate
//! data → build disk-resident indexes → query → ask why-not → verify the
//! refinement, including a full persistence round trip through real
//! files.

use std::sync::Arc;
use whynot_sk::prelude::*;
use wnsk_data::workload::{generate_item, WorkloadSpec};
use wnsk_storage::{BufferPool, FileBackend};

fn generated() -> (Dataset, Vocabulary) {
    let g = generate(&DatasetSpec::tiny(2024).with_objects(600));
    (g.dataset, g.vocabulary)
}

#[test]
fn why_not_pipeline_end_to_end() {
    let (dataset, vocab) = generated();
    let engine = WhyNotEngine::build_in_memory(dataset)
        .unwrap()
        .with_vocabulary(vocab);

    let item = generate_item(
        engine.dataset(),
        &WorkloadSpec {
            n_keywords: 3,
            k: 5,
            alpha: 0.5,
            missing_rank: 26,
            n_missing: 1,
            seed: 42,
        },
    )
    .expect("workload must generate");
    let missing = item.missing[0];

    // The missing object is genuinely absent from the initial result.
    let initial = engine.top_k(&item.query).unwrap();
    assert_eq!(initial.len(), 5);
    assert!(initial.iter().all(|&(id, _)| id != missing));

    let question = WhyNotQuestion::new(item.query.clone(), vec![missing], 0.5);
    let answer = engine.answer(&question).unwrap();

    // The refinement is never worse than the basic k-enlargement (λ).
    assert!(answer.refined.penalty <= 0.5 + 1e-12);

    // The refined query, executed as a plain top-k' through the index,
    // contains the missing object.
    let refined = SpatialKeywordQuery::new(
        item.query.loc,
        answer.refined.doc.clone(),
        answer.refined.k,
        item.query.alpha,
    );
    let result = engine.top_k(&refined).unwrap();
    assert!(
        result.iter().any(|&(id, _)| id == missing),
        "refined top-{} must contain {missing:?}",
        answer.refined.k
    );
}

#[test]
fn three_solvers_agree_through_facade() {
    let (dataset, _) = generated();
    let engine = WhyNotEngine::build_in_memory(dataset).unwrap();
    let item = generate_item(
        engine.dataset(),
        &WorkloadSpec {
            n_keywords: 2,
            k: 4,
            alpha: 0.4,
            missing_rank: 21,
            n_missing: 1,
            seed: 7,
        },
    )
    .expect("workload must generate");
    let question = WhyNotQuestion::new(item.query, item.missing, 0.3);
    let a = engine.answer_basic(&question).unwrap().refined.penalty;
    let b = engine
        .answer_advanced(&question, AdvancedOptions::default())
        .unwrap()
        .refined
        .penalty;
    let c = engine
        .answer_kcr(&question, KcrOptions::default())
        .unwrap()
        .refined
        .penalty;
    assert!((a - b).abs() < 1e-9 && (b - c).abs() < 1e-9, "{a} {b} {c}");
}

#[test]
fn persistence_round_trip_through_files() {
    let (dataset, _) = generated();
    let dir = std::env::temp_dir().join(format!("wnsk-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let setr_path = dir.join("setr.db");
    let kcr_path = dir.join("kcr.db");

    let item = generate_item(
        &dataset,
        &WorkloadSpec {
            n_keywords: 3,
            k: 5,
            alpha: 0.5,
            missing_rank: 26,
            n_missing: 1,
            seed: 99,
        },
    )
    .expect("workload must generate");
    let question = WhyNotQuestion::new(item.query.clone(), item.missing.clone(), 0.5);

    // Build both trees into real files and answer once.
    let first_penalty;
    {
        let setr_pool = Arc::new(BufferPool::with_default_config(Arc::new(
            FileBackend::create(&setr_path).unwrap(),
        )));
        let kcr_pool = Arc::new(BufferPool::with_default_config(Arc::new(
            FileBackend::create(&kcr_path).unwrap(),
        )));
        let setr = SetRTree::build(setr_pool, &dataset, 16).unwrap();
        let kcr = KcrTree::build(kcr_pool, &dataset, 16).unwrap();
        let ans = wnsk_core::answer_kcr(&dataset, &kcr, &question, KcrOptions::default()).unwrap();
        first_penalty = ans.refined.penalty;
        // Sanity: SetR answers too.
        let bs = wnsk_core::answer_advanced(&dataset, &setr, &question, AdvancedOptions::default())
            .unwrap();
        assert!((bs.refined.penalty - first_penalty).abs() < 1e-9);
    }

    // Reopen from disk and answer again: identical result.
    {
        let kcr_pool = Arc::new(BufferPool::with_default_config(Arc::new(
            FileBackend::open(&kcr_path).unwrap(),
        )));
        let kcr = KcrTree::open(kcr_pool).unwrap();
        assert_eq!(kcr.len(), dataset.len() as u64);
        let ans = wnsk_core::answer_kcr(&dataset, &kcr, &question, KcrOptions::default()).unwrap();
        assert!((ans.refined.penalty - first_penalty).abs() < 1e-9);
        assert!(ans.stats.io > 0, "cold reopen must do physical I/O");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn degenerate_questions_error_cleanly() {
    let (dataset, _) = generated();
    let engine = WhyNotEngine::build_in_memory(dataset).unwrap();
    let q = SpatialKeywordQuery::new(Point::new(0.5, 0.5), KeywordSet::from_ids([0, 1]), 5, 0.5);
    // Empty missing set.
    assert!(matches!(
        engine.answer(&WhyNotQuestion::new(q.clone(), vec![], 0.5)),
        Err(WhyNotError::EmptyMissingSet)
    ));
    // Unknown object.
    assert!(matches!(
        engine.answer(&WhyNotQuestion::new(
            q.clone(),
            vec![ObjectId(1_000_000)],
            0.5
        )),
        Err(WhyNotError::UnknownObject(_))
    ));
    // Duplicate.
    assert!(matches!(
        engine.answer(&WhyNotQuestion::new(
            q.clone(),
            vec![ObjectId(3), ObjectId(3)],
            0.5
        )),
        Err(WhyNotError::DuplicateMissing(_))
    ));
}

#[test]
fn whole_dataset_k_still_works() {
    // k as large as the dataset: every object is in the result, so any
    // why-not question must be rejected as NotMissing.
    let (dataset, _) = generated();
    let n = dataset.len();
    let engine = WhyNotEngine::build_in_memory(dataset).unwrap();
    let q = SpatialKeywordQuery::new(Point::new(0.5, 0.5), KeywordSet::from_ids([0]), n, 0.5);
    let res = engine.answer(&WhyNotQuestion::new(q, vec![ObjectId(0)], 0.5));
    assert!(matches!(res, Err(WhyNotError::NotMissing { .. })));
}

#[test]
fn prelude_exposes_the_full_api() {
    // Compile-time check that the prelude covers the documented surface.
    let _: fn(&Dataset, &SetRTree, &WhyNotQuestion) -> wnsk_core::Result<WhyNotAnswer> =
        answer_basic;
    let _ = AdvancedOptions::default();
    let _ = KcrOptions::default();
    let _ = DatasetSpec::tiny(0);
    let _: RefinedQuery;
}

#[test]
fn lambda_extremes_work_end_to_end() {
    let (dataset, _) = generated();
    let engine = WhyNotEngine::build_in_memory(dataset).unwrap();
    let item = generate_item(
        engine.dataset(),
        &WorkloadSpec {
            n_keywords: 3,
            k: 5,
            alpha: 0.5,
            missing_rank: 26,
            n_missing: 1,
            seed: 123,
        },
    )
    .expect("workload must generate");

    // λ = 0: only keyword edits cost anything, so the optimum keeps
    // doc₀ (zero edits) and just enlarges k — penalty exactly 0.
    let q0 = WhyNotQuestion::new(item.query.clone(), item.missing.clone(), 0.0);
    for ans in [
        engine.answer_basic(&q0).unwrap(),
        engine.answer(&q0).unwrap(),
    ] {
        assert!(
            ans.refined.penalty <= 1e-12,
            "λ=0 must cost nothing, got {}",
            ans.refined.penalty
        );
        assert_eq!(ans.refined.edit_distance, 0);
    }

    // λ = 1: only Δk costs; the best answer minimises the rank, possibly
    // with heavy keyword edits. Penalty is bounded by the baseline 1.
    let q1 = WhyNotQuestion::new(item.query.clone(), item.missing.clone(), 1.0);
    let bs = engine.answer_basic(&q1).unwrap();
    let kcr = engine.answer(&q1).unwrap();
    assert!((bs.refined.penalty - kcr.refined.penalty).abs() < 1e-9);
    assert!(bs.refined.penalty <= 1.0 + 1e-12);
}

#[test]
fn dice_model_end_to_end() {
    use wnsk_text::TextModel;
    let (dataset, _) = generated();
    let engine = WhyNotEngine::build_in_memory(dataset).unwrap();
    // Build a Dice-model workload by hand: reuse a Jaccard item's shape.
    let item = generate_item(
        engine.dataset(),
        &WorkloadSpec {
            n_keywords: 3,
            k: 5,
            alpha: 0.5,
            missing_rank: 26,
            n_missing: 1,
            seed: 321,
        },
    )
    .expect("workload must generate");
    let q = item.query.clone().with_model(TextModel::Dice);
    // Find an object missing under the *Dice* scoring.
    let missing = engine.dataset().objects().iter().map(|o| o.id).find(|&id| {
        let r = engine.dataset().rank_of(id, &q);
        r > q.k && r < 40
    });
    let Some(missing) = missing else { return };
    let question = WhyNotQuestion::new(q.clone(), vec![missing], 0.5);
    let a = engine.answer_basic(&question).unwrap();
    let b = engine.answer(&question).unwrap();
    assert!((a.refined.penalty - b.refined.penalty).abs() < 1e-9);
    // The refinement revives the object under Dice scoring.
    let refined = q.with_doc(b.refined.doc.clone());
    assert!(engine.dataset().rank_of(missing, &refined) <= b.refined.k);
}

#[test]
fn render_keywords_without_vocabulary_falls_back() {
    let (dataset, _) = generated();
    let engine = WhyNotEngine::build_in_memory(dataset).unwrap();
    let rendered = engine.render_keywords(&KeywordSet::from_ids([3, 7]));
    assert_eq!(rendered, "{t3, t7}");
}

#[test]
fn approximate_engine_path() {
    let (dataset, _) = generated();
    let engine = WhyNotEngine::build_in_memory(dataset).unwrap();
    let item = generate_item(
        engine.dataset(),
        &WorkloadSpec {
            n_keywords: 4,
            k: 5,
            alpha: 0.5,
            missing_rank: 26,
            n_missing: 1,
            seed: 777,
        },
    )
    .expect("workload must generate");
    let question = WhyNotQuestion::new(item.query, item.missing, 0.5);
    let exact = engine.answer(&question).unwrap();
    let approx = engine.answer_approx(&question, 32).unwrap();
    assert!(approx.refined.penalty >= exact.refined.penalty - 1e-9);
    assert!(
        approx.refined.penalty <= 0.5 + 1e-12,
        "bounded by the baseline λ"
    );
}
