//! The paper's running example (Fig. 1, Example 3, Table I), evaluated
//! end-to-end through the public facade.
//!
//! Ground truth, by exhaustive evaluation of Eqns. 1–4 (λ = 0.5, k₀ = 1,
//! R(m,q) = 3, |doc₀ ∪ m.doc| = 3):
//!
//! | doc'            | R(m,q') | Δdoc | penalty |
//! |-----------------|---------|------|---------|
//! | {t1,t2} (basic) | 3       | 0    | 0.5     |
//! | {t1,t2,t3}      | 2       | 1    | 0.4167  |
//! | {t2}            | 3       | 1    | 0.6667  |
//! | {t2,t3}         | 2       | 2    | 0.5833  |
//! | {t1,t3}         | 2       | 2    | 0.5833  |
//! | {t3}            | 2       | 2    | 0.5833  |
//! | {t1}            | 4       | 1    | 0.9167  |
//! | {}              | 2       | 2    | 0.5833  |
//!
//! Note the paper's Table I lists q2 = (1, {t2,t3}) with Δk = 0
//! (penalty 0.33), but Fig. 1's own scores give o2 an ST of 0.6167 under
//! {t2,t3}, above m's 0.5833 — so R(m, q2) = 2 and the row is
//! inconsistent. The true optimum is 5/12.

use whynot_sk::prelude::*;

fn build() -> (WhyNotEngine, SpatialKeywordQuery) {
    let t = |ids: &[u32]| KeywordSet::from_ids(ids.iter().copied());
    let objects = vec![
        SpatialObject {
            id: ObjectId(0),
            loc: Point::new(5.0, 0.0),
            doc: t(&[1, 2, 3]),
        }, // m
        SpatialObject {
            id: ObjectId(0),
            loc: Point::new(8.0, 0.0),
            doc: t(&[1]),
        }, // o1
        SpatialObject {
            id: ObjectId(0),
            loc: Point::new(1.0, 0.0),
            doc: t(&[1, 3]),
        }, // o2
        SpatialObject {
            id: ObjectId(0),
            loc: Point::new(6.0, 0.0),
            doc: t(&[1, 2]),
        }, // o3
    ];
    let world = WorldBounds::new(Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0)));
    let ds = Dataset::new(objects, world);
    let q = SpatialKeywordQuery::new(Point::new(0.0, 0.0), t(&[1, 2]), 1, 0.5);
    let engine =
        WhyNotEngine::build_with(ds, 2, wnsk_storage::BufferPoolConfig::default()).unwrap();
    (engine, q)
}

#[test]
fn initial_ranking_matches_figure1() {
    let (engine, q) = build();
    // ST(o3) = 0.7 > ST(o2) = 0.6167 > ST(m) = 0.5833 > ST(o1) = 0.35.
    let ds = engine.dataset();
    assert_eq!(ds.rank_of(ObjectId(3), &q), 1);
    assert_eq!(ds.rank_of(ObjectId(2), &q), 2);
    assert_eq!(ds.rank_of(ObjectId(0), &q), 3);
    assert_eq!(ds.rank_of(ObjectId(1), &q), 4);
    // Top-1 = o3 and m is missing.
    let top = engine.top_k(&q).unwrap();
    assert_eq!(top[0].0, ObjectId(3));
}

#[test]
fn ground_truth_penalty_table() {
    let (engine, q) = build();
    let ds = engine.dataset();
    let question = WhyNotQuestion::new(q.clone(), vec![ObjectId(0)], 0.5);
    let ctx = wnsk_core::WhyNotContext::new(ds, &question, 3).unwrap();
    let expect = |doc: &[u32], rank: usize, ed: usize| {
        let set = KeywordSet::from_ids(doc.iter().copied());
        let got_rank = ds.rank_of(ObjectId(0), &q.with_doc(set));
        assert_eq!(got_rank, rank, "rank mismatch for {doc:?}");
        ctx.penalty.penalty(ed, rank)
    };
    assert!((expect(&[1, 2, 3], 2, 1) - 5.0 / 12.0).abs() < 1e-12);
    assert!((expect(&[2], 3, 1) - 2.0 / 3.0).abs() < 1e-12);
    assert!((expect(&[2, 3], 2, 2) - 7.0 / 12.0).abs() < 1e-12);
    assert!((expect(&[1, 3], 2, 2) - 7.0 / 12.0).abs() < 1e-12);
    assert!((expect(&[1], 4, 1) - 11.0 / 12.0).abs() < 1e-12);
    // q1 of Table I (keep keywords, enlarge k) has penalty λ — correct in
    // the paper.
    assert!((ctx.penalty.baseline_penalty() - 0.5).abs() < 1e-12);
    // q4 of Table I: penalty 0.4167 (the paper prints 0.415 from rounded
    // Δdoc) — consistent.
    // q3 of Table I: 0.5833 (printed 0.58) — consistent.
}

#[test]
fn all_solvers_return_the_true_optimum() {
    let (engine, q) = build();
    let question = WhyNotQuestion::new(q, vec![ObjectId(0)], 0.5);
    for ans in [
        engine.answer_basic(&question).unwrap(),
        engine
            .answer_advanced(&question, AdvancedOptions::default())
            .unwrap(),
        engine.answer_kcr(&question, KcrOptions::default()).unwrap(),
    ] {
        assert!((ans.refined.penalty - 5.0 / 12.0).abs() < 1e-12);
        assert_eq!(ans.refined.rank, 2);
        assert_eq!(ans.refined.k, 2);
        assert_eq!(ans.refined.edit_distance, 1);
    }
}

#[test]
fn example4_early_stop_bound() {
    // Example 4 numbers through the public PenaltyModel.
    let model = wnsk_core::PenaltyModel::new(0.5, 5, 10, 5);
    assert_eq!(model.rank_upper_limit(2, 0.5), Some(8));
}
