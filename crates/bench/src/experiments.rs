//! One experiment per table/figure of §VII.
//!
//! Every `figN` function reproduces the corresponding plot: same x-axis,
//! same algorithm series, metrics = mean query time and mean physical
//! page I/O (plus mean penalty for Fig. 12). Parameters follow Table III;
//! defaults (bold in the paper) are `k₀ = 10`, 4 query keywords,
//! `α = 0.5`, `R(m,q) = 51`, `λ = 0.5`, 1 missing object, EURO dataset.

use crate::config::XpConfig;
use crate::runner::{measure_with_report, Algo, Measurement, TestBed};
use crate::table::Table;
use wnsk_core::{AdvancedOptions, KcrOptions, WhyNotEngine, WhyNotQuestion};
use wnsk_data::workload::WorkloadSpec;
use wnsk_data::DatasetSpec;
use wnsk_geo::Point;
use wnsk_index::{Dataset, ObjectId, SpatialKeywordQuery, SpatialObject};
use wnsk_obs::QueryReport;
use wnsk_text::KeywordSet;

/// Table III defaults.
fn default_workload(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        n_keywords: 4,
        k: 10,
        alpha: 0.5,
        missing_rank: 51,
        n_missing: 1,
        seed,
    }
}

const DEFAULT_LAMBDA: f64 = 0.5;

fn trio_names() -> Vec<String> {
    Algo::paper_trio().iter().map(|a| a.name()).collect()
}

fn run_trio(bed: &TestBed, questions: &[WhyNotQuestion]) -> Vec<(Measurement, QueryReport)> {
    Algo::paper_trio()
        .iter()
        .map(|a| measure_with_report(bed, a, questions))
        .collect()
}

/// Fig. 4 — varying `k₀` (the missing object rank tracks `5·k₀+1`).
pub fn fig4(cfg: &XpConfig) -> Vec<Table> {
    let bed = TestBed::new(&DatasetSpec::euro_like(cfg.scale));
    let mut table = Table::new("Fig. 4 — varying k0 (EURO-like)", "k0", trio_names());
    for (i, k0) in [3usize, 10, 30, 100].into_iter().enumerate() {
        let wspec = WorkloadSpec {
            k: k0,
            missing_rank: 5 * k0 + 1,
            ..default_workload(4000 + i as u64)
        };
        let qs = bed.questions(&wspec, cfg.queries, DEFAULT_LAMBDA);
        if qs.is_empty() {
            eprintln!("fig4: no workload for k0={k0}, skipping");
            continue;
        }
        table.push_row_reported(k0.to_string(), run_trio(&bed, &qs));
    }
    vec![table]
}

/// Fig. 5 — varying the number of initial query keywords.
pub fn fig5(cfg: &XpConfig) -> Vec<Table> {
    let bed = TestBed::new(&DatasetSpec::euro_like(cfg.scale));
    let mut table = Table::new(
        "Fig. 5 — varying the number of initial query keywords (EURO-like)",
        "keywords",
        trio_names(),
    );
    for (i, kw) in [2usize, 4, 6, 8].into_iter().enumerate() {
        let wspec = WorkloadSpec {
            n_keywords: kw,
            ..default_workload(5000 + i as u64)
        };
        let qs = bed.questions(&wspec, cfg.queries, DEFAULT_LAMBDA);
        if qs.is_empty() {
            eprintln!("fig5: no workload for {kw} keywords, skipping");
            continue;
        }
        table.push_row_reported(kw.to_string(), run_trio(&bed, &qs));
    }
    vec![table]
}

/// Fig. 6 — varying α.
pub fn fig6(cfg: &XpConfig) -> Vec<Table> {
    let bed = TestBed::new(&DatasetSpec::euro_like(cfg.scale));
    let mut table = Table::new("Fig. 6 — varying alpha (EURO-like)", "alpha", trio_names());
    for (i, alpha) in [0.1, 0.3, 0.5, 0.7, 0.9].into_iter().enumerate() {
        let wspec = WorkloadSpec {
            alpha,
            ..default_workload(6000 + i as u64)
        };
        let qs = bed.questions(&wspec, cfg.queries, DEFAULT_LAMBDA);
        if qs.is_empty() {
            continue;
        }
        table.push_row_reported(format!("{alpha}"), run_trio(&bed, &qs));
    }
    vec![table]
}

/// Fig. 7 — varying λ (the penalty preference).
pub fn fig7(cfg: &XpConfig) -> Vec<Table> {
    let bed = TestBed::new(&DatasetSpec::euro_like(cfg.scale));
    let mut table = Table::new(
        "Fig. 7 — varying lambda (EURO-like)",
        "lambda",
        trio_names(),
    );
    let wspec = default_workload(7000);
    for lambda in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let qs = bed.questions(&wspec, cfg.queries, lambda);
        if qs.is_empty() {
            continue;
        }
        table.push_row_reported(format!("{lambda}"), run_trio(&bed, &qs));
    }
    vec![table]
}

/// Fig. 8 — varying the missing object's initial ranking.
pub fn fig8(cfg: &XpConfig) -> Vec<Table> {
    let bed = TestBed::new(&DatasetSpec::euro_like(cfg.scale));
    let mut table = Table::new(
        "Fig. 8 — varying the missing object's initial ranking (EURO-like)",
        "R(m,q)",
        trio_names(),
    );
    for (i, rank) in [31usize, 51, 101, 151, 201].into_iter().enumerate() {
        let wspec = WorkloadSpec {
            missing_rank: rank,
            ..default_workload(8000 + i as u64)
        };
        let qs = bed.questions(&wspec, cfg.queries, DEFAULT_LAMBDA);
        if qs.is_empty() {
            continue;
        }
        table.push_row_reported(rank.to_string(), run_trio(&bed, &qs));
    }
    vec![table]
}

/// Fig. 9 — varying the number of missing objects (ranks drawn from
/// 11–51, per §VII-B6).
pub fn fig9(cfg: &XpConfig) -> Vec<Table> {
    let bed = TestBed::new(&DatasetSpec::euro_like(cfg.scale));
    let mut table = Table::new(
        "Fig. 9 — varying the number of missing objects (EURO-like)",
        "missing",
        trio_names(),
    );
    for (i, n_missing) in [1usize, 2, 3, 4].into_iter().enumerate() {
        let wspec = WorkloadSpec {
            n_missing,
            ..default_workload(9000 + i as u64)
        };
        let qs = bed.questions(&wspec, cfg.queries, DEFAULT_LAMBDA);
        if qs.is_empty() {
            continue;
        }
        table.push_row_reported(n_missing.to_string(), run_trio(&bed, &qs));
    }
    vec![table]
}

/// Fig. 10 — varying the number of threads (AdvancedBS and KcRBased).
pub fn fig10(cfg: &XpConfig) -> Vec<Table> {
    // Disk-resident regime: every buffer-pool miss pays the configured
    // read latency, so the thread sweep measures what the paper does —
    // workers overlapping I/O waits — instead of pure CPU contention.
    let bed = TestBed::with_fanout_and_io_latency(
        &DatasetSpec::euro_like(cfg.scale),
        crate::runner::FANOUT,
        cfg.io_latency(),
    );
    let mut table = Table::new(
        "Fig. 10 — varying the number of threads (EURO-like)",
        "threads",
        vec!["AdvancedBS".into(), "KcRBased".into()],
    );
    // A heavier-than-default workload (6 keywords, deep missing object):
    // per-query work must be substantial for threads to amortise their
    // coordination overhead, as in the paper's Fig. 10 setup.
    let wspec = WorkloadSpec {
        n_keywords: 6,
        missing_rank: 101,
        ..default_workload(10_000)
    };
    let qs = bed.questions(&wspec, cfg.queries, DEFAULT_LAMBDA);
    let mut threads = 1usize;
    while threads <= cfg.max_threads {
        let adv = Algo::Advanced(AdvancedOptions {
            threads,
            ..AdvancedOptions::default()
        });
        let kcr = Algo::Kcr(KcrOptions {
            threads,
            ..KcrOptions::default()
        });
        table.push_row_reported(
            threads.to_string(),
            vec![
                measure_with_report(&bed, &adv, &qs),
                measure_with_report(&bed, &kcr, &qs),
            ],
        );
        threads *= 2;
    }
    vec![table]
}

/// Fig. 11 — pruning ability of the individual optimisations.
pub fn fig11(cfg: &XpConfig) -> Vec<Table> {
    let bed = TestBed::new(&DatasetSpec::euro_like(cfg.scale));
    let wspec = default_workload(11_000);
    let qs = bed.questions(&wspec, cfg.queries, DEFAULT_LAMBDA);
    let mut table = Table::new(
        "Fig. 11 — pruning abilities of the optimizations (EURO-like)",
        "variant",
        vec!["measurement".into()],
    );
    let configs: Vec<(&str, AdvancedOptions)> = vec![
        ("BS", AdvancedOptions::none()),
        (
            "BS+Opt1",
            AdvancedOptions {
                early_stop: true,
                ..AdvancedOptions::none()
            },
        ),
        (
            "BS+Opt1+Opt2",
            AdvancedOptions {
                early_stop: true,
                ordered_enumeration: true,
                ..AdvancedOptions::none()
            },
        ),
        ("AdvancedBS(all)", AdvancedOptions::default()),
    ];
    for (name, opts) in configs {
        let pair = measure_with_report(&bed, &Algo::Advanced(opts), &qs);
        table.push_row_reported(name, vec![pair]);
    }
    vec![table]
}

/// Fig. 12 — the approximate algorithm: time *and* solution quality
/// (penalty) versus sample size, with the exact algorithms as reference.
/// Initial queries have 8 keywords (§VII-B9).
pub fn fig12(cfg: &XpConfig) -> Vec<Table> {
    let bed = TestBed::new(&DatasetSpec::euro_like(cfg.scale));
    let wspec = WorkloadSpec {
        n_keywords: 8,
        ..default_workload(12_000)
    };
    let qs = bed.questions(&wspec, cfg.queries, DEFAULT_LAMBDA);
    let mut table = Table::new(
        "Fig. 12 — approximate algorithm: sample size vs time and penalty (EURO-like)",
        "T",
        trio_names(),
    );
    table.show_penalty = true;
    for t in [100usize, 200, 400, 800] {
        let pairs = vec![
            measure_with_report(&bed, &Algo::ApproxBs(t), &qs),
            measure_with_report(
                &bed,
                &Algo::ApproxAdvanced(AdvancedOptions::default(), t),
                &qs,
            ),
            measure_with_report(&bed, &Algo::ApproxKcr(KcrOptions::default(), t), &qs),
        ];
        table.push_row_reported(t.to_string(), pairs);
    }
    table.push_row_reported("exact", run_trio(&bed, &qs));
    vec![table]
}

/// Fig. 13 — scalability: dataset cardinality sweep over GN-like data.
pub fn fig13(cfg: &XpConfig) -> Vec<Table> {
    let base = DatasetSpec::gn_like(cfg.scale);
    let mut table = Table::new(
        "Fig. 13 — varying dataset size (GN-like)",
        "objects",
        trio_names(),
    );
    for (i, frac) in [0.25, 0.5, 0.75, 1.0].into_iter().enumerate() {
        let n = ((base.n_objects as f64 * frac) as usize).max(300);
        let spec = base.clone().with_objects(n).with_seed(base.seed + i as u64);
        let bed = TestBed::new(&spec);
        let wspec = default_workload(13_000 + i as u64);
        let qs = bed.questions(&wspec, cfg.queries, DEFAULT_LAMBDA);
        if qs.is_empty() {
            continue;
        }
        table.push_row_reported(n.to_string(), run_trio(&bed, &qs));
    }
    vec![table]
}

/// Table I / Fig. 1 — the paper's worked example, evaluated exactly.
///
/// Prints every refined query with its true `Δk`, `Δdoc` and penalty
/// (the paper's q2 row is internally inconsistent with Fig. 1's scores;
/// this output shows the corrected value) and confirms all three
/// algorithms return the optimum.
pub fn tab1(_cfg: &XpConfig) -> Vec<Table> {
    let t = |ids: &[u32]| KeywordSet::from_ids(ids.iter().copied());
    let objects = vec![
        SpatialObject {
            id: ObjectId(0),
            loc: Point::new(5.0, 0.0),
            doc: t(&[1, 2, 3]),
        }, // m
        SpatialObject {
            id: ObjectId(0),
            loc: Point::new(8.0, 0.0),
            doc: t(&[1]),
        }, // o1
        SpatialObject {
            id: ObjectId(0),
            loc: Point::new(1.0, 0.0),
            doc: t(&[1, 3]),
        }, // o2
        SpatialObject {
            id: ObjectId(0),
            loc: Point::new(6.0, 0.0),
            doc: t(&[1, 2]),
        }, // o3
    ];
    let world = wnsk_geo::WorldBounds::new(wnsk_geo::Rect::new(
        Point::new(0.0, 0.0),
        Point::new(10.0, 0.0),
    ));
    let ds = Dataset::new(objects, world);
    let q = SpatialKeywordQuery::new(Point::new(0.0, 0.0), t(&[1, 2]), 1, 0.5);
    let question = WhyNotQuestion::new(q.clone(), vec![ObjectId(0)], 0.5);

    println!("\n== Table I — the paper's worked example (exact evaluation) ==");
    println!(
        "{:>18} {:>6} {:>8} {:>8}",
        "doc'", "rank", "Δdoc", "penalty"
    );
    let initial_rank = ds.rank_of(ObjectId(0), &q);
    let ctx = wnsk_core::WhyNotContext::new(&ds, &question, initial_rank).unwrap();
    let mut rows: Vec<(String, usize, usize, f64)> = vec![(
        "{t1,t2} (basic)".into(),
        initial_rank,
        0,
        ctx.penalty.baseline_penalty(),
    )];
    for cand in wnsk_core::CandidateEnumerator::new(&ctx).all(false) {
        let q_s = q.with_doc(cand.doc.clone());
        let rank = ds.rank_of(ObjectId(0), &q_s);
        let p = ctx.penalty.penalty(cand.edit_distance, rank);
        rows.push((format!("{:?}", cand.doc), rank, cand.edit_distance, p));
    }
    for (doc, rank, ed, p) in &rows {
        println!("{doc:>18} {rank:>6} {ed:>8} {p:>8.4}");
    }
    let engine =
        WhyNotEngine::build_with(ds, 2, wnsk_storage::BufferPoolConfig::default()).unwrap();
    let ans = engine.answer(&question).unwrap();
    println!(
        "best refined query: doc' = {:?}, k' = {}, penalty = {:.4}",
        ans.refined.doc, ans.refined.k, ans.refined.penalty
    );
    vec![]
}

/// Table II — statistics of the generated datasets at the current scale.
pub fn tab2(cfg: &XpConfig) -> Vec<Table> {
    println!(
        "\n== Table II — dataset information (synthetic, scale {}) ==",
        cfg.scale
    );
    println!(
        "{:>18} {:>12} {:>16} {:>12}",
        "dataset", "# objects", "# distinct words", "avg doc len"
    );
    for spec in [
        DatasetSpec::euro_like(cfg.scale),
        DatasetSpec::gn_like(cfg.scale),
    ] {
        let g = wnsk_data::generate(&spec);
        println!(
            "{:>18} {:>12} {:>16} {:>12.2}",
            g.spec.name,
            g.dataset.len(),
            g.used_vocab(),
            g.avg_doc_len()
        );
    }
    vec![]
}

/// Extension experiment (beyond the paper): compare the three refinement
/// channels — keywords (this paper), preference α (\[8\]), and location
/// (future work) — on the same why-not workloads, reporting the mean
/// penalty each channel achieves and its time.
pub fn ext(cfg: &XpConfig) -> Vec<Table> {
    use std::time::Instant;
    use wnsk_core::extensions::{refine_alpha, refine_location};

    let bed = TestBed::new(&DatasetSpec::euro_like(cfg.scale));
    let mut table = Table::new(
        "Ext — refinement channels: keywords vs alpha vs location",
        "lambda",
        vec!["keywords".into(), "alpha".into(), "location".into()],
    );
    table.show_penalty = true;
    let wspec = default_workload(99_000);
    for lambda in [0.3, 0.5, 0.7] {
        let qs = bed.questions(&wspec, cfg.queries, lambda);
        if qs.is_empty() {
            continue;
        }
        let mut ms = vec![Measurement::default(); 3];
        for q in &qs {
            bed.clear_caches();
            let t0 = Instant::now();
            let kw = Algo::Kcr(KcrOptions::default()).run(&bed, q).unwrap();
            ms[0].time_ms += t0.elapsed().as_secs_f64() * 1e3;
            ms[0].io += kw.stats.io as f64;
            ms[0].penalty += kw.refined.penalty;

            let t0 = Instant::now();
            let a = refine_alpha(&bed.data.dataset, q).unwrap();
            ms[1].time_ms += t0.elapsed().as_secs_f64() * 1e3;
            ms[1].penalty += a.penalty;

            let t0 = Instant::now();
            let l = refine_location(&bed.data.dataset, q, 16).unwrap();
            ms[2].time_ms += t0.elapsed().as_secs_f64() * 1e3;
            ms[2].penalty += l.penalty;
        }
        for m in &mut ms {
            m.time_ms /= qs.len() as f64;
            m.io /= qs.len() as f64;
            m.penalty /= qs.len() as f64;
            m.n = qs.len();
        }
        table.push_row(format!("{lambda}"), ms);
    }
    vec![table]
}

/// Dispatch table: experiment name → runner.
pub fn run(name: &str, cfg: &XpConfig) -> Option<Vec<Table>> {
    let tables = match name {
        "fig4" => fig4(cfg),
        "fig5" => fig5(cfg),
        "fig6" => fig6(cfg),
        "fig7" => fig7(cfg),
        "fig8" => fig8(cfg),
        "fig9" => fig9(cfg),
        "fig10" => fig10(cfg),
        "fig11" => fig11(cfg),
        "fig12" => fig12(cfg),
        "fig13" => fig13(cfg),
        "tab1" => tab1(cfg),
        "tab2" => tab2(cfg),
        "ext" => ext(cfg),
        "all" => {
            let mut all = Vec::new();
            for n in EXPERIMENTS {
                if *n != "all" {
                    all.extend(run(n, cfg).unwrap());
                }
            }
            all
        }
        _ => return None,
    };
    Some(tables)
}

/// All experiment names, in paper order.
pub const EXPERIMENTS: &[&str] = &[
    "tab1", "tab2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
    "fig13", "ext", "all",
];
