//! The CI benchmark-regression gate: `xp bench` runs a pinned
//! small-scale sweep and writes a machine-readable `BENCH_*.json`;
//! `xp compare` diffs such a file against the committed baseline and
//! fails (non-zero exit) on regressions.
//!
//! What is gated and what is merely reported:
//!
//! - **Work metrics** (`io`, `candidates`, `queries_run`,
//!   `nodes_expanded`, `penalty`) are *deterministic* for serial rows —
//!   seeded datasets, seeded workloads, cold caches — so a change means
//!   the algorithms changed, never the machine. These fail the gate
//!   beyond the tolerance. Parallel rows (`threads > 1`) run the same
//!   work modulo steal-schedule noise; their work metrics get extra
//!   slack (see [`PARALLEL_EXTRA_SLACK`]).
//! - **Penalty** is schedule-invariant even in parallel (the executor's
//!   determinism contract), so it is compared exactly everywhere.
//! - **Wall time** is reported for humans but never gated: CI runners
//!   are noisy-neighbour machines, and the simulated I/O latency makes
//!   the deterministic I/O counts a faithful time proxy anyway.

use crate::config::XpConfig;
use crate::runner::{measure_traced, measure_with_report, Algo, Measurement, TestBed};
use wnsk_core::{AdvancedOptions, KcrOptions};
use wnsk_data::workload::WorkloadSpec;
use wnsk_data::DatasetSpec;
use wnsk_obs::{JsonValue, QueryReport, Snapshot, Tracer};

/// Schema version of the `BENCH_*.json` document.
const FORMAT_VERSION: u64 = 1;

/// Extra relative slack added to the tolerance for `threads > 1` rows,
/// whose work metrics vary with the steal schedule.
pub const PARALLEL_EXTRA_SLACK: f64 = 0.15;

/// Penalties must match to this absolute tolerance (they are exact
/// algorithm outputs; the epsilon only absorbs decimal JSON round-trip).
const PENALTY_EPS: f64 = 1e-9;

/// One measured configuration.
pub struct BenchRow {
    /// Stable row identifier, e.g. `sweep/AdvancedBS/t=2`.
    pub id: String,
    pub threads: usize,
    /// Mean wall-clock per query, ms (reported, never gated).
    pub time_ms: f64,
    /// Mean penalty of the refined query (gated exactly).
    pub penalty: f64,
    /// Gated work metrics, name → per-batch value.
    pub work: Vec<(&'static str, f64)>,
}

/// The pinned default configuration for `xp bench`: small enough that
/// the CI job finishes in a couple of minutes, large enough that the
/// work metrics are non-trivial. The committed `BENCH_baseline.json`
/// was produced with exactly this config; [`compare`] refuses to diff
/// runs whose configs differ, so changing a pin requires refreshing
/// the baseline in the same PR.
pub fn pinned_config() -> XpConfig {
    XpConfig {
        scale: 0.01,
        queries: 3,
        max_threads: 4,
        io_latency_us: 100,
        trace_sample: 16,
        out_dir: None,
    }
}

/// A full sweep plus the registry state it produced (for
/// `xp bench --metrics-export`).
pub struct BenchOutcome {
    pub rows: Vec<BenchRow>,
    /// The main bed's metrics after every untraced row — the richest
    /// single snapshot the sweep produces (the traced row runs on its
    /// own instrumented bed and is gated, not exported).
    pub metrics: Snapshot,
}

/// The pinned sweep: every row the gate measures. The scale, seeds,
/// queries and I/O latency come from `cfg` — CI pins them on the
/// command line and [`compare`] refuses to diff mismatched configs.
pub fn run_bench(cfg: &XpConfig) -> Vec<BenchRow> {
    run_bench_full(cfg).rows
}

/// [`run_bench`] plus the metrics snapshot behind `--metrics-export`.
pub fn run_bench_full(cfg: &XpConfig) -> BenchOutcome {
    let mut rows = Vec::new();

    // A serial trio on the Table III default workload: covers BS's
    // until-found scans and the Opt1+Opt2+Opt3 serial paths.
    let bed = TestBed::with_fanout_and_io_latency(
        &DatasetSpec::euro_like(cfg.scale),
        crate::runner::FANOUT,
        cfg.io_latency(),
    );
    let trio_spec = WorkloadSpec {
        n_keywords: 4,
        k: 10,
        alpha: 0.5,
        missing_rank: 51,
        n_missing: 1,
        seed: 42_000,
    };
    let qs = bed.questions(&trio_spec, cfg.queries, 0.5);
    for algo in [
        Algo::Bs,
        Algo::Advanced(AdvancedOptions::default()),
        Algo::Kcr(KcrOptions::default()),
    ] {
        rows.push(measure_row(&bed, &algo, &qs, "trio", 1));
    }

    // The same serial KcRBased workload with tracing sampled 1-in-N:
    // tracing is observation-only, so every deterministic work metric
    // must land exactly where the untraced trio row does — the gate
    // compares this row against the baseline at the normal serial
    // tolerance, which is how the <5 % tracing-overhead budget on work
    // metrics is enforced in CI.
    let tracer = Tracer::new();
    let traced_bed = TestBed::instrumented(
        &DatasetSpec::euro_like(cfg.scale),
        crate::runner::FANOUT,
        cfg.io_latency(),
        tracer.clone(),
    );
    let traced_qs = traced_bed.questions(&trio_spec, cfg.queries, 0.5);
    let (m, report) = measure_traced(
        &traced_bed,
        &Algo::Kcr(KcrOptions::default()),
        &traced_qs,
        &tracer,
        cfg.trace_sample,
    );
    rows.push(bench_row("trio/KcRBased/t=1/traced".into(), 1, m, &report));

    // The kernel A/B pairs: the serial trio workload under each
    // set-arithmetic kernel. Both kernels are bit-identical in work
    // metrics and penalty by construction (docs/KERNELS.md), and the
    // gate's exact penalty check plus the serial work tolerance enforce
    // that here; the wall-time delta between the pair is the measured
    // kernel speedup (reported, never gated).
    for kernel in wnsk_text::Kernel::ALL {
        for algo in [
            Algo::Advanced(AdvancedOptions {
                kernel,
                ..AdvancedOptions::default()
            }),
            Algo::Kcr(KcrOptions {
                kernel,
                ..KcrOptions::default()
            }),
        ] {
            let (m, report) = measure_with_report(&bed, &algo, &qs);
            rows.push(bench_row(
                format!("kernel/{}/t=1/{kernel}", base_name(&algo)),
                1,
                m,
                &report,
            ));
        }
    }

    // The Fig. 10 thread sweep on the heavier workload: covers the
    // parallel executor (counting ranks, dynamic subtree tasks, shared
    // bound pruning) at every thread count the figure plots.
    let sweep_spec = WorkloadSpec {
        n_keywords: 6,
        missing_rank: 101,
        seed: 10_000,
        ..trio_spec
    };
    let qs = bed.questions(&sweep_spec, cfg.queries, 0.5);
    let mut threads = 1usize;
    while threads <= cfg.max_threads {
        let adv = Algo::Advanced(AdvancedOptions {
            threads,
            ..AdvancedOptions::default()
        });
        let kcr = Algo::Kcr(KcrOptions {
            threads,
            ..KcrOptions::default()
        });
        rows.push(measure_row(&bed, &adv, &qs, "sweep", threads));
        rows.push(measure_row(&bed, &kcr, &qs, "sweep", threads));
        threads *= 2;
    }

    // The serving layer, end to end and in-process: a warm server, one
    // sequential client, every query issued cold then warm. Sequential
    // submission makes the service counters (accepted / cache hits /
    // misses) exactly deterministic, and the why-not penalties are the
    // solver's own, so the gate catches both protocol-level and
    // cache-consistency regressions.
    let session = serve_row(cfg);
    // The same pinned session with the whole observability plane on —
    // flight recorder, slow-query log at threshold zero (every request
    // files an entry and competes for the trace slot), rolling windows.
    // Observation must be free in work terms: the work metrics and the
    // penalty are asserted bit-identical to the unobserved row right
    // here, so a violation fails `xp bench` before any baseline diff.
    // Wall time stays report-only, as everywhere.
    let observed = observed_row(cfg);
    assert_eq!(
        session.work, observed.work,
        "observability changed the serving work metrics"
    );
    assert_eq!(
        session.penalty.to_bits(),
        observed.penalty.to_bits(),
        "observability changed the served penalties"
    );
    rows.push(session);
    rows.push(observed);

    // The durable write path under churn: a WAL-attached server
    // interleaving cached queries with inserts and deletes. Sequential
    // submission keeps the epoch, cache, WAL and ingest counters exactly
    // deterministic, so the gate pins the cost of a mutation — group
    // commits paid, cache entries invalidated — next to the honest hit
    // rate the cache achieves when the dataset refuses to sit still.
    rows.push(churn_row(cfg));

    // The scatter-gather coordinator over the same session script: the
    // merged answers' penalties are gated exactly (bit-identity with a
    // single engine is the subsystem's contract), and the cross-shard
    // bound-tightening counter is asserted nonzero before the row is
    // even written.
    rows.push(sharded_row(cfg));

    BenchOutcome {
        metrics: bed.registry().snapshot(),
        rows,
    }
}

/// The in-process serving-layer row: `serve/session/t=2`.
fn serve_row(cfg: &XpConfig) -> BenchRow {
    serve_session_row(cfg, "serve/session/t=2", None)
}

/// The observed twin: `serve/observed/t=2` — the identical session with
/// the flight recorder, slow-query log (threshold zero) and rolling
/// windows enabled. [`run_bench_full`] asserts its work metrics and
/// penalty bit-identical to [`serve_row`]'s.
fn observed_row(cfg: &XpConfig) -> BenchRow {
    serve_session_row(
        cfg,
        "serve/observed/t=2",
        Some(wnsk_serve::ObservabilityConfig {
            slow_threshold: std::time::Duration::ZERO,
            ..wnsk_serve::ObservabilityConfig::default()
        }),
    )
}

/// Deterministic session lines for the serve rows: per step a top-k on
/// a real object's location and terms, plus (where brute-force ranking
/// finds one strictly below the top-K) the matching why-not question.
fn session_lines(
    ds: &wnsk_index::Dataset,
    vocab: &wnsk_text::Vocabulary,
    queries: usize,
    k: usize,
) -> Vec<String> {
    use wnsk_index::{ObjectId, SpatialKeywordQuery};
    use wnsk_serve::client;
    use wnsk_text::KeywordSet;

    let mut lines = Vec::new();
    for i in 0..queries {
        let o = ds.object(ObjectId(((i * 97 + 13) % ds.len()) as u32));
        let at = wnsk_serve::cache::canonical_point(o.loc);
        let terms: Vec<_> = o.doc.iter().take(2).collect();
        let names: Vec<&str> = terms.iter().filter_map(|&t| vocab.name(t)).collect();
        if names.is_empty() {
            continue;
        }
        lines.push(client::topk_line((at.x, at.y), &names, k, 0.5));
        let query =
            SpatialKeywordQuery::new(at, KeywordSet::from_ids(terms.iter().map(|t| t.0)), k, 0.5);
        let mut scored: Vec<(ObjectId, f64)> = ds
            .objects()
            .iter()
            .map(|obj| (obj.id, ds.score(obj, &query)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        let kth = scored[k - 1].1;
        if let Some(&(missing, _)) = scored[k..(k + 20).min(scored.len())]
            .iter()
            .find(|&&(_, s)| s < kth)
        {
            lines.push(client::whynot_line(
                (at.x, at.y),
                &names,
                k,
                0.5,
                &[missing.0],
                0.5,
                None,
            ));
        }
    }
    lines
}

fn serve_session_row(
    cfg: &XpConfig,
    id: &str,
    observability: Option<wnsk_serve::ObservabilityConfig>,
) -> BenchRow {
    use wnsk_serve::{Client, Server, ServerConfig};

    const K: usize = 10;
    let g = wnsk_data::generate(&DatasetSpec::euro_like(cfg.scale));
    let engine = wnsk_core::WhyNotEngine::build_in_memory(g.dataset)
        .expect("bench dataset builds")
        .with_vocabulary(g.vocabulary);
    let handle = Server::start(
        engine,
        ServerConfig {
            threads: 2,
            observability,
            ..ServerConfig::default()
        },
    )
    .expect("bench server binds a loopback port");

    // Deterministic request lines drawn from real objects; every third
    // step also asks the matching why-not question for an object picked
    // by brute-force ranking to sit strictly below the top-K.
    let engine_guard = handle.serve_engine().engine();
    let lines = session_lines(
        engine_guard.dataset(),
        engine_guard
            .vocabulary()
            .expect("bench engine has a vocabulary"),
        cfg.queries.max(1),
        K,
    );
    drop(engine_guard);
    let mut conn = Client::connect(handle.addr()).expect("bench client connects");
    let mut penalties = Vec::new();
    let mut requests = 0u32;
    let started = std::time::Instant::now();
    for _pass in 0..2 {
        for line in &lines {
            let doc = conn.call_json(line).expect("bench request answered");
            assert_eq!(
                doc.get("ok"),
                Some(&JsonValue::Bool(true)),
                "bench serve session must answer every request: {doc:?}"
            );
            requests += 1;
            if doc.get("type").and_then(JsonValue::as_str) == Some("whynot") {
                let p = doc
                    .get("refined")
                    .and_then(|r| r.get("penalty"))
                    .and_then(JsonValue::as_f64)
                    .expect("whynot answers carry a penalty");
                penalties.push(p);
            }
        }
    }
    let time_ms = started.elapsed().as_secs_f64() * 1e3 / f64::from(requests.max(1));

    let snap = handle.registry().snapshot();
    let row = BenchRow {
        id: id.into(),
        threads: 2,
        time_ms,
        penalty: penalties.iter().sum::<f64>() / penalties.len().max(1) as f64,
        work: vec![
            (
                "accepted",
                snap.counter(wnsk_obs::names::SERVE_ACCEPTED) as f64,
            ),
            (
                "cache_hits",
                snap.counter(wnsk_obs::names::SERVE_CACHE_HITS) as f64,
            ),
            (
                "cache_misses",
                snap.counter(wnsk_obs::names::SERVE_CACHE_MISSES) as f64,
            ),
        ],
    };
    handle.shutdown();
    row
}

/// The scatter-gather row: `serve/sharded/s=2/t=2` — the serve-session
/// script against a 2-shard coordinator on 2 executor threads. The
/// session is sequential, so every counter is deterministic: accepted
/// requests, cache traffic (top-k answers cache across passes; the
/// sharded why-not path always recomputes), scatter fan-outs, and the
/// cross-shard penalty-bound tightenings — pinned *nonzero* here, so
/// CI fails outright if the shared bound ever stops pruning across
/// shards. Penalties are gated exactly: the merged answers must stay
/// bit-identical to a single engine's no matter what this row's code
/// paths do.
fn sharded_row(cfg: &XpConfig) -> BenchRow {
    use wnsk_serve::{Client, Server, ServerConfig};
    use wnsk_shard::{Coordinator, CoordinatorConfig, ShardManifest};

    const K: usize = 10;
    const SHARDS: usize = 2;
    let g = wnsk_data::generate(&DatasetSpec::euro_like(cfg.scale));
    let manifest = ShardManifest::plan(&g.dataset, SHARDS, 42);
    let coordinator = Coordinator::new(
        g.dataset,
        manifest,
        CoordinatorConfig {
            threads: 2,
            ..CoordinatorConfig::default()
        },
    )
    .expect("bench partition covers the dataset")
    .with_vocabulary(g.vocabulary);
    let handle = Server::start_sharded(
        coordinator,
        ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bench server binds a loopback port");

    let coord = handle.serve_engine().coordinator();
    let lines = session_lines(
        coord.dataset(),
        coord
            .vocabulary()
            .expect("bench coordinator has a vocabulary"),
        cfg.queries.max(1),
        K,
    );
    drop(coord);

    let mut conn = Client::connect(handle.addr()).expect("bench client connects");
    let mut penalties = Vec::new();
    let mut requests = 0u32;
    let started = std::time::Instant::now();
    for _pass in 0..2 {
        for line in &lines {
            let doc = conn.call_json(line).expect("bench request answered");
            assert_eq!(
                doc.get("ok"),
                Some(&JsonValue::Bool(true)),
                "bench sharded session must answer every request: {doc:?}"
            );
            requests += 1;
            if doc.get("type").and_then(JsonValue::as_str) == Some("whynot") {
                let p = doc
                    .get("refined")
                    .and_then(|r| r.get("penalty"))
                    .and_then(JsonValue::as_f64)
                    .expect("whynot answers carry a penalty");
                penalties.push(p);
            }
        }
    }
    let time_ms = started.elapsed().as_secs_f64() * 1e3 / f64::from(requests.max(1));

    let snap = handle.registry().snapshot();
    let tightenings = snap.counter(wnsk_obs::names::SHARD_BOUND_TIGHTENINGS);
    assert!(
        tightenings > 0,
        "the cross-shard penalty bound never tightened — the why-not \
         scatter is not sharing improvements between shards"
    );
    let row = BenchRow {
        id: format!("serve/sharded/s={SHARDS}/t=2"),
        threads: 2,
        time_ms,
        penalty: penalties.iter().sum::<f64>() / penalties.len().max(1) as f64,
        work: vec![
            (
                "accepted",
                snap.counter(wnsk_obs::names::SERVE_ACCEPTED) as f64,
            ),
            (
                "cache_hits",
                snap.counter(wnsk_obs::names::SERVE_CACHE_HITS) as f64,
            ),
            (
                "cache_misses",
                snap.counter(wnsk_obs::names::SERVE_CACHE_MISSES) as f64,
            ),
            (
                "scatter",
                snap.counter(wnsk_obs::names::SHARD_SCATTER) as f64,
            ),
            ("bound_tightenings", tightenings as f64),
        ],
    };
    handle.shutdown();
    row
}

/// The durable-churn row: `ingest/churn/t=2`.
///
/// Each round asks a top-k and a why-not question, inserts a perfect
/// competitor through the WAL, re-asks both (the epoch moved — the
/// cached answers must be recomputed), deletes the insert, and asks the
/// top-k twice more (one recompute, one same-epoch cache hit). Every
/// counter below is deterministic for the sequential session, and the
/// mean why-not penalty is gated exactly like every other row's.
fn churn_row(cfg: &XpConfig) -> BenchRow {
    use std::sync::Arc;
    use wnsk_index::{ObjectId, SpatialKeywordQuery};
    use wnsk_serve::{client, Client, Server, ServerConfig};
    use wnsk_storage::{BufferPool, BufferPoolConfig, MemBackend};
    use wnsk_text::KeywordSet;

    const K: usize = 10;
    let g = wnsk_data::generate(&DatasetSpec::euro_like(cfg.scale));
    let mut engine = wnsk_core::WhyNotEngine::build_in_memory(g.dataset)
        .expect("bench dataset builds")
        .with_vocabulary(g.vocabulary);
    let wal_pool = Arc::new(BufferPool::new(
        Arc::new(MemBackend::new()),
        BufferPoolConfig::default(),
    ));
    let report = engine.attach_wal(wal_pool).expect("an empty WAL recovers");
    assert_eq!(report.records_replayed, 0, "the bench WAL starts empty");
    let handle = Server::start(
        engine,
        ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bench server binds a loopback port");

    // Per-round request material drawn from real objects, exactly as the
    // serve row does; the missing object is picked against the *base*
    // dataset, which every round restores by deleting its own insert.
    let engine_guard = handle.serve_engine().engine();
    let ds = engine_guard.dataset();
    let vocab = engine_guard
        .vocabulary()
        .expect("bench engine has a vocabulary");
    struct Round {
        topk: String,
        whynot: Option<String>,
        insert: String,
    }
    let mut rounds = Vec::new();
    for i in 0..cfg.queries.max(1) {
        let o = ds.object(ObjectId(((i * 97 + 13) % ds.len()) as u32));
        let at = wnsk_serve::cache::canonical_point(o.loc);
        let terms: Vec<_> = o.doc.iter().take(2).collect();
        let names: Vec<&str> = terms.iter().filter_map(|&t| vocab.name(t)).collect();
        if names.is_empty() {
            continue;
        }
        let query =
            SpatialKeywordQuery::new(at, KeywordSet::from_ids(terms.iter().map(|t| t.0)), K, 0.5);
        let mut scored: Vec<(ObjectId, f64)> = ds
            .objects()
            .iter()
            .map(|obj| (obj.id, ds.score(obj, &query)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        let kth = scored[K - 1].1;
        let whynot = scored[K..(K + 20).min(scored.len())]
            .iter()
            .find(|&&(_, s)| s < kth)
            .map(|&(missing, _)| {
                client::whynot_line((at.x, at.y), &names, K, 0.5, &[missing.0], 0.5, None)
            });
        rounds.push(Round {
            topk: client::topk_line((at.x, at.y), &names, K, 0.5),
            whynot,
            insert: client::insert_line((at.x, at.y), &names),
        });
    }
    drop(engine_guard);

    let mut conn = Client::connect(handle.addr()).expect("bench client connects");
    let mut call = |line: &str| -> JsonValue {
        let doc = conn.call_json(line).expect("bench request answered");
        assert_eq!(
            doc.get("ok"),
            Some(&JsonValue::Bool(true)),
            "bench churn session must answer every request: {doc:?}"
        );
        doc
    };
    let penalty_of = |doc: &JsonValue| {
        doc.get("refined")
            .and_then(|r| r.get("penalty"))
            .and_then(JsonValue::as_f64)
            .expect("whynot answers carry a penalty")
    };
    let mut penalties = Vec::new();
    let mut requests = 0u32;
    let started = std::time::Instant::now();
    for round in &rounds {
        call(&round.topk);
        if let Some(wn) = &round.whynot {
            penalties.push(penalty_of(&call(wn)));
        }
        let ack = call(&round.insert);
        let inserted = ack
            .get("id")
            .and_then(JsonValue::as_f64)
            .expect("insert acks carry the new id") as u32;
        call(&round.topk);
        if let Some(wn) = &round.whynot {
            penalties.push(penalty_of(&call(wn)));
        }
        call(&client::delete_line(inserted));
        // Post-delete: one recompute, then a same-epoch repeat — the
        // only request of the round the cache may legally serve.
        call(&round.topk);
        call(&round.topk);
        requests += 8;
    }
    let time_ms = started.elapsed().as_secs_f64() * 1e3 / f64::from(requests.max(1));

    let snap = handle.registry().snapshot();
    let counter = |name: &str| snap.counter(name) as f64;
    let row = BenchRow {
        id: "ingest/churn/t=2".into(),
        threads: 2,
        time_ms,
        penalty: penalties.iter().sum::<f64>() / penalties.len().max(1) as f64,
        work: vec![
            ("ingest_applied", counter(wnsk_obs::names::INGEST_APPLIED)),
            ("wal_appends", counter(wnsk_obs::names::WAL_APPENDS)),
            ("wal_commits", counter(wnsk_obs::names::WAL_COMMITS)),
            ("cache_hits", counter(wnsk_obs::names::SERVE_CACHE_HITS)),
            ("cache_misses", counter(wnsk_obs::names::SERVE_CACHE_MISSES)),
            (
                "cache_invalidated",
                counter(wnsk_obs::names::SERVE_CACHE_INVALIDATED),
            ),
        ],
    };
    handle.shutdown();
    row
}

fn measure_row(
    bed: &TestBed,
    algo: &Algo,
    qs: &[wnsk_core::WhyNotQuestion],
    group: &str,
    threads: usize,
) -> BenchRow {
    let (m, report) = measure_with_report(bed, algo, qs);
    bench_row(
        format!("{group}/{}/t={threads}", base_name(algo)),
        threads,
        m,
        &report,
    )
}

fn bench_row(id: String, threads: usize, m: Measurement, report: &QueryReport) -> BenchRow {
    BenchRow {
        id,
        threads,
        time_ms: m.time_ms,
        penalty: m.penalty,
        work: vec![
            ("io", m.io),
            ("candidates", report.counter("core.candidates") as f64),
            ("queries_run", report.counter("core.queries_run") as f64),
            (
                "nodes_expanded",
                report.counter("core.nodes_expanded") as f64,
            ),
        ],
    }
}

/// Algorithm name without the thread suffix (`threads` is its own JSON
/// field, and row ids must be stable across `--threads` sweeps).
fn base_name(algo: &Algo) -> &'static str {
    match algo {
        Algo::Bs => "BS",
        Algo::Advanced(_) => "AdvancedBS",
        Algo::Kcr(_) => "KcRBased",
        Algo::ApproxBs(_) => "BS~",
        Algo::ApproxAdvanced(_, _) => "AdvancedBS~",
        Algo::ApproxKcr(_, _) => "KcRBased~",
    }
}

/// Serialises a sweep (plus the config that produced it) to the
/// `BENCH_*.json` document.
pub fn to_json(cfg: &XpConfig, rows: &[BenchRow]) -> JsonValue {
    JsonValue::object(vec![
        ("version", FORMAT_VERSION.into()),
        (
            "config",
            JsonValue::object(vec![
                ("scale", cfg.scale.into()),
                ("queries", cfg.queries.into()),
                ("max_threads", cfg.max_threads.into()),
                ("io_latency_us", cfg.io_latency_us.into()),
                ("trace_sample", cfg.trace_sample.into()),
            ]),
        ),
        (
            "rows",
            JsonValue::Array(
                rows.iter()
                    .map(|r| {
                        JsonValue::object(vec![
                            ("id", r.id.as_str().into()),
                            ("threads", r.threads.into()),
                            ("time_ms", r.time_ms.into()),
                            ("penalty", r.penalty.into()),
                            (
                                "work",
                                JsonValue::Object(
                                    r.work
                                        .iter()
                                        .map(|&(k, v)| (k.to_owned(), v.into()))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// A parsed `BENCH_*.json`.
pub struct BenchDoc {
    pub config: Vec<(String, f64)>,
    pub rows: Vec<ParsedRow>,
}

pub struct ParsedRow {
    pub id: String,
    pub threads: usize,
    pub time_ms: f64,
    pub penalty: f64,
    pub work: Vec<(String, f64)>,
}

/// Parses a document produced by [`to_json`].
pub fn parse_doc(text: &str) -> Result<BenchDoc, String> {
    let v = JsonValue::parse(text)?;
    let version = v
        .get("version")
        .and_then(JsonValue::as_f64)
        .ok_or("missing version")?;
    if version != FORMAT_VERSION as f64 {
        return Err(format!("unsupported bench format version {version}"));
    }
    let config = match v.get("config") {
        Some(JsonValue::Object(fields)) => fields
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
            .collect(),
        _ => return Err("missing config object".into()),
    };
    let rows = v
        .get("rows")
        .and_then(JsonValue::as_array)
        .ok_or("missing rows array")?
        .iter()
        .map(|row| {
            let id = row
                .get("id")
                .and_then(JsonValue::as_str)
                .ok_or("row without id")?
                .to_owned();
            let threads =
                row.get("threads")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("{id}: missing threads"))? as usize;
            let time_ms = row
                .get("time_ms")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("{id}: missing time_ms"))?;
            let penalty = row
                .get("penalty")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("{id}: missing penalty"))?;
            let work = match row.get("work") {
                Some(JsonValue::Object(fields)) => fields
                    .iter()
                    .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
                    .collect(),
                _ => return Err(format!("{id}: missing work object")),
            };
            Ok(ParsedRow {
                id,
                threads,
                time_ms,
                penalty,
                work,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(BenchDoc { config, rows })
}

/// The outcome of a comparison: regressions fail CI, notes do not.
pub struct Comparison {
    pub failures: Vec<String>,
    pub notes: Vec<String>,
}

/// Diffs `pr` against `baseline` with the given relative tolerance on
/// work metrics (e.g. `0.20` = fail on >20 % growth).
pub fn compare(baseline: &BenchDoc, pr: &BenchDoc, tolerance: f64) -> Comparison {
    let mut failures = Vec::new();
    let mut notes = Vec::new();

    // The sweep configuration must match exactly: differing scales or
    // latencies make every number incomparable.
    for (key, base_val) in &baseline.config {
        match pr.config.iter().find(|(k, _)| k == key) {
            Some((_, pr_val)) if pr_val == base_val => {}
            Some((_, pr_val)) => failures.push(format!(
                "config mismatch: {key} = {pr_val} (baseline {base_val}) — \
                 rerun both sides with identical flags"
            )),
            None => failures.push(format!("config key {key} missing from the PR run")),
        }
    }

    for base_row in &baseline.rows {
        let Some(pr_row) = pr.rows.iter().find(|r| r.id == base_row.id) else {
            failures.push(format!("row {} missing from the PR run", base_row.id));
            continue;
        };
        let id = &base_row.id;

        if (pr_row.penalty - base_row.penalty).abs() > PENALTY_EPS {
            failures.push(format!(
                "{id}: penalty changed {:.9} → {:.9} — the refined answers differ",
                base_row.penalty, pr_row.penalty
            ));
        }

        let slack = if base_row.threads > 1 {
            tolerance + PARALLEL_EXTRA_SLACK
        } else {
            tolerance
        };
        for (metric, base_val) in &base_row.work {
            let Some((_, pr_val)) = pr_row.work.iter().find(|(k, _)| k == metric) else {
                failures.push(format!(
                    "{id}: work metric {metric} missing from the PR run"
                ));
                continue;
            };
            if *base_val <= 0.0 {
                if *pr_val > 0.0 {
                    notes.push(format!("{id}: {metric} appeared ({pr_val:.1})"));
                }
                continue;
            }
            let ratio = pr_val / base_val;
            if ratio > 1.0 + slack {
                failures.push(format!(
                    "{id}: {metric} regressed {base_val:.1} → {pr_val:.1} \
                     (+{:.1} %, tolerance {:.0} %)",
                    (ratio - 1.0) * 100.0,
                    slack * 100.0
                ));
            } else if ratio < 1.0 - slack {
                notes.push(format!(
                    "{id}: {metric} improved {base_val:.1} → {pr_val:.1} \
                     ({:.1} %) — consider refreshing the baseline",
                    (ratio - 1.0) * 100.0
                ));
            }
        }

        let time_ratio = if base_row.time_ms > 0.0 {
            pr_row.time_ms / base_row.time_ms
        } else {
            1.0
        };
        if !(0.5..=2.0).contains(&time_ratio) {
            notes.push(format!(
                "{id}: wall time {:.1} ms → {:.1} ms (informational; time is never gated)",
                base_row.time_ms, pr_row.time_ms
            ));
        }
    }

    for pr_row in &pr.rows {
        if !baseline.rows.iter().any(|r| r.id == pr_row.id) {
            notes.push(format!(
                "{}: new row, not in the baseline (refresh it to start gating this point)",
                pr_row.id
            ));
        }
    }

    Comparison { failures, notes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: Vec<ParsedRow>) -> BenchDoc {
        BenchDoc {
            config: vec![("scale".into(), 0.01), ("queries".into(), 3.0)],
            rows,
        }
    }

    fn row(id: &str, threads: usize, io: f64, penalty: f64) -> ParsedRow {
        ParsedRow {
            id: id.into(),
            threads,
            time_ms: 100.0,
            penalty,
            work: vec![("io".into(), io), ("candidates".into(), 50.0)],
        }
    }

    #[test]
    fn identical_docs_pass() {
        let base = doc(vec![row("trio/BS/t=1", 1, 1000.0, 0.25)]);
        let pr = doc(vec![row("trio/BS/t=1", 1, 1000.0, 0.25)]);
        let c = compare(&base, &pr, 0.20);
        assert!(c.failures.is_empty(), "{:?}", c.failures);
    }

    #[test]
    fn io_regression_fails() {
        let base = doc(vec![row("trio/BS/t=1", 1, 1000.0, 0.25)]);
        let pr = doc(vec![row("trio/BS/t=1", 1, 1300.0, 0.25)]);
        let c = compare(&base, &pr, 0.20);
        assert_eq!(c.failures.len(), 1);
        assert!(c.failures[0].contains("io regressed"), "{}", c.failures[0]);
    }

    #[test]
    fn within_tolerance_passes_and_improvement_notes() {
        let base = doc(vec![row("trio/BS/t=1", 1, 1000.0, 0.25)]);
        let pr = doc(vec![row("trio/BS/t=1", 1, 1150.0, 0.25)]);
        assert!(compare(&base, &pr, 0.20).failures.is_empty());
        let pr = doc(vec![row("trio/BS/t=1", 1, 500.0, 0.25)]);
        let c = compare(&base, &pr, 0.20);
        assert!(c.failures.is_empty());
        assert!(c.notes.iter().any(|n| n.contains("improved")));
    }

    #[test]
    fn parallel_rows_get_extra_slack() {
        let base = doc(vec![row("sweep/KcRBased/t=4", 4, 1000.0, 0.25)]);
        // +30 % would fail a serial row at 20 % tolerance but passes a
        // parallel one (20 % + 15 % slack).
        let pr = doc(vec![row("sweep/KcRBased/t=4", 4, 1300.0, 0.25)]);
        assert!(compare(&base, &pr, 0.20).failures.is_empty());
        let pr = doc(vec![row("sweep/KcRBased/t=4", 4, 1400.0, 0.25)]);
        assert_eq!(compare(&base, &pr, 0.20).failures.len(), 1);
    }

    #[test]
    fn penalty_drift_fails_exactly() {
        let base = doc(vec![row("trio/KcRBased/t=1", 1, 1000.0, 0.25)]);
        let pr = doc(vec![row("trio/KcRBased/t=1", 1, 1000.0, 0.2500001)]);
        let c = compare(&base, &pr, 0.20);
        assert_eq!(c.failures.len(), 1);
        assert!(c.failures[0].contains("penalty"), "{}", c.failures[0]);
    }

    #[test]
    fn missing_row_and_config_mismatch_fail() {
        let base = doc(vec![row("trio/BS/t=1", 1, 1000.0, 0.25)]);
        let pr = BenchDoc {
            config: vec![("scale".into(), 0.02), ("queries".into(), 3.0)],
            rows: vec![],
        };
        let c = compare(&base, &pr, 0.20);
        assert!(c.failures.iter().any(|f| f.contains("config mismatch")));
        assert!(c
            .failures
            .iter()
            .any(|f| f.contains("missing from the PR run")));
    }

    #[test]
    fn json_round_trip() {
        let cfg = XpConfig::default();
        let rows = vec![BenchRow {
            id: "sweep/AdvancedBS/t=2".into(),
            threads: 2,
            time_ms: 123.4,
            penalty: 0.5,
            work: vec![("io", 100.0), ("candidates", 7.0)],
        }];
        let text = to_json(&cfg, &rows).render();
        let parsed = parse_doc(&text).unwrap();
        assert_eq!(parsed.rows.len(), 1);
        assert_eq!(parsed.rows[0].id, "sweep/AdvancedBS/t=2");
        assert_eq!(parsed.rows[0].threads, 2);
        assert_eq!(parsed.rows[0].work[0], ("io".into(), 100.0));
        // Identical docs compare clean.
        assert!(compare(&parsed, &parse_doc(&text).unwrap(), 0.2)
            .failures
            .is_empty());
    }
}
