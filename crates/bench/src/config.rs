//! Harness configuration (Table III's parameter grid lives in
//! [`crate::experiments`]; this is the run-level knob set).

/// Run-level configuration for the experiment harness.
#[derive(Clone, Debug)]
pub struct XpConfig {
    /// Dataset scale factor relative to the paper's cardinalities
    /// (1.0 = full EURO/GN size).
    pub scale: f64,
    /// Queries per data point (the paper averages 1,000; the default here
    /// keeps a full sweep to minutes).
    pub queries: usize,
    /// Worker threads for the parallel experiment (Fig. 10).
    pub max_threads: usize,
    /// Simulated per-physical-read latency in microseconds for the
    /// experiments that model disk-resident indexes (Fig. 10). The
    /// paper measures elapsed time on disk (§VII-A1); 100 µs ≈ one SSD
    /// random 4 KiB read.
    pub io_latency_us: u64,
    /// Trace 1-in-N queries on the gate's traced rows (`--trace-sample`;
    /// the first query of a batch is always sampled).
    pub trace_sample: usize,
    /// Optional directory for CSV output.
    pub out_dir: Option<std::path::PathBuf>,
}

impl Default for XpConfig {
    fn default() -> Self {
        XpConfig {
            scale: 0.02,
            queries: 3,
            max_threads: 8,
            io_latency_us: 100,
            trace_sample: 16,
            out_dir: None,
        }
    }
}

impl XpConfig {
    /// The configured I/O latency as a [`std::time::Duration`].
    pub fn io_latency(&self) -> std::time::Duration {
        std::time::Duration::from_micros(self.io_latency_us)
    }

    /// Parses `--scale`, `--queries`, `--threads`, `--io-latency-us`,
    /// `--out` style flags.
    pub fn from_args(args: &[String]) -> Result<Self, String> {
        let mut cfg = XpConfig::default();
        cfg.apply_args(args)?;
        Ok(cfg)
    }

    /// Applies the same flags on top of an existing configuration
    /// (subcommands with pinned defaults, e.g. `xp bench`, start from
    /// their own base instead of [`XpConfig::default`]).
    pub fn apply_args(&mut self, args: &[String]) -> Result<(), String> {
        let cfg = self;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    cfg.scale = next_value(args, &mut i)?
                        .parse()
                        .map_err(|e| format!("bad --scale: {e}"))?;
                    if cfg.scale <= 0.0 || cfg.scale > 1.0 {
                        return Err("--scale must be in (0, 1]".into());
                    }
                }
                "--queries" => {
                    cfg.queries = next_value(args, &mut i)?
                        .parse()
                        .map_err(|e| format!("bad --queries: {e}"))?;
                    if cfg.queries == 0 {
                        return Err("--queries must be ≥ 1".into());
                    }
                }
                "--threads" => {
                    cfg.max_threads = next_value(args, &mut i)?
                        .parse()
                        .map_err(|e| format!("bad --threads: {e}"))?;
                }
                "--io-latency-us" => {
                    cfg.io_latency_us = next_value(args, &mut i)?
                        .parse()
                        .map_err(|e| format!("bad --io-latency-us: {e}"))?;
                }
                "--trace-sample" => {
                    cfg.trace_sample = next_value(args, &mut i)?
                        .parse()
                        .map_err(|e| format!("bad --trace-sample: {e}"))?;
                    if cfg.trace_sample == 0 {
                        return Err("--trace-sample must be ≥ 1".into());
                    }
                }
                "--out" => {
                    cfg.out_dir = Some(next_value(args, &mut i)?.into());
                }
                other => return Err(format!("unknown flag {other}")),
            }
            i += 1;
        }
        Ok(())
    }
}

fn next_value<'a>(args: &'a [String], i: &mut usize) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("{} needs a value", args[*i - 1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<XpConfig, String> {
        XpConfig::from_args(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults() {
        let cfg = parse(&[]).unwrap();
        assert_eq!(cfg.queries, 3);
        assert!(cfg.out_dir.is_none());
    }

    #[test]
    fn parses_flags() {
        let cfg = parse(&["--scale", "0.1", "--queries", "7", "--out", "/tmp/x"]).unwrap();
        assert_eq!(cfg.scale, 0.1);
        assert_eq!(cfg.queries, 7);
        assert_eq!(cfg.out_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse(&["--scale", "2.0"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--queries", "0"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
    }
}
