//! The test bed (dataset + both indexes) and per-query measurement.

use std::sync::Arc;
use wnsk_core::{
    answer_advanced, answer_approx_advanced, answer_approx_basic, answer_approx_kcr, answer_basic,
    answer_kcr, AdvancedOptions, AlgoStats, KcrOptions, WhyNotAnswer, WhyNotQuestion,
};
use wnsk_data::workload::{generate_item, WorkloadSpec};
use wnsk_data::{generate, DatasetSpec, GeneratedData};
use wnsk_index::{KcrTree, SetRTree};
use wnsk_obs::{Hist, QueryReport, Registry, Tracer};
use wnsk_storage::{
    BufferPool, BufferPoolConfig, FaultBackend, FaultPlan, MemBackend, StorageBackend,
};

/// The paper's node capacity (§VII-A1).
pub const FANOUT: usize = 100;

/// A dataset with both disk-resident indexes built over it. All
/// components report into one shared metrics [`Registry`] (same layout
/// as `WhyNotEngine`: `setr.pool.` / `kcr.pool.` / `setr.` / `kcr.`).
pub struct TestBed {
    pub data: GeneratedData,
    pub setr: SetRTree,
    pub kcr: KcrTree,
    registry: Registry,
}

impl TestBed {
    /// Generates the dataset and bulk-loads both trees (paper defaults:
    /// 4 KiB pages, 4 MiB buffer, fanout 100).
    pub fn new(spec: &DatasetSpec) -> Self {
        Self::with_fanout(spec, FANOUT)
    }

    /// Same with an explicit fanout (tests use small fanouts for deeper
    /// trees).
    pub fn with_fanout(spec: &DatasetSpec, fanout: usize) -> Self {
        Self::with_fanout_and_io_latency(spec, fanout, std::time::Duration::ZERO)
    }

    /// Builds the bed with a simulated per-physical-read latency: each
    /// buffer-pool miss sleeps `read_latency` in the backend, modelling
    /// the paper's disk-resident indexes (§VII-A1 measures elapsed time
    /// on magnetic storage; an in-memory backend would make every
    /// experiment CPU-bound and flatten the I/O effects the figures
    /// show). Pool misses on different cache shards sleep concurrently,
    /// so multi-threaded solvers genuinely overlap I/O waits — the
    /// regime Fig. 10 measures. Build-time writes are unaffected.
    pub fn with_fanout_and_io_latency(
        spec: &DatasetSpec,
        fanout: usize,
        read_latency: std::time::Duration,
    ) -> Self {
        Self::instrumented(spec, fanout, read_latency, Tracer::off())
    }

    /// Same again, with every layer — both buffer pools and both trees —
    /// publishing trace events through `tracer`. The gate's traced rows
    /// and `--explain`-style debugging use this; bulk-loading is kept
    /// out of the trace (the build would swamp any query's spans), so
    /// the tracer comes back in whatever enabled state it went in with
    /// and its buffers empty.
    pub fn instrumented(
        spec: &DatasetSpec,
        fanout: usize,
        read_latency: std::time::Duration,
        tracer: Tracer,
    ) -> Self {
        let was_on = tracer.is_on();
        tracer.set_enabled(false);
        let data = generate(spec);
        let registry = Registry::new();
        let backend = |seed: u64| -> Arc<dyn StorageBackend> {
            if read_latency.is_zero() {
                Arc::new(MemBackend::new())
            } else {
                Arc::new(FaultBackend::new(
                    MemBackend::new(),
                    FaultPlan::new(seed).with_latency(read_latency, std::time::Duration::ZERO),
                ))
            }
        };
        let setr_pool = Arc::new(BufferPool::new_instrumented(
            backend(1),
            BufferPoolConfig::default(),
            &registry,
            "setr.pool.",
            tracer.clone(),
        ));
        let kcr_pool = Arc::new(BufferPool::new_instrumented(
            backend(2),
            BufferPoolConfig::default(),
            &registry,
            "kcr.pool.",
            tracer.clone(),
        ));
        let mut setr = SetRTree::build(setr_pool, &data.dataset, fanout)
            .expect("SetR-tree build cannot fail on MemBackend");
        setr.register_metrics(&registry, "setr.");
        setr.set_tracer(tracer.clone());
        let mut kcr = KcrTree::build(kcr_pool, &data.dataset, fanout)
            .expect("KcR-tree build cannot fail on MemBackend");
        kcr.register_metrics(&registry, "kcr.");
        kcr.set_tracer(tracer.clone());
        let _ = tracer.drain();
        tracer.set_enabled(was_on);
        TestBed {
            data,
            setr,
            kcr,
            registry,
        }
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Generates `n` why-not questions for a workload spec (distinct
    /// seeds; draws that cannot satisfy the spec are skipped).
    pub fn questions(&self, wspec: &WorkloadSpec, n: usize, lambda: f64) -> Vec<WhyNotQuestion> {
        let mut out = Vec::with_capacity(n);
        let mut seed = wspec.seed;
        let mut attempts = 0;
        while out.len() < n && attempts < n * 40 {
            attempts += 1;
            seed = seed.wrapping_add(0x9E37_79B9);
            let spec = WorkloadSpec {
                seed,
                ..wspec.clone()
            };
            if let Some(item) = generate_item(&self.data.dataset, &spec) {
                out.push(WhyNotQuestion::new(item.query, item.missing, lambda));
            }
        }
        out
    }

    /// Drops every cached page from both buffer pools (cold-start
    /// measurement policy; see EXPERIMENTS.md).
    pub fn clear_caches(&self) {
        self.setr.pool().clear_cache();
        self.kcr.pool().clear_cache();
    }
}

/// An algorithm under measurement.
#[derive(Clone, Debug)]
pub enum Algo {
    /// BS (§IV-B).
    Bs,
    /// AdvancedBS (§IV-C) with explicit options.
    Advanced(AdvancedOptions),
    /// KcRBased (§V) with explicit options.
    Kcr(KcrOptions),
    /// Approximate variants (§VI-B) with a sample size.
    ApproxBs(usize),
    ApproxAdvanced(AdvancedOptions, usize),
    ApproxKcr(KcrOptions, usize),
}

impl Algo {
    /// The default three-way comparison the paper plots.
    pub fn paper_trio() -> Vec<Algo> {
        vec![
            Algo::Bs,
            Algo::Advanced(AdvancedOptions::default()),
            Algo::Kcr(KcrOptions::default()),
        ]
    }

    /// Display name used in tables (matching the paper's legends). A
    /// non-default kernel gets a `[scalar]`-style suffix — it is not one
    /// of the paper's optimisations, so it never changes the base name.
    pub fn name(&self) -> String {
        match self {
            Algo::Bs => "BS".into(),
            Algo::Advanced(o) => {
                let canonical = AdvancedOptions {
                    kernel: o.kernel,
                    ..AdvancedOptions::default()
                };
                let base = if *o == canonical {
                    "AdvancedBS".into()
                } else if o.threads > 1 {
                    format!("AdvancedBS(t={})", o.threads)
                } else {
                    let mut parts = Vec::new();
                    if o.early_stop {
                        parts.push("Opt1");
                    }
                    if o.ordered_enumeration {
                        parts.push("Opt2");
                    }
                    if o.keyword_set_filtering {
                        parts.push("Opt3");
                    }
                    if parts.is_empty() {
                        "BS".into()
                    } else {
                        format!("BS+{}", parts.join("+"))
                    }
                };
                tag_kernel(base, o.kernel)
            }
            Algo::Kcr(o) => {
                let base = if o.threads > 1 {
                    format!("KcRBased(t={})", o.threads)
                } else {
                    "KcRBased".into()
                };
                tag_kernel(base, o.kernel)
            }
            Algo::ApproxBs(t) => format!("BS~{t}"),
            Algo::ApproxAdvanced(_, t) => format!("AdvancedBS~{t}"),
            Algo::ApproxKcr(_, t) => format!("KcRBased~{t}"),
        }
    }

    /// Runs the algorithm on one question.
    pub fn run(&self, bed: &TestBed, q: &WhyNotQuestion) -> wnsk_core::Result<WhyNotAnswer> {
        let ds = &bed.data.dataset;
        match self {
            Algo::Bs => answer_basic(ds, &bed.setr, q),
            Algo::Advanced(o) => answer_advanced(ds, &bed.setr, q, *o),
            Algo::Kcr(o) => answer_kcr(ds, &bed.kcr, q, *o),
            Algo::ApproxBs(t) => answer_approx_basic(ds, &bed.setr, q, *t),
            Algo::ApproxAdvanced(o, t) => answer_approx_advanced(ds, &bed.setr, q, *o, *t),
            Algo::ApproxKcr(o, t) => answer_approx_kcr(ds, &bed.kcr, q, *o, *t),
        }
    }
}

/// Appends a non-default kernel marker to a series name
/// (`KcRBased[scalar]`); the default kernel stays unmarked so the
/// paper-figure legends are unchanged.
fn tag_kernel(base: String, kernel: wnsk_text::Kernel) -> String {
    if kernel == wnsk_text::Kernel::default() {
        base
    } else {
        format!("{base}[{kernel}]")
    }
}

/// Aggregated measurement over a set of queries.
#[derive(Clone, Copy, Debug, Default)]
pub struct Measurement {
    /// Mean wall-clock time per query, milliseconds.
    pub time_ms: f64,
    /// Mean physical page reads per query.
    pub io: f64,
    /// Mean penalty of the returned refined query.
    pub penalty: f64,
    /// Number of queries aggregated.
    pub n: usize,
}

/// Runs `algo` over `questions`, cold-starting the buffer pools before
/// each query, and averages the metrics (the paper reports averages over
/// its query batch the same way).
pub fn measure(bed: &TestBed, algo: &Algo, questions: &[WhyNotQuestion]) -> Measurement {
    measure_with_report(bed, algo, questions).0
}

/// Like [`measure`], but also produces the unified [`QueryReport`] for
/// the batch: solver stats summed over every query, plus the registry
/// delta (buffer-pool I/O, node visits, Theorem 2/3 prune events)
/// attributed to this batch. The experiment driver writes these reports
/// as JSON next to its CSV output.
pub fn measure_with_report(
    bed: &TestBed,
    algo: &Algo,
    questions: &[WhyNotQuestion],
) -> (Measurement, QueryReport) {
    measure_inner(bed, algo, questions, None)
}

/// Like [`measure_with_report`] on an [`TestBed::instrumented`] bed:
/// opens the tracer's sampling gate on every `sample`-th query (1-in-N,
/// starting with the first) and drains the buffers afterwards so
/// back-to-back batches never mix spans. The measurement itself is the
/// untraced code path plus whatever the tracer costs — which is what
/// the gate's traced row exists to bound.
pub fn measure_traced(
    bed: &TestBed,
    algo: &Algo,
    questions: &[WhyNotQuestion],
    tracer: &Tracer,
    sample: usize,
) -> (Measurement, QueryReport) {
    let out = measure_inner(bed, algo, questions, Some((tracer, sample.max(1))));
    tracer.set_enabled(false);
    let _ = tracer.drain();
    out
}

fn measure_inner(
    bed: &TestBed,
    algo: &Algo,
    questions: &[WhyNotQuestion],
    trace: Option<(&Tracer, usize)>,
) -> (Measurement, QueryReport) {
    let before = bed.registry.snapshot();
    let mut agg = AlgoStats::default();
    let task_hist = Hist::new();
    let mut total_penalty = 0.0;
    let mut n = 0usize;
    for (i, q) in questions.iter().enumerate() {
        if let Some((tracer, sample)) = trace {
            tracer.set_enabled(i % sample == 0);
        }
        bed.clear_caches();
        match algo.run(bed, q) {
            Ok(ans) => {
                agg.wall += ans.stats.wall;
                agg.io += ans.stats.io;
                agg.candidates_total += ans.stats.candidates_total;
                agg.pruned_by_filter += ans.stats.pruned_by_filter;
                agg.pruned_by_bound += ans.stats.pruned_by_bound;
                agg.queries_run += ans.stats.queries_run;
                agg.nodes_expanded += ans.stats.nodes_expanded;
                agg.tasks_stolen += ans.stats.tasks_stolen;
                agg.bound_refreshes += ans.stats.bound_refreshes;
                agg.prune_hits += ans.stats.prune_hits;
                agg.phase_initial_rank += ans.stats.phase_initial_rank;
                agg.phase_enumeration += ans.stats.phase_enumeration;
                agg.phase_verification += ans.stats.phase_verification;
                task_hist.merge_snapshot(&ans.stats.task_latency);
                total_penalty += ans.refined.penalty;
                n += 1;
            }
            Err(e) => panic!("{} failed on a generated workload: {e}", algo.name()),
        }
    }
    agg.task_latency = task_hist.snapshot();
    agg.record_into(&bed.registry);
    let delta = bed.registry.snapshot().since(&before);
    let mut report = QueryReport::new(algo.name(), agg.wall);
    report.queries = n;
    for (name, elapsed) in agg.phases() {
        report.push_phase(name, elapsed);
    }
    report.absorb(&delta);
    let measurement = Measurement {
        time_ms: agg.wall.as_secs_f64() * 1e3 / n.max(1) as f64,
        io: agg.io as f64 / n.max(1) as f64,
        penalty: total_penalty / n.max(1) as f64,
        n,
    };
    (measurement, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bed() -> TestBed {
        TestBed::with_fanout(&DatasetSpec::tiny(3), 8)
    }

    #[test]
    fn testbed_builds_both_trees() {
        let bed = tiny_bed();
        assert_eq!(bed.setr.len(), 300);
        assert_eq!(bed.kcr.len(), 300);
    }

    #[test]
    fn questions_generation() {
        let bed = tiny_bed();
        let spec = WorkloadSpec {
            k: 4,
            missing_rank: 21,
            ..WorkloadSpec::paper_default(1)
        };
        let qs = bed.questions(&spec, 3, 0.5);
        assert_eq!(qs.len(), 3);
        for q in &qs {
            assert_eq!(q.query.k, 4);
            assert_eq!(q.missing.len(), 1);
        }
    }

    #[test]
    fn measure_all_algorithms() {
        let bed = tiny_bed();
        let spec = WorkloadSpec {
            k: 3,
            n_keywords: 2,
            missing_rank: 16,
            ..WorkloadSpec::paper_default(5)
        };
        let qs = bed.questions(&spec, 2, 0.5);
        assert!(!qs.is_empty());
        let mut penalties = Vec::new();
        for algo in Algo::paper_trio() {
            let m = measure(&bed, &algo, &qs);
            assert_eq!(m.n, qs.len());
            assert!(m.io > 0.0, "{} did no I/O", algo.name());
            penalties.push(m.penalty);
        }
        // All exact algorithms agree on the average penalty.
        assert!((penalties[0] - penalties[1]).abs() < 1e-9);
        assert!((penalties[1] - penalties[2]).abs() < 1e-9);
    }

    #[test]
    fn approx_penalty_at_least_exact() {
        let bed = tiny_bed();
        let spec = WorkloadSpec {
            k: 3,
            n_keywords: 2,
            missing_rank: 16,
            ..WorkloadSpec::paper_default(9)
        };
        let qs = bed.questions(&spec, 2, 0.5);
        let exact = measure(&bed, &Algo::Kcr(KcrOptions::default()), &qs);
        let approx = measure(&bed, &Algo::ApproxKcr(KcrOptions::default(), 8), &qs);
        assert!(approx.penalty >= exact.penalty - 1e-9);
    }

    #[test]
    fn measure_with_report_unifies_the_stack() {
        let bed = tiny_bed();
        let spec = WorkloadSpec {
            k: 3,
            n_keywords: 2,
            missing_rank: 16,
            ..WorkloadSpec::paper_default(5)
        };
        let qs = bed.questions(&spec, 2, 0.5);
        assert!(!qs.is_empty());
        let (m, report) = measure_with_report(&bed, &Algo::Kcr(KcrOptions::default()), &qs);
        assert_eq!(report.queries, m.n);
        assert_eq!(report.algorithm, "KcRBased");
        // The report unifies all three layers around the KcR query:
        // buffer pool, tree traversal and solver counters.
        assert!(report.counter("kcr.pool.physical_reads") > 0);
        assert!(report.counter("kcr.node_visits") > 0);
        assert!(report.counter("core.candidates") > 0);
        assert_eq!(report.phases.len(), 3);
        // Back-to-back batches are isolated by the snapshot delta: the
        // SetR batch does not inherit the KcR batch's counts.
        let (_, setr_report) = measure_with_report(&bed, &Algo::Bs, &qs);
        assert_eq!(setr_report.counter("kcr.node_visits"), 0);
        assert!(setr_report.counter("setr.node_visits") > 0);
    }

    /// The tracing-overhead guard: a fully traced run (sample 1) must
    /// keep every deterministic work metric within the 5 % budget of an
    /// untraced run on the identical bed — and since tracing is
    /// observation-only, they are in fact exactly equal.
    #[test]
    fn traced_measurement_keeps_work_metrics_within_budget() {
        let spec = DatasetSpec::tiny(3);
        let wspec = WorkloadSpec {
            k: 3,
            n_keywords: 2,
            missing_rank: 16,
            ..WorkloadSpec::paper_default(5)
        };
        let plain = TestBed::with_fanout(&spec, 8);
        let tracer = Tracer::new();
        let traced = TestBed::instrumented(&spec, 8, std::time::Duration::ZERO, tracer.clone());
        let qs = plain.questions(&wspec, 2, 0.5);
        assert!(!qs.is_empty());
        let algo = Algo::Kcr(KcrOptions::default());
        let (m0, r0) = measure_with_report(&plain, &algo, &qs);
        let (m1, r1) = measure_traced(
            &traced,
            &algo,
            &traced.questions(&wspec, 2, 0.5),
            &tracer,
            1,
        );
        assert!(
            (m1.io - m0.io).abs() <= 0.05 * m0.io.max(1.0),
            "io: {} vs {}",
            m0.io,
            m1.io
        );
        for name in ["core.candidates", "core.queries_run", "core.nodes_expanded"] {
            let (a, b) = (r0.counter(name) as f64, r1.counter(name) as f64);
            assert!((b - a).abs() <= 0.05 * a.max(1.0), "{name}: {a} vs {b}");
        }
        assert!((m0.penalty - m1.penalty).abs() < 1e-12);
        // Sampling gate: after measure_traced the tracer is drained and
        // closed, so back-to-back batches cannot mix spans.
        assert!(!tracer.is_on());
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn algo_names() {
        assert_eq!(Algo::Bs.name(), "BS");
        assert_eq!(
            Algo::Advanced(AdvancedOptions::default()).name(),
            "AdvancedBS"
        );
        assert_eq!(
            Algo::Kcr(KcrOptions {
                threads: 4,
                ..KcrOptions::default()
            })
            .name(),
            "KcRBased(t=4)"
        );
        assert_eq!(
            Algo::ApproxKcr(KcrOptions::default(), 100).name(),
            "KcRBased~100"
        );
        let only_opt1 = AdvancedOptions {
            early_stop: true,
            ordered_enumeration: false,
            keyword_set_filtering: false,
            ..AdvancedOptions::none()
        };
        assert_eq!(Algo::Advanced(only_opt1).name(), "BS+Opt1");
    }
}
