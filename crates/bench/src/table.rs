//! Pretty-printed / CSV result tables, one per figure.

use crate::runner::Measurement;
use wnsk_obs::{JsonValue, QueryReport};

/// A result table: one row per x-axis value, one measurement per series
/// (algorithm). Rows pushed with [`Table::push_row_reported`] also carry
/// the per-batch [`QueryReport`]s, which [`Table::metrics_json`] renders
/// for the experiment driver's `<slug>.metrics.json` output.
#[derive(Debug)]
pub struct Table {
    /// E.g. `"Fig. 4 — varying k0"`.
    pub title: String,
    /// X-axis label, e.g. `"k0"`.
    pub x_label: String,
    /// Series (algorithm) names, in column order.
    pub series: Vec<String>,
    /// `(x value, measurements aligned with `series`)`.
    pub rows: Vec<(String, Vec<Measurement>)>,
    /// `(x value, reports aligned with `series`)` for rows that carried
    /// reports; may be shorter than `rows` when some rows are
    /// measurement-only.
    pub reports: Vec<(String, Vec<QueryReport>)>,
    /// Whether to print the penalty column (Fig. 12).
    pub show_penalty: bool,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, x_label: &str, series: Vec<String>) -> Self {
        Table {
            title: title.into(),
            x_label: x_label.into(),
            series,
            rows: Vec::new(),
            reports: Vec::new(),
            show_penalty: false,
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the measurement count does not match the series.
    pub fn push_row(&mut self, x: impl Into<String>, ms: Vec<Measurement>) {
        assert_eq!(ms.len(), self.series.len(), "row arity mismatch");
        self.rows.push((x.into(), ms));
    }

    /// Appends a row that also carries the per-series query reports.
    ///
    /// # Panics
    /// Panics when the pair count does not match the series.
    pub fn push_row_reported(
        &mut self,
        x: impl Into<String>,
        pairs: Vec<(Measurement, QueryReport)>,
    ) {
        assert_eq!(pairs.len(), self.series.len(), "row arity mismatch");
        let x = x.into();
        let (ms, reports): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
        self.rows.push((x.clone(), ms));
        self.reports.push((x, reports));
    }

    /// JSON document with every row's per-series query reports, or
    /// `None` when no row carried reports. Shape:
    /// `{"title", "x_label", "rows": [{"x", "series": {name: report}}]}`.
    pub fn metrics_json(&self) -> Option<String> {
        if self.reports.is_empty() {
            return None;
        }
        let rows = self
            .reports
            .iter()
            .map(|(x, reports)| {
                let series = self
                    .series
                    .iter()
                    .zip(reports)
                    .map(|(name, report)| (name.clone(), report.to_json()))
                    .collect();
                JsonValue::object(vec![
                    ("x", x.as_str().into()),
                    ("series", JsonValue::Object(series)),
                ])
            })
            .collect();
        let doc = JsonValue::object(vec![
            ("title", self.title.as_str().into()),
            ("x_label", self.x_label.as_str().into()),
            ("rows", JsonValue::Array(rows)),
        ]);
        Some(doc.render())
    }

    /// Renders the table for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let metric_cols: &[&str] = if self.show_penalty {
            &["time(ms)", "IO", "penalty"]
        } else {
            &["time(ms)", "IO"]
        };
        // Header.
        out.push_str(&format!("{:>10}", self.x_label));
        for s in &self.series {
            for m in metric_cols {
                out.push_str(&format!("{:>22}", format!("{s} {m}")));
            }
        }
        out.push('\n');
        for (x, ms) in &self.rows {
            out.push_str(&format!("{x:>10}"));
            for m in ms {
                out.push_str(&format!("{:>22.3}", m.time_ms));
                out.push_str(&format!("{:>22.1}", m.io));
                if self.show_penalty {
                    out.push_str(&format!("{:>22.4}", m.penalty));
                }
            }
            out.push('\n');
        }
        out
    }

    /// CSV rendering (long format: one line per x × series).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x,series,time_ms,io,penalty,n\n");
        for (x, ms) in &self.rows {
            for (s, m) in self.series.iter().zip(ms) {
                out.push_str(&format!(
                    "{x},{s},{:.6},{:.2},{:.6},{}\n",
                    m.time_ms, m.io, m.penalty, m.n
                ));
            }
        }
        out
    }

    /// A filesystem-friendly slug of the title.
    pub fn slug(&self) -> String {
        self.title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(t: f64, io: f64) -> Measurement {
        Measurement {
            time_ms: t,
            io,
            penalty: 0.4,
            n: 3,
        }
    }

    #[test]
    fn render_contains_everything() {
        let mut t = Table::new("Fig. X — demo", "k0", vec!["BS".into(), "KcR".into()]);
        t.push_row("10", vec![m(1.5, 100.0), m(0.5, 20.0)]);
        let s = t.render();
        assert!(s.contains("Fig. X — demo"));
        assert!(s.contains("BS time(ms)"));
        assert!(s.contains("KcR IO"));
        assert!(s.contains("1.500"));
        assert!(s.contains("20.0"));
    }

    #[test]
    fn csv_long_format() {
        let mut t = Table::new("t", "x", vec!["A".into()]);
        t.push_row("1", vec![m(2.0, 4.0)]);
        let csv = t.to_csv();
        assert!(csv.starts_with("x,series,"));
        assert!(csv.contains("1,A,2.000000,4.00,0.400000,3"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("t", "x", vec!["A".into(), "B".into()]);
        t.push_row("1", vec![m(1.0, 1.0)]);
    }

    #[test]
    fn slug_is_filesystem_friendly() {
        let t = Table::new("Fig. 4 — varying k0 (EURO)", "k0", vec![]);
        assert_eq!(t.slug(), "fig_4_varying_k0_euro");
    }

    #[test]
    fn reported_rows_feed_metrics_json() {
        use std::time::Duration;
        let mut t = Table::new("t", "x", vec!["A".into(), "B".into()]);
        assert!(t.metrics_json().is_none());
        let report = |algo: &str| {
            let mut r = wnsk_obs::QueryReport::new(algo, Duration::from_millis(3));
            r.push_phase("verification", Duration::from_millis(2));
            r
        };
        t.push_row_reported(
            "1",
            vec![(m(1.0, 1.0), report("A")), (m(2.0, 2.0), report("B"))],
        );
        assert_eq!(t.rows.len(), 1);
        let json = t.metrics_json().unwrap();
        assert!(json.contains("\"x_label\":\"x\""));
        assert!(json.contains("\"A\":{"));
        assert!(json.contains("\"B\":{"));
        assert!(json.contains("\"verification\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn reported_arity_checked() {
        use std::time::Duration;
        let mut t = Table::new("t", "x", vec!["A".into(), "B".into()]);
        let r = wnsk_obs::QueryReport::new("A", Duration::ZERO);
        t.push_row_reported("1", vec![(m(1.0, 1.0), r)]);
    }

    #[test]
    fn penalty_column_toggle() {
        let mut t = Table::new("t", "x", vec!["A".into()]);
        t.show_penalty = true;
        t.push_row("1", vec![m(1.0, 1.0)]);
        assert!(t.render().contains("A penalty"));
        assert!(t.render().contains("0.4000"));
    }
}
