//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§VII).
//!
//! The `xp` binary drives one experiment per figure:
//!
//! ```text
//! cargo run -p wnsk-bench --release --bin xp -- fig4 --scale 0.02 --queries 3
//! ```
//!
//! Each experiment prints (a) query time and (b) physical page I/O per
//! algorithm, in the same series layout as the paper's plots, and can
//! also emit CSV. Absolute numbers differ from the paper (synthetic data,
//! Rust vs Java, different hardware); the *shapes* — which algorithm
//! wins, how curves scale along each axis — are the reproduction target
//! and are recorded in `EXPERIMENTS.md`.

pub mod config;
pub mod experiments;
pub mod gate;
pub mod runner;
pub mod table;

pub use config::XpConfig;
pub use runner::{measure, measure_traced, measure_with_report, Algo, Measurement, TestBed};
pub use table::Table;
