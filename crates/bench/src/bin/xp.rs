//! `xp` — the experiment driver.
//!
//! ```text
//! xp <experiment> [--scale S] [--queries N] [--threads T] [--out DIR]
//! ```
//!
//! `<experiment>` is one of `tab1 tab2 fig4 … fig13 all`. Results print
//! as aligned tables; `--out DIR` additionally writes one CSV per table,
//! plus a `<slug>.metrics.json` with the full per-point query reports
//! (phase timings, node visits, prune events, buffer-pool I/O).

use wnsk_bench::{experiments, XpConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((name, rest)) = args.split_first() else {
        usage_and_exit(None);
    };
    let cfg = match XpConfig::from_args(rest) {
        Ok(cfg) => cfg,
        Err(e) => usage_and_exit(Some(&e)),
    };
    eprintln!(
        "running {name} (scale {}, {} queries per point)…",
        cfg.scale, cfg.queries
    );
    let started = std::time::Instant::now();
    let Some(tables) = experiments::run(name, &cfg) else {
        usage_and_exit(Some(&format!("unknown experiment '{name}'")));
    };
    for table in &tables {
        print!("{}", table.render());
        if let Some(dir) = &cfg.out_dir {
            std::fs::create_dir_all(dir).expect("cannot create --out directory");
            let path = dir.join(format!("{}.csv", table.slug()));
            std::fs::write(&path, table.to_csv()).expect("cannot write CSV");
            eprintln!("wrote {}", path.display());
            if let Some(json) = table.metrics_json() {
                let path = dir.join(format!("{}.metrics.json", table.slug()));
                std::fs::write(&path, json).expect("cannot write metrics JSON");
                eprintln!("wrote {}", path.display());
            }
        }
    }
    eprintln!("done in {:.1}s", started.elapsed().as_secs_f64());
}

fn usage_and_exit(err: Option<&str>) -> ! {
    if let Some(e) = err {
        eprintln!("error: {e}\n");
    }
    eprintln!("usage: xp <experiment> [--scale S] [--queries N] [--threads T] [--out DIR]");
    eprintln!("experiments: {}", experiments::EXPERIMENTS.join(" "));
    std::process::exit(if err.is_some() { 2 } else { 0 });
}
