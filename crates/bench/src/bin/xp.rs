//! `xp` — the experiment driver.
//!
//! ```text
//! xp <experiment> [--scale S] [--queries N] [--threads T] [--out DIR]
//! xp bench [--output FILE] [--scale S] [--queries N] [--threads T]
//!          [--trace-sample N] [--metrics-export PATH|-]
//! xp compare <baseline.json> <pr.json> [--tolerance T]
//! ```
//!
//! `<experiment>` is one of `tab1 tab2 fig4 … fig13 all`. Results print
//! as aligned tables; `--out DIR` additionally writes one CSV per table,
//! plus a `<slug>.metrics.json` with the full per-point query reports
//! (phase timings, node visits, prune events, buffer-pool I/O).
//!
//! `bench` runs the pinned CI sweep and writes a `BENCH_*.json`;
//! `compare` diffs two such files and exits non-zero on regression —
//! together they form the CI benchmark gate (see `.github/workflows`).

use wnsk_bench::{experiments, gate, XpConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((name, rest)) = args.split_first() else {
        usage_and_exit(None);
    };
    match name.as_str() {
        "bench" => bench_cmd(rest),
        "compare" => compare_cmd(rest),
        _ => experiment_cmd(name, rest),
    }
}

fn experiment_cmd(name: &str, rest: &[String]) -> ! {
    let cfg = match XpConfig::from_args(rest) {
        Ok(cfg) => cfg,
        Err(e) => usage_and_exit(Some(&e)),
    };
    eprintln!(
        "running {name} (scale {}, {} queries per point)…",
        cfg.scale, cfg.queries
    );
    let started = std::time::Instant::now();
    let Some(tables) = experiments::run(name, &cfg) else {
        usage_and_exit(Some(&format!("unknown experiment '{name}'")));
    };
    for table in &tables {
        print!("{}", table.render());
        if let Some(dir) = &cfg.out_dir {
            std::fs::create_dir_all(dir).expect("cannot create --out directory");
            let path = dir.join(format!("{}.csv", table.slug()));
            std::fs::write(&path, table.to_csv()).expect("cannot write CSV");
            eprintln!("wrote {}", path.display());
            if let Some(json) = table.metrics_json() {
                let path = dir.join(format!("{}.metrics.json", table.slug()));
                std::fs::write(&path, json).expect("cannot write metrics JSON");
                eprintln!("wrote {}", path.display());
            }
        }
    }
    eprintln!("done in {:.1}s", started.elapsed().as_secs_f64());
    std::process::exit(0);
}

/// `xp bench`: the pinned sweep behind the CI regression gate.
fn bench_cmd(args: &[String]) -> ! {
    let mut output = std::path::PathBuf::from("BENCH_pr.json");
    let mut metrics_export: Option<String> = None;
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--output" {
            let Some(value) = args.get(i + 1) else {
                usage_and_exit(Some("--output needs a value"));
            };
            output = value.into();
            i += 2;
        } else if args[i] == "--metrics-export" {
            let Some(value) = args.get(i + 1) else {
                usage_and_exit(Some("--metrics-export needs a value (a path, or '-')"));
            };
            metrics_export = Some(value.clone());
            i += 2;
        } else {
            flags.push(args[i].clone());
            i += 1;
        }
    }
    let mut cfg = gate::pinned_config();
    if let Err(e) = cfg.apply_args(&flags) {
        usage_and_exit(Some(&e));
    }
    eprintln!(
        "benchmarking (scale {}, {} queries, ≤{} threads, {} µs/read)…",
        cfg.scale, cfg.queries, cfg.max_threads, cfg.io_latency_us
    );
    let started = std::time::Instant::now();
    let outcome = gate::run_bench_full(&cfg);
    let rows = &outcome.rows;
    for row in rows {
        let io = row
            .work
            .iter()
            .find(|(k, _)| *k == "io")
            .map_or(0.0, |(_, v)| *v);
        eprintln!(
            "  {:<24} {:>8.1} ms {:>8.0} io  penalty {:.6}",
            row.id, row.time_ms, io, row.penalty
        );
    }
    std::fs::write(&output, gate::to_json(&cfg, rows).render()).expect("cannot write bench JSON");
    if let Some(target) = metrics_export {
        let text = wnsk_obs::prometheus_text(&outcome.metrics);
        if target == "-" {
            print!("{text}");
        } else if let Err(e) = std::fs::write(&target, &text) {
            eprintln!("error: cannot export metrics to {target}: {e}");
            std::process::exit(1);
        } else {
            eprintln!("exported metrics to {target}");
        }
    }
    eprintln!(
        "wrote {} ({} rows) in {:.1}s",
        output.display(),
        rows.len(),
        started.elapsed().as_secs_f64()
    );
    std::process::exit(0);
}

/// `xp compare`: diff two bench files; exit 1 on regression.
fn compare_cmd(args: &[String]) -> ! {
    let mut files = Vec::new();
    let mut tolerance = 0.20;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--tolerance" {
            let Some(value) = args.get(i + 1) else {
                usage_and_exit(Some("--tolerance needs a value"));
            };
            tolerance = match value.parse() {
                Ok(t) if (0.0..10.0).contains(&t) => t,
                _ => usage_and_exit(Some("--tolerance must be a fraction like 0.20")),
            };
            i += 2;
        } else {
            files.push(args[i].clone());
            i += 1;
        }
    }
    let [base_path, pr_path] = files.as_slice() else {
        usage_and_exit(Some(
            "compare needs exactly two files: <baseline.json> <pr.json>",
        ));
    };
    let load = |path: &str| -> gate::BenchDoc {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage_and_exit(Some(&format!("cannot read {path}: {e}"))));
        gate::parse_doc(&text)
            .unwrap_or_else(|e| usage_and_exit(Some(&format!("cannot parse {path}: {e}"))))
    };
    let baseline = load(base_path);
    let pr = load(pr_path);
    let c = gate::compare(&baseline, &pr, tolerance);
    for note in &c.notes {
        println!("note: {note}");
    }
    for failure in &c.failures {
        println!("FAIL: {failure}");
    }
    if c.failures.is_empty() {
        println!(
            "OK: {} rows within {:.0} % of {}",
            baseline.rows.len(),
            tolerance * 100.0,
            base_path
        );
        std::process::exit(0);
    }
    println!(
        "{} regression(s) against {} (tolerance {:.0} %)",
        c.failures.len(),
        base_path,
        tolerance * 100.0
    );
    std::process::exit(1);
}

fn usage_and_exit(err: Option<&str>) -> ! {
    if let Some(e) = err {
        eprintln!("error: {e}\n");
    }
    eprintln!("usage: xp <experiment> [--scale S] [--queries N] [--threads T] [--out DIR]");
    eprintln!(
        "       xp bench [--output FILE] [--scale S] [--queries N] [--threads T]
                [--trace-sample N] [--metrics-export PATH|-]"
    );
    eprintln!("       xp compare <baseline.json> <pr.json> [--tolerance T]");
    eprintln!("experiments: {}", experiments::EXPERIMENTS.join(" "));
    std::process::exit(if err.is_some() { 2 } else { 0 });
}
