//! Microbenchmarks of the substrates: index construction, top-k / rank
//! search, the KcR dominance bounds, the buffer pool, and the text
//! algebra. These pin down where the figure-level costs come from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use wnsk_data::workload::WorkloadSpec;
use wnsk_data::{generate, DatasetSpec};
use wnsk_index::kcr::{max_dom, min_dom, PreparedNode};
use wnsk_index::{KcrTree, RankMode, SetRTree};
use wnsk_storage::{BufferPool, BufferPoolConfig, MemBackend, PageId, PAGE_SIZE};
use wnsk_text::{jaccard, KeywordCountMap, KeywordSet, TermId};

fn pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::new(
        Arc::new(MemBackend::new()),
        BufferPoolConfig::default(),
    ))
}

fn tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    for n in [2_000usize, 8_000] {
        let data = generate(&DatasetSpec::tiny(1).with_objects(n));
        group.bench_with_input(BenchmarkId::new("setr", n), &data, |b, data| {
            b.iter(|| SetRTree::build(pool(), &data.dataset, 100).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("kcr", n), &data, |b, data| {
            b.iter(|| KcrTree::build(pool(), &data.dataset, 100).unwrap())
        });
    }
    group.finish();
}

fn search(c: &mut Criterion) {
    let data = generate(&DatasetSpec::euro_like(0.01));
    let setr = SetRTree::build(pool(), &data.dataset, 100).unwrap();
    let kcr = KcrTree::build(pool(), &data.dataset, 100).unwrap();
    let wspec = WorkloadSpec::paper_default(7);
    let item =
        wnsk_data::workload::generate_item(&data.dataset, &wspec).expect("workload must generate");
    let target = item.missing[0];
    let target_score = data.dataset.score(data.dataset.object(target), &item.query);

    let mut group = c.benchmark_group("search");
    group.sample_size(20);
    group.bench_function("setr_top_k_cold", |b| {
        b.iter(|| {
            setr.pool().clear_cache();
            setr.top_k(&item.query).unwrap()
        })
    });
    group.bench_function("setr_top_k_warm", |b| {
        b.iter(|| setr.top_k(&item.query).unwrap())
    });
    group.bench_function("kcr_top_k_cold", |b| {
        b.iter(|| {
            kcr.pool().clear_cache();
            kcr.top_k(&item.query).unwrap()
        })
    });
    group.bench_function("setr_rank_of", |b| {
        b.iter(|| {
            setr.rank_of(
                &item.query,
                target,
                target_score,
                None,
                RankMode::StopAtScore,
            )
            .unwrap()
        })
    });
    group.bench_function("setr_rank_of_until_found", |b| {
        b.iter(|| {
            setr.rank_of(
                &item.query,
                target,
                target_score,
                None,
                RankMode::UntilFound,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn dominance_bounds(c: &mut Criterion) {
    // A realistic upper-level node: 10k objects, 2k distinct terms.
    let data = generate(&DatasetSpec::tiny(3).with_objects(10_000));
    let mut kcm = KeywordCountMap::new();
    for o in data.dataset.objects() {
        kcm.add_doc(&o.doc);
    }
    let summary = wnsk_index::NodeSummary {
        mbr: wnsk_geo::Rect::new(
            wnsk_geo::Point::new(0.0, 0.0),
            wnsk_geo::Point::new(1.0, 1.0),
        ),
        cnt: 10_000,
        kcm,
    };
    let s = KeywordSet::from_ids([0, 3, 17]);

    let mut group = c.benchmark_group("dominance");
    group.bench_function("prepare_node", |b| b.iter(|| PreparedNode::new(&summary)));
    let prep = PreparedNode::new(&summary);
    for tau in [0.1, 0.5, 0.9] {
        group.bench_with_input(
            BenchmarkId::new("max_dom", tau.to_string()),
            &tau,
            |b, &tau| b.iter(|| max_dom(&prep, &s, tau, wnsk_text::TextModel::Jaccard)),
        );
        group.bench_with_input(
            BenchmarkId::new("min_dom", tau.to_string()),
            &tau,
            |b, &tau| b.iter(|| min_dom(&prep, &s, tau, wnsk_text::TextModel::Jaccard)),
        );
    }
    group.finish();
}

fn storage(c: &mut Criterion) {
    let backend = Arc::new(MemBackend::new());
    for _ in 0..2048 {
        backend.allocate_page().unwrap();
    }
    use wnsk_storage::StorageBackend;
    let data = vec![0xA5u8; PAGE_SIZE];
    for i in 0..2048u64 {
        backend.write_page(PageId(i), &data).unwrap();
    }
    let pool = Arc::new(BufferPool::new(backend, BufferPoolConfig::default()));

    let mut group = c.benchmark_group("storage");
    group.bench_function("pool_read_hit", |b| {
        pool.read(PageId(1)).unwrap();
        b.iter(|| pool.read(PageId(1)).unwrap())
    });
    group.bench_function("pool_read_scan_evicting", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 2048;
            pool.read(PageId(i)).unwrap()
        })
    });
    group.finish();
}

fn text_algebra(c: &mut Criterion) {
    let a = KeywordSet::from_terms((0..200).map(|i| TermId(i * 3)));
    let b_set = KeywordSet::from_terms((0..200).map(|i| TermId(i * 5)));
    let mut group = c.benchmark_group("text");
    group.bench_function("jaccard_200x200", |bch| b_iter_jaccard(bch, &a, &b_set));
    group.bench_function("union_200x200", |bch| {
        bch.iter(|| a.union(&b_set));
    });
    group.bench_function("edit_distance", |bch| {
        bch.iter(|| a.edit_distance(&b_set));
    });
    group.finish();
}

fn b_iter_jaccard(bch: &mut criterion::Bencher, a: &KeywordSet, b: &KeywordSet) {
    bch.iter(|| jaccard(a, b));
}

criterion_group!(
    substrate,
    tree_build,
    search,
    dominance_bounds,
    storage,
    text_algebra
);
criterion_main!(substrate);
