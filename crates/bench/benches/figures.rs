//! Criterion counterparts of the paper's figures: one benchmark group per
//! evaluated axis, at a reduced scale so `cargo bench` completes in
//! minutes. The `xp` binary runs the same sweeps at configurable scale
//! with I/O accounting; these benches give statistically robust timing
//! for the per-figure winners.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wnsk_bench::{Algo, TestBed};
use wnsk_core::{AdvancedOptions, KcrOptions};
use wnsk_data::workload::WorkloadSpec;
use wnsk_data::DatasetSpec;

const SCALE: f64 = 0.005; // ~800 objects EURO-like: keeps BS feasible.

fn default_workload(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        n_keywords: 4,
        k: 10,
        alpha: 0.5,
        missing_rank: 51,
        n_missing: 1,
        seed,
    }
}

fn bench_trio(
    c: &mut Criterion,
    group_name: &str,
    bed: &TestBed,
    wspec: &WorkloadSpec,
    param: &str,
) {
    let questions = bed.questions(wspec, 1, 0.5);
    if questions.is_empty() {
        eprintln!("{group_name}/{param}: workload generation failed, skipping");
        return;
    }
    let q = &questions[0];
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for algo in Algo::paper_trio() {
        group.bench_with_input(BenchmarkId::new(algo.name(), param), q, |b, q| {
            b.iter(|| {
                bed.clear_caches();
                algo.run(bed, q).expect("algorithm must succeed")
            })
        });
    }
    group.finish();
}

/// Fig. 4 — varying k0.
fn fig4(c: &mut Criterion) {
    let bed = TestBed::new(&DatasetSpec::euro_like(SCALE));
    for k0 in [3usize, 10, 30] {
        let wspec = WorkloadSpec {
            k: k0,
            missing_rank: 5 * k0 + 1,
            ..default_workload(40_000 + k0 as u64)
        };
        bench_trio(c, "fig4_vary_k0", &bed, &wspec, &k0.to_string());
    }
}

/// Fig. 5 — varying the number of query keywords.
fn fig5(c: &mut Criterion) {
    let bed = TestBed::new(&DatasetSpec::euro_like(SCALE));
    for kw in [2usize, 4, 6] {
        let wspec = WorkloadSpec {
            n_keywords: kw,
            ..default_workload(50_000 + kw as u64)
        };
        bench_trio(c, "fig5_vary_keywords", &bed, &wspec, &kw.to_string());
    }
}

/// Fig. 6 — varying alpha.
fn fig6(c: &mut Criterion) {
    let bed = TestBed::new(&DatasetSpec::euro_like(SCALE));
    for alpha in [0.1, 0.5, 0.9] {
        let wspec = WorkloadSpec {
            alpha,
            ..default_workload(60_000)
        };
        bench_trio(c, "fig6_vary_alpha", &bed, &wspec, &alpha.to_string());
    }
}

/// Fig. 7 — varying lambda.
fn fig7(c: &mut Criterion) {
    let bed = TestBed::new(&DatasetSpec::euro_like(SCALE));
    let wspec = default_workload(70_000);
    let questions_base = bed.questions(&wspec, 1, 0.5);
    if questions_base.is_empty() {
        return;
    }
    for lambda in [0.1, 0.5, 0.9] {
        let questions = bed.questions(&wspec, 1, lambda);
        let q = &questions[0];
        let mut group = c.benchmark_group("fig7_vary_lambda");
        group.sample_size(10);
        for algo in [
            Algo::Advanced(AdvancedOptions::default()),
            Algo::Kcr(KcrOptions::default()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), lambda.to_string()),
                q,
                |b, q| {
                    b.iter(|| {
                        bed.clear_caches();
                        algo.run(&bed, q).expect("algorithm must succeed")
                    })
                },
            );
        }
        group.finish();
    }
}

/// Fig. 8 — varying the missing object's initial rank.
fn fig8(c: &mut Criterion) {
    let bed = TestBed::new(&DatasetSpec::euro_like(SCALE));
    for rank in [31usize, 51, 101] {
        let wspec = WorkloadSpec {
            missing_rank: rank,
            ..default_workload(80_000 + rank as u64)
        };
        bench_trio(c, "fig8_vary_rank", &bed, &wspec, &rank.to_string());
    }
}

/// Fig. 9 — varying the number of missing objects.
fn fig9(c: &mut Criterion) {
    let bed = TestBed::new(&DatasetSpec::euro_like(SCALE));
    for n_missing in [1usize, 2, 3] {
        let wspec = WorkloadSpec {
            n_missing,
            ..default_workload(90_000 + n_missing as u64)
        };
        bench_trio(c, "fig9_vary_missing", &bed, &wspec, &n_missing.to_string());
    }
}

/// Fig. 10 — thread scaling of the two optimised algorithms.
fn fig10(c: &mut Criterion) {
    let bed = TestBed::new(&DatasetSpec::euro_like(SCALE));
    let wspec = default_workload(100_000);
    let questions = bed.questions(&wspec, 1, 0.5);
    if questions.is_empty() {
        return;
    }
    let q = &questions[0];
    let mut group = c.benchmark_group("fig10_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let adv = Algo::Advanced(AdvancedOptions {
            threads,
            ..AdvancedOptions::default()
        });
        let kcr = Algo::Kcr(KcrOptions {
            threads,
            ..KcrOptions::default()
        });
        for algo in [adv, kcr] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), threads.to_string()),
                q,
                |b, q| {
                    b.iter(|| {
                        bed.clear_caches();
                        algo.run(&bed, q).expect("algorithm must succeed")
                    })
                },
            );
        }
    }
    group.finish();
}

/// Fig. 11 — ablation of the optimisations.
fn fig11(c: &mut Criterion) {
    let bed = TestBed::new(&DatasetSpec::euro_like(SCALE));
    let wspec = default_workload(110_000);
    let questions = bed.questions(&wspec, 1, 0.5);
    if questions.is_empty() {
        return;
    }
    let q = &questions[0];
    let mut group = c.benchmark_group("fig11_opts");
    group.sample_size(10);
    let configs = [
        ("BS", AdvancedOptions::none()),
        (
            "Opt1",
            AdvancedOptions {
                early_stop: true,
                ..AdvancedOptions::none()
            },
        ),
        (
            "Opt1+2",
            AdvancedOptions {
                early_stop: true,
                ordered_enumeration: true,
                ..AdvancedOptions::none()
            },
        ),
        ("all", AdvancedOptions::default()),
    ];
    for (name, opts) in configs {
        group.bench_with_input(BenchmarkId::new("variant", name), q, |b, q| {
            let algo = Algo::Advanced(opts);
            b.iter(|| {
                bed.clear_caches();
                algo.run(&bed, q).expect("algorithm must succeed")
            })
        });
    }
    group.finish();
}

/// Fig. 12 — approximate algorithm: sample-size sweep.
fn fig12(c: &mut Criterion) {
    let bed = TestBed::new(&DatasetSpec::euro_like(SCALE));
    let wspec = WorkloadSpec {
        n_keywords: 6,
        ..default_workload(120_000)
    };
    let questions = bed.questions(&wspec, 1, 0.5);
    if questions.is_empty() {
        return;
    }
    let q = &questions[0];
    let mut group = c.benchmark_group("fig12_approx");
    group.sample_size(10);
    for t in [100usize, 400] {
        let algo = Algo::ApproxKcr(KcrOptions::default(), t);
        group.bench_with_input(BenchmarkId::new("KcRBased~T", t.to_string()), q, |b, q| {
            b.iter(|| {
                bed.clear_caches();
                algo.run(&bed, q).expect("algorithm must succeed")
            })
        });
    }
    let exact = Algo::Kcr(KcrOptions::default());
    group.bench_with_input(BenchmarkId::new("KcRBased~T", "exact"), q, |b, q| {
        b.iter(|| {
            bed.clear_caches();
            exact.run(&bed, q).expect("algorithm must succeed")
        })
    });
    group.finish();
}

/// Fig. 13 — dataset-size scalability (GN-like).
fn fig13(c: &mut Criterion) {
    for n in [5_000usize, 10_000, 20_000] {
        let spec = DatasetSpec::gn_like(0.02).with_objects(n);
        let bed = TestBed::new(&spec);
        let wspec = default_workload(130_000 + n as u64);
        let questions = bed.questions(&wspec, 1, 0.5);
        if questions.is_empty() {
            continue;
        }
        let q = &questions[0];
        let mut group = c.benchmark_group("fig13_scalability");
        group.sample_size(10);
        for algo in [
            Algo::Advanced(AdvancedOptions::default()),
            Algo::Kcr(KcrOptions::default()),
        ] {
            group.bench_with_input(BenchmarkId::new(algo.name(), n.to_string()), q, |b, q| {
                b.iter(|| {
                    bed.clear_caches();
                    algo.run(&bed, q).expect("algorithm must succeed")
                })
            });
        }
        group.finish();
    }
}

criterion_group!(figures, fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13);
criterion_main!(figures);
