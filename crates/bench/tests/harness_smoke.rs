//! Smoke tests: every experiment driver runs end-to-end on a miniature
//! configuration and produces well-formed tables.

use wnsk_bench::{experiments, measure_with_report, Algo, TestBed, XpConfig};
use wnsk_core::{AdvancedOptions, KcrOptions};
use wnsk_data::workload::WorkloadSpec;
use wnsk_data::DatasetSpec;
use wnsk_text::Kernel;

fn tiny_cfg() -> XpConfig {
    XpConfig {
        scale: 0.002, // ~320 objects EURO-like (generator floor is 100)
        queries: 1,
        max_threads: 2,
        io_latency_us: 0, // keep smoke tests CPU-bound and fast
        trace_sample: 16,
        out_dir: None,
    }
}

#[test]
fn fig6_and_fig11_produce_tables() {
    let cfg = tiny_cfg();
    for name in ["fig6", "fig11"] {
        let tables = experiments::run(name, &cfg).expect("known experiment");
        assert_eq!(tables.len(), 1, "{name}");
        let t = &tables[0];
        assert!(!t.rows.is_empty(), "{name} produced no rows");
        for (_, ms) in &t.rows {
            assert_eq!(ms.len(), t.series.len());
            for m in ms {
                assert!(m.time_ms >= 0.0);
            }
        }
        // Render and CSV don't panic and carry the series.
        let rendered = t.render();
        for s in &t.series {
            assert!(rendered.contains(s.as_str()), "{name}: missing series {s}");
        }
        assert!(t.to_csv().lines().count() > 1);
    }
}

#[test]
fn ext_channels_table() {
    let tables = experiments::run("ext", &tiny_cfg()).expect("known experiment");
    assert_eq!(tables.len(), 1);
    let t = &tables[0];
    assert_eq!(t.series, vec!["keywords", "alpha", "location"]);
    assert!(t.show_penalty);
    for (_, ms) in &t.rows {
        for m in ms {
            assert!((0.0..=1.0).contains(&m.penalty));
        }
    }
}

/// The gate's kernel A/B contract, checked end-to-end at smoke scale:
/// the scalar and bitset kernels must agree *bit for bit* on penalty
/// and on every gated work metric — only wall time may differ. A
/// violation here means a kernel changed what is computed, not just
/// how fast (docs/KERNELS.md documents the invariant).
#[test]
fn kernel_ab_work_metrics_are_bit_identical() {
    let cfg = tiny_cfg();
    let bed = TestBed::with_fanout_and_io_latency(
        &DatasetSpec::euro_like(cfg.scale),
        wnsk_bench::runner::FANOUT,
        cfg.io_latency(),
    );
    let spec = WorkloadSpec {
        n_keywords: 4,
        k: 10,
        alpha: 0.5,
        missing_rank: 51,
        n_missing: 1,
        seed: 42_000,
    };
    let qs = bed.questions(&spec, 2, 0.5);
    assert!(!qs.is_empty(), "smoke workload generated no questions");

    for threads in [1usize, 2] {
        let pairs = [
            (
                Algo::Advanced(AdvancedOptions {
                    threads,
                    kernel: Kernel::Scalar,
                    ..AdvancedOptions::default()
                }),
                Algo::Advanced(AdvancedOptions {
                    threads,
                    kernel: Kernel::Bitset,
                    ..AdvancedOptions::default()
                }),
            ),
            (
                Algo::Kcr(KcrOptions {
                    threads,
                    kernel: Kernel::Scalar,
                    ..KcrOptions::default()
                }),
                Algo::Kcr(KcrOptions {
                    threads,
                    kernel: Kernel::Bitset,
                    ..KcrOptions::default()
                }),
            ),
        ];
        for (scalar, bitset) in pairs {
            let (ms, rs) = measure_with_report(&bed, &scalar, &qs);
            let (mb, rb) = measure_with_report(&bed, &bitset, &qs);
            let name = bitset.name();
            // The penalty is schedule-invariant (the executor's
            // determinism contract), so it must match bit for bit at
            // every thread count.
            assert_eq!(
                ms.penalty.to_bits(),
                mb.penalty.to_bits(),
                "{name} t={threads}: penalty differs between kernels"
            );
            // Work metrics are exactly deterministic only for serial
            // runs; parallel runs carry steal-schedule noise that has
            // nothing to do with the kernel (the gate gives such rows
            // extra slack for the same reason).
            if threads == 1 {
                assert_eq!(
                    ms.io, mb.io,
                    "{name} t={threads}: physical I/O differs between kernels"
                );
                for counter in ["core.candidates", "core.queries_run", "core.nodes_expanded"] {
                    assert_eq!(
                        rs.counter(counter),
                        rb.counter(counter),
                        "{name} t={threads}: {counter} differs between kernels"
                    );
                }
            }
        }
    }
}

#[test]
fn unknown_experiment_is_none() {
    assert!(experiments::run("fig99", &tiny_cfg()).is_none());
    assert!(experiments::EXPERIMENTS.contains(&"all"));
}
