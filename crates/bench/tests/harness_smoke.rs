//! Smoke tests: every experiment driver runs end-to-end on a miniature
//! configuration and produces well-formed tables.

use wnsk_bench::{experiments, XpConfig};

fn tiny_cfg() -> XpConfig {
    XpConfig {
        scale: 0.002, // ~320 objects EURO-like (generator floor is 100)
        queries: 1,
        max_threads: 2,
        io_latency_us: 0, // keep smoke tests CPU-bound and fast
        trace_sample: 16,
        out_dir: None,
    }
}

#[test]
fn fig6_and_fig11_produce_tables() {
    let cfg = tiny_cfg();
    for name in ["fig6", "fig11"] {
        let tables = experiments::run(name, &cfg).expect("known experiment");
        assert_eq!(tables.len(), 1, "{name}");
        let t = &tables[0];
        assert!(!t.rows.is_empty(), "{name} produced no rows");
        for (_, ms) in &t.rows {
            assert_eq!(ms.len(), t.series.len());
            for m in ms {
                assert!(m.time_ms >= 0.0);
            }
        }
        // Render and CSV don't panic and carry the series.
        let rendered = t.render();
        for s in &t.series {
            assert!(rendered.contains(s.as_str()), "{name}: missing series {s}");
        }
        assert!(t.to_csv().lines().count() > 1);
    }
}

#[test]
fn ext_channels_table() {
    let tables = experiments::run("ext", &tiny_cfg()).expect("known experiment");
    assert_eq!(tables.len(), 1);
    let t = &tables[0];
    assert_eq!(t.series, vec!["keywords", "alpha", "location"]);
    assert!(t.show_penalty);
    for (_, ms) in &t.rows {
        for m in ms {
            assert!((0.0..=1.0).contains(&m.penalty));
        }
    }
}

#[test]
fn unknown_experiment_is_none() {
    assert!(experiments::run("fig99", &tiny_cfg()).is_none());
    assert!(experiments::EXPERIMENTS.contains(&"all"));
}
