//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use wnsk_geo::{Point, Rect, WorldBounds};

fn arb_point() -> impl Strategy<Value = Point> {
    (-100.0..100.0f64, -100.0..100.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::new(a, b))
}

proptest! {
    #[test]
    fn union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn union_is_commutative(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn union_area_at_least_max(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.area() >= a.area().max(b.area()) - 1e-9);
    }

    #[test]
    fn min_dist_bounds_distance_to_contained_points(r in arb_rect(), p in arb_point(), t in 0.0..1.0f64, s in 0.0..1.0f64) {
        // Any point inside the rectangle is at distance in
        // [min_dist, max_dist] from p.
        let inside = Point::new(
            r.min.x + t * (r.max.x - r.min.x),
            r.min.y + s * (r.max.y - r.min.y),
        );
        let d = p.dist(&inside);
        prop_assert!(r.min_dist(&p) <= d + 1e-9);
        prop_assert!(r.max_dist(&p) >= d - 1e-9);
    }

    #[test]
    fn min_dist_zero_iff_contained(r in arb_rect(), p in arb_point()) {
        if r.contains_point(&p) {
            prop_assert_eq!(r.min_dist(&p), 0.0);
        } else {
            prop_assert!(r.min_dist(&p) > 0.0);
        }
    }

    #[test]
    fn contains_implies_intersects(a in arb_rect(), b in arb_rect()) {
        if a.contains_rect(&b) && !b.is_empty() {
            prop_assert!(a.intersects(&b));
        }
    }

    #[test]
    fn intersects_is_symmetric(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn normalized_dist_within_world_is_unit_bounded(
        ax in 0.0..1.0f64, ay in 0.0..1.0f64, bx in 0.0..1.0f64, by in 0.0..1.0f64
    ) {
        let w = WorldBounds::unit();
        let d = w.normalized_dist(&Point::new(ax, ay), &Point::new(bx, by));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d));
    }

    #[test]
    fn dist_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.dist(&c) <= a.dist(&b) + b.dist(&c) + 1e-9);
    }

    #[test]
    fn enlargement_nonnegative(a in arb_rect(), b in arb_rect()) {
        prop_assert!(a.enlargement(&b) >= -1e-9);
    }
}
