use crate::Point;
use std::fmt;

/// An axis-aligned rectangle (MBR) defined by its lower-left and upper-right
/// corners.
///
/// Degenerate rectangles (points, segments) are allowed — every object MBR
/// in the indexes is a point rectangle. An *empty* rectangle (for folding
/// unions) is represented by [`Rect::EMPTY`], whose min exceeds its max.
#[derive(Clone, Copy, PartialEq)]
pub struct Rect {
    pub min: Point,
    pub max: Point,
}

impl Rect {
    /// The empty rectangle: the identity element of [`Rect::union`].
    pub const EMPTY: Rect = Rect {
        min: Point::new(f64::INFINITY, f64::INFINITY),
        max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
    };

    /// Creates a rectangle from two corner points, normalising the corner
    /// order so that `min` is component-wise below `max`.
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: a.min(&b),
            max: a.max(&b),
        }
    }

    /// The degenerate rectangle covering a single point.
    #[inline]
    pub const fn point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// `true` if this is the empty rectangle.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Width (x extent); zero for point rectangles.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height (y extent); zero for point rectangles.
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Area of the rectangle; zero for degenerate rectangles.
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Half-perimeter, the classic R-tree "margin" measure.
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() + self.height()
        }
    }

    /// Center point. Meaningless for the empty rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) * 0.5,
            (self.min.y + self.max.y) * 0.5,
        )
    }

    /// Smallest rectangle enclosing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: self.min.min(&other.min),
            max: self.max.max(&other.max),
        }
    }

    /// Increase in area caused by enlarging `self` to cover `other`.
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// `true` if the point lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// `true` if `other` lies entirely inside or on the boundary of `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (other.min.x >= self.min.x
                && other.min.y >= self.min.y
                && other.max.x <= self.max.x
                && other.max.y <= self.max.y)
    }

    /// `true` if the rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        !(self.is_empty()
            || other.is_empty()
            || self.min.x > other.max.x
            || other.min.x > self.max.x
            || self.min.y > other.max.y
            || other.min.y > self.max.y)
    }

    /// `MinDist(p, R)`: the minimum Euclidean distance from `p` to any point
    /// of the rectangle; zero when `p` is inside.
    ///
    /// This is the bound used by Theorem 1 (SetR-tree score bound) and
    /// Theorem 2 (KcR-tree dominance condition).
    #[inline]
    pub fn min_dist(&self, p: &Point) -> f64 {
        self.min_dist_sq(p).sqrt()
    }

    /// Squared version of [`Rect::min_dist`].
    #[inline]
    pub fn min_dist_sq(&self, p: &Point) -> f64 {
        let dx = if p.x < self.min.x {
            self.min.x - p.x
        } else if p.x > self.max.x {
            p.x - self.max.x
        } else {
            0.0
        };
        let dy = if p.y < self.min.y {
            self.min.y - p.y
        } else if p.y > self.max.y {
            p.y - self.max.y
        } else {
            0.0
        };
        dx * dx + dy * dy
    }

    /// `MaxDist(p, R)`: the maximum Euclidean distance from `p` to any point
    /// of the rectangle (always attained at a corner).
    ///
    /// Used by the `MinDom` bound: an object anywhere in the node is at most
    /// this far from the query.
    #[inline]
    pub fn max_dist(&self, p: &Point) -> f64 {
        self.max_dist_sq(p).sqrt()
    }

    /// Squared version of [`Rect::max_dist`].
    #[inline]
    pub fn max_dist_sq(&self, p: &Point) -> f64 {
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        dx * dx + dy * dy
    }
}

impl Default for Rect {
    fn default() -> Self {
        Rect::EMPTY
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "Rect(EMPTY)")
        } else {
            write!(f, "Rect[{:?} .. {:?}]", self.min, self.max)
        }
    }
}

impl From<Point> for Rect {
    fn from(p: Point) -> Self {
        Rect::point(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn new_normalizes_corners() {
        let a = Rect::new(Point::new(2.0, 3.0), Point::new(0.0, 1.0));
        assert_eq!(a.min, Point::new(0.0, 1.0));
        assert_eq!(a.max, Point::new(2.0, 3.0));
    }

    #[test]
    fn empty_properties() {
        assert!(Rect::EMPTY.is_empty());
        assert_eq!(Rect::EMPTY.area(), 0.0);
        assert_eq!(Rect::EMPTY.margin(), 0.0);
        assert!(!Rect::EMPTY.intersects(&r(0.0, 0.0, 1.0, 1.0)));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = r(0.0, 0.0, 1.0, 2.0);
        assert_eq!(Rect::EMPTY.union(&a), a);
        assert_eq!(a.union(&Rect::EMPTY), a);
    }

    #[test]
    fn union_covers_both() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, r(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn area_margin_of_box() {
        let a = r(1.0, 1.0, 4.0, 3.0);
        assert_eq!(a.area(), 6.0);
        assert_eq!(a.margin(), 5.0);
        assert_eq!(a.center(), Point::new(2.5, 2.0));
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let b = r(1.0, 1.0, 2.0, 2.0);
        assert_eq!(a.enlargement(&b), 0.0);
        assert!(b.enlargement(&a) > 0.0);
    }

    #[test]
    fn containment() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        assert!(a.contains_point(&Point::new(0.0, 0.0)));
        assert!(a.contains_point(&Point::new(4.0, 4.0)));
        assert!(!a.contains_point(&Point::new(4.0001, 4.0)));
        assert!(a.contains_rect(&r(1.0, 1.0, 2.0, 2.0)));
        assert!(!a.contains_rect(&r(1.0, 1.0, 5.0, 2.0)));
        assert!(a.contains_rect(&Rect::EMPTY));
    }

    #[test]
    fn intersection_tests() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert!(a.intersects(&r(1.0, 1.0, 3.0, 3.0)));
        assert!(a.intersects(&r(2.0, 2.0, 3.0, 3.0))); // touching corner
        assert!(!a.intersects(&r(2.1, 2.1, 3.0, 3.0)));
    }

    #[test]
    fn min_dist_inside_is_zero() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.min_dist(&Point::new(1.0, 1.0)), 0.0);
        assert_eq!(a.min_dist(&Point::new(2.0, 2.0)), 0.0);
    }

    #[test]
    fn min_dist_outside() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        // directly right of the box
        assert_eq!(a.min_dist(&Point::new(5.0, 1.0)), 3.0);
        // diagonal from corner (3,4) away from (2,2)
        assert_eq!(a.min_dist(&Point::new(5.0, 6.0)), 5.0);
    }

    #[test]
    fn max_dist_from_inside_and_outside() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        // from the center, the farthest corner is sqrt(2)
        assert!((a.max_dist(&Point::new(1.0, 1.0)) - 2f64.sqrt()).abs() < 1e-12);
        // from (5,6) the farthest corner is (0,0): dist = sqrt(61)
        assert!((a.max_dist(&Point::new(5.0, 6.0)) - 61f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn max_dist_dominates_min_dist() {
        let a = r(-1.0, 0.5, 3.0, 4.0);
        for p in [
            Point::new(0.0, 0.0),
            Point::new(10.0, -3.0),
            Point::new(1.0, 2.0),
        ] {
            assert!(a.max_dist(&p) >= a.min_dist(&p));
        }
    }

    #[test]
    fn point_rect_distances_match_point_distance() {
        let p = Point::new(0.3, 0.7);
        let q = Point::new(-1.0, 2.0);
        let pr = Rect::point(p);
        assert!((pr.min_dist(&q) - p.dist(&q)).abs() < 1e-12);
        assert!((pr.max_dist(&q) - p.dist(&q)).abs() < 1e-12);
    }
}
