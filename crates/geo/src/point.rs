use std::fmt;

/// A point in the plane.
///
/// Coordinates are plain `f64`; datasets produced by `wnsk-data` live in the
/// unit square but nothing in this crate assumes that.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this for comparisons: it avoids the square root.
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// `true` if both coordinates are finite (not NaN / infinity).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-0.5, 7.25);
        assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn dist_to_self_is_zero() {
        let a = Point::new(0.25, 0.75);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn min_max_componentwise() {
        let a = Point::new(1.0, 4.0);
        let b = Point::new(2.0, 3.0);
        assert_eq!(a.min(&b), Point::new(1.0, 3.0));
        assert_eq!(a.max(&b), Point::new(2.0, 4.0));
    }

    #[test]
    fn finite_detection() {
        assert!(Point::new(0.0, 0.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn from_tuple() {
        let p: Point = (0.5, 0.25).into();
        assert_eq!(p, Point::new(0.5, 0.25));
    }
}
