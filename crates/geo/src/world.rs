use crate::{Point, Rect};

/// The spatial extent of a dataset, used to normalise distances.
///
/// The ranking function (Eqn. 1 of the paper) consumes `SDist(o, q)`, the
/// Euclidean distance *normalised by the maximum possible distance between
/// two points in the dataset* — the diagonal of the world bounds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorldBounds {
    rect: Rect,
    /// Cached diagonal length (the normaliser). Always > 0.
    diagonal: f64,
}

impl WorldBounds {
    /// Builds world bounds from a bounding rectangle.
    ///
    /// A degenerate rectangle (all objects at one point) gets a diagonal of
    /// 1.0 so that normalised distances are still well defined (all zero).
    pub fn new(rect: Rect) -> Self {
        assert!(
            !rect.is_empty(),
            "world bounds must enclose at least one point"
        );
        let diag = rect.min.dist(&rect.max);
        WorldBounds {
            rect,
            diagonal: if diag > 0.0 { diag } else { 1.0 },
        }
    }

    /// The unit square `[0,1]²` — the world used by the synthetic datasets.
    pub fn unit() -> Self {
        WorldBounds::new(Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)))
    }

    /// Computes bounds from an iterator of points.
    ///
    /// Returns `None` when the iterator is empty.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut rect = Rect::EMPTY;
        let mut any = false;
        for p in points {
            rect = rect.union(&Rect::point(p));
            any = true;
        }
        any.then(|| WorldBounds::new(rect))
    }

    /// The enclosing rectangle.
    #[inline]
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// The normaliser: the maximum possible distance between two points.
    #[inline]
    pub fn diagonal(&self) -> f64 {
        self.diagonal
    }

    /// `SDist`: Euclidean distance between `a` and `b`, normalised into
    /// `[0, 1]` by the world diagonal.
    #[inline]
    pub fn normalized_dist(&self, a: &Point, b: &Point) -> f64 {
        a.dist(b) / self.diagonal
    }

    /// Normalised `MinDist` between a point and a rectangle.
    #[inline]
    pub fn normalized_min_dist(&self, p: &Point, r: &Rect) -> f64 {
        r.min_dist(p) / self.diagonal
    }

    /// Normalised `MaxDist` between a point and a rectangle.
    #[inline]
    pub fn normalized_max_dist(&self, p: &Point, r: &Rect) -> f64 {
        r.max_dist(p) / self.diagonal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_world_diagonal() {
        let w = WorldBounds::unit();
        assert!((w.diagonal() - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn normalized_dist_bounded_by_one_inside_world() {
        let w = WorldBounds::unit();
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 1.0);
        assert!((w.normalized_dist(&a, &b) - 1.0).abs() < 1e-12);
        assert!(w.normalized_dist(&a, &Point::new(0.5, 0.5)) < 1.0);
    }

    #[test]
    fn from_points_computes_extent() {
        let pts = [
            Point::new(1.0, 2.0),
            Point::new(-1.0, 0.0),
            Point::new(0.5, 5.0),
        ];
        let w = WorldBounds::from_points(pts).unwrap();
        assert_eq!(
            w.rect(),
            Rect::new(Point::new(-1.0, 0.0), Point::new(1.0, 5.0))
        );
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(WorldBounds::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn degenerate_world_is_safe() {
        let w = WorldBounds::from_points([Point::new(3.0, 3.0)]).unwrap();
        assert_eq!(w.diagonal(), 1.0);
        assert_eq!(
            w.normalized_dist(&Point::new(3.0, 3.0), &Point::new(3.0, 3.0)),
            0.0
        );
    }

    #[test]
    fn normalized_min_max_dist_order() {
        let w = WorldBounds::unit();
        let r = Rect::new(Point::new(0.2, 0.2), Point::new(0.4, 0.4));
        let p = Point::new(0.9, 0.9);
        assert!(w.normalized_min_dist(&p, &r) <= w.normalized_max_dist(&p, &r));
    }
}
