//! Spatial primitives for the why-not spatial keyword library.
//!
//! This crate provides the planar geometry substrate used by the
//! disk-resident indexes and the query algorithms:
//!
//! * [`Point`] — a 2-D location,
//! * [`Rect`] — an axis-aligned minimum bounding rectangle (MBR) with the
//!   `MinDist` / `MaxDist` metrics required by Theorems 1 and 2 of the
//!   paper,
//! * [`WorldBounds`] — the extent of a dataset, used to normalise Euclidean
//!   distances into `[0, 1]` as required by the ranking function (Eqn. 1).
//!
//! All geometry is in `f64`. The paper's ranking function only ever
//! consumes *normalised* distances, so [`WorldBounds::normalized_dist`] is
//! the main entry point for callers.

mod point;
mod rect;
mod world;

pub use point::Point;
pub use rect::Rect;
pub use world::WorldBounds;

/// Tolerance used when comparing floating-point geometry in tests and
/// assertions. Geometry math here is simple enough that errors stay well
/// below this bound.
pub const GEO_EPS: f64 = 1e-9;
