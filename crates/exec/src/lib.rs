//! `wnsk-exec` — the work-stealing parallel execution layer behind the
//! why-not solvers' `threads` knob (§IV-C4, Fig. 10).
//!
//! The layer is deliberately small and solver-agnostic:
//!
//! * [`Executor`] owns a pool of scoped worker threads fed through
//!   per-worker FIFO deques (`crossbeam::deque`). Tasks are dealt
//!   round-robin so a benefit-ordered candidate list stays roughly
//!   ordered per worker; an idle worker steals from its peers, keeping
//!   all cores busy when task costs are skewed (a single expensive
//!   rank scan or subtree expansion no longer stalls the layer).
//! * [`SharedBound`] is the cross-worker best-penalty bound `p_c`: a
//!   lock-free CAS-min over the `f64` bit pattern. Workers prune
//!   against each other's discoveries without a lock on the hot path.
//! * [`ExecMetrics`] holds per-worker counters — tasks executed, tasks
//!   stolen, shared-bound refreshes, prune hits attributable to the
//!   shared bound — that the solvers fold into their `AlgoStats` and
//!   the `wnsk-obs` registry (`exec.*` names).
//!
//! Determinism contract: the executor never decides *what* the answer
//! is, only *who* computes each task. Solvers keep per-worker local
//! bests and merge them at a sequence barrier (the end of
//! [`Executor::run`], which joins every worker and returns the worker
//! states in worker-index order), comparing candidates by a total
//! lexicographic key — so the final answer is bit-identical for every
//! thread count and steal schedule.

use crossbeam::deque::{Steal, Stealer, Worker};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use wnsk_obs::trace::worker_scope;
use wnsk_obs::{names, Hist, RollingWindow, TracePayload, Tracer};

/// The shared best-penalty bound `p_c`, maintained as a CAS-min over the
/// `f64` bit pattern so readers and writers never lock.
///
/// Penalties are non-negative finite reals (Eqn. 4), for which the IEEE
/// bit pattern is order-isomorphic to the value — `fetch_min` on the raw
/// bits is exactly min on the penalty.
pub struct SharedBound {
    bits: AtomicU64,
    /// Number of calls that actually lowered the bound. The sharded
    /// coordinator exposes this as `shard.bound_tightenings` — proof the
    /// cross-shard bound is live, not a vestigial constant.
    tightenings: AtomicU64,
}

impl SharedBound {
    /// Creates the bound at `initial` (the baseline penalty λ).
    pub fn new(initial: f64) -> Self {
        debug_assert!(initial >= 0.0, "penalties are non-negative");
        SharedBound {
            bits: AtomicU64::new(initial.to_bits()),
            tightenings: AtomicU64::new(0),
        }
    }

    /// The current bound (lock-free read).
    #[inline]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    /// Lowers the bound to `penalty` if it is an improvement. Returns
    /// `true` when this call actually lowered the bound.
    #[inline]
    pub fn refresh(&self, penalty: f64) -> bool {
        debug_assert!(penalty >= 0.0, "penalties are non-negative");
        let improved = self.bits.fetch_min(penalty.to_bits(), Ordering::AcqRel) > penalty.to_bits();
        if improved {
            self.tightenings.fetch_add(1, Ordering::Relaxed);
        }
        improved
    }

    /// How many [`SharedBound::refresh`] calls lowered the bound so far.
    #[inline]
    pub fn tightened(&self) -> u64 {
        self.tightenings.load(Ordering::Relaxed)
    }
}

/// Lock-free counters of one worker.
#[derive(Default)]
pub struct WorkerCounters {
    tasks: AtomicU64,
    stolen: AtomicU64,
    bound_refreshes: AtomicU64,
    prune_hits: AtomicU64,
}

/// A plain-data snapshot of one worker's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// Tasks this worker executed (own deque or stolen).
    pub tasks: u64,
    /// Tasks this worker stole from a peer's deque.
    pub stolen: u64,
    /// Times this worker lowered the shared penalty bound.
    pub bound_refreshes: u64,
    /// Prunes this worker performed against the shared bound.
    pub prune_hits: u64,
}

impl WorkerCounters {
    fn snapshot(&self) -> WorkerSnapshot {
        WorkerSnapshot {
            tasks: self.tasks.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
            bound_refreshes: self.bound_refreshes.load(Ordering::Relaxed),
            prune_hits: self.prune_hits.load(Ordering::Relaxed),
        }
    }
}

/// Per-worker executor metrics for one solver run. Construct with the
/// executor's thread count; totals and per-worker snapshots feed
/// `AlgoStats` / the `exec.*` observability names.
pub struct ExecMetrics {
    workers: Vec<WorkerCounters>,
    tracer: Tracer,
    task_hist: Option<Hist>,
    task_window: Option<Arc<RollingWindow>>,
}

impl ExecMetrics {
    /// Creates counters for `threads` workers (tracing off, no task
    /// histogram — the zero-overhead default).
    pub fn new(threads: usize) -> Self {
        ExecMetrics {
            workers: (0..threads.max(1))
                .map(|_| WorkerCounters::default())
                .collect(),
            tracer: Tracer::off(),
            task_hist: None,
            task_window: None,
        }
    }

    /// Attaches a tracer: workers route spans to their `(worker, seq)`
    /// buffers and steals emit `exec.tasks_stolen` events with the
    /// victim's index. Purely observational — task scheduling and
    /// results are unaffected.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The attached tracer ([`Tracer::off`] by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Attaches a latency histogram; every task's `step` duration is
    /// recorded into it (the registry's `exec.task_ns`).
    pub fn set_task_hist(&mut self, hist: Hist) {
        self.task_hist = Some(hist);
    }

    /// Attaches a rolling window; every task's `step` duration is also
    /// recorded there, so a live server's `/healthz` can report the
    /// recent-past task-latency percentiles next to the cumulative
    /// `exec.task_ns`. Observation-only, like the histogram: wall-clock
    /// samples never feed back into scheduling or results.
    pub fn set_task_window(&mut self, window: Arc<RollingWindow>) {
        self.task_window = Some(window);
    }

    /// Number of workers tracked.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Per-worker counter snapshots, in worker-index order.
    pub fn per_worker(&self) -> Vec<WorkerSnapshot> {
        self.workers.iter().map(WorkerCounters::snapshot).collect()
    }

    /// Counters summed over all workers.
    pub fn totals(&self) -> WorkerSnapshot {
        self.per_worker()
            .into_iter()
            .fold(WorkerSnapshot::default(), |a, w| WorkerSnapshot {
                tasks: a.tasks + w.tasks,
                stolen: a.stolen + w.stolen,
                bound_refreshes: a.bound_refreshes + w.bound_refreshes,
                prune_hits: a.prune_hits + w.prune_hits,
            })
    }

    fn counters(&self, i: usize) -> &WorkerCounters {
        &self.workers[i]
    }

    /// True when any per-task timing sink is attached.
    fn timing_wanted(&self) -> bool {
        self.task_hist.is_some() || self.task_window.is_some()
    }

    /// Records one task duration into every attached sink.
    fn record_task(&self, elapsed: std::time::Duration) {
        if let Some(h) = self.task_hist.as_ref() {
            h.record_duration(elapsed);
        }
        if let Some(w) = self.task_window.as_ref() {
            w.record_duration(elapsed);
        }
    }
}

/// Handed to every task invocation: identifies the executing worker and
/// lets the solver attribute bound refreshes / prune hits to it.
pub struct WorkerHandle<'a> {
    /// Index of the executing worker, `0..threads`.
    pub index: usize,
    counters: &'a WorkerCounters,
}

impl WorkerHandle<'_> {
    /// Records that this worker pruned work using the shared bound.
    #[inline]
    pub fn count_prune_hit(&self) {
        self.counters.prune_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records that this worker lowered the shared bound.
    #[inline]
    pub fn count_bound_refresh(&self) {
        self.counters
            .bound_refreshes
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// Where a spawned child task goes: the inline FIFO queue (sequential
/// mode) or the executing worker's own deque plus the pool-wide pending
/// counter (parallel mode).
enum Spawner<'a, T> {
    Inline(&'a RefCell<VecDeque<T>>),
    Pool {
        own: &'a Worker<T>,
        pending: &'a AtomicUsize,
    },
}

/// Handed to every [`Executor::run_dynamic`] task: the executing
/// worker's [`WorkerHandle`] plus the ability to spawn child tasks into
/// the pool (the "independent subtree expansion" mechanism — a rank
/// scan or frontier expansion forks per-subtree tasks that idle workers
/// steal).
pub struct TaskContext<'a, T> {
    /// Worker identity and counters.
    pub handle: WorkerHandle<'a>,
    spawner: Spawner<'a, T>,
}

impl<T> TaskContext<'_, T> {
    /// Enqueues `task` for execution by the pool. Spawned tasks land on
    /// the spawning worker's own deque (FIFO), so a lone worker executes
    /// them in spawn order and idle peers steal from the tail.
    pub fn spawn(&self, task: T) {
        match &self.spawner {
            Spawner::Inline(queue) => queue.borrow_mut().push_back(task),
            Spawner::Pool { own, pending } => {
                // Increment strictly before the push: the pending count
                // must never under-report outstanding work, or an idle
                // worker could observe 0 and exit while tasks exist.
                pending.fetch_add(1, Ordering::SeqCst);
                own.push(task);
            }
        }
    }
}

/// A work-stealing pool of scoped worker threads.
///
/// `threads <= 1` runs tasks inline on the calling thread in task order
/// (no pool, no synchronisation) — the sequential solvers pay nothing
/// for the shared code path.
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// Creates an executor with `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `tasks` to completion across the pool and returns the
    /// per-worker states in worker-index order (the sequence barrier:
    /// every worker has been joined when this returns, so the caller's
    /// merge over the states is deterministic).
    ///
    /// * `init(i)` builds worker `i`'s private state (dominator caches,
    ///   local bests, …).
    /// * `step(state, task, handle)` executes one task. The first `Err`
    ///   stops the pool cooperatively and is returned.
    /// * `cancel()` is polled before each task; when it returns `true`
    ///   every worker drains out (cooperative budget cancellation — the
    ///   states collected so far are still returned).
    pub fn run<T, S, E, C, I, F>(
        &self,
        tasks: Vec<T>,
        metrics: &ExecMetrics,
        cancel: C,
        init: I,
        step: F,
    ) -> Result<Vec<S>, E>
    where
        T: Send,
        S: Send,
        E: Send,
        C: Fn() -> bool + Sync,
        I: Fn(usize) -> S + Sync,
        F: Fn(&mut S, T, &WorkerHandle<'_>) -> Result<(), E> + Sync,
    {
        self.run_dynamic(tasks, metrics, cancel, init, |state, task, ctx| {
            step(state, task, &ctx.handle)
        })
    }

    /// [`Executor::run`] with dynamic task spawning: `step` receives a
    /// [`TaskContext`] through which it may push child tasks into the
    /// pool mid-flight. The pool terminates when every task — seeded or
    /// spawned — has completed (a shared pending counter reaches zero),
    /// so a single seed can fan out into an arbitrary task tree and
    /// idle workers steal the fringes.
    ///
    /// Termination discipline: the pending count is incremented before a
    /// spawned task becomes visible and decremented only after its
    /// `step` returns (including any spawns it performed), so the
    /// counter can reach zero only when no task is queued or running.
    pub fn run_dynamic<T, S, E, C, I, F>(
        &self,
        tasks: Vec<T>,
        metrics: &ExecMetrics,
        cancel: C,
        init: I,
        step: F,
    ) -> Result<Vec<S>, E>
    where
        T: Send,
        S: Send,
        E: Send,
        C: Fn() -> bool + Sync,
        I: Fn(usize) -> S + Sync,
        F: Fn(&mut S, T, &TaskContext<'_, T>) -> Result<(), E> + Sync,
    {
        assert!(
            metrics.workers() >= self.threads,
            "ExecMetrics sized for {} workers, executor has {}",
            metrics.workers(),
            self.threads
        );
        if self.threads <= 1 {
            let mut state = init(0);
            let queue = RefCell::new(VecDeque::from(tasks));
            let ctx = TaskContext {
                handle: WorkerHandle {
                    index: 0,
                    counters: metrics.counters(0),
                },
                spawner: Spawner::Inline(&queue),
            };
            // Inline execution is "worker 0" for trace routing, so
            // serial and parallel traces share one shape.
            let _trace_slot = worker_scope(0);
            loop {
                if cancel() {
                    break;
                }
                let Some(task) = queue.borrow_mut().pop_front() else {
                    break;
                };
                ctx.handle.counters.tasks.fetch_add(1, Ordering::Relaxed);
                let started = metrics.timing_wanted().then(Instant::now);
                let result = step(&mut state, task, &ctx);
                if let Some(t0) = started {
                    metrics.record_task(t0.elapsed());
                }
                result?;
            }
            return Ok(vec![state]);
        }

        let n = self.threads;
        let queues: Vec<Worker<T>> = (0..n).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<T>> = queues.iter().map(Worker::stealer).collect();
        let pending = AtomicUsize::new(tasks.len());
        // Round-robin deal: worker i starts with tasks i, i+n, i+2n, … so
        // an ordered task list is consumed roughly in order pool-wide.
        for (i, task) in tasks.into_iter().enumerate() {
            queues[i % n].push(task);
        }

        let stop = AtomicBool::new(false);
        let error: Mutex<Option<E>> = Mutex::new(None);
        let states = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = queues
                .into_iter()
                .enumerate()
                .map(|(i, own)| {
                    let stealers = &stealers;
                    let stop = &stop;
                    let error = &error;
                    let pending = &pending;
                    let cancel = &cancel;
                    let init = &init;
                    let step = &step;
                    scope.spawn(move |_| -> S {
                        let _trace_slot = worker_scope(i);
                        let mut state = init(i);
                        let counters = metrics.counters(i);
                        let ctx = TaskContext {
                            handle: WorkerHandle { index: i, counters },
                            spawner: Spawner::Pool { own: &own, pending },
                        };
                        loop {
                            if stop.load(Ordering::Relaxed) || cancel() {
                                break;
                            }
                            let task = match own.pop() {
                                Some(t) => Some(t),
                                None => steal_from_peers(i, stealers, counters, &metrics.tracer),
                            };
                            let Some(task) = task else {
                                // Every deque is empty, but a running
                                // peer may still spawn: exit only once
                                // nothing is queued *or* in flight.
                                if pending.load(Ordering::SeqCst) == 0 {
                                    break;
                                }
                                std::thread::yield_now();
                                continue;
                            };
                            counters.tasks.fetch_add(1, Ordering::Relaxed);
                            let started = metrics.timing_wanted().then(Instant::now);
                            let result = step(&mut state, task, &ctx);
                            if let Some(t0) = started {
                                metrics.record_task(t0.elapsed());
                            }
                            pending.fetch_sub(1, Ordering::SeqCst);
                            if let Err(e) = result {
                                let mut slot = error.lock();
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                stop.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                        state
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("executor worker panicked"))
                .collect::<Vec<S>>()
        })
        .expect("executor thread scope failed");

        match error.into_inner() {
            Some(e) => Err(e),
            None => Ok(states),
        }
    }
}

/// One full sweep over the peers' deques (starting after `me`), retried
/// while any attempt reports `Steal::Retry`.
fn steal_from_peers<T>(
    me: usize,
    stealers: &[Stealer<T>],
    counters: &WorkerCounters,
    tracer: &Tracer,
) -> Option<T> {
    let n = stealers.len();
    loop {
        let mut retry = false;
        for off in 1..n {
            let j = (me + off) % n;
            match stealers[j].steal() {
                Steal::Success(task) => {
                    counters.stolen.fetch_add(1, Ordering::Relaxed);
                    tracer.event(
                        names::EXEC_TASKS_STOLEN,
                        TracePayload::TaskStolen { victim: j },
                    );
                    return Some(task);
                }
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn shared_bound_is_a_cas_min() {
        let b = SharedBound::new(0.5);
        assert_eq!(b.value(), 0.5);
        assert!(!b.refresh(0.5), "equal value is not an improvement");
        assert!(!b.refresh(0.7));
        assert!(b.refresh(0.25));
        assert_eq!(b.value(), 0.25);
        assert!(b.refresh(0.0));
        assert!(!b.refresh(0.1));
        assert_eq!(b.value(), 0.0);
        assert_eq!(b.tightened(), 2, "only genuine improvements count");
    }

    #[test]
    fn shared_bound_settles_on_concurrent_minimum() {
        let b = SharedBound::new(1.0);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let b = &b;
                s.spawn(move || {
                    for i in 0..200u64 {
                        b.refresh(((t * 200 + i) % 97) as f64 / 100.0);
                    }
                });
            }
        });
        assert_eq!(b.value(), 0.0);
    }

    #[test]
    fn executor_runs_every_task_exactly_once() {
        for threads in [1usize, 2, 4, 8] {
            let exec = Executor::new(threads);
            let metrics = ExecMetrics::new(exec.threads());
            let sums = exec
                .run(
                    (1..=100u64).collect(),
                    &metrics,
                    || false,
                    |_| 0u64,
                    |acc: &mut u64, task, _h| -> Result<(), ()> {
                        *acc += task;
                        Ok(())
                    },
                )
                .unwrap();
            assert_eq!(sums.len(), if threads <= 1 { 1 } else { threads });
            assert_eq!(sums.iter().sum::<u64>(), 100 * 101 / 2);
            assert_eq!(metrics.totals().tasks, 100);
        }
    }

    #[test]
    fn idle_workers_steal_skewed_work() {
        // Task 0 (worker 0's only own task besides the stragglers) sleeps;
        // the other workers must steal worker 0's remaining backlog.
        let exec = Executor::new(4);
        let metrics = ExecMetrics::new(4);
        // 64 tasks: every 4th lands on worker 0's deque; make worker 0's
        // first task slow so peers drain its queue.
        let done = AtomicUsize::new(0);
        exec.run(
            (0..64usize).collect(),
            &metrics,
            || false,
            |_| (),
            |_s, task, _h| -> Result<(), ()> {
                if task == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
                done.fetch_add(1, Ordering::Relaxed);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(done.load(Ordering::Relaxed), 64);
        assert_eq!(metrics.totals().tasks, 64);
        assert!(
            metrics.totals().stolen > 0,
            "peers should have stolen worker 0's backlog: {:?}",
            metrics.per_worker()
        );
    }

    #[test]
    fn errors_stop_the_pool_and_propagate() {
        let exec = Executor::new(4);
        let metrics = ExecMetrics::new(4);
        let out = exec.run(
            (0..1000usize).collect(),
            &metrics,
            || false,
            |_| (),
            |_s, task, _h| {
                if task == 17 {
                    Err("boom")
                } else {
                    Ok(())
                }
            },
        );
        assert_eq!(out.unwrap_err(), "boom");
        assert!(
            metrics.totals().tasks < 1000,
            "the pool should stop cooperatively after the error"
        );
    }

    #[test]
    fn cancellation_drains_the_pool() {
        let exec = Executor::new(4);
        let metrics = ExecMetrics::new(4);
        let executed = AtomicUsize::new(0);
        let states = exec
            .run(
                (0..10_000usize).collect(),
                &metrics,
                || executed.load(Ordering::Relaxed) >= 8,
                |_| (),
                |_s, _task, _h| -> Result<(), ()> {
                    executed.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(states.len(), 4, "cancelled workers still return states");
        assert!(
            metrics.totals().tasks < 10_000,
            "cancellation must stop the pool early"
        );
    }

    #[test]
    fn dynamic_spawn_executes_the_whole_task_tree() {
        // One seed fans out into a binary tree of depth 10 (2^10 - 1
        // tasks); every node contributes its id so the total checks
        // both coverage and exactly-once execution.
        for threads in [1usize, 2, 4, 8] {
            let exec = Executor::new(threads);
            let metrics = ExecMetrics::new(exec.threads());
            let sums = exec
                .run_dynamic(
                    vec![1u64],
                    &metrics,
                    || false,
                    |_| 0u64,
                    |acc: &mut u64, id, ctx| -> Result<(), ()> {
                        *acc += id;
                        if 2 * id < 1024 {
                            ctx.spawn(2 * id);
                            ctx.spawn(2 * id + 1);
                        }
                        Ok(())
                    },
                )
                .unwrap();
            let total: u64 = sums.iter().sum();
            assert_eq!(total, (1..1024u64).sum::<u64>(), "threads {threads}");
            assert_eq!(metrics.totals().tasks, 1023);
        }
    }

    #[test]
    fn dynamic_spawned_tasks_are_stolen() {
        // A single seed spawns all the work: without stealing, worker 0
        // would run everything alone.
        let exec = Executor::new(4);
        let metrics = ExecMetrics::new(4);
        exec.run_dynamic(
            vec![0usize],
            &metrics,
            || false,
            |_| (),
            |_s, depth, ctx| -> Result<(), ()> {
                if depth < 7 {
                    ctx.spawn(depth + 1);
                    ctx.spawn(depth + 1);
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(metrics.totals().tasks, 255);
        assert!(
            metrics.totals().stolen > 0,
            "peers should steal the seed's fan-out: {:?}",
            metrics.per_worker()
        );
    }

    #[test]
    fn dynamic_errors_stop_the_fan_out() {
        let exec = Executor::new(4);
        let metrics = ExecMetrics::new(4);
        let out = exec.run_dynamic(
            vec![0u32],
            &metrics,
            || false,
            |_| (),
            |_s, gen, ctx| {
                if gen == 5 {
                    return Err("boom");
                }
                ctx.spawn(gen + 1);
                ctx.spawn(gen + 1);
                Ok(())
            },
        );
        assert_eq!(out.unwrap_err(), "boom");
    }

    #[test]
    fn tracing_and_task_hist_observe_without_interfering() {
        let exec = Executor::new(4);
        let mut metrics = ExecMetrics::new(4);
        let tracer = Tracer::new();
        metrics.set_tracer(tracer.clone());
        let hist = Hist::new();
        metrics.set_task_hist(hist.clone());
        // A single seed fans the work out, forcing steals.
        exec.run_dynamic(
            vec![0usize],
            &metrics,
            || false,
            |_| (),
            |_s, depth, ctx| -> Result<(), ()> {
                if depth < 6 {
                    ctx.spawn(depth + 1);
                    ctx.spawn(depth + 1);
                }
                std::thread::sleep(std::time::Duration::from_micros(100));
                Ok(())
            },
        )
        .unwrap();
        let totals = metrics.totals();
        assert_eq!(totals.tasks, 127);
        // Every steal produced exactly one TaskStolen event, and every
        // task landed once in the latency histogram.
        let report = tracer.drain();
        assert_eq!(report.count_events(names::EXEC_TASKS_STOLEN), totals.stolen);
        assert_eq!(hist.snapshot().count, totals.tasks);
        assert!(hist.snapshot().p50() >= 100_000, "tasks sleep ≥100µs");
    }

    #[test]
    fn task_window_receives_every_task_duration() {
        let exec = Executor::new(4);
        let mut metrics = ExecMetrics::new(4);
        let window = Arc::new(RollingWindow::new(std::time::Duration::from_secs(3600), 4));
        metrics.set_task_window(Arc::clone(&window));
        exec.run(
            vec![(); 32],
            &metrics,
            || false,
            |_| (),
            |_s, _t, _h| -> Result<(), ()> { Ok(()) },
        )
        .unwrap();
        let recent = window.window(std::time::Duration::from_secs(3600));
        assert_eq!(recent.count, 32, "every task lands in the open tick");
        assert_eq!(window.cumulative().count, 32);
    }

    #[test]
    fn worker_handle_attribution() {
        let exec = Executor::new(2);
        let metrics = ExecMetrics::new(2);
        exec.run(
            vec![(); 10],
            &metrics,
            || false,
            |_| (),
            |_s, _t, h| -> Result<(), ()> {
                h.count_prune_hit();
                h.count_bound_refresh();
                Ok(())
            },
        )
        .unwrap();
        let totals = metrics.totals();
        assert_eq!(totals.prune_hits, 10);
        assert_eq!(totals.bound_refreshes, 10);
        let per = metrics.per_worker();
        assert_eq!(per.iter().map(|w| w.tasks).sum::<u64>(), 10);
    }
}
