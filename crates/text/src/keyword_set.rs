use crate::TermId;
use std::fmt;

/// An immutable, sorted, duplicate-free set of terms.
///
/// This is the representation of both object documents (`o.doc`) and query
/// keyword sets (`q.doc`). The sorted layout makes intersection/union sizes
/// O(|a| + |b|) merges with no allocation, which is all Jaccard (Eqn. 2)
/// and the edit distance (Eqn. 4) need.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct KeywordSet {
    terms: Box<[TermId]>,
}

impl KeywordSet {
    /// The empty keyword set.
    pub fn empty() -> Self {
        KeywordSet {
            terms: Box::new([]),
        }
    }

    /// Builds a set from arbitrary term ids, sorting and deduplicating.
    pub fn from_terms<I: IntoIterator<Item = TermId>>(terms: I) -> Self {
        let mut v: Vec<TermId> = terms.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        KeywordSet {
            terms: v.into_boxed_slice(),
        }
    }

    /// Convenience constructor from raw `u32` ids (used heavily in tests).
    pub fn from_ids<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        Self::from_terms(ids.into_iter().map(TermId))
    }

    /// Builds a set from a slice already known to be sorted and unique.
    ///
    /// # Panics
    /// Debug-asserts the invariant; callers are trusted in release builds.
    pub fn from_sorted_unchecked(terms: Vec<TermId>) -> Self {
        debug_assert!(
            terms.windows(2).all(|w| w[0] < w[1]),
            "terms not sorted/unique"
        );
        KeywordSet {
            terms: terms.into_boxed_slice(),
        }
    }

    /// Number of terms in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` if the set has no terms.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The sorted terms.
    #[inline]
    pub fn terms(&self) -> &[TermId] {
        &self.terms
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, t: TermId) -> bool {
        self.terms.binary_search(&t).is_ok()
    }

    /// Size of the intersection with `other` (merge scan).
    pub fn intersection_len(&self, other: &KeywordSet) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        let (a, b) = (&self.terms, &other.terms);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Size of the union with `other`.
    #[inline]
    pub fn union_len(&self, other: &KeywordSet) -> usize {
        self.len() + other.len() - self.intersection_len(other)
    }

    /// `true` if every term of `self` is in `other`.
    pub fn is_subset_of(&self, other: &KeywordSet) -> bool {
        self.intersection_len(other) == self.len()
    }

    /// Set union as a new keyword set.
    pub fn union(&self, other: &KeywordSet) -> KeywordSet {
        let mut v = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.terms, &other.terms);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    v.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    v.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    v.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        v.extend_from_slice(&a[i..]);
        v.extend_from_slice(&b[j..]);
        KeywordSet {
            terms: v.into_boxed_slice(),
        }
    }

    /// Set intersection as a new keyword set.
    pub fn intersection(&self, other: &KeywordSet) -> KeywordSet {
        let mut v = Vec::new();
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.terms, &other.terms);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    v.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        KeywordSet {
            terms: v.into_boxed_slice(),
        }
    }

    /// Set difference `self − other` as a new keyword set.
    pub fn difference(&self, other: &KeywordSet) -> KeywordSet {
        let mut v = Vec::new();
        for &t in self.terms.iter() {
            if !other.contains(t) {
                v.push(t);
            }
        }
        KeywordSet {
            terms: v.into_boxed_slice(),
        }
    }

    /// Insert/delete edit distance to `other` (the `Δdoc` of Eqn. 4):
    /// `|self − other| + |other − self|`.
    #[inline]
    pub fn edit_distance(&self, other: &KeywordSet) -> usize {
        let inter = self.intersection_len(other);
        (self.len() - inter) + (other.len() - inter)
    }

    /// Iterates the terms in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = TermId> + '_ {
        self.terms.iter().copied()
    }
}

impl fmt::Debug for KeywordSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.terms.iter()).finish()
    }
}

impl FromIterator<TermId> for KeywordSet {
    fn from_iter<I: IntoIterator<Item = TermId>>(iter: I) -> Self {
        KeywordSet::from_terms(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_terms_sorts_and_dedups() {
        let s = KeywordSet::from_ids([3, 1, 2, 3, 1]);
        assert_eq!(s.terms(), &[TermId(1), TermId(2), TermId(3)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn contains_binary_search() {
        let s = KeywordSet::from_ids([10, 20, 30]);
        assert!(s.contains(TermId(20)));
        assert!(!s.contains(TermId(25)));
    }

    #[test]
    fn intersection_and_union_lens() {
        let a = KeywordSet::from_ids([1, 2, 3, 7]);
        let b = KeywordSet::from_ids([2, 3, 4]);
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(a.union_len(&b), 5);
    }

    #[test]
    fn set_constructors_match_lens() {
        let a = KeywordSet::from_ids([1, 2, 5, 9]);
        let b = KeywordSet::from_ids([2, 3, 9]);
        assert_eq!(a.union(&b).len(), a.union_len(&b));
        assert_eq!(a.intersection(&b).len(), a.intersection_len(&b));
        assert_eq!(a.union(&b), KeywordSet::from_ids([1, 2, 3, 5, 9]));
        assert_eq!(a.intersection(&b), KeywordSet::from_ids([2, 9]));
    }

    #[test]
    fn difference_removes_shared() {
        let a = KeywordSet::from_ids([1, 2, 3]);
        let b = KeywordSet::from_ids([2]);
        assert_eq!(a.difference(&b), KeywordSet::from_ids([1, 3]));
        assert_eq!(b.difference(&a), KeywordSet::empty());
    }

    #[test]
    fn subset_checks() {
        let a = KeywordSet::from_ids([1, 3]);
        let b = KeywordSet::from_ids([1, 2, 3]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(KeywordSet::empty().is_subset_of(&a));
    }

    #[test]
    fn edit_distance_insert_delete() {
        let doc0 = KeywordSet::from_ids([1, 2]);
        // q2 in Table I: {t2, t3} → delete t1, insert t3 → distance 2
        let q2 = KeywordSet::from_ids([2, 3]);
        assert_eq!(doc0.edit_distance(&q2), 2);
        // q4: {t1, t2, t3} → insert t3 → distance 1
        let q4 = KeywordSet::from_ids([1, 2, 3]);
        assert_eq!(doc0.edit_distance(&q4), 1);
        // identity
        assert_eq!(doc0.edit_distance(&doc0), 0);
    }

    #[test]
    fn empty_set_behaviour() {
        let e = KeywordSet::empty();
        let a = KeywordSet::from_ids([5]);
        assert_eq!(e.union(&a), a);
        assert_eq!(e.intersection(&a), e);
        assert_eq!(e.edit_distance(&a), 1);
    }
}
