//! Set-based text similarity models.
//!
//! The paper evaluates with Jaccard (Eqn. 2) but notes (footnote 1) that
//! its algorithms extend to other coefficient models such as the Dice
//! coefficient and (set) cosine similarity. [`TextModel`] centralises the
//! choice; every scoring and bounding path in the workspace dispatches on
//! it.

use crate::simd::ProjectedSet;
use crate::KeywordSet;

/// A set-overlap similarity coefficient in `[0, 1]`.
///
/// All models define the similarity of two empty sets as 0 (an object
/// with no keywords is irrelevant to an empty query, consistent with
/// [`crate::jaccard`]).
///
/// # Examples
///
/// ```
/// use wnsk_text::{KeywordSet, TextModel};
///
/// let a = KeywordSet::from_ids([1, 2]);
/// let b = KeywordSet::from_ids([2, 3]);
/// assert!((TextModel::Jaccard.similarity(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
/// assert!((TextModel::Dice.similarity(&a, &b) - 0.5).abs() < 1e-12);
/// assert!((TextModel::Cosine.similarity(&a, &b) - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TextModel {
    /// `|a ∩ b| / |a ∪ b|` — the paper's Eqn. 2 and the default.
    #[default]
    Jaccard,
    /// Dice coefficient `2|a ∩ b| / (|a| + |b|)`.
    Dice,
    /// Set cosine (Ochiai) similarity `|a ∩ b| / √(|a|·|b|)`.
    Cosine,
}

impl TextModel {
    /// Similarity between two keyword sets under this model.
    pub fn similarity(self, a: &KeywordSet, b: &KeywordSet) -> f64 {
        let inter = a.intersection_len(b) as f64;
        match self {
            TextModel::Jaccard => {
                let union = (a.len() + b.len()) as f64 - inter;
                if union == 0.0 {
                    0.0
                } else {
                    inter / union
                }
            }
            TextModel::Dice => {
                let total = (a.len() + b.len()) as f64;
                if total == 0.0 {
                    0.0
                } else {
                    2.0 * inter / total
                }
            }
            TextModel::Cosine => {
                if a.is_empty() || b.is_empty() {
                    0.0
                } else {
                    inter / ((a.len() as f64) * (b.len() as f64)).sqrt()
                }
            }
        }
    }

    /// Similarity between two projected keyword sets under this model —
    /// the AND+popcount twin of [`TextModel::similarity`].
    ///
    /// Exactness precondition: both operands are projected onto the same
    /// [`crate::SimUniverse`] and **at least one of them lies fully inside
    /// it** ([`ProjectedSet::in_universe`]). Then for `S ⊆ U` and any `D`,
    /// `|D ∩ S| = |(D ∩ U) ∩ S|`, so the popcount intersection equals the
    /// merge-scan intersection, and because the floating-point expressions
    /// below replicate [`TextModel::similarity`] verbatim the result is
    /// **bit-identical** — not merely close (the invariant `docs/KERNELS.md`
    /// documents and the determinism suite enforces).
    ///
    /// # Examples
    ///
    /// ```
    /// use wnsk_text::{KeywordSet, SimUniverse, TextModel};
    ///
    /// let doc = KeywordSet::from_ids([1, 2, 77]); // 77 outside the universe
    /// let cand = KeywordSet::from_ids([2, 3]);
    /// let uni = SimUniverse::new(&KeywordSet::from_ids([1, 2, 3, 10])).unwrap();
    /// let (p_doc, p_cand) = (uni.project(&doc), uni.project(&cand));
    /// assert!(p_cand.in_universe());
    /// for model in [TextModel::Jaccard, TextModel::Dice, TextModel::Cosine] {
    ///     // scalar == bitset, to the last bit
    ///     assert_eq!(
    ///         model.similarity(&doc, &cand).to_bits(),
    ///         model.similarity_bits(&p_doc, &p_cand).to_bits(),
    ///     );
    /// }
    /// ```
    pub fn similarity_bits(self, a: &ProjectedSet, b: &ProjectedSet) -> f64 {
        debug_assert!(
            a.in_universe() || b.in_universe(),
            "similarity_bits needs one operand fully inside the universe"
        );
        let inter = a.and_count(b) as f64;
        match self {
            TextModel::Jaccard => {
                let union = (a.full_len() + b.full_len()) as f64 - inter;
                if union == 0.0 {
                    0.0
                } else {
                    inter / union
                }
            }
            TextModel::Dice => {
                let total = (a.full_len() + b.full_len()) as f64;
                if total == 0.0 {
                    0.0
                } else {
                    2.0 * inter / total
                }
            }
            TextModel::Cosine => {
                if a.full_len() == 0 || b.full_len() == 0 {
                    0.0
                } else {
                    inter / ((a.full_len() as f64) * (b.full_len() as f64)).sqrt()
                }
            }
        }
    }

    /// An upper bound on `similarity(o.doc, qdoc)` over every document
    /// `o.doc` with `intersection ⊆ o.doc ⊆ union` — the SetR-tree node
    /// bound (Theorem 1 generalised per model).
    ///
    /// For any such document, `|o ∩ q| ≤ |union ∩ q|` and
    /// `|o| ≥ max(1, |intersection|)` (indexed documents are non-empty),
    /// which bounds each coefficient's denominator from below.
    pub fn node_upper(
        self,
        union: &KeywordSet,
        intersection: &KeywordSet,
        qdoc: &KeywordSet,
    ) -> f64 {
        let num = union.intersection_len(qdoc) as f64;
        match self {
            TextModel::Jaccard => {
                let den = intersection.union_len(qdoc) as f64;
                if den == 0.0 {
                    0.0
                } else {
                    (num / den).min(1.0)
                }
            }
            TextModel::Dice => {
                let den = (intersection.len().max(1) + qdoc.len()) as f64;
                if qdoc.is_empty() {
                    0.0
                } else {
                    (2.0 * num / den).min(1.0)
                }
            }
            TextModel::Cosine => {
                if qdoc.is_empty() {
                    0.0
                } else {
                    let den = ((intersection.len().max(1) as f64) * qdoc.len() as f64).sqrt();
                    (num / den).min(1.0)
                }
            }
        }
    }

    /// An upper bound on `similarity(o.doc, qdoc)` for any *non-empty*
    /// document whose terms intersect `qdoc` in at most `matched` distinct
    /// terms — the KcR-tree node bound (a subtree knows which query terms
    /// occur under it, but not how they are distributed).
    pub fn kcr_upper(self, matched: usize, qdoc_len: usize) -> f64 {
        if qdoc_len == 0 || matched == 0 {
            return 0.0;
        }
        let m = matched.min(qdoc_len) as f64;
        match self {
            // |o ∩ q| ≤ m and |o ∪ q| ≥ |q|.
            TextModel::Jaccard => (m / qdoc_len as f64).min(1.0),
            // |o| ≥ |o ∩ q| and x ↦ 2x/(x + |q|) is increasing in x.
            TextModel::Dice => 2.0 * m / (m + qdoc_len as f64),
            // |o| ≥ |o ∩ q| so |o ∩ q|/√(|o||q|) ≤ √(|o ∩ q|/|q|).
            TextModel::Cosine => (m / qdoc_len as f64).sqrt().min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn jaccard_matches_free_function() {
        let a = s(&[1, 2, 3]);
        let b = s(&[2, 3, 4, 5]);
        assert_eq!(
            TextModel::Jaccard.similarity(&a, &b),
            crate::jaccard(&a, &b)
        );
    }

    #[test]
    fn dice_and_cosine_values() {
        let a = s(&[1, 2]);
        let b = s(&[2, 3]);
        // inter = 1: dice = 2/4, cosine = 1/2.
        assert!((TextModel::Dice.similarity(&a, &b) - 0.5).abs() < 1e-12);
        assert!((TextModel::Cosine.similarity(&a, &b) - 0.5).abs() < 1e-12);
        let c = s(&[1, 2, 3, 4]);
        // a vs c: inter 2: dice = 4/6, cosine = 2/sqrt(8).
        assert!((TextModel::Dice.similarity(&a, &c) - 2.0 / 3.0).abs() < 1e-12);
        assert!((TextModel::Cosine.similarity(&a, &c) - 2.0 / 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn all_models_bounded_and_symmetric() {
        let sets = [s(&[]), s(&[1]), s(&[1, 2, 3]), s(&[4, 5])];
        for model in [TextModel::Jaccard, TextModel::Dice, TextModel::Cosine] {
            for a in &sets {
                for b in &sets {
                    let v = model.similarity(a, b);
                    assert!((0.0..=1.0).contains(&v), "{model:?} {a:?} {b:?} = {v}");
                    assert_eq!(v, model.similarity(b, a));
                }
                if !a.is_empty() {
                    assert!((model.similarity(a, a) - 1.0).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn empty_sets_are_zero_for_all_models() {
        let e = s(&[]);
        let a = s(&[1]);
        for model in [TextModel::Jaccard, TextModel::Dice, TextModel::Cosine] {
            assert_eq!(model.similarity(&e, &e), 0.0);
            assert_eq!(model.similarity(&a, &e), 0.0);
        }
    }

    #[test]
    fn node_upper_dominates_members() {
        // Documents sandwiched between intersection and union.
        let inter = s(&[1]);
        let union = s(&[1, 2, 3, 4]);
        let docs = [s(&[1]), s(&[1, 2]), s(&[1, 3, 4]), s(&[1, 2, 3, 4])];
        for model in [TextModel::Jaccard, TextModel::Dice, TextModel::Cosine] {
            for q in [s(&[1, 2]), s(&[3]), s(&[5, 6]), s(&[])] {
                let bound = model.node_upper(&union, &inter, &q);
                for d in &docs {
                    assert!(
                        model.similarity(d, &q) <= bound + 1e-12,
                        "{model:?} doc {d:?} q {q:?}: {} > {bound}",
                        model.similarity(d, &q)
                    );
                }
            }
        }
    }

    #[test]
    fn kcr_upper_dominates_any_consistent_doc() {
        for model in [TextModel::Jaccard, TextModel::Dice, TextModel::Cosine] {
            let q = s(&[1, 2, 3]);
            // Any non-empty doc matching ≤ 2 of q's terms.
            for d in [s(&[1, 2]), s(&[1, 2, 9]), s(&[2, 7, 8, 9]), s(&[5])] {
                let matched = d.intersection_len(&q).min(2);
                if d.intersection_len(&q) <= 2 {
                    let bound = model.kcr_upper(2, q.len());
                    assert!(
                        model.similarity(&d, &q) <= bound + 1e-12,
                        "{model:?} {d:?} matched {matched}"
                    );
                }
            }
            assert_eq!(model.kcr_upper(0, 3), 0.0);
            assert_eq!(model.kcr_upper(2, 0), 0.0);
        }
    }
}
