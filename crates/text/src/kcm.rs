use crate::{KeywordSet, TermId};
use std::fmt;

/// A keyword-count map (`kcm`): for each term, the number of objects in a
/// KcR-tree subtree whose document contains that term (§V-A).
///
/// Stored as a sorted `(TermId, u32)` vector. Counts are strictly positive;
/// terms with count zero are removed.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct KeywordCountMap {
    entries: Vec<(TermId, u32)>,
}

impl KeywordCountMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a map counting each term of a single document once.
    pub fn from_keyword_set(doc: &KeywordSet) -> Self {
        KeywordCountMap {
            entries: doc.iter().map(|t| (t, 1)).collect(),
        }
    }

    /// Builds a map from `(term, count)` pairs; sorts, merges duplicates,
    /// and drops zero counts.
    pub fn from_pairs<I: IntoIterator<Item = (TermId, u32)>>(pairs: I) -> Self {
        let mut v: Vec<(TermId, u32)> = pairs.into_iter().filter(|&(_, c)| c > 0).collect();
        v.sort_unstable_by_key(|&(t, _)| t);
        let mut merged: Vec<(TermId, u32)> = Vec::with_capacity(v.len());
        for (t, c) in v {
            match merged.last_mut() {
                Some((lt, lc)) if *lt == t => *lc += c,
                _ => merged.push((t, c)),
            }
        }
        KeywordCountMap { entries: merged }
    }

    /// Number of distinct terms with positive count.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no term has a positive count.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The count for `t` (zero if absent).
    pub fn count(&self, t: TermId) -> u32 {
        match self.entries.binary_search_by_key(&t, |&(t, _)| t) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0,
        }
    }

    /// Adds every count of `other` into `self` (subtree aggregation).
    pub fn merge(&mut self, other: &KeywordCountMap) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.entries = other.entries.clone();
            return;
        }
        let mut out = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (a, b) = (&self.entries, &other.entries);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((a[i].0, a[i].1 + b[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        self.entries = out;
    }

    /// Adds one document's terms (each with count 1).
    pub fn add_doc(&mut self, doc: &KeywordSet) {
        self.merge(&KeywordCountMap::from_keyword_set(doc));
    }

    /// Subtracts every count of `other`, dropping terms that reach zero
    /// (the inverse of [`merge`](Self::merge), used by incremental
    /// subtree maintenance on deletes).
    ///
    /// # Panics
    /// Panics if `other` is not pointwise ≤ `self` — a subtree can only
    /// lose objects it contains, so a larger subtrahend is aggregate
    /// corruption and must not be silently clamped.
    pub fn subtract(&mut self, other: &KeywordCountMap) {
        if other.is_empty() {
            return;
        }
        let mut j = 0;
        for &(t, c) in &other.entries {
            let i = j + self.entries[j..]
                .binary_search_by_key(&t, |&(t, _)| t)
                .unwrap_or_else(|_| panic!("kcm subtract: term {t:?} absent from the minuend"));
            let have = &mut self.entries[i].1;
            assert!(
                *have >= c,
                "kcm subtract: count underflow for {t:?} ({} < {c})",
                *have
            );
            *have -= c;
            j = i;
        }
        self.entries.retain(|&(_, c)| c > 0);
    }

    /// Removes one document's terms (each with count 1); the inverse of
    /// [`add_doc`](Self::add_doc).
    pub fn remove_doc(&mut self, doc: &KeywordSet) {
        self.subtract(&KeywordCountMap::from_keyword_set(doc));
    }

    /// Sum of counts over terms that are **in** `s` (the `C_{S∩N}` of
    /// Algorithm 2).
    pub fn sum_counts_in(&self, s: &KeywordSet) -> u64 {
        self.entries
            .iter()
            .filter(|&&(t, _)| s.contains(t))
            .map(|&(_, c)| c as u64)
            .sum()
    }

    /// Sum of counts over terms **not in** `s` (the `C_{N−S}` of
    /// Algorithm 2).
    pub fn sum_counts_not_in(&self, s: &KeywordSet) -> u64 {
        self.entries
            .iter()
            .filter(|&&(t, _)| !s.contains(t))
            .map(|&(_, c)| c as u64)
            .sum()
    }

    /// Total count mass: `Σ_t count(t)` (= total term occurrences in the
    /// subtree's documents).
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|&(_, c)| c as u64).sum()
    }

    /// Iterates `(term, count)` in term order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// The set of terms with positive count (the `N.doc` of §V).
    pub fn term_set(&self) -> KeywordSet {
        KeywordSet::from_sorted_unchecked(self.entries.iter().map(|&(t, _)| t).collect())
    }
}

impl fmt::Debug for KeywordCountMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.entries.iter().map(|&(t, c)| (t, c)))
            .finish()
    }
}

impl FromIterator<(TermId, u32)> for KeywordCountMap {
    fn from_iter<I: IntoIterator<Item = (TermId, u32)>>(iter: I) -> Self {
        KeywordCountMap::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kcm(pairs: &[(u32, u32)]) -> KeywordCountMap {
        KeywordCountMap::from_pairs(pairs.iter().map(|&(t, c)| (TermId(t), c)))
    }

    #[test]
    fn from_pairs_merges_and_drops_zero() {
        let m = kcm(&[(2, 1), (1, 3), (2, 2), (5, 0)]);
        assert_eq!(m.count(TermId(1)), 3);
        assert_eq!(m.count(TermId(2)), 3);
        assert_eq!(m.count(TermId(5)), 0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = kcm(&[(1, 2), (3, 1)]);
        let b = kcm(&[(1, 1), (2, 4)]);
        a.merge(&b);
        assert_eq!(a, kcm(&[(1, 3), (2, 4), (3, 1)]));
    }

    #[test]
    fn merge_with_empty() {
        let mut a = kcm(&[(1, 1)]);
        a.merge(&KeywordCountMap::new());
        assert_eq!(a, kcm(&[(1, 1)]));
        let mut e = KeywordCountMap::new();
        e.merge(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn add_doc_counts_each_term_once() {
        let mut m = KeywordCountMap::new();
        m.add_doc(&KeywordSet::from_ids([1, 2]));
        m.add_doc(&KeywordSet::from_ids([2, 3]));
        assert_eq!(m, kcm(&[(1, 1), (2, 2), (3, 1)]));
    }

    #[test]
    fn paper_figure3_example() {
        // R1 in Fig. 3: three objects, kcm = {Chinese: 2, restaurant: 3}
        let chinese = TermId(0);
        let restaurant = TermId(1);
        let mut m = KeywordCountMap::new();
        m.add_doc(&KeywordSet::from_terms([chinese, restaurant]));
        m.add_doc(&KeywordSet::from_terms([chinese, restaurant]));
        m.add_doc(&KeywordSet::from_terms([restaurant]));
        assert_eq!(m.count(chinese), 2);
        assert_eq!(m.count(restaurant), 3);
    }

    #[test]
    fn sums_split_by_query_set() {
        // Example 5 of the paper: kcm = {(t1,8),(t2,3),(t3,7),(t4,2),(t5,1)},
        // S = {t3, t4} → C_{S∩N} = 9, C_{N−S} = 12
        let m = kcm(&[(1, 8), (2, 3), (3, 7), (4, 2), (5, 1)]);
        let s = KeywordSet::from_ids([3, 4]);
        assert_eq!(m.sum_counts_in(&s), 9);
        assert_eq!(m.sum_counts_not_in(&s), 12);
        assert_eq!(m.total(), 21);
    }

    #[test]
    fn subtract_inverts_merge() {
        let mut a = kcm(&[(1, 3), (2, 4), (3, 1)]);
        let before = a.clone();
        let b = kcm(&[(1, 1), (2, 4)]);
        a.merge(&b);
        a.subtract(&b);
        assert_eq!(a, before);
    }

    #[test]
    fn remove_doc_inverts_add_doc_and_drops_zeroes() {
        let mut m = KeywordCountMap::new();
        m.add_doc(&KeywordSet::from_ids([1, 2]));
        m.add_doc(&KeywordSet::from_ids([2, 3]));
        m.remove_doc(&KeywordSet::from_ids([2, 3]));
        assert_eq!(m, kcm(&[(1, 1), (2, 1)]));
        assert_eq!(m.count(TermId(3)), 0, "zero counts are dropped");
        m.remove_doc(&KeywordSet::from_ids([1, 2]));
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtract_underflow_panics() {
        let mut a = kcm(&[(1, 1)]);
        a.subtract(&kcm(&[(1, 2)]));
    }

    #[test]
    fn term_set_extraction() {
        let m = kcm(&[(4, 1), (2, 2)]);
        assert_eq!(m.term_set(), KeywordSet::from_ids([2, 4]));
    }
}
