use std::collections::HashMap;
use std::fmt;

/// A dense identifier for an interned keyword.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

impl TermId {
    /// The raw index, usable to address per-term side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u32> for TermId {
    fn from(v: u32) -> Self {
        TermId(v)
    }
}

/// The vocabulary ran out of dense [`TermId`]s (more than `u32::MAX`
/// distinct terms).
///
/// Surfaced as a typed error rather than a panic so that a server
/// ingesting hostile or enormous documents degrades to a request error
/// instead of taking the process down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VocabularyFull;

impl fmt::Display for VocabularyFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vocabulary overflow: more than u32::MAX distinct terms")
    }
}

impl std::error::Error for VocabularyFull {}

/// An append-only string interner mapping keywords to [`TermId`]s.
///
/// The vocabulary is shared between the dataset, the indexes and the query
/// layer; all of them speak `TermId`. Interning is the only place keyword
/// strings are stored.
#[derive(Default, Clone)]
pub struct Vocabulary {
    by_name: HashMap<Box<str>, TermId>,
    names: Vec<Box<str>>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    ///
    /// # Errors
    /// Returns [`VocabularyFull`] once `u32::MAX` distinct terms exist;
    /// the vocabulary is left unchanged.
    pub fn intern(&mut self, name: &str) -> Result<TermId, VocabularyFull> {
        if let Some(&id) = self.by_name.get(name) {
            return Ok(id);
        }
        let id = TermId(u32::try_from(self.names.len()).map_err(|_| VocabularyFull)?);
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.by_name.insert(boxed, id);
        Ok(id)
    }

    /// Looks up a term id without interning.
    pub fn get(&self, name: &str) -> Option<TermId> {
        self.by_name.get(name).copied()
    }

    /// The string for `id`, if it was interned here.
    pub fn name(&self, id: TermId) -> Option<&str> {
        self.names.get(id.index()).map(|s| s.as_ref())
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(TermId, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (TermId(i as u32), s.as_ref()))
    }
}

impl fmt::Debug for Vocabulary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vocabulary({} terms)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("hotel").unwrap();
        let b = v.intern("hotel").unwrap();
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn intern_assigns_dense_ids() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("a").unwrap(), TermId(0));
        assert_eq!(v.intern("b").unwrap(), TermId(1));
        assert_eq!(v.intern("a").unwrap(), TermId(0));
        assert_eq!(v.intern("c").unwrap(), TermId(2));
    }

    #[test]
    fn name_round_trip() {
        let mut v = Vocabulary::new();
        let id = v.intern("clean").unwrap();
        assert_eq!(v.name(id), Some("clean"));
        assert_eq!(v.get("clean"), Some(id));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.name(TermId(99)), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut v = Vocabulary::new();
        v.intern("x").unwrap();
        v.intern("y").unwrap();
        let collected: Vec<_> = v.iter().map(|(id, s)| (id.0, s.to_string())).collect();
        assert_eq!(collected, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }

    #[test]
    fn empty_vocab() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }
}
