//! Textual substrate for the why-not spatial keyword library.
//!
//! Everything the paper's algorithms need from the text side lives here:
//!
//! * [`TermId`] / [`Vocabulary`] — string interning so the rest of the
//!   system works with dense `u32` term identifiers,
//! * [`KeywordSet`] — an immutable sorted set of terms with the merge-based
//!   set algebra (intersection/union sizes) behind the Jaccard similarity
//!   of Eqn. 2 and the insert/delete edit distance of Eqn. 4,
//! * [`KeywordCountMap`] — the per-node `kcm` of the KcR-tree (§V-A): a map
//!   from term to the number of objects in a subtree containing that term,
//! * [`CorpusStats`] — document frequencies backing the IDF-based keyword
//!   *particularity* of Eqn. 7, which drives the enumeration order
//!   (§IV-C2) and the greedy sampler (§VI-B),
//! * [`simd`] — fixed-width bitset kernels ([`BlockSet`], [`SimUniverse`],
//!   [`ProjectedSet`]) that rewrite the hot set-intersection loops as
//!   AND + popcount while staying bit-identical to the merge scans
//!   (see `docs/KERNELS.md`).
#![cfg_attr(feature = "wide", feature(portable_simd))]

mod kcm;
mod keyword_set;
mod model;
mod particularity;
pub mod simd;
mod vocab;

pub use kcm::KeywordCountMap;
pub use keyword_set::KeywordSet;
pub use model::TextModel;
pub use particularity::CorpusStats;
pub use simd::{BlockSet, Kernel, ProjectedSet, SimUniverse, BLOCK_BITS, BLOCK_WORDS};
pub use vocab::{TermId, Vocabulary, VocabularyFull};

/// Jaccard similarity between two keyword sets (Eqn. 2).
///
/// Defined as `|a ∩ b| / |a ∪ b|`; by convention the similarity of two
/// empty sets is 0 (an object with no keywords is textually irrelevant to
/// an empty query rather than identical to it).
#[inline]
pub fn jaccard(a: &KeywordSet, b: &KeywordSet) -> f64 {
    let inter = a.intersection_len(b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_identical_sets() {
        let a = KeywordSet::from_ids([1, 2, 3]);
        assert_eq!(jaccard(&a, &a), 1.0);
    }

    #[test]
    fn jaccard_disjoint_sets() {
        let a = KeywordSet::from_ids([1, 2]);
        let b = KeywordSet::from_ids([3, 4]);
        assert_eq!(jaccard(&a, &b), 0.0);
    }

    #[test]
    fn jaccard_partial_overlap() {
        let a = KeywordSet::from_ids([1, 2, 3]);
        let b = KeywordSet::from_ids([2, 3, 4, 5]);
        // |∩| = 2, |∪| = 5
        assert_eq!(jaccard(&a, &b), 0.4);
    }

    #[test]
    fn jaccard_empty_sets() {
        let e = KeywordSet::empty();
        assert_eq!(jaccard(&e, &e), 0.0);
        let a = KeywordSet::from_ids([7]);
        assert_eq!(jaccard(&a, &e), 0.0);
    }

    #[test]
    fn jaccard_paper_figure1() {
        // Fig. 1: q.doc = {t1, t2}, m.doc = {t1, t2, t3} → TSim = 2/3
        let q = KeywordSet::from_ids([1, 2]);
        let m = KeywordSet::from_ids([1, 2, 3]);
        assert!((jaccard(&q, &m) - 2.0 / 3.0).abs() < 1e-12);
        // o2.doc = {t1, t3} → TSim = 1/3
        let o2 = KeywordSet::from_ids([1, 3]);
        assert!((jaccard(&q, &o2) - 1.0 / 3.0).abs() < 1e-12);
    }
}
