use crate::{KeywordSet, TermId};

/// Corpus-level document frequencies backing the keyword *particularity*
/// weight of Eqn. 7.
///
/// `Parti(o, t)` measures how characteristic keyword `t` is of object `o`:
/// a rare keyword that `o` carries gets a large positive weight, a rare
/// keyword it does not carry a large negative one. The enumeration order
/// (§IV-C2) and the greedy sampler (§VI-B) both rank candidate keyword sets
/// by the total particularity of their edits.
#[derive(Clone, Debug, Default)]
pub struct CorpusStats {
    /// Number of documents (objects) in the corpus — `|D|`.
    n_docs: u64,
    /// `doc_freq[t]` = number of documents containing term `t` — `n_t`.
    doc_freq: Vec<u32>,
}

impl CorpusStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds statistics from an iterator over object documents.
    pub fn from_docs<'a, I: IntoIterator<Item = &'a KeywordSet>>(docs: I) -> Self {
        let mut stats = CorpusStats::new();
        for doc in docs {
            stats.add_doc(doc);
        }
        stats
    }

    /// Registers one document.
    pub fn add_doc(&mut self, doc: &KeywordSet) {
        self.n_docs += 1;
        for t in doc.iter() {
            let i = t.index();
            if i >= self.doc_freq.len() {
                self.doc_freq.resize(i + 1, 0);
            }
            self.doc_freq[i] += 1;
        }
    }

    /// Unregisters one document; the inverse of
    /// [`add_doc`](Self::add_doc), used by the mutable dataset so the
    /// particularity weights track the live corpus exactly.
    ///
    /// # Panics
    /// Panics if the corpus is empty or `doc` contains a term with zero
    /// document frequency — removing a document that was never added is
    /// statistics corruption, not a recoverable condition.
    pub fn remove_doc(&mut self, doc: &KeywordSet) {
        assert!(self.n_docs > 0, "remove_doc on an empty corpus");
        self.n_docs -= 1;
        for t in doc.iter() {
            let freq = self
                .doc_freq
                .get_mut(t.index())
                .filter(|f| **f > 0)
                .unwrap_or_else(|| panic!("remove_doc: term {t:?} has zero document frequency"));
            *freq -= 1;
        }
    }

    /// Number of documents `|D|`.
    #[inline]
    pub fn n_docs(&self) -> u64 {
        self.n_docs
    }

    /// Document frequency `n_t` of a term (zero if never seen).
    #[inline]
    pub fn doc_freq(&self, t: TermId) -> u32 {
        self.doc_freq.get(t.index()).copied().unwrap_or(0)
    }

    /// The raw BM25-style IDF weight
    /// `log((|D| − n_t + 0.5) / (n_t + 0.5))` used by Eqn. 7.
    ///
    /// Positive for rare terms, negative for terms present in more than
    /// half the corpus.
    pub fn idf(&self, t: TermId) -> f64 {
        let n = self.n_docs as f64;
        let nt = self.doc_freq(t) as f64;
        ((n - nt + 0.5) / (nt + 0.5)).ln()
    }

    /// `Parti(o, t)` of Eqn. 7: `+idf(t)` when `t ∈ o.doc`, `−idf(t)`
    /// otherwise.
    pub fn particularity(&self, doc: &KeywordSet, t: TermId) -> f64 {
        let idf = self.idf(t);
        if doc.contains(t) {
            idf
        } else {
            -idf
        }
    }

    /// Particularity of `t` w.r.t. a *set* of missing objects: the sum over
    /// the objects' documents (§VI-A extends Eqn. 7 this way).
    pub fn particularity_multi<'a, I>(&self, docs: I, t: TermId) -> f64
    where
        I: IntoIterator<Item = &'a KeywordSet>,
    {
        docs.into_iter().map(|d| self.particularity(d, t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> CorpusStats {
        // 10 docs; t0 in 9 of them (common), t1 in 1 (rare), t2 in 5.
        let mut stats = CorpusStats::new();
        for i in 0..10u32 {
            let mut terms = vec![];
            if i < 9 {
                terms.push(0);
            }
            if i == 0 {
                terms.push(1);
            }
            if i < 5 {
                terms.push(2);
            }
            stats.add_doc(&KeywordSet::from_ids(terms));
        }
        stats
    }

    #[test]
    fn doc_freqs_counted() {
        let s = corpus();
        assert_eq!(s.n_docs(), 10);
        assert_eq!(s.doc_freq(TermId(0)), 9);
        assert_eq!(s.doc_freq(TermId(1)), 1);
        assert_eq!(s.doc_freq(TermId(2)), 5);
        assert_eq!(s.doc_freq(TermId(7)), 0);
    }

    #[test]
    fn idf_sign_follows_rarity() {
        let s = corpus();
        assert!(s.idf(TermId(1)) > 0.0, "rare term has positive idf");
        assert!(s.idf(TermId(0)) < 0.0, "ubiquitous term has negative idf");
    }

    #[test]
    fn idf_formula_exact() {
        let s = corpus();
        // t1: log((10 - 1 + 0.5) / (1 + 0.5)) = log(9.5 / 1.5)
        assert!((s.idf(TermId(1)) - (9.5f64 / 1.5).ln()).abs() < 1e-12);
    }

    #[test]
    fn particularity_flips_sign_on_membership() {
        let s = corpus();
        let doc_with = KeywordSet::from_ids([1]);
        let doc_without = KeywordSet::from_ids([2]);
        let t = TermId(1);
        assert_eq!(
            s.particularity(&doc_with, t),
            -s.particularity(&doc_without, t)
        );
        assert!(s.particularity(&doc_with, t) > 0.0);
    }

    #[test]
    fn multi_object_particularity_sums() {
        let s = corpus();
        let d1 = KeywordSet::from_ids([1]);
        let d2 = KeywordSet::from_ids([2]);
        let t = TermId(1);
        let sum = s.particularity_multi([&d1, &d2], t);
        assert!((sum - (s.particularity(&d1, t) + s.particularity(&d2, t))).abs() < 1e-12);
    }

    #[test]
    fn remove_doc_inverts_add_doc() {
        let mut s = corpus();
        let doc = KeywordSet::from_ids([0, 2]);
        s.add_doc(&doc);
        s.remove_doc(&doc);
        let fresh = corpus();
        assert_eq!(s.n_docs(), fresh.n_docs());
        for t in 0..4 {
            assert_eq!(s.doc_freq(TermId(t)), fresh.doc_freq(TermId(t)));
        }
    }

    #[test]
    #[should_panic(expected = "zero document frequency")]
    fn remove_unknown_doc_panics() {
        let mut s = corpus();
        s.remove_doc(&KeywordSet::from_ids([40]));
    }

    #[test]
    fn unseen_term_idf_is_max() {
        let s = corpus();
        // n_t = 0 → log((10 + 0.5) / 0.5): largest possible idf
        assert!(s.idf(TermId(42)) > s.idf(TermId(1)));
    }
}
