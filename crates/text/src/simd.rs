//! Fixed-width bitset kernels for the query-time keyword universe.
//!
//! The why-not algorithms spend their hot loops on small-set arithmetic:
//! text similarity between candidate keyword sets and object documents
//! (Eqn. 2 and its Dice/cosine variants), and the per-node relevant-count
//! gathers behind the `MaxDom`/`MinDom` dominator bounds (Theorems 2/3).
//! Every set involved is drawn from — or can be projected onto — the
//! *adaption universe* `doc₀ ∪ M.doc`, which is tiny (the candidate
//! enumerator caps it below 64 terms). This module renumbers that
//! universe into dense *slots* and represents its subsets as one
//! fixed-width block of [`BLOCK_WORDS`] machine words, so intersections
//! become branch-free AND + popcount instead of sorted merge scans.
//!
//! The contract that makes the rewrite safe is *exactness, not
//! approximation*: for sets fully inside the universe the kernels produce
//! the same intersection **integers** as the merge scans, and the
//! similarity expressions in [`TextModel::similarity_bits`] replicate the
//! scalar floating-point expressions verbatim — so every penalty, rank
//! and work metric is bit-identical between kernels (see
//! `docs/KERNELS.md`).
//!
//! [`TextModel::similarity_bits`]: crate::TextModel::similarity_bits

use crate::{KeywordSet, TermId};
use std::fmt;
use std::str::FromStr;

/// Number of `u64` words in one bitset block.
///
/// Four words keep a block in half a cache line and cover 256 slots —
/// comfortably above the enumerator's sub-64-term adaption universe
/// (`docs/KERNELS.md` § width selection).
pub const BLOCK_WORDS: usize = 4;

/// Number of bit slots in one block: `BLOCK_WORDS * 64` = 256.
///
/// A universe with more distinct terms than this *spills*: kernel
/// construction returns `None` and callers fall back to the scalar
/// merge-scan path (`docs/KERNELS.md` § spill handling).
pub const BLOCK_BITS: usize = BLOCK_WORDS * 64;

/// Which set-arithmetic implementation the solvers run.
///
/// Both kernels compute identical integers and identical floats; only
/// wall time differs. `bitset` is the default; `scalar` is kept for A/B
/// measurement (`wnsk whynot --kernel=scalar`, `xp bench`) and as the
/// fallback when a universe spills past [`BLOCK_BITS`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Sorted-merge scans over `TermId` slices (the original code path).
    Scalar,
    /// AND + popcount over `[u64; BLOCK_WORDS]` blocks.
    #[default]
    Bitset,
}

impl Kernel {
    /// Every kernel, in A/B-comparison order.
    pub const ALL: [Kernel; 2] = [Kernel::Scalar, Kernel::Bitset];

    /// The canonical CLI/bench name (`scalar` / `bitset`).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Bitset => "bitset",
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Kernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(Kernel::Scalar),
            "bitset" => Ok(Kernel::Bitset),
            other => Err(format!("unknown kernel '{other}' (scalar|bitset)")),
        }
    }
}

/// A fixed-width bitset over [`BLOCK_BITS`] slots.
///
/// The unit of the kernels: one intersection size is `BLOCK_WORDS` ANDs
/// and popcounts, no branches, no memory indirection.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct BlockSet {
    words: [u64; BLOCK_WORDS],
}

impl BlockSet {
    /// The empty block.
    pub const EMPTY: BlockSet = BlockSet {
        words: [0; BLOCK_WORDS],
    };

    /// Sets `slot`.
    ///
    /// # Panics
    /// If `slot >= BLOCK_BITS`.
    #[inline]
    pub fn insert(&mut self, slot: usize) {
        assert!(slot < BLOCK_BITS, "slot {slot} out of range");
        self.words[slot / 64] |= 1u64 << (slot % 64);
    }

    /// Whether `slot` is set (out-of-range slots are never set).
    #[inline]
    pub fn contains(&self, slot: usize) -> bool {
        slot < BLOCK_BITS && self.words[slot / 64] >> (slot % 64) & 1 == 1
    }

    /// Number of set slots.
    #[inline]
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// `|self ∩ other|` — the kernel primitive.
    ///
    /// Default build: an unrolled `u64` AND + `count_ones` chain (LLVM
    /// lowers `count_ones` to the `popcnt` instruction where available).
    #[cfg(not(feature = "wide"))]
    #[inline]
    pub fn and_count(&self, other: &BlockSet) -> u32 {
        let mut n = 0u32;
        for i in 0..BLOCK_WORDS {
            n += (self.words[i] & other.words[i]).count_ones();
        }
        n
    }

    /// `|self ∩ other|` — `std::simd` wide path (nightly-only `wide`
    /// feature): one vector AND plus a lane-wise popcount reduction.
    #[cfg(feature = "wide")]
    #[inline]
    pub fn and_count(&self, other: &BlockSet) -> u32 {
        use std::simd::num::SimdUint;
        use std::simd::Simd;
        let a: Simd<u64, BLOCK_WORDS> = Simd::from_array(self.words);
        let b: Simd<u64, BLOCK_WORDS> = Simd::from_array(other.words);
        (a & b).count_ones().reduce_sum() as u32
    }

    /// Iterates set slots in ascending order (bit-scan per word), which
    /// mirrors ascending-`TermId` iteration after projection.
    pub fn iter_slots(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1; // clear lowest set bit
                Some(wi * 64 + bit)
            })
        })
    }
}

impl fmt::Debug for BlockSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter_slots()).finish()
    }
}

/// The dense query-time renumbering: universe term → bit slot.
///
/// Slots are assigned in ascending [`TermId`] order, so iterating a
/// block's set bits visits terms in the same order as
/// [`KeywordSet::iter`] — the property that keeps projected gathers
/// producing the same sequences as the scalar code.
#[derive(Clone, Debug)]
pub struct SimUniverse {
    /// Sorted, duplicate-free universe terms; index = slot.
    slots: Box<[TermId]>,
}

impl SimUniverse {
    /// Builds the slot mapping for `universe`, or `None` when the
    /// universe has more than [`BLOCK_BITS`] terms (spill: callers keep
    /// the scalar path, which is always exact).
    pub fn new(universe: &KeywordSet) -> Option<SimUniverse> {
        if universe.len() > BLOCK_BITS {
            return None;
        }
        Some(SimUniverse {
            slots: universe.terms().to_vec().into_boxed_slice(),
        })
    }

    /// Number of slots in use (≤ [`BLOCK_BITS`]).
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when the universe is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot of `term`, if the term is in the universe.
    #[inline]
    pub fn slot_of(&self, term: TermId) -> Option<usize> {
        self.slots.binary_search(&term).ok()
    }

    /// The term occupying `slot`.
    ///
    /// # Panics
    /// If `slot >= self.len()`.
    #[inline]
    pub fn term_at(&self, slot: usize) -> TermId {
        self.slots[slot]
    }

    /// Projects an arbitrary keyword set onto the universe: the bits of
    /// `set ∩ universe` plus the set's full length.
    ///
    /// Linear merge over the two sorted sequences — done once per set,
    /// after which every intersection against it is AND + popcount.
    pub fn project(&self, set: &KeywordSet) -> ProjectedSet {
        let mut bits = BlockSet::EMPTY;
        let (mut i, mut j) = (0, 0);
        let terms = set.terms();
        while i < self.slots.len() && j < terms.len() {
            match self.slots[i].cmp(&terms[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    bits.insert(i);
                    i += 1;
                    j += 1;
                }
            }
        }
        ProjectedSet {
            bits,
            full_len: set.len() as u32,
        }
    }
}

/// A keyword set projected onto a [`SimUniverse`]: the bitset of its
/// in-universe terms plus its *full* (unprojected) cardinality.
///
/// The full length is what the similarity denominators need: for a
/// candidate `S ⊆ U` and any document `D`,
/// `|D ∩ S| = |(D ∩ U) ∩ S|`, so carrying `(bits of D ∩ U, |D|)` is
/// enough to evaluate `similarity(D, S)` exactly (see
/// [`crate::TextModel::similarity_bits`] for the precondition).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProjectedSet {
    pub(crate) bits: BlockSet,
    pub(crate) full_len: u32,
}

impl ProjectedSet {
    /// The in-universe bits.
    #[inline]
    pub fn bits(&self) -> &BlockSet {
        &self.bits
    }

    /// The full cardinality of the original (unprojected) set.
    #[inline]
    pub fn full_len(&self) -> usize {
        self.full_len as usize
    }

    /// `true` when the original set lies entirely inside the universe
    /// (no terms were dropped by projection).
    #[inline]
    pub fn in_universe(&self) -> bool {
        self.bits.count() == self.full_len
    }

    /// `|self ∩ other|` over the in-universe bits.
    #[inline]
    pub fn and_count(&self, other: &ProjectedSet) -> u32 {
        self.bits.and_count(&other.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn kernel_names_round_trip() {
        for k in Kernel::ALL {
            assert_eq!(k.name().parse::<Kernel>().unwrap(), k);
            assert_eq!(k.to_string(), k.name());
        }
        assert!("avx-512".parse::<Kernel>().is_err());
        assert_eq!(Kernel::default(), Kernel::Bitset);
    }

    #[test]
    fn block_set_insert_contains_count() {
        let mut b = BlockSet::EMPTY;
        assert_eq!(b.count(), 0);
        for slot in [0, 1, 63, 64, 127, 128, 255] {
            b.insert(slot);
            assert!(b.contains(slot));
        }
        assert_eq!(b.count(), 7);
        assert!(!b.contains(2));
        assert!(!b.contains(BLOCK_BITS + 5));
        assert_eq!(
            b.iter_slots().collect::<Vec<_>>(),
            vec![0, 1, 63, 64, 127, 128, 255]
        );
    }

    #[test]
    fn and_count_matches_naive() {
        let mut a = BlockSet::EMPTY;
        let mut b = BlockSet::EMPTY;
        for s in [0, 5, 64, 100, 200, 255] {
            a.insert(s);
        }
        for s in [5, 64, 201, 255] {
            b.insert(s);
        }
        assert_eq!(a.and_count(&b), 3);
        assert_eq!(b.and_count(&a), 3);
        assert_eq!(a.and_count(&BlockSet::EMPTY), 0);
    }

    #[test]
    fn universe_spills_past_block_bits() {
        let fits = KeywordSet::from_ids(0..BLOCK_BITS as u32);
        assert!(SimUniverse::new(&fits).is_some());
        let spills = KeywordSet::from_ids(0..=BLOCK_BITS as u32);
        assert!(SimUniverse::new(&spills).is_none());
    }

    #[test]
    fn slots_follow_term_order() {
        let uni = SimUniverse::new(&ks(&[3, 10, 42])).unwrap();
        assert_eq!(uni.len(), 3);
        assert_eq!(uni.slot_of(TermId(3)), Some(0));
        assert_eq!(uni.slot_of(TermId(10)), Some(1));
        assert_eq!(uni.slot_of(TermId(42)), Some(2));
        assert_eq!(uni.slot_of(TermId(4)), None);
        assert_eq!(uni.term_at(1), TermId(10));
    }

    #[test]
    fn projection_keeps_full_len_and_intersections() {
        let uni = SimUniverse::new(&ks(&[1, 2, 3, 10])).unwrap();
        // Document with terms outside the universe: bits cover only the
        // in-universe part, full_len the whole document.
        let doc = uni.project(&ks(&[2, 3, 77, 99]));
        assert_eq!(doc.full_len(), 4);
        assert_eq!(doc.bits().count(), 2);
        assert!(!doc.in_universe());
        // Candidate fully inside the universe.
        let cand = uni.project(&ks(&[2, 10]));
        assert!(cand.in_universe());
        assert_eq!(cand.full_len(), 2);
        // |doc ∩ cand| = |{2}| = 1, identical to the merge scan.
        assert_eq!(
            doc.and_count(&cand) as usize,
            ks(&[2, 3, 77, 99]).intersection_len(&ks(&[2, 10]))
        );
    }

    #[test]
    fn empty_universe_and_sets() {
        let uni = SimUniverse::new(&KeywordSet::empty()).unwrap();
        assert!(uni.is_empty());
        let p = uni.project(&ks(&[1, 2]));
        assert_eq!(p.bits().count(), 0);
        assert_eq!(p.full_len(), 2);
        let e = uni.project(&KeywordSet::empty());
        assert!(e.in_universe());
        assert_eq!(e.and_count(&p), 0);
    }
}
