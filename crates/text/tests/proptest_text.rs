//! Property-based tests for keyword sets, Jaccard, and keyword-count
//! maps.

use proptest::prelude::*;
use wnsk_text::{jaccard, KeywordCountMap, KeywordSet, TermId};

fn arb_set() -> impl Strategy<Value = KeywordSet> {
    proptest::collection::vec(0u32..40, 0..12).prop_map(KeywordSet::from_ids)
}

proptest! {
    #[test]
    fn jaccard_symmetric_and_bounded(a in arb_set(), b in arb_set()) {
        let j = jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(j, jaccard(&b, &a));
    }

    #[test]
    fn jaccard_identity(a in arb_set()) {
        if a.is_empty() {
            prop_assert_eq!(jaccard(&a, &a), 0.0);
        } else {
            prop_assert_eq!(jaccard(&a, &a), 1.0);
        }
    }

    #[test]
    fn set_algebra_sizes_consistent(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.union(&b).len(), a.union_len(&b));
        prop_assert_eq!(a.intersection(&b).len(), a.intersection_len(&b));
        // Inclusion-exclusion.
        prop_assert_eq!(
            a.union_len(&b) + a.intersection_len(&b),
            a.len() + b.len()
        );
    }

    #[test]
    fn difference_partition(a in arb_set(), b in arb_set()) {
        // a = (a − b) ⊎ (a ∩ b).
        let diff = a.difference(&b);
        let inter = a.intersection(&b);
        prop_assert_eq!(diff.len() + inter.len(), a.len());
        prop_assert_eq!(diff.intersection_len(&inter), 0);
        prop_assert_eq!(diff.union(&inter), a);
    }

    #[test]
    fn edit_distance_is_a_metric(a in arb_set(), b in arb_set(), c in arb_set()) {
        // Symmetric-difference size: symmetric, zero iff equal, triangle.
        prop_assert_eq!(a.edit_distance(&b), b.edit_distance(&a));
        prop_assert_eq!(a.edit_distance(&a), 0);
        if a.edit_distance(&b) == 0 {
            prop_assert_eq!(&a, &b);
        }
        prop_assert!(a.edit_distance(&c) <= a.edit_distance(&b) + b.edit_distance(&c));
    }

    #[test]
    fn subset_reflexive_and_union_superset(a in arb_set(), b in arb_set()) {
        prop_assert!(a.is_subset_of(&a));
        prop_assert!(a.is_subset_of(&a.union(&b)));
        prop_assert!(a.intersection(&b).is_subset_of(&a));
    }

    #[test]
    fn kcm_merge_matches_doc_addition(docs in proptest::collection::vec(arb_set(), 0..8)) {
        // Adding docs one at a time equals merging per-doc maps.
        let mut incremental = KeywordCountMap::new();
        for d in &docs {
            incremental.add_doc(d);
        }
        let mut merged = KeywordCountMap::new();
        for d in &docs {
            merged.merge(&KeywordCountMap::from_keyword_set(d));
        }
        prop_assert_eq!(&incremental, &merged);
        // Counts equal document frequencies.
        for t in 0u32..40 {
            let freq = docs.iter().filter(|d| d.contains(TermId(t))).count() as u32;
            prop_assert_eq!(incremental.count(TermId(t)), freq);
        }
    }

    #[test]
    fn kcm_sums_partition_total(docs in proptest::collection::vec(arb_set(), 1..8), s in arb_set()) {
        let mut kcm = KeywordCountMap::new();
        for d in &docs {
            kcm.add_doc(d);
        }
        prop_assert_eq!(kcm.sum_counts_in(&s) + kcm.sum_counts_not_in(&s), kcm.total());
    }

    #[test]
    fn from_terms_is_canonical(v in proptest::collection::vec(0u32..40, 0..20)) {
        let a = KeywordSet::from_ids(v.clone());
        let mut sorted = v;
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(a.len(), sorted.len());
        prop_assert!(a.terms().windows(2).all(|w| w[0] < w[1]));
    }
}
