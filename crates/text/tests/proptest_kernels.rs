//! Property-based cross-checks of the bitset similarity kernel against
//! the set-based reference implementations, plus deterministic edge
//! cases at the block-width boundaries (see `docs/KERNELS.md`).
//!
//! The contract under test: for any universe `U` of at most
//! [`BLOCK_BITS`] terms and any keyword set with at least one operand
//! fully inside `U`, the bitset kernel produces *bit-identical* floats
//! to the scalar merge-scan — not merely approximately equal ones.

use proptest::prelude::*;
use wnsk_text::{KeywordSet, SimUniverse, TextModel, BLOCK_BITS};

const MODELS: [TextModel; 3] = [TextModel::Jaccard, TextModel::Dice, TextModel::Cosine];

/// Up to `len` term ids drawn from `0..max` (duplicates collapse, so
/// the resulting sets are smaller).
fn arb_terms(max: u32, len: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..max, 0..len)
}

proptest! {
    #[test]
    fn projection_preserves_membership(
        u in arb_terms(1000, 180),
        s in arb_terms(1000, 60),
    ) {
        let universe = KeywordSet::from_ids(u);
        let s = KeywordSet::from_ids(s);
        // 180 draws < BLOCK_BITS distinct terms: never spills.
        let uni = SimUniverse::new(&universe);
        prop_assert!(uni.is_some());
        let uni = uni.unwrap();
        let p = uni.project(&s);

        prop_assert_eq!(p.full_len(), s.len());
        prop_assert_eq!(
            p.bits().count() as usize,
            s.intersection_len(&universe)
        );
        prop_assert_eq!(p.in_universe(), s.is_subset_of(&universe));

        // The set bits, mapped back through the universe, are exactly
        // s ∩ U in ascending term order.
        let roundtrip: Vec<_> = p.bits().iter_slots().map(|i| uni.term_at(i)).collect();
        let expected: Vec<_> = s.intersection(&universe).iter().collect();
        prop_assert_eq!(roundtrip, expected);
    }

    #[test]
    fn and_count_matches_set_intersection(
        u in arb_terms(1000, 180),
        a in arb_terms(1000, 60),
        b in arb_terms(1000, 60),
    ) {
        let universe = KeywordSet::from_ids(u);
        let a = KeywordSet::from_ids(a);
        let b = KeywordSet::from_ids(b);
        let uni = SimUniverse::new(&universe).unwrap();
        let pa = uni.project(&a);
        let pb = uni.project(&b);
        // AND+popcount over projections counts |a ∩ b ∩ U|.
        let expected = a.intersection(&universe).intersection_len(&b.intersection(&universe));
        prop_assert_eq!(pa.and_count(&pb) as usize, expected);
        prop_assert_eq!(pb.and_count(&pa) as usize, expected);
    }

    #[test]
    fn similarity_bits_matches_scalar_bit_for_bit(
        u_extra in arb_terms(1000, 120),
        a in arb_terms(1000, 60),
        b in arb_terms(1000, 60),
    ) {
        // Universe ⊇ a by construction — the exactness precondition the
        // solvers establish (candidate documents are subsets of the
        // question universe); b may stick out of it freely.
        let a = KeywordSet::from_ids(a);
        let b = KeywordSet::from_ids(b);
        let universe = a.union(&KeywordSet::from_ids(u_extra));
        let uni = SimUniverse::new(&universe).unwrap();
        let pa = uni.project(&a);
        let pb = uni.project(&b);
        prop_assert!(pa.in_universe());
        for model in MODELS {
            prop_assert_eq!(
                model.similarity_bits(&pa, &pb).to_bits(),
                model.similarity(&a, &b).to_bits(),
                "{:?}", model
            );
            // Same with the in-universe operand on either side.
            prop_assert_eq!(
                model.similarity_bits(&pb, &pa).to_bits(),
                model.similarity(&b, &a).to_bits(),
                "{:?} swapped", model
            );
        }
    }
}

/// Empty operands: every model defines the similarity as 0, and the
/// kernel must agree exactly.
#[test]
fn empty_sets_agree() {
    let empty = KeywordSet::from_ids([] as [u32; 0]);
    let other = KeywordSet::from_ids([1, 2, 3]);
    let uni = SimUniverse::new(&other).unwrap();
    for model in MODELS {
        for (x, y) in [(&empty, &empty), (&empty, &other), (&other, &empty)] {
            assert_eq!(
                model
                    .similarity_bits(&uni.project(x), &uni.project(y))
                    .to_bits(),
                model.similarity(x, y).to_bits(),
                "{model:?} on {x:?} vs {y:?}"
            );
        }
    }

    // The empty universe is valid too: everything projects to no bits.
    let uni = SimUniverse::new(&empty).unwrap();
    assert_eq!(uni.len(), 0);
    let p = uni.project(&other);
    assert_eq!(p.bits().count(), 0);
    assert_eq!(p.full_len(), other.len());
}

/// A universe of exactly `BLOCK_BITS` terms fills every word of the
/// block; one more term spills to the scalar fallback (`None`).
#[test]
fn full_width_universe_and_spill() {
    let full = KeywordSet::from_ids(0..BLOCK_BITS as u32);
    let uni = SimUniverse::new(&full).expect("exactly BLOCK_BITS terms must fit");
    assert_eq!(uni.len(), BLOCK_BITS);
    let p = uni.project(&full);
    assert!(p.in_universe());
    assert_eq!(p.bits().count() as usize, BLOCK_BITS);
    for model in MODELS {
        assert_eq!(
            model.similarity_bits(&p, &p).to_bits(),
            model.similarity(&full, &full).to_bits()
        );
    }

    let over = KeywordSet::from_ids(0..=BLOCK_BITS as u32);
    assert!(SimUniverse::new(&over).is_none(), "spill must be detected");
}

/// Sets whose slots straddle the 64-bit word boundaries inside the
/// block: the AND+popcount must count across words without losing the
/// edges.
#[test]
fn sets_straddling_word_boundaries_agree() {
    // Universe of 200 terms → slots cross the word seams at 64 and 128.
    let universe = KeywordSet::from_ids((0..200u32).map(|t| t * 3));
    let uni = SimUniverse::new(&universe).unwrap();
    // Terms sitting exactly on and around the seams (slot == term index
    // here because the universe is the sorted term list).
    let seam_slots = [0usize, 62, 63, 64, 65, 126, 127, 128, 129, 190, 199];
    let a = KeywordSet::from_ids(seam_slots.iter().map(|&i| uni.term_at(i).0));
    let b = KeywordSet::from_ids([63, 64, 128].iter().map(|&i| uni.term_at(i).0));
    let pa = uni.project(&a);
    let pb = uni.project(&b);
    assert_eq!(pa.and_count(&pb) as usize, a.intersection_len(&b));
    for model in MODELS {
        assert_eq!(
            model.similarity_bits(&pa, &pb).to_bits(),
            model.similarity(&a, &b).to_bits()
        );
    }
}
