//! The kernel-docs lint: `docs/KERNELS.md` must agree with the code it
//! documents, so the performance-model reference cannot drift. CI runs
//! this as an explicit lint step
//! (`cargo test -p wnsk-text --test kernel_docs`), the same pattern as
//! the metrics-name lint in `crates/obs/tests/metrics_names.rs`.

use wnsk_text::{Kernel, KeywordSet, SimUniverse, TextModel, BLOCK_BITS, BLOCK_WORDS};

fn kernels_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/KERNELS.md");
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("docs/KERNELS.md must exist next to the workspace: {e}"))
}

/// The documented block dimensions must be the compiled ones: the doc
/// states them as `` `BLOCK_WORDS = 4` `` / `` `BLOCK_BITS = 256` ``
/// and this test re-renders those snippets from the source constants.
#[test]
fn documented_block_dimensions_match_source() {
    let doc = kernels_doc();
    for snippet in [
        format!("`BLOCK_WORDS = {BLOCK_WORDS}`"),
        format!("`BLOCK_BITS = {BLOCK_BITS}`"),
    ] {
        assert!(
            doc.contains(&snippet),
            "docs/KERNELS.md must state {snippet} (the constants changed, \
             or the doc stopped pinning them)"
        );
    }
}

/// Every kernel the A/B switch accepts is documented by its CLI name,
/// and the documented default is the real default.
#[test]
fn documented_kernel_names_match_source() {
    let doc = kernels_doc();
    for k in Kernel::ALL {
        assert!(
            doc.contains(&format!("`{k}`")) || doc.contains(&format!("{k}|")),
            "docs/KERNELS.md never names kernel `{k}`"
        );
    }
    let default_snippet = format!("default kernel: `{}`", Kernel::default());
    assert!(
        doc.contains(&default_snippet),
        "docs/KERNELS.md must state \"{default_snippet}\" (the default changed?)"
    );
}

/// The public API the doc walks through must still exist under the
/// documented names. Referencing the items here makes a rename fail
/// this lint at compile time; the string checks catch the doc dropping
/// them.
#[test]
fn documented_api_names_exist_and_are_mentioned() {
    let doc = kernels_doc();
    for name in [
        "SimUniverse",
        "ProjectedSet",
        "BlockSet",
        "and_count",
        "in_universe",
        "similarity_bits",
        "profile_bits",
        "with_projection",
        "max_dom_counts",
        "min_dom_counts",
        "LeafSimKernel",
    ] {
        assert!(
            doc.contains(name),
            "docs/KERNELS.md no longer mentions `{name}`"
        );
    }

    // Compile-time existence checks for the wnsk-text side of the list
    // (the wnsk-index items are covered by that crate's own tests).
    let u = KeywordSet::from_ids([1u32, 2, 3]);
    let uni = SimUniverse::new(&u).expect("three terms fit any block");
    let p = uni.project(&u);
    assert!(p.in_universe());
    assert_eq!(p.bits().and_count(p.bits()), 3);
    let _ = TextModel::Jaccard.similarity_bits(&p, &p);
}

/// The documented exactness contract: one operand inside the universe
/// suffices even when the other spills far outside it. This is the
/// claim the doc's `|D ∩ S| = |(D ∩ U) ∩ S|` line makes.
#[test]
fn documented_exactness_contract_holds() {
    let universe = KeywordSet::from_ids([2u32, 3, 5, 8]);
    let inside = KeywordSet::from_ids([3u32, 5]);
    let outside = KeywordSet::from_ids([3u32, 5, 100, 200, 300]);
    let uni = SimUniverse::new(&universe).unwrap();
    let pi = uni.project(&inside);
    let po = uni.project(&outside);
    assert!(pi.in_universe());
    assert!(!po.in_universe());
    for model in [TextModel::Jaccard, TextModel::Dice, TextModel::Cosine] {
        assert_eq!(
            model.similarity_bits(&pi, &po).to_bits(),
            model.similarity(&inside, &outside).to_bits()
        );
    }
}
