//! Property-based tests for the page store, buffer pool, and blob store.

use proptest::prelude::*;
use std::sync::Arc;
use wnsk_storage::{
    BlobStore, BufferPool, BufferPoolConfig, MemBackend, PageId, StorageBackend, PAGE_DATA_SIZE,
    PAGE_SIZE,
};

fn pool_with(frames: usize, shards: usize, pages: u64) -> Arc<BufferPool> {
    let backend = Arc::new(MemBackend::new());
    let pool = Arc::new(BufferPool::new(
        backend,
        BufferPoolConfig {
            capacity_bytes: frames * PAGE_SIZE,
            shards,
            ..BufferPoolConfig::default()
        },
    ));
    for i in 0..pages {
        let id = pool.allocate().unwrap();
        pool.write(id, &i.to_le_bytes()).unwrap();
    }
    pool.clear_cache();
    pool
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the access pattern, reads are coherent and the cache
    /// never exceeds its frame budget.
    #[test]
    fn pool_reads_are_coherent_under_any_pattern(
        accesses in proptest::collection::vec(0u64..64, 1..200),
        frames in 4usize..32,
    ) {
        let pool = pool_with(frames, 4, 64);
        for id in accesses {
            let page = pool.read(PageId(id)).unwrap();
            let mut tag = [0u8; 8];
            tag.copy_from_slice(&page[..8]);
            prop_assert_eq!(u64::from_le_bytes(tag), id);
            prop_assert!(pool.resident_pages() <= frames);
        }
        let stats = pool.stats();
        prop_assert!(stats.physical_reads <= stats.logical_reads);
    }

    /// Every distinct page is fetched at most once when the working set
    /// fits in the pool.
    #[test]
    fn no_refetch_when_working_set_fits(
        accesses in proptest::collection::vec(0u64..8, 1..100),
    ) {
        let pool = pool_with(16, 1, 8);
        let distinct: std::collections::HashSet<_> = accesses.iter().copied().collect();
        for id in &accesses {
            pool.read(PageId(*id)).unwrap();
        }
        prop_assert_eq!(pool.stats().physical_reads, distinct.len() as u64);
    }

    /// Blobs of arbitrary content round-trip bit-exactly, across page
    /// boundaries.
    #[test]
    fn blob_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..3 * PAGE_SIZE)) {
        let pool = pool_with(1024, 4, 0);
        let store = BlobStore::new(pool);
        let blob = store.write(&data).unwrap();
        prop_assert_eq!(store.read(blob).unwrap(), data);
    }

    /// Many interleaved blobs stay independent.
    #[test]
    fn interleaved_blobs_do_not_corrupt(
        blobs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..5000), 1..10),
    ) {
        let pool = pool_with(1024, 4, 0);
        let store = BlobStore::new(pool);
        let refs: Vec<_> = blobs.iter().map(|b| store.write(b).unwrap()).collect();
        for (r, b) in refs.iter().zip(&blobs) {
            prop_assert_eq!(&store.read(*r).unwrap(), b);
        }
    }

    /// Page writes through the pool are durable on the backend, with the
    /// CRC trailer embedded in the raw frame.
    #[test]
    fn write_through_is_durable(contents in proptest::collection::vec(any::<u8>(), PAGE_DATA_SIZE..=PAGE_DATA_SIZE)) {
        let backend = Arc::new(MemBackend::new());
        let id = backend.allocate_page().unwrap();
        let pool = BufferPool::with_default_config(Arc::clone(&backend) as Arc<dyn StorageBackend>);
        pool.write(id, &contents).unwrap();
        // Read straight from the backend, bypassing the cache.
        let mut raw = vec![0u8; PAGE_SIZE];
        backend.read_page(id, &mut raw).unwrap();
        prop_assert_eq!(&raw[..PAGE_DATA_SIZE], &contents[..]);
        let stored = u32::from_le_bytes(raw[PAGE_DATA_SIZE..].try_into().unwrap());
        prop_assert_eq!(stored, wnsk_storage::crc::crc32(&contents));
        // And the verified read round-trips.
        pool.clear_cache();
        prop_assert_eq!(&pool.read(id).unwrap()[..], &contents[..]);
    }
}
