//! Write-ahead log on the checksummed page store.
//!
//! The WAL turns the bulk-built, read-only substrate into a durable
//! write path: every mutation is appended as a record, a *group commit*
//! flushes all buffered records with a single [`crate::StorageBackend::sync`],
//! and recovery replays the committed prefix — truncating at the first
//! torn or corrupt record — so a restarted engine rebuilds state
//! bit-identical to one that never crashed.
//!
//! # Record format
//!
//! ```text
//! [len: u32] [lsn: u64] [kind: u8] [payload: len-17 bytes] [crc: u32]
//! ```
//!
//! `len` is the total record length (header + payload + trailer, so
//! `len ≥ 17`); `crc` is the CRC32 of `lsn ‖ kind ‖ payload`. LSNs are
//! assigned densely from 1 at append time — any discontinuity on replay
//! is a [`WalError::LsnGap`].
//!
//! # Page layout
//!
//! Records never span pages: they are packed back-to-back into
//! [`PAGE_DATA_SIZE`]-byte page payloads (the buffer pool owns the page
//! CRC trailer) and a record that does not fit moves to the next page,
//! leaving a zero fill behind. Each commit batch starts on a *fresh*
//! page, so a torn write can only damage pages of the batch that was in
//! flight — never previously committed records. A page whose first
//! length field is zero ends the log.
//!
//! # Recovery
//!
//! [`Wal::recover`] scans pages in order, replays every complete record
//! through the caller's closure, and stops at the first of: an
//! unreadable page (page-level CRC mismatch from a torn write →
//! [`WalError::TornRecord`]), a record whose embedded CRC does not match
//! ([`WalError::ChecksumMismatch`]), or a non-dense LSN
//! ([`WalError::LsnGap`]). Everything from the failure point on is
//! physically truncated (zero-filled) so the log tail is clean for new
//! appends, and the outcome is summarised in a [`RecoveryReport`].

use crate::crc::crc32;
use crate::{BufferPool, PageId, Result, StorageError, PAGE_DATA_SIZE};
use std::fmt;
use std::sync::Arc;

/// Fixed overhead of one record: `len (4) + lsn (8) + kind (1) + crc (4)`.
const RECORD_OVERHEAD: usize = 17;

/// Largest payload that fits a single page alongside the overhead.
pub const MAX_PAYLOAD: usize = PAGE_DATA_SIZE - RECORD_OVERHEAD;

/// Why a recovery scan stopped before the end of the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// A page of the tail batch was torn mid-write: its page-level CRC no
    /// longer verifies, so none of its records are trustworthy.
    TornRecord { page: PageId },
    /// A record's embedded CRC32 does not match its header + payload.
    ChecksumMismatch { page: PageId, lsn: u64 },
    /// A record's LSN is not the successor of the previous record's.
    LsnGap { expected: u64, found: u64 },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::TornRecord { page } => {
                write!(f, "torn WAL page {page:?}: page checksum does not verify")
            }
            WalError::ChecksumMismatch { page, lsn } => {
                write!(f, "WAL record lsn {lsn} on {page:?} failed its CRC32")
            }
            WalError::LsnGap { expected, found } => {
                write!(f, "WAL LSN gap: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for WalError {}

/// Outcome of a [`Wal::recover`] scan, surfaced via `--metrics` as the
/// `wal.recovered_records` / `wal.truncated_bytes` counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Complete, checksum-verified records replayed into the engine.
    pub records_replayed: u64,
    /// Log payload bytes discarded from the failure point to the end of
    /// the file (zero when the log was clean).
    pub bytes_truncated: u64,
    /// LSN of the last replayed record (0 when the log was empty). This
    /// is also the dataset epoch the recovered engine starts from.
    pub last_lsn: u64,
    /// What stopped the scan, when it was not a clean end of log.
    pub stopped_by: Option<WalError>,
}

/// An append-only write-ahead log over a dedicated page store.
///
/// `append` buffers a record and assigns its LSN; `commit` packs the
/// buffered batch into freshly allocated pages, writes them through the
/// (checksumming) buffer pool, and issues one [`BufferPool::sync`] — the
/// group commit. A record is durable only once the covering commit
/// returned `Ok`.
pub struct Wal {
    pool: Arc<BufferPool>,
    /// Buffered `(kind, payload)` records awaiting the next group commit.
    pending: Vec<(u8, Vec<u8>)>,
    /// LSN the next appended record receives.
    next_lsn: u64,
    /// First page the next commit batch writes to (≤ page_count; pages
    /// past a truncation point are reused before new ones are allocated).
    next_page: u64,
    appends: Option<wnsk_obs::Counter>,
    commits: Option<wnsk_obs::Counter>,
}

impl Wal {
    /// Opens a WAL over an *empty* page store.
    pub fn create(pool: Arc<BufferPool>) -> Self {
        Wal {
            pool,
            pending: Vec::new(),
            next_lsn: 1,
            next_page: 0,
            appends: None,
            commits: None,
        }
    }

    /// Scans an existing log, feeding every complete committed record to
    /// `apply(lsn, kind, payload)` in LSN order, truncating the tail at
    /// the first torn/corrupt record, and returning the writable log
    /// positioned after the survivors.
    pub fn recover(
        pool: Arc<BufferPool>,
        mut apply: impl FnMut(u64, u8, &[u8]) -> Result<()>,
    ) -> Result<(Self, RecoveryReport)> {
        let mut report = RecoveryReport::default();
        let page_count = pool.backend().page_count();
        let mut next_lsn = 1u64;
        let mut stop: Option<(u64, usize, WalError)> = None; // (page, keep-bytes, error)
        let mut end_page = page_count;

        'scan: for page in 0..page_count {
            let bytes = match pool.read(PageId(page)) {
                Ok(b) => b,
                Err(StorageError::ChecksumMismatch { .. }) => {
                    stop = Some((page, 0, WalError::TornRecord { page: PageId(page) }));
                    break 'scan;
                }
                Err(e) => return Err(e),
            };
            let mut offset = 0usize;
            loop {
                if offset + 4 > PAGE_DATA_SIZE {
                    break; // no room for another length field: next page
                }
                let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
                if len == 0 || len == u32::MAX {
                    if offset == 0 {
                        // A page with no records ends the log.
                        end_page = page;
                        break 'scan;
                    }
                    break; // zero fill: batch continues on the next page
                }
                let len = len as usize;
                if len < RECORD_OVERHEAD || offset + len > PAGE_DATA_SIZE {
                    stop = Some((
                        page,
                        offset,
                        WalError::ChecksumMismatch {
                            page: PageId(page),
                            lsn: next_lsn,
                        },
                    ));
                    break 'scan;
                }
                let record = &bytes[offset..offset + len];
                let lsn = u64::from_le_bytes(record[4..12].try_into().unwrap());
                let kind = record[12];
                let payload = &record[13..len - 4];
                let stored = u32::from_le_bytes(record[len - 4..].try_into().unwrap());
                if crc32(&record[4..len - 4]) != stored {
                    stop = Some((
                        page,
                        offset,
                        WalError::ChecksumMismatch {
                            page: PageId(page),
                            lsn,
                        },
                    ));
                    break 'scan;
                }
                if lsn != next_lsn {
                    stop = Some((
                        page,
                        offset,
                        WalError::LsnGap {
                            expected: next_lsn,
                            found: lsn,
                        },
                    ));
                    break 'scan;
                }
                apply(lsn, kind, payload)?;
                report.records_replayed += 1;
                report.last_lsn = lsn;
                next_lsn += 1;
                offset += len;
            }
        }

        if let Some((page, keep, err)) = stop {
            // Physically truncate: keep the replayed prefix of the failing
            // page, zero the rest of the file so a second recovery (and
            // future appends) see a clean tail.
            let bytes = if keep > 0 {
                pool.read(PageId(page)).expect("prefix page was just read")[..keep].to_vec()
            } else {
                Vec::new()
            };
            pool.write(PageId(page), &bytes)?;
            for p in page + 1..page_count {
                pool.write(PageId(p), &[])?;
            }
            report.bytes_truncated = (page_count - page) * PAGE_DATA_SIZE as u64 - keep as u64;
            report.stopped_by = Some(err);
            end_page = if keep > 0 { page + 1 } else { page };
        }

        let wal = Wal {
            pool,
            pending: Vec::new(),
            next_lsn,
            next_page: end_page,
            appends: None,
            commits: None,
        };
        Ok((wal, report))
    }

    /// Publishes `wal.appends` / `wal.commits` counters into `registry`.
    pub fn register_metrics(&mut self, registry: &wnsk_obs::Registry) {
        self.appends = Some(registry.counter(wnsk_obs::names::WAL_APPENDS));
        self.commits = Some(registry.counter(wnsk_obs::names::WAL_COMMITS));
    }

    /// Buffers one record for the next group commit and returns its LSN.
    ///
    /// Payloads are capped at [`MAX_PAYLOAD`] so a record always fits one
    /// page ([`StorageError::InvalidArgument`] otherwise).
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<u64> {
        if payload.len() > MAX_PAYLOAD {
            return Err(StorageError::invalid_argument(
                "wal append",
                format!(
                    "payload of {} bytes exceeds the {MAX_PAYLOAD}-byte record cap",
                    payload.len()
                ),
            ));
        }
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.pending.push((kind, payload.to_vec()));
        if let Some(c) = &self.appends {
            c.add(1);
        }
        Ok(lsn)
    }

    /// Number of records buffered but not yet committed.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// LSN of the last appended record (0 when nothing was ever appended).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Group commit: packs every buffered record into freshly started
    /// pages, writes them through the pool, and issues one sync. The
    /// batch is durable iff this returns `Ok`.
    ///
    /// On failure the batch is dropped from the buffer rather than
    /// retried: its LSNs may or may not have reached the disk, which is
    /// exactly the ambiguity crash recovery resolves — the caller should
    /// treat the engine as crashed and recover.
    pub fn commit(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let batch_lsn0 = self.next_lsn - self.pending.len() as u64;
        let pending = std::mem::take(&mut self.pending);

        let mut page = vec![0u8; 0];
        let mut pages: Vec<Vec<u8>> = Vec::new();
        for (i, (kind, payload)) in pending.iter().enumerate() {
            let len = RECORD_OVERHEAD + payload.len();
            if page.len() + len > PAGE_DATA_SIZE {
                pages.push(std::mem::take(&mut page));
            }
            let lsn = batch_lsn0 + i as u64;
            page.extend_from_slice(&(len as u32).to_le_bytes());
            let body_start = page.len();
            page.extend_from_slice(&lsn.to_le_bytes());
            page.push(*kind);
            page.extend_from_slice(payload);
            let crc = crc32(&page[body_start..]);
            page.extend_from_slice(&crc.to_le_bytes());
        }
        if !page.is_empty() {
            pages.push(page);
        }

        for data in &pages {
            let id = self.next_page;
            while id >= self.pool.backend().page_count() {
                self.pool.allocate()?;
            }
            self.pool.write(PageId(id), data)?;
            self.next_page += 1;
        }
        self.pool.sync()?;
        if let Some(c) = &self.commits {
            c.add(1);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultBackend, FaultKind, FaultPlan};
    use crate::{BufferPoolConfig, MemBackend, StorageBackend, PAGE_SIZE};

    fn mem_pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::with_default_config(Arc::new(MemBackend::new())))
    }

    type ReplayedRecords = Vec<(u64, u8, Vec<u8>)>;

    fn replayed(pool: Arc<BufferPool>) -> (ReplayedRecords, RecoveryReport, Wal) {
        let mut out = Vec::new();
        let (wal, report) = Wal::recover(pool, |lsn, kind, payload| {
            out.push((lsn, kind, payload.to_vec()));
            Ok(())
        })
        .unwrap();
        (out, report, wal)
    }

    #[test]
    fn append_commit_recover_roundtrip() {
        let pool = mem_pool();
        let mut wal = Wal::create(Arc::clone(&pool));
        assert_eq!(wal.append(1, b"alpha").unwrap(), 1);
        assert_eq!(wal.append(2, b"beta").unwrap(), 2);
        wal.commit().unwrap();
        wal.append(3, b"gamma").unwrap();
        wal.commit().unwrap();

        let (records, report, recovered) = replayed(pool);
        assert_eq!(
            records,
            vec![
                (1, 1, b"alpha".to_vec()),
                (2, 2, b"beta".to_vec()),
                (3, 3, b"gamma".to_vec()),
            ]
        );
        assert_eq!(report.records_replayed, 3);
        assert_eq!(report.last_lsn, 3);
        assert_eq!(report.bytes_truncated, 0);
        assert!(report.stopped_by.is_none());
        assert_eq!(recovered.last_lsn(), 3);
    }

    #[test]
    fn empty_log_recovers_empty() {
        let (records, report, wal) = replayed(mem_pool());
        assert!(records.is_empty());
        assert_eq!(report, RecoveryReport::default());
        assert_eq!(wal.last_lsn(), 0);
    }

    #[test]
    fn appends_after_recovery_continue_the_lsn_sequence() {
        let pool = mem_pool();
        let mut wal = Wal::create(Arc::clone(&pool));
        wal.append(1, b"one").unwrap();
        wal.commit().unwrap();

        let (_, _, mut wal) = replayed(Arc::clone(&pool));
        assert_eq!(wal.append(1, b"two").unwrap(), 2);
        wal.commit().unwrap();

        let (records, report, _) = replayed(pool);
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].0, 2);
        assert!(report.stopped_by.is_none());
    }

    #[test]
    fn batches_spanning_pages_replay_in_order() {
        let pool = mem_pool();
        let mut wal = Wal::create(Arc::clone(&pool));
        // ~40 records × ~120 bytes ≫ one page.
        for i in 0..40u8 {
            wal.append(i, &[i; 100]).unwrap();
        }
        wal.commit().unwrap();
        let (records, report, _) = replayed(pool);
        assert_eq!(records.len(), 40);
        assert!(records.iter().enumerate().all(|(i, r)| r.0 == i as u64 + 1));
        assert!(report.stopped_by.is_none());
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let mut wal = Wal::create(mem_pool());
        let err = wal.append(1, &vec![0u8; MAX_PAYLOAD + 1]).unwrap_err();
        assert!(matches!(err, StorageError::InvalidArgument { .. }), "{err}");
        assert_eq!(wal.pending(), 0);
        wal.append(1, &vec![0u8; MAX_PAYLOAD]).unwrap();
    }

    #[test]
    fn torn_tail_page_is_truncated_and_prior_commits_survive() {
        let backend = Arc::new(MemBackend::new());
        let pool = Arc::new(BufferPool::with_default_config(
            Arc::clone(&backend) as Arc<dyn StorageBackend>
        ));
        let mut wal = Wal::create(Arc::clone(&pool));
        wal.append(1, b"committed").unwrap();
        wal.commit().unwrap();
        wal.append(2, b"doomed").unwrap();
        wal.commit().unwrap();

        // Tear the second batch's page behind the pool's back, like a
        // power cut mid-write: second half (including the page CRC) zeroed.
        let mut raw = vec![0u8; PAGE_SIZE];
        backend.read_page(PageId(1), &mut raw).unwrap();
        raw[PAGE_SIZE / 2..].fill(0);
        backend.write_page(PageId(1), &raw).unwrap();
        pool.clear_cache();

        let (records, report, mut wal) = replayed(Arc::clone(&pool));
        assert_eq!(records, vec![(1, 1, b"committed".to_vec())]);
        assert_eq!(
            report.stopped_by,
            Some(WalError::TornRecord { page: PageId(1) })
        );
        assert!(report.bytes_truncated > 0);

        // The tail was physically cleaned: appending and re-recovering
        // yields a dense log again.
        wal.append(7, b"after crash").unwrap();
        wal.commit().unwrap();
        pool.clear_cache();
        let (records, report, _) = replayed(pool);
        assert_eq!(records.len(), 2);
        assert_eq!(records[1], (2, 7, b"after crash".to_vec()));
        assert!(report.stopped_by.is_none());
    }

    #[test]
    fn record_crc_mismatch_stops_and_keeps_the_prefix() {
        let backend = Arc::new(MemBackend::new());
        let pool = Arc::new(BufferPool::with_default_config(
            Arc::clone(&backend) as Arc<dyn StorageBackend>
        ));
        let mut wal = Wal::create(Arc::clone(&pool));
        wal.append(1, b"good").unwrap();
        wal.append(1, b"bad").unwrap();
        wal.commit().unwrap();

        // Flip one payload bit of the *second* record and re-embed a valid
        // page CRC, so only the record-level checksum can catch it.
        let page = pool.read(PageId(0)).unwrap();
        let mut data = page.to_vec();
        let first_len = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
        data[first_len + 13] ^= 0x01;
        pool.write(PageId(0), &data[..first_len + RECORD_OVERHEAD + 3])
            .unwrap();
        pool.clear_cache();

        let (records, report, _) = replayed(pool);
        assert_eq!(records, vec![(1, 1, b"good".to_vec())]);
        assert!(matches!(
            report.stopped_by,
            Some(WalError::ChecksumMismatch { lsn: 2, .. })
        ));
        assert_eq!(report.records_replayed, 1);
    }

    #[test]
    fn lsn_gap_stops_replay() {
        let backend = Arc::new(MemBackend::new());
        let pool = Arc::new(BufferPool::with_default_config(
            Arc::clone(&backend) as Arc<dyn StorageBackend>
        ));
        let mut wal = Wal::create(Arc::clone(&pool));
        wal.append(1, b"one").unwrap();
        wal.commit().unwrap();

        // Hand-craft a record with LSN 5 (expected 2) in a fresh page.
        let lsn: u64 = 5;
        let payload = b"gap";
        let len = RECORD_OVERHEAD + payload.len();
        let mut rec = Vec::new();
        rec.extend_from_slice(&(len as u32).to_le_bytes());
        let body = rec.len();
        rec.extend_from_slice(&lsn.to_le_bytes());
        rec.push(9);
        rec.extend_from_slice(payload);
        let crc = crc32(&rec[body..]);
        rec.extend_from_slice(&crc.to_le_bytes());
        let id = pool.allocate().unwrap();
        pool.write(id, &rec).unwrap();
        pool.clear_cache();

        let (records, report, _) = replayed(pool);
        assert_eq!(records.len(), 1);
        assert_eq!(
            report.stopped_by,
            Some(WalError::LsnGap {
                expected: 2,
                found: 5
            })
        );
    }

    #[test]
    fn failed_sync_fails_the_commit() {
        let plan = FaultPlan::new(3).with_sync_error_prob(1.0);
        let fb = Arc::new(FaultBackend::new(MemBackend::new(), plan));
        let pool = Arc::new(BufferPool::new(
            fb,
            BufferPoolConfig {
                retry: crate::RetryPolicy::none(),
                ..BufferPoolConfig::default()
            },
        ));
        let mut wal = Wal::create(pool);
        wal.append(1, b"unsynced").unwrap();
        let err = wal.commit().unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert_eq!(wal.pending(), 0, "the ambiguous batch is not retried");
    }

    #[test]
    fn torn_write_fault_during_commit_truncates_on_recovery() {
        // Write through a FaultBackend that tears the *first* page write
        // of the second commit. Recovery must keep commit #1 intact.
        let plan = FaultPlan::new(5).with_scripted(2, FaultKind::TornWrite);
        let fb = Arc::new(FaultBackend::new(MemBackend::new(), plan));
        let pool = Arc::new(BufferPool::new(
            fb,
            BufferPoolConfig {
                retry: crate::RetryPolicy::none(),
                ..BufferPoolConfig::default()
            },
        ));
        let mut wal = Wal::create(Arc::clone(&pool));
        wal.append(1, b"first").unwrap();
        wal.commit().unwrap(); // op 0 write, op 1 sync
        wal.append(2, b"second").unwrap();
        wal.commit().unwrap(); // op 2 write: torn
        pool.clear_cache();

        let (records, report, _) = replayed(pool);
        assert_eq!(records, vec![(1, 1, b"first".to_vec())]);
        assert!(matches!(
            report.stopped_by,
            Some(WalError::TornRecord { .. })
        ));
    }

    #[test]
    fn metrics_count_appends_and_commits() {
        let registry = wnsk_obs::Registry::new();
        let mut wal = Wal::create(mem_pool());
        wal.register_metrics(&registry);
        wal.append(1, b"a").unwrap();
        wal.append(1, b"b").unwrap();
        wal.commit().unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("wal.appends"), 2);
        assert_eq!(snap.counter("wal.commits"), 1);
    }
}
