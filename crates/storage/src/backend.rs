use crate::{PageId, Result, StorageError, PAGE_SIZE};
use parking_lot::RwLock;
use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// A page device: fixed-size pages addressed by [`PageId`].
///
/// Backends are dumb and synchronous; caching and I/O accounting live in
/// the [`BufferPool`](crate::BufferPool) above them. Implementations must
/// be thread-safe — the parallel optimisation (§IV-C4) reads pages from
/// many threads.
pub trait StorageBackend: Send + Sync {
    /// Reads page `id` into `buf` (`buf.len() == PAGE_SIZE`, otherwise
    /// [`StorageError::BadPageBuffer`]).
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()>;

    /// Writes page `id` from `data` (`data.len() == PAGE_SIZE`, otherwise
    /// [`StorageError::BadPageBuffer`]).
    fn write_page(&self, id: PageId, data: &[u8]) -> Result<()>;

    /// Allocates a fresh zeroed page and returns its id.
    fn allocate_page(&self) -> Result<PageId>;

    /// Number of allocated pages.
    fn page_count(&self) -> u64;

    /// Makes previously written pages durable (fsync-style). The
    /// write-ahead log calls this once per group commit; a record is
    /// *committed* only once the `sync` covering it returned `Ok`.
    ///
    /// The default is a no-op: in-memory backends are "durable" for as
    /// long as the process lives, which is exactly the crash model the
    /// recovery tests simulate by cloning pages out from under a torn
    /// writer.
    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// An in-memory backend: a growable vector of pages.
///
/// This is the default substrate for experiments — it keeps the I/O
/// *accounting* of a disk system (through the buffer pool) without paying
/// milliseconds per access, exactly like simulator-style evaluations.
#[derive(Default)]
pub struct MemBackend {
    pages: RwLock<Vec<Box<[u8]>>>,
}

impl MemBackend {
    /// Creates an empty backend.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A malformed caller surfaces a typed error instead of aborting the
/// process.
fn check_page_buf(len: usize) -> Result<()> {
    if len != PAGE_SIZE {
        return Err(StorageError::BadPageBuffer {
            expected: PAGE_SIZE,
            actual: len,
        });
    }
    Ok(())
}

impl StorageBackend for MemBackend {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        check_page_buf(buf.len())?;
        let pages = self.pages.read();
        let page = pages
            .get(id.0 as usize)
            .ok_or(StorageError::PageOutOfBounds {
                page: id,
                allocated: pages.len() as u64,
            })?;
        buf.copy_from_slice(page);
        Ok(())
    }

    fn write_page(&self, id: PageId, data: &[u8]) -> Result<()> {
        check_page_buf(data.len())?;
        let mut pages = self.pages.write();
        let len = pages.len() as u64;
        let page = pages
            .get_mut(id.0 as usize)
            .ok_or(StorageError::PageOutOfBounds {
                page: id,
                allocated: len,
            })?;
        page.copy_from_slice(data);
        Ok(())
    }

    fn allocate_page(&self) -> Result<PageId> {
        let mut pages = self.pages.write();
        let id = PageId(pages.len() as u64);
        pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        Ok(id)
    }

    fn page_count(&self) -> u64 {
        self.pages.read().len() as u64
    }
}

/// A file-backed backend using positioned reads/writes.
///
/// Page `i` lives at byte offset `i * PAGE_SIZE`. Used by the persistence
/// integration tests to prove the index formats survive a round trip
/// through a real file.
pub struct FileBackend {
    file: File,
    allocated: AtomicU64,
}

impl FileBackend {
    /// Creates (truncating) a backend at `path`.
    pub fn create(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileBackend {
            file,
            allocated: AtomicU64::new(0),
        })
    }

    /// Opens an existing backend; the page count is derived from the file
    /// length.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::corrupt(
                "file backend",
                format!("file length {len} is not a multiple of the page size"),
            ));
        }
        Ok(FileBackend {
            file,
            allocated: AtomicU64::new(len / PAGE_SIZE as u64),
        })
    }
}

impl StorageBackend for FileBackend {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        check_page_buf(buf.len())?;
        if id.0 >= self.allocated.load(Ordering::Acquire) {
            return Err(StorageError::PageOutOfBounds {
                page: id,
                allocated: self.allocated.load(Ordering::Acquire),
            });
        }
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, id.0 * PAGE_SIZE as u64)?;
        Ok(())
    }

    fn write_page(&self, id: PageId, data: &[u8]) -> Result<()> {
        check_page_buf(data.len())?;
        if id.0 >= self.allocated.load(Ordering::Acquire) {
            return Err(StorageError::PageOutOfBounds {
                page: id,
                allocated: self.allocated.load(Ordering::Acquire),
            });
        }
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(data, id.0 * PAGE_SIZE as u64)?;
        Ok(())
    }

    fn allocate_page(&self) -> Result<PageId> {
        let id = self.allocated.fetch_add(1, Ordering::AcqRel);
        // Extend the file eagerly so reads of freshly allocated pages see
        // zeroes rather than EOF.
        self.file.set_len((id + 1) * PAGE_SIZE as u64)?;
        Ok(PageId(id))
    }

    fn page_count(&self) -> u64 {
        self.allocated.load(Ordering::Acquire)
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(backend: &dyn StorageBackend) {
        let a = backend.allocate_page().unwrap();
        let b = backend.allocate_page().unwrap();
        assert_ne!(a, b);
        assert_eq!(backend.page_count(), 2);

        let mut data = vec![0u8; PAGE_SIZE];
        data[0] = 0xAB;
        data[PAGE_SIZE - 1] = 0xCD;
        backend.write_page(b, &data).unwrap();

        let mut out = vec![0u8; PAGE_SIZE];
        backend.read_page(b, &mut out).unwrap();
        assert_eq!(out, data);

        // Page `a` is still zeroed.
        backend.read_page(a, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
    }

    #[test]
    fn mem_backend_roundtrip() {
        roundtrip(&MemBackend::new());
    }

    #[test]
    fn wrong_buffer_length_is_typed_error() {
        let m = MemBackend::new();
        m.allocate_page().unwrap();
        let mut short = vec![0u8; 12];
        assert!(matches!(
            m.read_page(PageId(0), &mut short),
            Err(StorageError::BadPageBuffer {
                expected: PAGE_SIZE,
                actual: 12
            })
        ));
        assert!(matches!(
            m.write_page(PageId(0), &short),
            Err(StorageError::BadPageBuffer { .. })
        ));

        let dir = std::env::temp_dir().join(format!("wnsk-fb3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let f = FileBackend::create(&path).unwrap();
        f.allocate_page().unwrap();
        assert!(matches!(
            f.read_page(PageId(0), &mut short),
            Err(StorageError::BadPageBuffer { .. })
        ));
        assert!(matches!(
            f.write_page(PageId(0), &short),
            Err(StorageError::BadPageBuffer { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mem_backend_out_of_bounds() {
        let b = MemBackend::new();
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            b.read_page(PageId(0), &mut buf),
            Err(StorageError::PageOutOfBounds { .. })
        ));
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("wnsk-fb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        roundtrip(&FileBackend::create(&path).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_backend_reopen_preserves_pages() {
        let dir = std::env::temp_dir().join(format!("wnsk-fb2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        {
            let b = FileBackend::create(&path).unwrap();
            let p = b.allocate_page().unwrap();
            let mut data = vec![7u8; PAGE_SIZE];
            data[42] = 99;
            b.write_page(p, &data).unwrap();
            b.sync().unwrap();
        }
        {
            let b = FileBackend::open(&path).unwrap();
            assert_eq!(b.page_count(), 1);
            let mut out = vec![0u8; PAGE_SIZE];
            b.read_page(PageId(0), &mut out).unwrap();
            assert_eq!(out[42], 99);
            assert_eq!(out[0], 7);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mem_backend_concurrent_reads() {
        use std::sync::Arc;
        let b = Arc::new(MemBackend::new());
        let p = b.allocate_page().unwrap();
        let mut data = vec![0u8; PAGE_SIZE];
        data[1] = 0x5A;
        b.write_page(p, &data).unwrap();
        let mut handles = vec![];
        for _ in 0..8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let mut out = vec![0u8; PAGE_SIZE];
                b.read_page(p, &mut out).unwrap();
                assert_eq!(out[1], 0x5A);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
