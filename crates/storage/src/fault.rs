//! Deterministic fault injection for chaos testing.
//!
//! [`FaultBackend`] wraps any [`StorageBackend`] and injects faults
//! according to a seedable [`FaultPlan`]: transient read/write errors
//! (per-op probability or scripted by op index), artificial latency,
//! bit flips on the read path (transient — the stored page is intact),
//! and torn writes (persistent — only a prefix of the page reaches the
//! inner backend).
//!
//! Every decision derives from `SplitMix64(seed ⊕ op_index)`, so a run is
//! exactly reproducible from `(plan, sequence of operations)` regardless
//! of wall clock — the property the CI chaos matrix relies on.

use crate::{PageId, Result, StorageBackend, StorageError, PAGE_SIZE};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What kind of fault a scripted entry injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with [`StorageError::Transient`].
    TransientError,
    /// One deterministic bit of the returned buffer is flipped (reads
    /// only; ignored for writes).
    BitFlip,
    /// Only the first half of the page reaches the backend; the rest is
    /// zeroed (writes only; ignored for reads).
    TornWrite,
}

/// A deterministic, seedable schedule of storage faults.
///
/// Probabilities are per *operation* (one `read_page` or `write_page`
/// call); scripted faults fire at exact global op indexes and compose
/// with the probabilistic ones.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for the per-op fault RNG.
    pub seed: u64,
    /// Probability that a read fails with a transient error.
    pub read_error_prob: f64,
    /// Probability that a write fails with a transient error.
    pub write_error_prob: f64,
    /// Probability that a read's returned buffer has one bit flipped
    /// (the stored page stays intact — a transport-level corruption).
    pub read_bitflip_prob: f64,
    /// Probability that a write is torn: only the first half of the page
    /// is stored, the rest zeroed (a persistent, power-loss-style fault).
    pub torn_write_prob: f64,
    /// Probability that a `sync` fails with a transient error. A failed
    /// sync means the covering group commit never completed — WAL
    /// recovery must treat the batch as uncommitted.
    pub sync_error_prob: f64,
    /// Latency added to every read.
    pub read_latency: Duration,
    /// Latency added to every write.
    pub write_latency: Duration,
    /// `(op_index, fault)` entries that fire unconditionally when the
    /// global op counter reaches `op_index`.
    pub scripted: Vec<(u64, FaultKind)>,
}

impl FaultPlan {
    /// A plan injecting nothing (seed only).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the transient read-error probability.
    pub fn with_read_error_prob(mut self, p: f64) -> Self {
        self.read_error_prob = p;
        self
    }

    /// Sets the transient write-error probability.
    pub fn with_write_error_prob(mut self, p: f64) -> Self {
        self.write_error_prob = p;
        self
    }

    /// Sets the read bit-flip probability.
    pub fn with_read_bitflip_prob(mut self, p: f64) -> Self {
        self.read_bitflip_prob = p;
        self
    }

    /// Sets the torn-write probability.
    pub fn with_torn_write_prob(mut self, p: f64) -> Self {
        self.torn_write_prob = p;
        self
    }

    /// Sets the sync-failure probability.
    pub fn with_sync_error_prob(mut self, p: f64) -> Self {
        self.sync_error_prob = p;
        self
    }

    /// Sets injected read/write latency.
    pub fn with_latency(mut self, read: Duration, write: Duration) -> Self {
        self.read_latency = read;
        self.write_latency = write;
        self
    }

    /// Adds a scripted fault at the given global op index.
    pub fn with_scripted(mut self, op_index: u64, kind: FaultKind) -> Self {
        self.scripted.push((op_index, kind));
        self
    }
}

/// Counts of faults actually injected, for test assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub read_errors: u64,
    pub write_errors: u64,
    pub bit_flips: u64,
    pub torn_writes: u64,
    pub sync_errors: u64,
}

impl FaultStats {
    /// Total injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.read_errors + self.write_errors + self.bit_flips + self.torn_writes + self.sync_errors
    }
}

#[derive(Default)]
struct FaultCounters {
    read_errors: AtomicU64,
    write_errors: AtomicU64,
    bit_flips: AtomicU64,
    torn_writes: AtomicU64,
    sync_errors: AtomicU64,
}

/// SplitMix64: a single deterministic 64-bit draw per (seed, op, salt).
fn mix(seed: u64, op: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(op.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(salt.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a 64-bit draw to `[0, 1)` and compares against `p`.
fn hit(draw: u64, p: f64) -> bool {
    p > 0.0 && ((draw >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
}

/// A [`StorageBackend`] decorator that injects the faults described by a
/// [`FaultPlan`]. Wrap it around [`MemBackend`](crate::MemBackend) or
/// [`FileBackend`](crate::FileBackend) and hand it to a
/// [`BufferPool`](crate::BufferPool); the pool's retry logic then has
/// something real to push against.
pub struct FaultBackend<B> {
    inner: B,
    plan: FaultPlan,
    ops: AtomicU64,
    counters: FaultCounters,
}

impl<B: StorageBackend> FaultBackend<B> {
    /// Wraps `inner` with the fault schedule of `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        FaultBackend {
            inner,
            plan,
            ops: AtomicU64::new(0),
            counters: FaultCounters::default(),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Counts of faults injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        FaultStats {
            read_errors: self.counters.read_errors.load(Ordering::Relaxed),
            write_errors: self.counters.write_errors.load(Ordering::Relaxed),
            bit_flips: self.counters.bit_flips.load(Ordering::Relaxed),
            torn_writes: self.counters.torn_writes.load(Ordering::Relaxed),
            sync_errors: self.counters.sync_errors.load(Ordering::Relaxed),
        }
    }

    /// The global operation counter (reads + writes + syncs so far).
    /// Recovery tests use this to learn how many ops a whole ingest run
    /// takes before scripting a fault partway through a replay.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Scripted fault scheduled for `op`, if any.
    fn scripted(&self, op: u64) -> Option<FaultKind> {
        self.plan
            .scripted
            .iter()
            .find(|&&(at, _)| at == op)
            .map(|&(_, kind)| kind)
    }
}

impl<B: StorageBackend> StorageBackend for FaultBackend<B> {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if !self.plan.read_latency.is_zero() {
            std::thread::sleep(self.plan.read_latency);
        }
        let scripted = self.scripted(op);
        if scripted == Some(FaultKind::TransientError)
            || hit(mix(self.plan.seed, op, 1), self.plan.read_error_prob)
        {
            self.counters.read_errors.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::transient(
                "read_page",
                format!("injected read fault at op {op} on {id:?}"),
            ));
        }
        self.inner.read_page(id, buf)?;
        if scripted == Some(FaultKind::BitFlip)
            || hit(mix(self.plan.seed, op, 2), self.plan.read_bitflip_prob)
        {
            self.counters.bit_flips.fetch_add(1, Ordering::Relaxed);
            let pos = mix(self.plan.seed, op, 3) as usize % (buf.len() * 8);
            buf[pos / 8] ^= 1 << (pos % 8);
        }
        Ok(())
    }

    fn write_page(&self, id: PageId, data: &[u8]) -> Result<()> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if !self.plan.write_latency.is_zero() {
            std::thread::sleep(self.plan.write_latency);
        }
        let scripted = self.scripted(op);
        if scripted == Some(FaultKind::TransientError)
            || hit(mix(self.plan.seed, op, 4), self.plan.write_error_prob)
        {
            self.counters.write_errors.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::transient(
                "write_page",
                format!("injected write fault at op {op} on {id:?}"),
            ));
        }
        if data.len() == PAGE_SIZE
            && (scripted == Some(FaultKind::TornWrite)
                || hit(mix(self.plan.seed, op, 5), self.plan.torn_write_prob))
        {
            self.counters.torn_writes.fetch_add(1, Ordering::Relaxed);
            let mut torn = data.to_vec();
            torn[PAGE_SIZE / 2..].fill(0);
            return self.inner.write_page(id, &torn);
        }
        self.inner.write_page(id, data)
    }

    fn allocate_page(&self) -> Result<PageId> {
        self.inner.allocate_page()
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn sync(&self) -> Result<()> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if self.scripted(op) == Some(FaultKind::TransientError)
            || hit(mix(self.plan.seed, op, 6), self.plan.sync_error_prob)
        {
            self.counters.sync_errors.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::transient(
                "sync",
                format!("injected sync fault at op {op}"),
            ));
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemBackend;

    fn backend_with_page() -> MemBackend {
        let b = MemBackend::new();
        let id = b.allocate_page().unwrap();
        let mut data = vec![0u8; PAGE_SIZE];
        data[0] = 0xAA;
        b.write_page(id, &data).unwrap();
        b
    }

    #[test]
    fn no_faults_is_transparent() {
        let fb = FaultBackend::new(backend_with_page(), FaultPlan::new(1));
        let mut buf = vec![0u8; PAGE_SIZE];
        fb.read_page(PageId(0), &mut buf).unwrap();
        assert_eq!(buf[0], 0xAA);
        assert_eq!(fb.fault_stats().total(), 0);
    }

    #[test]
    fn scripted_transient_error_fires_once() {
        let plan = FaultPlan::new(7).with_scripted(0, FaultKind::TransientError);
        let fb = FaultBackend::new(backend_with_page(), plan);
        let mut buf = vec![0u8; PAGE_SIZE];
        let err = fb.read_page(PageId(0), &mut buf).unwrap_err();
        assert!(err.is_transient(), "{err}");
        // Op 1 is past the script: succeeds.
        fb.read_page(PageId(0), &mut buf).unwrap();
        assert_eq!(fb.fault_stats().read_errors, 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed).with_read_error_prob(0.5);
            let fb = FaultBackend::new(backend_with_page(), plan);
            let mut buf = vec![0u8; PAGE_SIZE];
            (0..50)
                .map(|_| fb.read_page(PageId(0), &mut buf).is_err())
                .collect()
        };
        assert_eq!(run(42), run(42), "same seed, same fault sequence");
        assert_ne!(run(42), run(43), "different seeds diverge");
        assert!(run(42).iter().any(|&e| e) && run(42).iter().any(|&e| !e));
    }

    #[test]
    fn bitflip_corrupts_exactly_one_bit_transiently() {
        let plan = FaultPlan::new(3).with_scripted(0, FaultKind::BitFlip);
        let fb = FaultBackend::new(backend_with_page(), plan);
        let mut flipped = vec![0u8; PAGE_SIZE];
        fb.read_page(PageId(0), &mut flipped).unwrap();
        let mut clean = vec![0u8; PAGE_SIZE];
        fb.read_page(PageId(0), &mut clean).unwrap();
        let diff_bits: u32 = flipped
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff_bits, 1, "exactly one bit differs");
        assert_eq!(clean[0], 0xAA, "the stored page was never touched");
    }

    #[test]
    fn scripted_sync_fault_fires_on_the_op_counter() {
        // Op 0: write (clean). Op 1: sync (scripted failure). Op 2: sync ok.
        let plan = FaultPlan::new(11).with_scripted(1, FaultKind::TransientError);
        let inner = MemBackend::new();
        inner.allocate_page().unwrap();
        let fb = FaultBackend::new(inner, plan);
        fb.write_page(PageId(0), &vec![1u8; PAGE_SIZE]).unwrap();
        let err = fb.sync().unwrap_err();
        assert!(err.is_transient(), "{err}");
        fb.sync().unwrap();
        assert_eq!(fb.fault_stats().sync_errors, 1);
        assert_eq!(fb.ops(), 3);
    }

    #[test]
    fn probabilistic_sync_faults_are_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed).with_sync_error_prob(0.5);
            let fb = FaultBackend::new(MemBackend::new(), plan);
            (0..50).map(|_| fb.sync().is_err()).collect()
        };
        assert_eq!(run(9), run(9));
        assert!(run(9).iter().any(|&e| e) && run(9).iter().any(|&e| !e));
    }

    #[test]
    fn torn_write_zeroes_the_tail() {
        let plan = FaultPlan::new(5).with_scripted(0, FaultKind::TornWrite);
        let inner = MemBackend::new();
        inner.allocate_page().unwrap();
        let fb = FaultBackend::new(inner, plan);
        let data = vec![0x77u8; PAGE_SIZE];
        fb.write_page(PageId(0), &data).unwrap();
        let mut out = vec![0u8; PAGE_SIZE];
        fb.inner().read_page(PageId(0), &mut out).unwrap();
        assert!(out[..PAGE_SIZE / 2].iter().all(|&b| b == 0x77));
        assert!(out[PAGE_SIZE / 2..].iter().all(|&b| b == 0));
        assert_eq!(fb.fault_stats().torn_writes, 1);
    }
}
