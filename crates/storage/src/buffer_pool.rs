use crate::cache::Lru;
use crate::crc::crc32;
use crate::{
    IoStats, IoStatsSnapshot, PageId, Result, StorageBackend, StorageError, PAGE_DATA_SIZE,
    PAGE_SIZE,
};
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Bounded retry-with-exponential-backoff applied to transient backend
/// faults (and checksum mismatches, which a re-read can clear when the
/// corruption happened in transport rather than at rest).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// No retries at all: every transient fault surfaces immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// The backoff before retry number `attempt` (1-based).
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        exp.min(self.max_backoff)
    }
}

/// Configuration for a [`BufferPool`].
#[derive(Clone, Copy, Debug)]
pub struct BufferPoolConfig {
    /// Total cache size in bytes. The paper uses 4 MiB (§VII-A1).
    pub capacity_bytes: usize,
    /// Number of independently locked shards. More shards reduce contention
    /// for the parallel optimisation; must divide reasonably into frames.
    pub shards: usize,
    /// How transient faults are retried.
    pub retry: RetryPolicy,
}

impl Default for BufferPoolConfig {
    fn default() -> Self {
        BufferPoolConfig {
            capacity_bytes: 4 << 20, // 4 MiB, the paper's buffer size
            shards: 16,
            retry: RetryPolicy::default(),
        }
    }
}

struct Shard {
    cache: Mutex<Lru<PageId, Bytes>>,
}

/// A sharded LRU page cache with I/O accounting, page checksums, and
/// bounded retries.
///
/// Pages are immutable once written (the indexes are bulk-built, then
/// read-only), so the pool hands out cheaply clonable [`Bytes`] and never
/// needs dirty-page bookkeeping. A cache miss reads the page from the
/// backend *while holding the shard lock*, which also guarantees a page is
/// fetched at most once per residency even under concurrency.
///
/// # Page integrity
///
/// The pool owns the last [`PAGE_CRC_LEN`](crate::PAGE_CRC_LEN) bytes of
/// every physical page: [`BufferPool::write`] accepts up to
/// [`PAGE_DATA_SIZE`] payload bytes, zero-pads them, and embeds the
/// payload's CRC32 in the trailer; [`BufferPool::read`] verifies the
/// trailer and returns the [`PAGE_DATA_SIZE`]-byte payload, failing with
/// [`StorageError::ChecksumMismatch`] on any at-rest corruption. An
/// entirely zero physical page is treated as freshly allocated and skips
/// verification (a legitimately written all-zero payload carries a
/// nonzero CRC, so the two cannot be confused).
///
/// # Fault handling
///
/// Errors with [`StorageError::is_transient`] `== true` are retried up to
/// [`RetryPolicy::max_retries`] times with exponential backoff; retry
/// activity is published through the pool's [`IoStats`] counters.
pub struct BufferPool {
    backend: Arc<dyn StorageBackend>,
    shards: Vec<Shard>,
    stats: IoStats,
    retry: RetryPolicy,
}

impl BufferPool {
    /// Creates a pool over `backend` with the given configuration.
    ///
    /// # Panics
    /// Panics if the capacity is smaller than one frame per shard.
    pub fn new(backend: Arc<dyn StorageBackend>, config: BufferPoolConfig) -> Self {
        let frames = config.capacity_bytes / PAGE_SIZE;
        assert!(
            frames >= config.shards,
            "buffer pool too small: {} frames for {} shards",
            frames,
            config.shards
        );
        let per_shard = frames / config.shards;
        let shards = (0..config.shards)
            .map(|_| Shard {
                cache: Mutex::new(Lru::new(per_shard)),
            })
            .collect();
        BufferPool {
            backend,
            shards,
            stats: IoStats::new(),
            retry: config.retry,
        }
    }

    /// Creates a pool with the paper's defaults (4 MiB, 16 shards).
    pub fn with_default_config(backend: Arc<dyn StorageBackend>) -> Self {
        Self::new(backend, BufferPoolConfig::default())
    }

    /// Creates a pool whose I/O counters are published into `registry`
    /// under `prefix` (e.g. `"kcr.pool."`), so buffer-pool activity
    /// appears in unified [`wnsk_obs::QueryReport`]s alongside index and
    /// solver metrics.
    pub fn new_registered(
        backend: Arc<dyn StorageBackend>,
        config: BufferPoolConfig,
        registry: &wnsk_obs::Registry,
        prefix: &str,
    ) -> Self {
        let mut pool = Self::new(backend, config);
        pool.stats.register(registry, prefix);
        pool
    }

    /// [`BufferPool::new_registered`] plus a [`wnsk_obs::Tracer`]: cache
    /// hits become `pool.cache_hit` events and misses become `pool.read`
    /// spans (covering the backend fetch, verification, and any retry
    /// backoff), attributed to the worker that issued the read.
    pub fn new_instrumented(
        backend: Arc<dyn StorageBackend>,
        config: BufferPoolConfig,
        registry: &wnsk_obs::Registry,
        prefix: &str,
        tracer: wnsk_obs::Tracer,
    ) -> Self {
        let mut pool = Self::new_registered(backend, config, registry, prefix);
        pool.stats.set_tracer(tracer);
        pool
    }

    #[inline]
    fn shard(&self, id: PageId) -> &Shard {
        // Fibonacci hashing spreads sequential page ids across shards.
        let h = (id.0.wrapping_mul(0x9E3779B97F4A7C15) >> 32) as usize;
        &self.shards[h % self.shards.len()]
    }

    /// Runs `op` with the pool's retry policy: transient errors (and
    /// checksum mismatches) back off exponentially and retry.
    fn with_retries<T>(&self, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < self.retry.max_retries => {
                    attempt += 1;
                    self.stats.record_retry();
                    let backoff = self.retry.backoff(attempt);
                    if !backoff.is_zero() {
                        self.stats.record_backoff(backoff);
                        std::thread::sleep(backoff);
                    }
                }
                Err(e) => {
                    if e.is_transient() {
                        self.stats.record_retries_exhausted();
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Fetches a page from the backend and verifies its CRC trailer.
    fn fetch_verified(&self, id: PageId) -> Result<Bytes> {
        let mut buf = vec![0u8; PAGE_SIZE];
        self.backend.read_page(id, &mut buf)?;
        let stored = u32::from_le_bytes(buf[PAGE_DATA_SIZE..].try_into().unwrap());
        let payload = &buf[..PAGE_DATA_SIZE];
        let fresh = stored == 0 && payload.iter().all(|&b| b == 0);
        if !fresh {
            let computed = crc32(payload);
            if computed != stored {
                self.stats.record_checksum_failure();
                return Err(StorageError::ChecksumMismatch {
                    page: id,
                    stored,
                    computed,
                });
            }
        }
        buf.truncate(PAGE_DATA_SIZE);
        Ok(Bytes::from(buf))
    }

    /// Reads page `id`, serving from cache when resident. The returned
    /// payload is [`PAGE_DATA_SIZE`] bytes.
    pub fn read(&self, id: PageId) -> Result<Bytes> {
        self.stats.record_logical_read();
        let shard = self.shard(id);
        let mut cache = shard.cache.lock();
        if let Some(bytes) = cache.get(&id) {
            self.stats.trace_cache_hit();
            return Ok(bytes.clone());
        }
        // Miss: fetch under the lock so concurrent readers of the same page
        // do not duplicate the physical read. The latency histogram covers
        // the whole miss (fetch + verification + retry backoff), which is
        // what a caller actually waits for.
        let span = self.stats.tracer().begin("pool.read");
        let started = std::time::Instant::now();
        let result = self.with_retries(|| self.fetch_verified(id));
        self.stats.record_read_latency(started.elapsed());
        self.stats.tracer().end(span);
        let bytes = result?;
        self.stats.record_physical_read();
        cache.insert(id, bytes.clone());
        Ok(bytes)
    }

    /// Writes a page payload (at most [`PAGE_DATA_SIZE`] bytes — the pool
    /// pads and embeds the CRC trailer) through to the backend and caches
    /// it.
    pub fn write(&self, id: PageId, data: &[u8]) -> Result<()> {
        if data.len() > PAGE_DATA_SIZE {
            return Err(StorageError::BadPageBuffer {
                expected: PAGE_DATA_SIZE,
                actual: data.len(),
            });
        }
        let mut page = vec![0u8; PAGE_SIZE];
        page[..data.len()].copy_from_slice(data);
        let crc = crc32(&page[..PAGE_DATA_SIZE]);
        page[PAGE_DATA_SIZE..].copy_from_slice(&crc.to_le_bytes());
        self.with_retries(|| self.backend.write_page(id, &page))?;
        self.stats.record_physical_write();
        let mut cache = self.shard(id).cache.lock();
        page.truncate(PAGE_DATA_SIZE);
        cache.insert(id, Bytes::from(page));
        Ok(())
    }

    /// Allocates a fresh page on the backend.
    pub fn allocate(&self) -> Result<PageId> {
        self.backend.allocate_page()
    }

    /// Makes all previous writes durable ([`StorageBackend::sync`]),
    /// retrying transient failures under the pool's policy. The
    /// write-ahead log's group commit is the only caller on the hot
    /// path.
    pub fn sync(&self) -> Result<()> {
        self.with_retries(|| self.backend.sync())
    }

    /// Empties the cache (counters are preserved). Experiments call this
    /// between queries to emulate a cold or warm start policy explicitly.
    pub fn clear_cache(&self) {
        for shard in &self.shards {
            shard.cache.lock().clear();
        }
    }

    /// Current I/O counters.
    pub fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    /// The underlying backend.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// Number of pages currently resident across all shards.
    pub fn resident_pages(&self) -> usize {
        self.shards.iter().map(|s| s.cache.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultBackend, FaultKind, FaultPlan};
    use crate::MemBackend;

    fn pool_with_pages(n: u64, config: BufferPoolConfig) -> BufferPool {
        let backend = Arc::new(MemBackend::new());
        let pool = BufferPool::new(backend, config);
        for i in 0..n {
            let id = pool.allocate().unwrap();
            pool.write(id, &[i as u8]).unwrap();
        }
        pool
    }

    #[test]
    fn hit_avoids_physical_read() {
        let pool = pool_with_pages(4, BufferPoolConfig::default());
        pool.clear_cache();
        pool.read(PageId(1)).unwrap();
        pool.read(PageId(1)).unwrap();
        let s = pool.stats();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.physical_reads, 1);
    }

    #[test]
    fn read_returns_page_contents() {
        let pool = pool_with_pages(4, BufferPoolConfig::default());
        pool.clear_cache();
        let page = pool.read(PageId(3)).unwrap();
        assert_eq!(page.len(), PAGE_DATA_SIZE);
        assert_eq!(page[0], 3);
    }

    #[test]
    fn eviction_causes_refetch() {
        // 1 shard × 2 frames: reading 3 pages evicts the first.
        let cfg = BufferPoolConfig {
            capacity_bytes: 2 * PAGE_SIZE,
            shards: 1,
            ..BufferPoolConfig::default()
        };
        let pool = pool_with_pages(3, cfg);
        pool.clear_cache();
        pool.read(PageId(0)).unwrap();
        pool.read(PageId(1)).unwrap();
        pool.read(PageId(2)).unwrap(); // evicts page 0
        pool.read(PageId(0)).unwrap(); // physical again
        assert_eq!(pool.stats().physical_reads, 4);
        assert!(pool.resident_pages() <= 2);
    }

    #[test]
    fn clear_cache_forces_refetch_but_keeps_counters() {
        let pool = pool_with_pages(2, BufferPoolConfig::default());
        pool.clear_cache();
        pool.read(PageId(0)).unwrap();
        pool.clear_cache();
        assert_eq!(pool.resident_pages(), 0);
        pool.read(PageId(0)).unwrap();
        assert_eq!(pool.stats().physical_reads, 2);
    }

    #[test]
    fn write_through_updates_cache() {
        let pool = pool_with_pages(1, BufferPoolConfig::default());
        let mut data = vec![0u8; PAGE_DATA_SIZE];
        data[7] = 0xEE;
        pool.write(PageId(0), &data).unwrap();
        let before = pool.stats().physical_reads;
        let page = pool.read(PageId(0)).unwrap();
        assert_eq!(page[7], 0xEE);
        // Served from cache: no new physical read.
        assert_eq!(pool.stats().physical_reads, before);
        assert_eq!(pool.stats().physical_writes, 2);
    }

    #[test]
    fn oversized_write_is_typed_error() {
        let pool = pool_with_pages(1, BufferPoolConfig::default());
        let err = pool.write(PageId(0), &vec![0u8; PAGE_SIZE]).unwrap_err();
        assert!(matches!(err, StorageError::BadPageBuffer { .. }), "{err}");
    }

    #[test]
    fn out_of_bounds_read_is_error() {
        let pool = pool_with_pages(1, BufferPoolConfig::default());
        assert!(pool.read(PageId(99)).is_err());
    }

    #[test]
    fn fresh_page_reads_as_zeroes_without_checksum_error() {
        let pool = pool_with_pages(0, BufferPoolConfig::default());
        let id = pool.allocate().unwrap();
        let page = pool.read(id).unwrap();
        assert!(page.iter().all(|&b| b == 0));
        assert_eq!(pool.stats().checksum_failures, 0);
    }

    #[test]
    fn all_zero_payload_roundtrips_with_nonzero_crc() {
        let pool = pool_with_pages(1, BufferPoolConfig::default());
        pool.write(PageId(0), &[0u8; 16]).unwrap();
        pool.clear_cache();
        let page = pool.read(PageId(0)).unwrap();
        assert!(page.iter().all(|&b| b == 0));
        assert_eq!(pool.stats().checksum_failures, 0);
    }

    #[test]
    fn at_rest_corruption_is_a_checksum_mismatch() {
        let backend = Arc::new(MemBackend::new());
        let pool = BufferPool::new(
            Arc::clone(&backend) as Arc<dyn StorageBackend>,
            BufferPoolConfig::default(),
        );
        let id = pool.allocate().unwrap();
        pool.write(id, b"precious payload").unwrap();
        // Corrupt the stored page behind the pool's back.
        let mut raw = vec![0u8; PAGE_SIZE];
        backend.read_page(id, &mut raw).unwrap();
        raw[4] ^= 0xFF;
        backend.write_page(id, &raw).unwrap();
        pool.clear_cache();
        let err = pool.read(id).unwrap_err();
        assert!(
            matches!(err, StorageError::ChecksumMismatch { .. }),
            "{err}"
        );
        assert!(pool.stats().checksum_failures > 0);
        // Persistent corruption: the retries were spent, then surfaced.
        assert!(pool.stats().retries_exhausted >= 1);
    }

    #[test]
    fn transient_faults_are_retried_past() {
        let inner = MemBackend::new();
        let plan = FaultPlan::new(11)
            .with_scripted(2, FaultKind::TransientError)
            .with_scripted(3, FaultKind::TransientError);
        let fb = Arc::new(FaultBackend::new(inner, plan));
        let pool = BufferPool::new(fb, BufferPoolConfig::default());
        let id = pool.allocate().unwrap();
        pool.write(id, b"retry me").unwrap(); // ops 0 (ok)
        pool.clear_cache();
        // Ops 1 (ok, but cache was cleared → this is the miss), then the
        // scripted faults land on subsequent attempts.
        let page = pool.read(id).unwrap();
        assert_eq!(&page[..8], b"retry me");
        pool.clear_cache();
        let page = pool.read(id).unwrap(); // op 2 & 3 faults → retried
        assert_eq!(&page[..8], b"retry me");
        assert!(pool.stats().retries >= 1, "{:?}", pool.stats());
        assert_eq!(pool.stats().retries_exhausted, 0);
    }

    #[test]
    fn bitflips_are_caught_and_retried_past() {
        let inner = MemBackend::new();
        let plan = FaultPlan::new(13).with_scripted(2, FaultKind::BitFlip);
        let fb = Arc::new(FaultBackend::new(inner, plan));
        let pool = BufferPool::new(fb, BufferPoolConfig::default());
        let id = pool.allocate().unwrap();
        pool.write(id, b"flip proof").unwrap(); // op 0
        pool.clear_cache();
        pool.read(id).unwrap(); // op 1 clean
        pool.clear_cache();
        let page = pool.read(id).unwrap(); // op 2 flipped → CRC catches → retry
        assert_eq!(&page[..10], b"flip proof");
        assert!(pool.stats().checksum_failures >= 1);
        assert!(pool.stats().retries >= 1);
    }

    #[test]
    fn exhausted_retries_surface_the_transient_error() {
        let inner = MemBackend::new();
        let plan = FaultPlan::new(17).with_read_error_prob(1.0);
        let fb = Arc::new(FaultBackend::new(inner, plan));
        let pool = BufferPool::new(
            fb,
            BufferPoolConfig {
                retry: RetryPolicy {
                    max_retries: 2,
                    base_backoff: Duration::from_micros(1),
                    max_backoff: Duration::from_micros(10),
                },
                ..BufferPoolConfig::default()
            },
        );
        let id = pool.allocate().unwrap();
        pool.write(id, b"doomed").unwrap();
        pool.clear_cache();
        let err = pool.read(id).unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert_eq!(pool.stats().retries, 2);
        assert_eq!(pool.stats().retries_exhausted, 1);
        assert!(pool.stats().retry_backoff_nanos > 0);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(1),
        };
        assert_eq!(p.backoff(1), Duration::from_micros(100));
        assert_eq!(p.backoff(2), Duration::from_micros(200));
        assert_eq!(p.backoff(3), Duration::from_micros(400));
        assert_eq!(p.backoff(9), Duration::from_millis(1), "capped");
    }

    #[test]
    fn instrumented_pool_traces_hits_and_times_misses() {
        let registry = wnsk_obs::Registry::new();
        let tracer = wnsk_obs::Tracer::new();
        let backend = Arc::new(MemBackend::new());
        let pool = BufferPool::new_instrumented(
            backend,
            BufferPoolConfig::default(),
            &registry,
            "setr.pool.",
            tracer.clone(),
        );
        let id = pool.allocate().unwrap();
        pool.write(id, b"observed").unwrap();
        pool.clear_cache();
        pool.read(id).unwrap(); // miss
        pool.read(id).unwrap(); // hit
        pool.read(id).unwrap(); // hit
        let report = tracer.drain();
        assert_eq!(report.count_events("pool.cache_hit"), 2);
        let miss_spans = report
            .records()
            .iter()
            .filter(|r| r.name == "pool.read" && !r.is_event())
            .count();
        assert_eq!(miss_spans, 1);
        let snap = registry.snapshot();
        let lat = snap.hist("setr.pool.read_latency_ns").unwrap();
        assert_eq!(lat.count, 1);
        assert!(lat.sum > 0, "a physical read takes measurable time");
    }

    #[test]
    fn backoff_sleeps_feed_the_backoff_histogram() {
        let registry = wnsk_obs::Registry::new();
        let inner = MemBackend::new();
        let plan = FaultPlan::new(19).with_scripted(2, FaultKind::TransientError);
        let fb = Arc::new(FaultBackend::new(inner, plan));
        let pool =
            BufferPool::new_registered(fb, BufferPoolConfig::default(), &registry, "kcr.pool.");
        let id = pool.allocate().unwrap();
        pool.write(id, b"slow lane").unwrap(); // op 0
        pool.clear_cache();
        pool.read(id).unwrap(); // op 1 clean miss
        pool.clear_cache();
        pool.read(id).unwrap(); // op 2 faults → one backoff sleep
        let snap = registry.snapshot();
        let backoff = snap.hist("kcr.pool.retry_backoff_ns").unwrap();
        assert_eq!(backoff.count, 1);
        // The histogram and the legacy counter record the same nanoseconds.
        assert_eq!(backoff.sum, snap.counter("kcr.pool.retry_backoff_nanos"));
        let lat = snap.hist("kcr.pool.read_latency_ns").unwrap();
        assert_eq!(lat.count, 2, "both misses were timed");
    }

    #[test]
    fn concurrent_reads_are_coherent() {
        let pool = Arc::new(pool_with_pages(
            64,
            BufferPoolConfig {
                capacity_bytes: 16 * PAGE_SIZE,
                shards: 4,
                ..BufferPoolConfig::default()
            },
        ));
        pool.clear_cache();
        let mut handles = vec![];
        for t in 0..8 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let id = PageId((i * (t + 1)) % 64);
                    let page = pool.read(id).unwrap();
                    assert_eq!(page[0], id.0 as u8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.logical_reads, 8 * 200);
        assert!(s.physical_reads >= 16); // at least one fill per frame used
    }
}
