use crate::lru::LruMap;
use crate::{IoStats, IoStatsSnapshot, PageId, Result, StorageBackend, PAGE_SIZE};
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::Arc;

/// Configuration for a [`BufferPool`].
#[derive(Clone, Copy, Debug)]
pub struct BufferPoolConfig {
    /// Total cache size in bytes. The paper uses 4 MiB (§VII-A1).
    pub capacity_bytes: usize,
    /// Number of independently locked shards. More shards reduce contention
    /// for the parallel optimisation; must divide reasonably into frames.
    pub shards: usize,
}

impl Default for BufferPoolConfig {
    fn default() -> Self {
        BufferPoolConfig {
            capacity_bytes: 4 << 20, // 4 MiB, the paper's buffer size
            shards: 16,
        }
    }
}

struct Shard {
    cache: Mutex<LruMap<PageId, Bytes>>,
}

/// A sharded LRU page cache with I/O accounting.
///
/// Pages are immutable once written (the indexes are bulk-built, then
/// read-only), so the pool hands out cheaply clonable [`Bytes`] and never
/// needs dirty-page bookkeeping. A cache miss reads the page from the
/// backend *while holding the shard lock*, which also guarantees a page is
/// fetched at most once per residency even under concurrency.
pub struct BufferPool {
    backend: Arc<dyn StorageBackend>,
    shards: Vec<Shard>,
    stats: IoStats,
}

impl BufferPool {
    /// Creates a pool over `backend` with the given configuration.
    ///
    /// # Panics
    /// Panics if the capacity is smaller than one frame per shard.
    pub fn new(backend: Arc<dyn StorageBackend>, config: BufferPoolConfig) -> Self {
        let frames = config.capacity_bytes / PAGE_SIZE;
        assert!(
            frames >= config.shards,
            "buffer pool too small: {} frames for {} shards",
            frames,
            config.shards
        );
        let per_shard = frames / config.shards;
        let shards = (0..config.shards)
            .map(|_| Shard {
                cache: Mutex::new(LruMap::new(per_shard)),
            })
            .collect();
        BufferPool {
            backend,
            shards,
            stats: IoStats::new(),
        }
    }

    /// Creates a pool with the paper's defaults (4 MiB, 16 shards).
    pub fn with_default_config(backend: Arc<dyn StorageBackend>) -> Self {
        Self::new(backend, BufferPoolConfig::default())
    }

    /// Creates a pool whose I/O counters are published into `registry`
    /// under `prefix` (e.g. `"kcr.pool."`), so buffer-pool activity
    /// appears in unified [`wnsk_obs::QueryReport`]s alongside index and
    /// solver metrics.
    pub fn new_registered(
        backend: Arc<dyn StorageBackend>,
        config: BufferPoolConfig,
        registry: &wnsk_obs::Registry,
        prefix: &str,
    ) -> Self {
        let mut pool = Self::new(backend, config);
        pool.stats.register(registry, prefix);
        pool
    }

    #[inline]
    fn shard(&self, id: PageId) -> &Shard {
        // Fibonacci hashing spreads sequential page ids across shards.
        let h = (id.0.wrapping_mul(0x9E3779B97F4A7C15) >> 32) as usize;
        &self.shards[h % self.shards.len()]
    }

    /// Reads page `id`, serving from cache when resident.
    pub fn read(&self, id: PageId) -> Result<Bytes> {
        self.stats.record_logical_read();
        let shard = self.shard(id);
        let mut cache = shard.cache.lock();
        if let Some(bytes) = cache.get(&id) {
            return Ok(bytes.clone());
        }
        // Miss: fetch under the lock so concurrent readers of the same page
        // do not duplicate the physical read.
        let mut buf = vec![0u8; PAGE_SIZE];
        self.backend.read_page(id, &mut buf)?;
        self.stats.record_physical_read();
        let bytes = Bytes::from(buf);
        cache.insert(id, bytes.clone());
        Ok(bytes)
    }

    /// Writes a full page through to the backend and caches it.
    pub fn write(&self, id: PageId, data: &[u8]) -> Result<()> {
        assert_eq!(data.len(), PAGE_SIZE, "write must supply a full page");
        self.backend.write_page(id, data)?;
        self.stats.record_physical_write();
        let mut cache = self.shard(id).cache.lock();
        cache.insert(id, Bytes::copy_from_slice(data));
        Ok(())
    }

    /// Allocates a fresh page on the backend.
    pub fn allocate(&self) -> Result<PageId> {
        self.backend.allocate_page()
    }

    /// Empties the cache (counters are preserved). Experiments call this
    /// between queries to emulate a cold or warm start policy explicitly.
    pub fn clear_cache(&self) {
        for shard in &self.shards {
            shard.cache.lock().clear();
        }
    }

    /// Current I/O counters.
    pub fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    /// The underlying backend.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// Number of pages currently resident across all shards.
    pub fn resident_pages(&self) -> usize {
        self.shards.iter().map(|s| s.cache.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemBackend;

    fn pool_with_pages(n: u64, config: BufferPoolConfig) -> BufferPool {
        let backend = Arc::new(MemBackend::new());
        for i in 0..n {
            let id = backend.allocate_page().unwrap();
            let mut data = vec![0u8; PAGE_SIZE];
            data[0] = i as u8;
            backend.write_page(id, &data).unwrap();
        }
        BufferPool::new(backend, config)
    }

    #[test]
    fn hit_avoids_physical_read() {
        let pool = pool_with_pages(4, BufferPoolConfig::default());
        pool.read(PageId(1)).unwrap();
        pool.read(PageId(1)).unwrap();
        let s = pool.stats();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.physical_reads, 1);
    }

    #[test]
    fn read_returns_page_contents() {
        let pool = pool_with_pages(4, BufferPoolConfig::default());
        let page = pool.read(PageId(3)).unwrap();
        assert_eq!(page.len(), PAGE_SIZE);
        assert_eq!(page[0], 3);
    }

    #[test]
    fn eviction_causes_refetch() {
        // 1 shard × 2 frames: reading 3 pages evicts the first.
        let cfg = BufferPoolConfig {
            capacity_bytes: 2 * PAGE_SIZE,
            shards: 1,
        };
        let pool = pool_with_pages(3, cfg);
        pool.read(PageId(0)).unwrap();
        pool.read(PageId(1)).unwrap();
        pool.read(PageId(2)).unwrap(); // evicts page 0
        pool.read(PageId(0)).unwrap(); // physical again
        assert_eq!(pool.stats().physical_reads, 4);
        assert!(pool.resident_pages() <= 2);
    }

    #[test]
    fn clear_cache_forces_refetch_but_keeps_counters() {
        let pool = pool_with_pages(2, BufferPoolConfig::default());
        pool.read(PageId(0)).unwrap();
        pool.clear_cache();
        assert_eq!(pool.resident_pages(), 0);
        pool.read(PageId(0)).unwrap();
        assert_eq!(pool.stats().physical_reads, 2);
    }

    #[test]
    fn write_through_updates_cache() {
        let pool = pool_with_pages(1, BufferPoolConfig::default());
        let mut data = vec![0u8; PAGE_SIZE];
        data[7] = 0xEE;
        pool.write(PageId(0), &data).unwrap();
        let before = pool.stats().physical_reads;
        let page = pool.read(PageId(0)).unwrap();
        assert_eq!(page[7], 0xEE);
        // Served from cache: no new physical read.
        assert_eq!(pool.stats().physical_reads, before);
        assert_eq!(pool.stats().physical_writes, 1);
    }

    #[test]
    fn out_of_bounds_read_is_error() {
        let pool = pool_with_pages(1, BufferPoolConfig::default());
        assert!(pool.read(PageId(99)).is_err());
    }

    #[test]
    fn concurrent_reads_are_coherent() {
        let pool = Arc::new(pool_with_pages(64, BufferPoolConfig {
            capacity_bytes: 16 * PAGE_SIZE,
            shards: 4,
        }));
        let mut handles = vec![];
        for t in 0..8 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let id = PageId((i * (t + 1)) % 64);
                    let page = pool.read(id).unwrap();
                    assert_eq!(page[0], id.0 as u8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.logical_reads, 8 * 200);
        assert!(s.physical_reads >= 16); // at least one fill per frame used
    }
}
