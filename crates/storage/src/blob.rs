use crate::codec::{Reader, Writer};
use crate::{BufferPool, PageId, Result, StorageError, PAGE_DATA_SIZE};
use std::sync::Arc;

/// Per-page header of a blob chain: `next` page id (8) + payload length in
/// this page (4).
const BLOB_HEADER: usize = 12;
/// Payload capacity of one blob page (the buffer pool keeps the CRC
/// trailer for itself).
const BLOB_CAPACITY: usize = PAGE_DATA_SIZE - BLOB_HEADER;

/// A handle to a stored blob: first page of its chain plus total length.
///
/// `BlobRef`s are embedded inside index nodes (the paper's `pks`, `pku`,
/// `pki` and `pcm` pointers are exactly this).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlobRef {
    pub first_page: PageId,
    pub len: u32,
}

impl BlobRef {
    /// A reference to an empty blob (no pages).
    pub const EMPTY: BlobRef = BlobRef {
        first_page: PageId::INVALID,
        len: 0,
    };

    /// Number of pages the blob chain occupies.
    pub fn page_span(&self) -> u64 {
        (self.len as u64).div_ceil(BLOB_CAPACITY as u64)
    }

    /// Serialized size of a `BlobRef` inside a node (page id + length).
    pub const ENCODED_LEN: usize = 12;

    /// Writes the reference through `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.write_u64(self.first_page.0);
        w.write_u32(self.len);
    }

    /// Reads a reference from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<BlobRef> {
        let first_page = PageId(r.read_u64()?);
        let len = r.read_u32()?;
        Ok(BlobRef { first_page, len })
    }
}

/// Chained-page storage for variable-length payloads.
///
/// A blob is split into `PAGE_DATA_SIZE − 12` byte chunks, each page carrying a
/// `next` pointer. Reads go through the buffer pool so blob access is
/// charged the same I/O as node access — mirroring the paper, where the
/// union/intersection keyword sets of a SetR-tree node live on disk next to
/// the node.
pub struct BlobStore {
    pool: Arc<BufferPool>,
}

impl BlobStore {
    /// Creates a store writing and reading through `pool`.
    pub fn new(pool: Arc<BufferPool>) -> Self {
        BlobStore { pool }
    }

    /// The buffer pool in use.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Writes `data` as a new blob and returns its reference.
    ///
    /// Pages of the chain are allocated contiguously ("stored sequentially
    /// on disk to reduce the number of disk seeks", §IV-B).
    pub fn write(&self, data: &[u8]) -> Result<BlobRef> {
        if data.is_empty() {
            return Ok(BlobRef::EMPTY);
        }
        let n_pages = data.len().div_ceil(BLOB_CAPACITY);
        let pages: Vec<PageId> = (0..n_pages)
            .map(|_| self.pool.allocate())
            .collect::<Result<_>>()?;
        for (i, chunk) in data.chunks(BLOB_CAPACITY).enumerate() {
            let next = pages.get(i + 1).copied().unwrap_or(PageId::INVALID);
            let mut w = Writer::with_capacity(PAGE_DATA_SIZE);
            w.write_u64(next.0);
            w.write_u32(chunk.len() as u32);
            w.write_bytes(chunk);
            // The pool zero-pads to the full payload size and embeds the
            // CRC trailer.
            self.pool.write(pages[i], &w.into_vec())?;
        }
        Ok(BlobRef {
            first_page: pages[0],
            len: data.len() as u32,
        })
    }

    /// Reads a blob back, charging one pool read per chain page.
    pub fn read(&self, blob: BlobRef) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(blob.len as usize);
        let mut page_id = blob.first_page;
        while page_id.is_valid() {
            let page = self.pool.read(page_id)?;
            let mut r = Reader::new(&page, "blob page");
            let next = PageId(r.read_u64()?);
            let chunk_len = r.read_u32()? as usize;
            if chunk_len > BLOB_CAPACITY {
                return Err(StorageError::corrupt(
                    "blob page",
                    format!("chunk length {chunk_len} exceeds capacity {BLOB_CAPACITY}"),
                ));
            }
            out.extend_from_slice(r.read_bytes(chunk_len)?);
            page_id = next;
            if out.len() > blob.len as usize {
                return Err(StorageError::corrupt(
                    "blob chain",
                    format!("chain longer than declared length {}", blob.len),
                ));
            }
        }
        if out.len() != blob.len as usize {
            return Err(StorageError::corrupt(
                "blob chain",
                format!("expected {} bytes, got {}", blob.len, out.len()),
            ));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufferPoolConfig, MemBackend, PAGE_SIZE};

    fn store() -> BlobStore {
        let backend = Arc::new(MemBackend::new());
        let pool = Arc::new(BufferPool::new(backend, BufferPoolConfig::default()));
        BlobStore::new(pool)
    }

    #[test]
    fn empty_blob() {
        let s = store();
        let r = s.write(&[]).unwrap();
        assert_eq!(r, BlobRef::EMPTY);
        assert_eq!(s.read(r).unwrap(), Vec::<u8>::new());
        assert_eq!(r.page_span(), 0);
    }

    #[test]
    fn single_page_roundtrip() {
        let s = store();
        let data = b"hello blob world".to_vec();
        let r = s.write(&data).unwrap();
        assert_eq!(r.page_span(), 1);
        assert_eq!(s.read(r).unwrap(), data);
    }

    #[test]
    fn multi_page_roundtrip() {
        let s = store();
        let data: Vec<u8> = (0..3 * PAGE_SIZE + 17).map(|i| (i % 251) as u8).collect();
        let r = s.write(&data).unwrap();
        assert!(r.page_span() >= 3);
        assert_eq!(s.read(r).unwrap(), data);
    }

    #[test]
    fn exact_capacity_boundary() {
        let s = store();
        for len in [BLOB_CAPACITY - 1, BLOB_CAPACITY, BLOB_CAPACITY + 1] {
            let data: Vec<u8> = (0..len).map(|i| (i % 97) as u8).collect();
            let r = s.write(&data).unwrap();
            assert_eq!(s.read(r).unwrap(), data, "len={len}");
        }
    }

    #[test]
    fn blob_reads_are_charged_io() {
        let s = store();
        let data: Vec<u8> = vec![1u8; 2 * BLOB_CAPACITY];
        let r = s.write(&data).unwrap();
        s.pool().clear_cache();
        let before = s.pool().stats();
        s.read(r).unwrap();
        let delta = s.pool().stats().since(&before);
        assert_eq!(delta.physical_reads, 2);
    }

    #[test]
    fn blobref_encoding_roundtrip() {
        let mut w = Writer::new();
        let r0 = BlobRef {
            first_page: PageId(77),
            len: 1234,
        };
        r0.encode(&mut w);
        assert_eq!(w.len(), BlobRef::ENCODED_LEN);
        let buf = w.into_vec();
        let mut reader = Reader::new(&buf, "test");
        assert_eq!(BlobRef::decode(&mut reader).unwrap(), r0);
    }

    #[test]
    fn many_blobs_do_not_interfere() {
        let s = store();
        let blobs: Vec<(BlobRef, Vec<u8>)> = (0..50)
            .map(|i| {
                let data: Vec<u8> = (0..i * 131).map(|j| ((i + j) % 256) as u8).collect();
                (s.write(&data).unwrap(), data)
            })
            .collect();
        for (r, data) in blobs {
            assert_eq!(s.read(r).unwrap(), data);
        }
    }
}
