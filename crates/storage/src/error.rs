use crate::PageId;
use std::fmt;

/// Errors surfaced by the storage substrate.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure (file backend only).
    Io(std::io::Error),
    /// A page id beyond the allocated extent was read.
    PageOutOfBounds { page: PageId, allocated: u64 },
    /// A serialized structure failed validation while decoding.
    Corrupt {
        /// What was being decoded, e.g. `"blob header"`.
        context: &'static str,
        detail: String,
    },
    /// A page's embedded CRC32 did not match its payload: the stored page
    /// was corrupted below the buffer pool (bit rot, torn write, fault
    /// injection).
    ChecksumMismatch {
        page: PageId,
        stored: u32,
        computed: u32,
    },
    /// A caller handed `read_page`/`write_page` a buffer of the wrong
    /// length.
    BadPageBuffer { expected: usize, actual: usize },
    /// A transient fault (injected or environmental) that may succeed on
    /// retry; the buffer pool retries these with exponential backoff.
    Transient {
        /// The operation that failed, e.g. `"read_page"`.
        op: &'static str,
        detail: String,
    },
    /// A caller-supplied argument was structurally invalid (e.g. building
    /// an index over an empty dataset).
    InvalidArgument {
        context: &'static str,
        detail: String,
    },
}

impl StorageError {
    /// Shorthand for a corruption error.
    pub fn corrupt(context: &'static str, detail: impl Into<String>) -> Self {
        StorageError::Corrupt {
            context,
            detail: detail.into(),
        }
    }

    /// Shorthand for a transient error.
    pub fn transient(op: &'static str, detail: impl Into<String>) -> Self {
        StorageError::Transient {
            op,
            detail: detail.into(),
        }
    }

    /// Shorthand for an invalid-argument error.
    pub fn invalid_argument(context: &'static str, detail: impl Into<String>) -> Self {
        StorageError::InvalidArgument {
            context,
            detail: detail.into(),
        }
    }

    /// Whether retrying the failed operation may succeed. Checksum
    /// mismatches count as retryable because the *transport* may have
    /// corrupted the frame (the retry re-reads the stored page); if the
    /// stored page itself is rotten, retries exhaust and the mismatch is
    /// surfaced.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            StorageError::Transient { .. } | StorageError::ChecksumMismatch { .. }
        )
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::PageOutOfBounds { page, allocated } => write!(
                f,
                "page {page:?} out of bounds (allocated extent: {allocated} pages)"
            ),
            StorageError::Corrupt { context, detail } => {
                write!(f, "corrupt {context}: {detail}")
            }
            StorageError::ChecksumMismatch {
                page,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch on page {page:?}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            StorageError::BadPageBuffer { expected, actual } => write!(
                f,
                "bad page buffer: expected {expected} bytes, got {actual}"
            ),
            StorageError::Transient { op, detail } => {
                write!(f, "transient storage fault in {op}: {detail}")
            }
            StorageError::InvalidArgument { context, detail } => {
                write!(f, "invalid argument ({context}): {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = StorageError::PageOutOfBounds {
            page: PageId(9),
            allocated: 4,
        };
        assert!(e.to_string().contains("p9"));
        let c = StorageError::corrupt("node header", "bad magic");
        assert!(c.to_string().contains("node header"));
        let m = StorageError::ChecksumMismatch {
            page: PageId(3),
            stored: 1,
            computed: 2,
        };
        assert!(m.to_string().contains("checksum mismatch"));
        let b = StorageError::BadPageBuffer {
            expected: 4096,
            actual: 7,
        };
        assert!(b.to_string().contains("expected 4096"));
        let t = StorageError::transient("read_page", "injected");
        assert!(t.to_string().contains("read_page"));
        let i = StorageError::invalid_argument("index build", "empty dataset");
        assert!(i.to_string().contains("empty dataset"));
    }

    #[test]
    fn transiency_classification() {
        assert!(StorageError::transient("read_page", "x").is_transient());
        assert!(StorageError::ChecksumMismatch {
            page: PageId(0),
            stored: 0,
            computed: 1
        }
        .is_transient());
        assert!(!StorageError::corrupt("blob", "x").is_transient());
        assert!(!StorageError::PageOutOfBounds {
            page: PageId(0),
            allocated: 0
        }
        .is_transient());
        assert!(!StorageError::invalid_argument("c", "d").is_transient());
    }

    #[test]
    fn io_error_source() {
        use std::error::Error;
        let e: StorageError = std::io::Error::other("boom").into();
        assert!(e.source().is_some());
    }
}
