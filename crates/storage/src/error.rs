use crate::PageId;
use std::fmt;

/// Errors surfaced by the storage substrate.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure (file backend only).
    Io(std::io::Error),
    /// A page id beyond the allocated extent was read.
    PageOutOfBounds { page: PageId, allocated: u64 },
    /// A serialized structure failed validation while decoding.
    Corrupt {
        /// What was being decoded, e.g. `"blob header"`.
        context: &'static str,
        detail: String,
    },
}

impl StorageError {
    /// Shorthand for a corruption error.
    pub fn corrupt(context: &'static str, detail: impl Into<String>) -> Self {
        StorageError::Corrupt {
            context,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::PageOutOfBounds { page, allocated } => write!(
                f,
                "page {page:?} out of bounds (allocated extent: {allocated} pages)"
            ),
            StorageError::Corrupt { context, detail } => {
                write!(f, "corrupt {context}: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = StorageError::PageOutOfBounds {
            page: PageId(9),
            allocated: 4,
        };
        assert!(e.to_string().contains("p9"));
        let c = StorageError::corrupt("node header", "bad magic");
        assert!(c.to_string().contains("node header"));
    }

    #[test]
    fn io_error_source() {
        use std::error::Error;
        let e: StorageError = std::io::Error::other("boom").into();
        assert!(e.source().is_some());
    }
}
