//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) used for the
//! per-page checksums embedded by the buffer pool.
//!
//! The table-driven implementation is plenty for 4 KiB pages; the cost of
//! one page checksum is dwarfed by the simulated I/O it protects.

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// The CRC32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let mut page = vec![0u8; 4092];
        page[100] = 0x55;
        let clean = crc32(&page);
        for bit in [0, 1, 7] {
            page[2000] ^= 1 << bit;
            assert_ne!(crc32(&page), clean, "bit {bit} flip went undetected");
            page[2000] ^= 1 << bit;
        }
        assert_eq!(crc32(&page), clean);
    }

    #[test]
    fn zero_payload_has_nonzero_crc() {
        // The all-zero page exemption in the buffer pool relies on a
        // written-then-zeroed page being distinguishable from a fresh one:
        // a legitimately written all-zero payload stores a nonzero CRC.
        assert_ne!(crc32(&[0u8; 4092]), 0);
    }
}
