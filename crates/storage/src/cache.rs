//! A reusable fixed-capacity LRU map.
//!
//! Entries live in a slab; a doubly linked list threaded through the slab
//! orders them from most- to least-recently used. All operations are O(1)
//! (plus the `HashMap` lookup). The buffer pool uses one [`Lru`] per
//! shard; the serving layer's cross-query answer cache wraps one in a
//! mutex — the structure itself is deliberately not synchronised, so
//! every consumer picks its own locking granularity.
//!
//! ```
//! use wnsk_storage::cache::Lru;
//!
//! let mut lru = Lru::new(2);
//! lru.insert("a", 1);
//! lru.insert("b", 2);
//! lru.get(&"a"); // "b" is now least recently used
//! assert_eq!(lru.insert("c", 3), Some(("b", 2)));
//! assert_eq!(lru.get(&"a"), Some(&1));
//! ```

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU map evicting the least-recently-used entry on
/// overflow.
pub struct Lru<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Option<Entry<K, V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// Creates a map holding at most `capacity` entries (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "LRU capacity must be at least 1");
        Lru {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.touch(idx);
        Some(&self.slab[idx].as_ref().expect("mapped index is live").value)
    }

    /// Looks up `key` without disturbing the recency order.
    pub fn peek(&self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        Some(&self.slab[idx].as_ref().expect("mapped index is live").value)
    }

    /// Inserts `key → value`; returns the evicted entry when at capacity.
    ///
    /// Inserting an existing key replaces its value (no eviction) and marks
    /// it most recently used.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].as_mut().expect("mapped index is live").value = value;
            self.touch(idx);
            return None;
        }
        let evicted = if self.map.len() == self.capacity {
            Some(self.pop_lru().expect("capacity >= 1 so list is non-empty"))
        } else {
            None
        };
        let entry = Entry {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Some(entry);
                i
            }
            None => {
                self.slab.push(Some(entry));
                self.slab.len() - 1
            }
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        evicted
    }

    /// Removes `key`, returning its value when resident. Used by the
    /// answer cache to drop entries stamped with a superseded dataset
    /// epoch the moment a lookup discovers the staleness.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        self.free.push(idx);
        let entry = self.slab[idx].take().expect("mapped index is live");
        Some(entry.value)
    }

    /// Removes and returns the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        self.unlink(idx);
        self.free.push(idx);
        let entry = self.slab[idx].take().expect("tail index is live");
        self.map.remove(&entry.key);
        Some((entry.key, entry.value))
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn entry(&self, idx: usize) -> &Entry<K, V> {
        self.slab[idx].as_ref().expect("linked index is live")
    }

    fn entry_mut(&mut self, idx: usize) -> &mut Entry<K, V> {
        self.slab[idx].as_mut().expect("linked index is live")
    }

    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let e = self.entry(idx);
            (e.prev, e.next)
        };
        if prev != NIL {
            self.entry_mut(prev).next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entry_mut(next).prev = prev;
        } else {
            self.tail = prev;
        }
        let e = self.entry_mut(idx);
        e.prev = NIL;
        e.next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let e = self.entry_mut(idx);
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.entry_mut(old_head).prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut lru = Lru::new(2);
        assert!(lru.insert(1, "a").is_none());
        assert!(lru.insert(2, "b").is_none());
        assert_eq!(lru.get(&1), Some(&"a"));
        assert_eq!(lru.get(&3), None);
        assert_eq!(lru.len(), 2);
        assert!(!lru.is_empty());
        assert_eq!(lru.capacity(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new(2);
        lru.insert(1, "a");
        lru.insert(2, "b");
        lru.get(&1); // 2 is now LRU
        let evicted = lru.insert(3, "c");
        assert_eq!(evicted, Some((2, "b")));
        assert_eq!(lru.get(&1), Some(&"a"));
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&3), Some(&"c"));
    }

    #[test]
    fn peek_does_not_touch() {
        let mut lru = Lru::new(2);
        lru.insert(1, "a");
        lru.insert(2, "b");
        assert_eq!(lru.peek(&1), Some(&"a")); // 1 stays LRU
        assert_eq!(lru.insert(3, "c"), Some((1, "a")));
        assert_eq!(lru.peek(&9), None);
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut lru = Lru::new(2);
        lru.insert(1, "a");
        lru.insert(2, "b");
        assert!(lru.insert(1, "a2").is_none());
        assert_eq!(lru.get(&1), Some(&"a2"));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn capacity_one() {
        let mut lru = Lru::new(1);
        lru.insert(1, 10);
        assert_eq!(lru.insert(2, 20), Some((1, 10)));
        assert_eq!(lru.get(&2), Some(&20));
    }

    #[test]
    fn eviction_order_is_insertion_when_untouched() {
        let mut lru = Lru::new(3);
        lru.insert(1, ());
        lru.insert(2, ());
        lru.insert(3, ());
        assert_eq!(lru.insert(4, ()), Some((1, ())));
        assert_eq!(lru.insert(5, ()), Some((2, ())));
    }

    #[test]
    fn clear_resets() {
        let mut lru = Lru::new(2);
        lru.insert(1, "a");
        lru.clear();
        assert_eq!(lru.len(), 0);
        assert!(lru.is_empty());
        assert_eq!(lru.get(&1), None);
        lru.insert(2, "b");
        assert_eq!(lru.get(&2), Some(&"b"));
    }

    #[test]
    fn pop_lru_on_empty_is_none() {
        let mut lru: Lru<u32, u32> = Lru::new(4);
        assert_eq!(lru.pop_lru(), None);
    }

    #[test]
    fn remove_unlinks_and_frees_the_slot() {
        let mut lru = Lru::new(3);
        lru.insert(1, "a");
        lru.insert(2, "b");
        lru.insert(3, "c");
        assert_eq!(lru.remove(&2), Some("b"));
        assert_eq!(lru.remove(&2), None);
        assert_eq!(lru.len(), 2);
        // The freed slot is reusable and the recency list stays intact:
        // 1 is the LRU (3 and 4 were inserted after it).
        lru.insert(4, "d");
        assert_eq!(lru.insert(5, "e"), Some((1, "a")));
        assert_eq!(lru.get(&3), Some(&"c"));
        assert_eq!(lru.get(&4), Some(&"d"));
        // Removing head and tail both work.
        assert_eq!(lru.remove(&4), Some("d"));
        assert_eq!(lru.remove(&5), Some("e"));
        assert_eq!(lru.remove(&3), Some("c"));
        assert!(lru.is_empty());
    }

    #[test]
    fn heavy_mixed_workload_respects_capacity() {
        let mut lru = Lru::new(16);
        for i in 0..1000u32 {
            lru.insert(i % 64, i);
            assert!(lru.len() <= 16);
            if i % 3 == 0 {
                lru.get(&(i % 16));
            }
        }
    }

    #[test]
    fn owned_values_drop_cleanly() {
        // Regression guard: V with a destructor must survive eviction.
        let mut lru: Lru<u32, String> = Lru::new(2);
        for i in 0..100 {
            lru.insert(i, format!("value-{i}"));
        }
        assert_eq!(lru.get(&99).map(|s| s.as_str()), Some("value-99"));
    }

    #[test]
    fn shared_generic_works_with_arc_values() {
        // The serving layer stores Arc'd rank lists; eviction must only
        // drop the cache's reference.
        use std::sync::Arc;
        let outside = Arc::new(vec![1u32, 2, 3]);
        let mut lru: Lru<u8, Arc<Vec<u32>>> = Lru::new(1);
        lru.insert(1, Arc::clone(&outside));
        lru.insert(2, Arc::new(vec![]));
        assert_eq!(Arc::strong_count(&outside), 1);
    }
}
