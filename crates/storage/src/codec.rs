//! Little-endian encoding helpers shared by every on-disk node format.
//!
//! The index crates serialize tree nodes and payloads by hand (no serde on
//! the disk path — layouts are explicit and stable). These helpers wrap
//! `bytes::{Buf, BufMut}` with *checked* reads that surface
//! [`StorageError::Corrupt`](crate::StorageError) instead of panicking on
//! truncated input.

use crate::{Result, StorageError};
use bytes::{Buf, BufMut};

/// A checked reader over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    context: &'static str,
}

impl<'a> Reader<'a> {
    /// Wraps `buf`; `context` names the structure being decoded for error
    /// messages.
    pub fn new(buf: &'a [u8], context: &'static str) -> Self {
        Reader { buf, context }
    }

    fn ensure(&self, n: usize) -> Result<()> {
        if self.buf.remaining() < n {
            Err(StorageError::corrupt(
                self.context,
                format!("needed {n} bytes, only {} remain", self.buf.remaining()),
            ))
        } else {
            Ok(())
        }
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    pub fn read_u8(&mut self) -> Result<u8> {
        self.ensure(1)?;
        Ok(self.buf.get_u8())
    }

    pub fn read_u16(&mut self) -> Result<u16> {
        self.ensure(2)?;
        Ok(self.buf.get_u16_le())
    }

    pub fn read_u32(&mut self) -> Result<u32> {
        self.ensure(4)?;
        Ok(self.buf.get_u32_le())
    }

    pub fn read_u64(&mut self) -> Result<u64> {
        self.ensure(8)?;
        Ok(self.buf.get_u64_le())
    }

    pub fn read_f64(&mut self) -> Result<f64> {
        self.ensure(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Reads `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.ensure(n)?;
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }
}

/// An unchecked little-endian writer into a `Vec<u8>`.
///
/// Writing can't fail; page-size overflow is checked by the caller when the
/// buffer is packed into pages.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(n),
        }
    }

    pub fn write_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    pub fn write_u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    pub fn write_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    pub fn write_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    pub fn write_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    pub fn write_bytes(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = Writer::new();
        w.write_u8(0x12);
        w.write_u16(0x3456);
        w.write_u32(0x789ABCDE);
        w.write_u64(0x1122334455667788);
        w.write_f64(-1.5);
        w.write_bytes(b"abc");
        let buf = w.into_vec();

        let mut r = Reader::new(&buf, "test");
        assert_eq!(r.read_u8().unwrap(), 0x12);
        assert_eq!(r.read_u16().unwrap(), 0x3456);
        assert_eq!(r.read_u32().unwrap(), 0x789ABCDE);
        assert_eq!(r.read_u64().unwrap(), 0x1122334455667788);
        assert_eq!(r.read_f64().unwrap(), -1.5);
        assert_eq!(r.read_bytes(3).unwrap(), b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_read_is_corrupt_error() {
        let buf = [1u8, 2];
        let mut r = Reader::new(&buf, "node header");
        assert!(matches!(
            r.read_u32(),
            Err(StorageError::Corrupt {
                context: "node header",
                ..
            })
        ));
    }

    #[test]
    fn read_bytes_consumes_exactly() {
        let buf = [1u8, 2, 3, 4];
        let mut r = Reader::new(&buf, "test");
        assert_eq!(r.read_bytes(2).unwrap(), &[1, 2]);
        assert_eq!(r.remaining(), 2);
        assert!(r.read_bytes(3).is_err());
        // A failed read leaves the reader usable.
        assert_eq!(r.read_bytes(2).unwrap(), &[3, 4]);
    }

    #[test]
    fn little_endian_layout_is_stable() {
        let mut w = Writer::new();
        w.write_u32(1);
        assert_eq!(w.as_slice(), &[1, 0, 0, 0]);
    }
}
