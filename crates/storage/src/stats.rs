use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe I/O counters.
///
/// `physical_reads` is the paper's "number of I/Os" metric: pages actually
/// fetched from the backend because they were not resident in the buffer
/// pool. Counters are monotonically increasing; experiments snapshot them
/// before and after a query and subtract.
#[derive(Default, Debug)]
pub struct IoStats {
    logical_reads: AtomicU64,
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn record_logical_read(&self) {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_physical_read(&self) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_physical_write(&self) {
        self.physical_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of the counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`IoStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Page reads requested from the pool (hits + misses).
    pub logical_reads: u64,
    /// Pages fetched from the backend (cache misses) — the paper's I/O.
    pub physical_reads: u64,
    /// Pages written through to the backend.
    pub physical_writes: u64,
}

impl IoStatsSnapshot {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            logical_reads: self.logical_reads - earlier.logical_reads,
            physical_reads: self.physical_reads - earlier.physical_reads,
            physical_writes: self.physical_writes - earlier.physical_writes,
        }
    }

    /// Buffer-pool hit ratio in `[0, 1]`; 1.0 when there were no reads.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            1.0 - self.physical_reads as f64 / self.logical_reads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_logical_read();
        s.record_logical_read();
        s.record_physical_read();
        s.record_physical_write();
        let snap = s.snapshot();
        assert_eq!(snap.logical_reads, 2);
        assert_eq!(snap.physical_reads, 1);
        assert_eq!(snap.physical_writes, 1);
    }

    #[test]
    fn since_subtracts() {
        let s = IoStats::new();
        s.record_logical_read();
        let before = s.snapshot();
        s.record_logical_read();
        s.record_physical_read();
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.logical_reads, 1);
        assert_eq!(delta.physical_reads, 1);
    }

    #[test]
    fn hit_ratio() {
        let mut snap = IoStatsSnapshot::default();
        assert_eq!(snap.hit_ratio(), 1.0);
        snap.logical_reads = 10;
        snap.physical_reads = 2;
        assert!((snap.hit_ratio() - 0.8).abs() < 1e-12);
    }
}
