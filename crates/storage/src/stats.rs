use wnsk_obs::{names, Counter, Hist, Registry, TracePayload, Tracer};

/// Shared, thread-safe I/O counters.
///
/// `physical_reads` is the paper's "number of I/Os" metric: pages actually
/// fetched from the backend because they were not resident in the buffer
/// pool. Counters are monotonically increasing; experiments snapshot them
/// before and after a query and subtract.
///
/// The counters are [`wnsk_obs::Counter`] handles, so a pool's stats can
/// be published into a shared [`Registry`] (see [`IoStats::register`])
/// and show up in unified query reports without double bookkeeping.
#[derive(Clone, Default, Debug)]
pub struct IoStats {
    logical_reads: Counter,
    physical_reads: Counter,
    physical_writes: Counter,
    retries: Counter,
    retries_exhausted: Counter,
    retry_backoff_nanos: Counter,
    checksum_failures: Counter,
    read_latency: Hist,
    retry_backoff: Hist,
    tracer: Tracer,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes the counters into `registry` under `prefix` (e.g.
    /// `"kcr.pool."` yields `kcr.pool.physical_reads` …). If a name is
    /// already registered, this stats object adopts the registry's
    /// existing counter instead, so repeated registration under one
    /// prefix keeps all parties on a single shared handle.
    pub fn register(&mut self, registry: &Registry, prefix: &str) {
        self.logical_reads = registry.register_counter(
            &format!("{prefix}{}", names::LOGICAL_READS),
            self.logical_reads.clone(),
        );
        self.physical_reads = registry.register_counter(
            &format!("{prefix}{}", names::PHYSICAL_READS),
            self.physical_reads.clone(),
        );
        self.physical_writes = registry.register_counter(
            &format!("{prefix}{}", names::PHYSICAL_WRITES),
            self.physical_writes.clone(),
        );
        self.retries =
            registry.register_counter(&format!("{prefix}{}", names::RETRIES), self.retries.clone());
        self.retries_exhausted = registry.register_counter(
            &format!("{prefix}{}", names::RETRIES_EXHAUSTED),
            self.retries_exhausted.clone(),
        );
        self.retry_backoff_nanos = registry.register_counter(
            &format!("{prefix}{}", names::RETRY_BACKOFF_NANOS),
            self.retry_backoff_nanos.clone(),
        );
        self.checksum_failures = registry.register_counter(
            &format!("{prefix}{}", names::CHECKSUM_FAILURES),
            self.checksum_failures.clone(),
        );
        self.read_latency = registry.register_hist(
            &format!("{prefix}{}", names::READ_LATENCY_NS),
            self.read_latency.clone(),
        );
        self.retry_backoff = registry.register_hist(
            &format!("{prefix}{}", names::RETRY_BACKOFF_NS),
            self.retry_backoff.clone(),
        );
    }

    /// Attaches a tracer: cache hits and physical reads emit trace
    /// events/spans attributed to the executing worker.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The attached tracer ([`Tracer::off`] unless installed).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    #[inline]
    pub(crate) fn record_logical_read(&self) {
        self.logical_reads.inc();
    }

    #[inline]
    pub(crate) fn record_physical_read(&self) {
        self.physical_reads.inc();
    }

    #[inline]
    pub(crate) fn record_physical_write(&self) {
        self.physical_writes.inc();
    }

    #[inline]
    pub(crate) fn record_retry(&self) {
        self.retries.inc();
    }

    #[inline]
    pub(crate) fn record_retries_exhausted(&self) {
        self.retries_exhausted.inc();
    }

    #[inline]
    pub(crate) fn record_backoff(&self, slept: std::time::Duration) {
        self.retry_backoff_nanos.add(slept.as_nanos() as u64);
        self.retry_backoff.record_duration(slept);
    }

    /// Records one pool-miss latency (backend fetch + verification,
    /// including any simulated I/O wait).
    #[inline]
    pub(crate) fn record_read_latency(&self, elapsed: std::time::Duration) {
        self.read_latency.record_duration(elapsed);
    }

    /// Emits a `CacheHit` trace event (hit counts are derivable as
    /// `logical_reads - physical_reads`, so there is no counter).
    #[inline]
    pub(crate) fn trace_cache_hit(&self) {
        if self.tracer.is_on() {
            self.tracer.event("pool.cache_hit", TracePayload::CacheHit);
        }
    }

    #[inline]
    pub(crate) fn record_checksum_failure(&self) {
        self.checksum_failures.inc();
    }

    /// Takes a consistent-enough snapshot of the counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            logical_reads: self.logical_reads.get(),
            physical_reads: self.physical_reads.get(),
            physical_writes: self.physical_writes.get(),
            retries: self.retries.get(),
            retries_exhausted: self.retries_exhausted.get(),
            retry_backoff_nanos: self.retry_backoff_nanos.get(),
            checksum_failures: self.checksum_failures.get(),
        }
    }
}

/// A point-in-time copy of [`IoStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Page reads requested from the pool (hits + misses).
    pub logical_reads: u64,
    /// Pages fetched from the backend (cache misses) — the paper's I/O.
    pub physical_reads: u64,
    /// Pages written through to the backend.
    pub physical_writes: u64,
    /// Extra attempts spent retrying transient faults.
    pub retries: u64,
    /// Operations that failed even after all retries.
    pub retries_exhausted: u64,
    /// Total nanoseconds slept in retry backoff.
    pub retry_backoff_nanos: u64,
    /// Page reads whose CRC32 trailer did not match the payload.
    pub checksum_failures: u64,
}

impl IoStatsSnapshot {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            logical_reads: self.logical_reads - earlier.logical_reads,
            physical_reads: self.physical_reads - earlier.physical_reads,
            physical_writes: self.physical_writes - earlier.physical_writes,
            retries: self.retries - earlier.retries,
            retries_exhausted: self.retries_exhausted - earlier.retries_exhausted,
            retry_backoff_nanos: self.retry_backoff_nanos - earlier.retry_backoff_nanos,
            checksum_failures: self.checksum_failures - earlier.checksum_failures,
        }
    }

    /// Buffer-pool hit ratio in `[0, 1]`; 1.0 when there were no reads.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            1.0 - self.physical_reads as f64 / self.logical_reads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_logical_read();
        s.record_logical_read();
        s.record_physical_read();
        s.record_physical_write();
        let snap = s.snapshot();
        assert_eq!(snap.logical_reads, 2);
        assert_eq!(snap.physical_reads, 1);
        assert_eq!(snap.physical_writes, 1);
    }

    #[test]
    fn since_subtracts() {
        let s = IoStats::new();
        s.record_logical_read();
        let before = s.snapshot();
        s.record_logical_read();
        s.record_physical_read();
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.logical_reads, 1);
        assert_eq!(delta.physical_reads, 1);
    }

    #[test]
    fn hit_ratio() {
        let mut snap = IoStatsSnapshot::default();
        assert_eq!(snap.hit_ratio(), 1.0);
        snap.logical_reads = 10;
        snap.physical_reads = 2;
        assert!((snap.hit_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn register_publishes_and_preserves_values() {
        let mut s = IoStats::new();
        s.record_physical_read();
        let registry = Registry::new();
        s.register(&registry, "setr.pool.");
        // Pre-registration activity is visible through the registry…
        assert_eq!(registry.snapshot().counter("setr.pool.physical_reads"), 1);
        // …and post-registration activity flows into the same counter.
        s.record_physical_read();
        s.record_logical_read();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("setr.pool.physical_reads"), 2);
        assert_eq!(snap.counter("setr.pool.logical_reads"), 1);
        assert_eq!(s.snapshot().physical_reads, 2);
    }

    #[test]
    fn reregistering_converges_on_one_counter() {
        let registry = Registry::new();
        let mut a = IoStats::new();
        a.register(&registry, "p.");
        let mut b = IoStats::new();
        b.register(&registry, "p.");
        a.record_physical_write();
        b.record_physical_write();
        assert_eq!(registry.snapshot().counter("p.physical_writes"), 2);
    }
}
