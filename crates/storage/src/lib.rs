//! Simulated disk substrate for the why-not spatial keyword library.
//!
//! The paper evaluates its algorithms on *disk-resident* indexes (page size
//! 4 KiB, buffer 4 MiB, node capacity 100) and reports the number of page
//! I/Os as a first-class metric. This crate reproduces that substrate:
//!
//! * [`StorageBackend`] — a page device; [`MemBackend`] (RAM-backed, used
//!   by tests and benchmarks) and [`FileBackend`] (a real file, proving the
//!   on-disk format round-trips),
//! * [`BufferPool`] — a sharded LRU page cache. *Every* page access on a
//!   query path goes through the pool; cache misses are counted as physical
//!   reads, which is exactly the paper's I/O metric,
//! * [`BlobStore`] — overflow-chained storage for variable-length payloads
//!   (keyword sets and keyword-count maps can exceed one page; the paper
//!   stores them "sequentially on disk to reduce the number of disk
//!   seeks"),
//! * [`codec`] — the little-endian encoding helpers shared by all node
//!   formats.
//!
//! # Robustness
//!
//! The substrate is hardened against a faulty disk: the buffer pool embeds
//! a CRC32 trailer in every page ([`PAGE_DATA_SIZE`] payload bytes remain
//! usable) and verifies it on read, surfacing at-rest corruption as a
//! typed [`StorageError::ChecksumMismatch`]; transient faults are retried
//! with bounded exponential backoff ([`RetryPolicy`]); and the [`fault`]
//! module provides a deterministic, seedable [`FaultBackend`] for chaos
//! testing the whole stack.

mod backend;
mod blob;
mod buffer_pool;
pub mod cache;
pub mod codec;
pub mod crc;
mod error;
pub mod fault;
mod page;
mod stats;
pub mod wal;

pub use backend::{FileBackend, MemBackend, StorageBackend};
pub use blob::{BlobRef, BlobStore};
pub use buffer_pool::{BufferPool, BufferPoolConfig, RetryPolicy};
pub use error::{Result, StorageError};
pub use fault::{FaultBackend, FaultKind, FaultPlan, FaultStats};
pub use page::{PageId, PAGE_CRC_LEN, PAGE_DATA_SIZE, PAGE_SIZE};
pub use stats::{IoStats, IoStatsSnapshot};
pub use wal::{RecoveryReport, Wal, WalError};
