use std::fmt;

/// The page size used throughout the system, matching the paper's setup
/// (§VII-A1: "The page size is set to 4KB").
pub const PAGE_SIZE: usize = 4096;

/// Bytes of every page reserved for the CRC32 trailer the buffer pool
/// embeds on write and verifies on read.
pub const PAGE_CRC_LEN: usize = 4;

/// Usable payload bytes per page when going through the buffer pool.
/// Backends still move raw [`PAGE_SIZE`] frames; the pool owns the
/// trailer.
pub const PAGE_DATA_SIZE: usize = PAGE_SIZE - PAGE_CRC_LEN;

/// Identifier of a page within a [`StorageBackend`](crate::StorageBackend).
///
/// Pages are allocated densely from zero; `PageId` is also the byte offset
/// divided by [`PAGE_SIZE`] in the file backend.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel for "no page" in chained structures (blob chains, free
    /// lists). Never allocated.
    pub const INVALID: PageId = PageId(u64::MAX);

    /// `true` unless this is the [`PageId::INVALID`] sentinel.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "p{}", self.0)
        } else {
            write!(f, "p<invalid>")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_sentinel() {
        assert!(!PageId::INVALID.is_valid());
        assert!(PageId(0).is_valid());
        assert!(PageId(123).is_valid());
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", PageId(7)), "p7");
        assert_eq!(format!("{:?}", PageId::INVALID), "p<invalid>");
    }
}
