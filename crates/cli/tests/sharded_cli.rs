//! CLI-level sharded serving: `shard-plan` determinism, manifest
//! validation, the sharded `serve` session (address files written
//! atomically, per-shard admin planes), and `loadgen --mutate-ratio`
//! routed ingest.

use std::path::{Path, PathBuf};

fn run(args: &[&str]) -> Result<String, String> {
    let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    wnsk_cli::run(&owned)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "wnsk-cli-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate_dataset(dir: &Path) -> String {
    let data = dir.join("tiny.txt").to_str().unwrap().to_string();
    run(&[
        "generate", "--preset", "tiny", "--seed", "7", "--out", &data,
    ])
    .unwrap();
    data
}

#[test]
fn shard_plan_is_deterministic_and_serve_validates_the_manifest() {
    let dir = temp_dir("plan");
    let data = generate_dataset(&dir);
    let manifest = dir.join("manifest.json").to_str().unwrap().to_string();

    let summary = run(&[
        "shard-plan",
        "--data",
        &data,
        "--shards",
        "2",
        "--seed",
        "42",
        "--out",
        &manifest,
    ])
    .unwrap();
    assert!(summary.contains("planned 2 shards"), "{summary}");
    assert!(summary.contains("shard 0:") && summary.contains("shard 1:"));
    let first = std::fs::read(&manifest).unwrap();

    // Re-planning under the same seed reproduces the manifest bit for
    // bit; a different seed is allowed to differ but must still parse.
    run(&[
        "shard-plan",
        "--data",
        &data,
        "--shards",
        "2",
        "--seed",
        "42",
        "--out",
        &manifest,
    ])
    .unwrap();
    assert_eq!(first, std::fs::read(&manifest).unwrap());

    // A --shards override that contradicts the manifest is an error.
    let err = run(&[
        "serve",
        "--data",
        &data,
        "--manifest",
        &manifest,
        "--shards",
        "3",
    ])
    .unwrap_err();
    assert!(err.contains("contradicts"), "{err}");

    // Single-engine persistence flags are rejected in sharded mode.
    let err = run(&["serve", "--data", &data, "--shards", "2", "--wal", "x.wal"]).unwrap_err();
    assert!(err.contains("--shard-wal-dir"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mutate_ratio_must_be_a_fraction() {
    let dir = temp_dir("ratio");
    let data = generate_dataset(&dir);
    let err = run(&[
        "loadgen",
        "--addr",
        "127.0.0.1:1",
        "--data",
        &data,
        "--mutate-ratio",
        "1.5",
    ])
    .unwrap_err();
    assert!(err.contains("--mutate-ratio"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_serve_session_with_routed_ingest() {
    let dir = temp_dir("serve");
    let data = generate_dataset(&dir);
    let addr_file = dir.join("addr.txt");
    let admin_file = dir.join("admin.txt");
    let shard_prefix = dir.join("shard-admin-");
    let wal_dir = dir.join("walds");

    // The server runs in a background thread for a bounded duration;
    // the address files (written via atomic rename) are the handshake.
    let serve_args: Vec<String> = [
        "serve",
        "--data",
        &data,
        "--shards",
        "2",
        "--replicas",
        "2",
        "--shard-wal-dir",
        wal_dir.to_str().unwrap(),
        "--admin-addr",
        "127.0.0.1:0",
        "--addr-file",
        addr_file.to_str().unwrap(),
        "--admin-addr-file",
        admin_file.to_str().unwrap(),
        "--shard-admin-addr-file",
        shard_prefix.to_str().unwrap(),
        "--duration-ms",
        "6000",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let server = std::thread::spawn(move || wnsk_cli::run(&serve_args));

    let addr = {
        let mut addr = None;
        for _ in 0..100 {
            if let Ok(text) = std::fs::read_to_string(&addr_file) {
                addr = Some(text);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        addr.expect("server never wrote --addr-file")
    };
    // Atomic rename means a visible file is always complete.
    assert!(addr.parse::<std::net::SocketAddr>().is_ok(), "{addr}");

    let report = run(&[
        "loadgen",
        "--addr",
        &addr,
        "--data",
        &data,
        "--requests",
        "60",
        "--pool",
        "24",
        "--mutate-ratio",
        "0.25",
    ])
    .unwrap();
    assert!(report.contains("errors 0"), "{report}");
    assert!(report.contains("60 requests"), "{report}");

    // The admin scrape check passes against the coordinator plane, and
    // each shard got its own (complete) address file.
    let admin = std::fs::read_to_string(&admin_file).unwrap();
    let check = run(&["top", "--admin", &admin, "--check"]).unwrap();
    assert!(check.contains("scrape OK"), "{check}");
    for s in 0..2 {
        let path = format!("{}{s}", shard_prefix.to_str().unwrap());
        let shard_addr = std::fs::read_to_string(&path).unwrap();
        assert!(
            shard_addr.parse::<std::net::SocketAddr>().is_ok(),
            "shard {s}: {shard_addr}"
        );
    }

    let summary = server.join().unwrap().unwrap();
    assert!(summary.contains("accepted"), "{summary}");

    // Mutations were routed and logged: a cold restart over the same
    // WAL directory recovers without error (the recovery banner itself
    // goes to stderr) and serves again.
    let restart = run(&[
        "serve",
        "--data",
        &data,
        "--shards",
        "2",
        "--shard-wal-dir",
        wal_dir.to_str().unwrap(),
        "--duration-ms",
        "50",
    ])
    .unwrap();
    assert!(restart.contains("served"), "{restart}");
    let _ = std::fs::remove_dir_all(&dir);
}
