//! `--metrics-export` target handling: a Prometheus-text snapshot to a
//! file or standard output, with typed errors (the CLI never unwraps on
//! file I/O — a bad path comes back as an [`ExportError`]).

use std::fmt;
use std::path::PathBuf;
use wnsk_obs::Snapshot;

/// Where `--metrics-export` delivers the exposition text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExportTarget {
    /// `-`: the text becomes part of the command's printed output.
    Stdout,
    /// Any other value: the text is written to that file.
    File(PathBuf),
}

impl ExportTarget {
    /// Interprets a `--metrics-export` value (`-` means stdout).
    pub fn parse(raw: &str) -> Self {
        if raw == "-" {
            ExportTarget::Stdout
        } else {
            ExportTarget::File(PathBuf::from(raw))
        }
    }
}

/// A failed export: the path that could not be written plus the
/// underlying OS error.
#[derive(Debug)]
pub struct ExportError {
    path: PathBuf,
    source: std::io::Error,
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot export metrics to {}: {}",
            self.path.display(),
            self.source
        )
    }
}

impl std::error::Error for ExportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Renders `snapshot` as Prometheus text format and delivers it to
/// `target`. Returns the text to append to the command's output: the
/// exposition itself for [`ExportTarget::Stdout`], a one-line
/// confirmation for files.
pub fn export(snapshot: &Snapshot, target: &ExportTarget) -> Result<String, ExportError> {
    let text = wnsk_obs::prometheus_text(snapshot);
    match target {
        ExportTarget::Stdout => Ok(text),
        ExportTarget::File(path) => {
            std::fs::write(path, &text).map_err(|source| ExportError {
                path: path.clone(),
                source,
            })?;
            Ok(format!("exported metrics to {}\n", path.display()))
        }
    }
}

/// Writes `snapshot` as Prometheus text to `path` atomically: the text
/// lands in a `<path>.tmp` sibling first and is renamed into place, so
/// a scraper reading the file concurrently sees either the previous
/// complete exposition or the new one — never a torn write. This is the
/// write path of the periodic `--metrics-export-interval-ms` exporter.
pub fn export_atomic(snapshot: &Snapshot, path: &std::path::Path) -> Result<(), ExportError> {
    let text = wnsk_obs::prometheus_text(snapshot);
    let err = |source| ExportError {
        path: path.to_path_buf(),
        source,
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, &text).map_err(err)?;
    std::fs::rename(&tmp, path).map_err(err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnsk_obs::Registry;

    #[test]
    fn dash_means_stdout() {
        assert_eq!(ExportTarget::parse("-"), ExportTarget::Stdout);
        assert_eq!(
            ExportTarget::parse("metrics.prom"),
            ExportTarget::File(PathBuf::from("metrics.prom"))
        );
    }

    #[test]
    fn stdout_target_returns_the_exposition() {
        let r = Registry::new();
        r.counter("kcr.node_visits").add(3);
        let out = export(&r.snapshot(), &ExportTarget::Stdout).unwrap();
        assert!(out.contains("# TYPE wnsk_kcr_node_visits counter"), "{out}");
        assert!(out.contains("wnsk_kcr_node_visits 3"), "{out}");
    }

    #[test]
    fn file_target_writes_and_confirms() {
        let path = std::env::temp_dir().join(format!("wnsk-export-{}.prom", std::process::id()));
        let r = Registry::new();
        r.counter("setr.node_visits").add(1);
        let note = export(&r.snapshot(), &ExportTarget::parse(&path.to_string_lossy())).unwrap();
        assert!(note.contains("exported metrics to"), "{note}");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("wnsk_setr_node_visits 1"), "{body}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_export_replaces_the_file_and_leaves_no_tmp() {
        let path = std::env::temp_dir().join(format!("wnsk-atomic-{}.prom", std::process::id()));
        let r = Registry::new();
        r.counter("serve.accepted").add(2);
        export_atomic(&r.snapshot(), &path).unwrap();
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .contains("wnsk_serve_accepted 2"));
        r.counter("serve.accepted").add(3);
        export_atomic(&r.snapshot(), &path).unwrap();
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .contains("wnsk_serve_accepted 5"));
        let tmp = format!("{}.tmp", path.display());
        assert!(!std::path::Path::new(&tmp).exists(), "tmp file left behind");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unwritable_path_is_a_typed_error() {
        let r = Registry::new();
        let err = export(
            &r.snapshot(),
            &ExportTarget::parse("/nonexistent-dir/metrics.prom"),
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("cannot export metrics to"), "{msg}");
        assert!(msg.contains("/nonexistent-dir/metrics.prom"), "{msg}");
        assert!(std::error::Error::source(&err).is_some());
    }
}
