//! Subcommand implementations.

use crate::args::ParsedArgs;
use crate::export::{self, ExportTarget};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use wnsk_core::{
    answer_advanced, answer_approx_kcr, answer_kcr, AdvancedOptions, KcrOptions, QueryBudget,
    WhyNotAnswer, WhyNotQuestion,
};
use wnsk_data::{io as dataio, DatasetSpec};
use wnsk_index::{Dataset, KcrTree, ObjectId, SetRTree, SpatialKeywordQuery};
use wnsk_obs::{JsonValue, QueryReport, Registry, Snapshot, Tracer};
use wnsk_serve::{LoadgenConfig, Server, ServerConfig};
use wnsk_shard::{Coordinator, CoordinatorConfig, ShardManifest};
use wnsk_storage::{BufferPool, BufferPoolConfig, FileBackend};
use wnsk_text::{Kernel, KeywordSet, Vocabulary};

/// `wnsk generate` — write a synthetic dataset file.
pub fn generate(args: &ParsedArgs) -> Result<String, String> {
    let preset = args.required("preset")?;
    let scale: f64 = args.parse_or("scale", 0.01)?;
    let out = args.required("out")?;
    let seed: u64 = args.parse_or("seed", 0)?;
    let mut spec = match preset {
        "euro" => DatasetSpec::euro_like(scale),
        "gn" => DatasetSpec::gn_like(scale),
        "tiny" => DatasetSpec::tiny(seed),
        other => return Err(format!("unknown preset '{other}' (euro|gn|tiny)")),
    };
    if seed != 0 {
        spec = spec.with_seed(seed);
    }
    let g = wnsk_data::generate(&spec);
    let file = std::fs::File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    dataio::write_dataset(std::io::BufWriter::new(file), &g.dataset, &g.vocabulary)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    Ok(format!(
        "wrote {} ({} objects, {} distinct terms, avg doc len {:.2})\n",
        out,
        g.dataset.len(),
        g.used_vocab(),
        g.avg_doc_len()
    ))
}

fn load_dataset(args: &ParsedArgs) -> Result<(Dataset, Vocabulary), String> {
    let path = args.required("data")?;
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    dataio::read_dataset(std::io::BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

/// `wnsk stats` — dataset statistics.
pub fn stats(args: &ParsedArgs) -> Result<String, String> {
    let (ds, vocab) = load_dataset(args)?;
    let total_terms: usize = ds.objects().iter().map(|o| o.doc.len()).sum();
    let world = ds.world().rect();
    Ok(format!(
        "objects:        {}\ndistinct terms: {}\navg doc len:    {:.2}\nworld:          ({}, {}) .. ({}, {})\n",
        ds.len(),
        vocab.len(),
        total_terms as f64 / ds.len().max(1) as f64,
        world.min.x, world.min.y, world.max.x, world.max.y,
    ))
}

fn open_pool(path: &str, create: bool) -> Result<Arc<BufferPool>, String> {
    let backend = if create {
        FileBackend::create(Path::new(path))
    } else {
        FileBackend::open(Path::new(path))
    }
    .map_err(|e| format!("{path}: {e}"))?;
    Ok(Arc::new(BufferPool::with_default_config(Arc::new(backend))))
}

/// Like [`open_pool`], but the pool's I/O counters are published into
/// `registry` under `prefix` so they land in the `--metrics` report, and
/// its cache hits / physical reads emit events through `tracer`
/// ([`Tracer::off`] costs nothing on untraced runs).
fn open_pool_registered(
    path: &str,
    registry: &Registry,
    prefix: &str,
    tracer: &Tracer,
) -> Result<Arc<BufferPool>, String> {
    let backend = FileBackend::open(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    Ok(Arc::new(BufferPool::new_instrumented(
        Arc::new(backend),
        BufferPoolConfig::default(),
        registry,
        prefix,
        tracer.clone(),
    )))
}

/// How `--explain` renders the drained span tree.
enum ExplainMode {
    Tree,
    Json,
}

fn parse_explain(args: &ParsedArgs) -> Result<Option<ExplainMode>, String> {
    match args.optional("explain") {
        None => Ok(None),
        Some("tree") => Ok(Some(ExplainMode::Tree)),
        Some("json") => Ok(Some(ExplainMode::Json)),
        Some(other) => Err(format!("bad --explain value '{other}' (tree|json)")),
    }
}

/// Everything that moved in `registry` since `before`, rendered as a
/// [`QueryReport`] with the given phase timings.
fn render_metrics(
    registry: &Registry,
    before: &Snapshot,
    algorithm: &str,
    wall: std::time::Duration,
    phases: &[(&str, std::time::Duration)],
) -> String {
    let delta = registry.snapshot().since(before);
    let mut report = QueryReport::new(algorithm, wall);
    for (name, elapsed) in phases {
        report.push_phase(*name, *elapsed);
    }
    report.absorb(&delta);
    report.render()
}

/// `wnsk build` — bulk-load both index files.
pub fn build(args: &ParsedArgs) -> Result<String, String> {
    let (ds, _) = load_dataset(args)?;
    let fanout: usize = args.parse_or("fanout", 100)?;
    let setr_path = args.required("setr")?;
    let kcr_path = args.required("kcr")?;
    let setr = SetRTree::build(open_pool(setr_path, true)?, &ds, fanout)
        .map_err(|e| format!("building SetR-tree: {e}"))?;
    let kcr = KcrTree::build(open_pool(kcr_path, true)?, &ds, fanout)
        .map_err(|e| format!("building KcR-tree: {e}"))?;
    Ok(format!(
        "built {} (SetR-tree, height {}) and {} (KcR-tree, height {}) over {} objects\n",
        setr_path,
        setr.height(),
        kcr_path,
        kcr.height(),
        ds.len()
    ))
}

fn parse_query(args: &ParsedArgs, vocab: &Vocabulary) -> Result<SpatialKeywordQuery, String> {
    let loc = args.point("at")?;
    let words = args.list("keywords")?;
    let mut unknown = Vec::new();
    let terms: Vec<_> = words
        .iter()
        .filter_map(|w| match vocab.get(w) {
            Some(t) => Some(t),
            None => {
                unknown.push(w.clone());
                None
            }
        })
        .collect();
    if !unknown.is_empty() {
        return Err(format!(
            "keyword(s) not in the dataset vocabulary: {}",
            unknown.join(", ")
        ));
    }
    let k: usize = args.parse_or("k", 10)?;
    let alpha: f64 = args.parse_or("alpha", 0.5)?;
    if !(0.0 < alpha && alpha < 1.0) {
        return Err("--alpha must be in (0, 1)".into());
    }
    if k == 0 {
        return Err("--k must be at least 1".into());
    }
    Ok(SpatialKeywordQuery::new(
        loc,
        KeywordSet::from_terms(terms),
        k,
        alpha,
    ))
}

fn render(doc: &KeywordSet, vocab: &Vocabulary) -> String {
    let words: Vec<&str> = doc.iter().map(|t| vocab.name(t).unwrap_or("?")).collect();
    format!("{{{}}}", words.join(", "))
}

/// `wnsk topk` — run a plain spatial keyword top-k query.
pub fn topk(args: &ParsedArgs) -> Result<String, String> {
    let (ds, vocab) = load_dataset(args)?;
    let query = parse_query(args, &vocab)?;
    let export_target = args.optional("metrics-export").map(ExportTarget::parse);
    let registry = Registry::new();
    let mut tree = SetRTree::open(open_pool_registered(
        args.required("setr")?,
        &registry,
        "setr.pool.",
        &Tracer::off(),
    )?)
    .map_err(|e| format!("opening SetR-tree: {e}"))?;
    tree.register_metrics(&registry, "setr.");
    if tree.len() != ds.len() as u64 {
        return Err(format!(
            "index covers {} objects but the dataset has {} — rebuild with `wnsk build`",
            tree.len(),
            ds.len()
        ));
    }
    let before = registry.snapshot();
    let started = std::time::Instant::now();
    let result = tree.top_k(&query).map_err(|e| e.to_string())?;
    let wall = started.elapsed();
    let mut out = String::new();
    for (i, (id, score)) in result.iter().enumerate() {
        let o = ds.object(*id);
        writeln!(
            out,
            "#{:<3} {:>8} score {:.4} @ ({:.4}, {:.4}) {}",
            i + 1,
            format!("{id:?}"),
            score,
            o.loc.x,
            o.loc.y,
            render(&o.doc, &vocab)
        )
        .unwrap();
    }
    let stats = tree.pool().stats();
    writeln!(out, "({} physical page reads)", stats.physical_reads).unwrap();
    if args.flag("metrics") {
        out.push_str(&render_metrics(&registry, &before, "topk", wall, &[]));
    }
    if let Some(target) = &export_target {
        out.push_str(
            &export::export(&registry.snapshot().since(&before), target)
                .map_err(|e| e.to_string())?,
        );
    }
    Ok(out)
}

/// `wnsk whynot` — answer a why-not question.
pub fn whynot(args: &ParsedArgs) -> Result<String, String> {
    let (ds, vocab) = load_dataset(args)?;
    let query = parse_query(args, &vocab)?;
    let missing: Vec<ObjectId> = args
        .list("missing")?
        .iter()
        .map(|s| {
            s.trim_start_matches('o')
                .parse::<u32>()
                .map(ObjectId)
                .map_err(|_| format!("bad object id '{s}' (use 42 or o42)"))
        })
        .collect::<Result<_, _>>()?;
    let lambda: f64 = args.parse_or("lambda", 0.5)?;
    if !(0.0..=1.0).contains(&lambda) {
        return Err("--lambda must be in [0, 1]".into());
    }
    let threads: usize = args.parse_or("threads", 1)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    // Wall-time A/B knob: both kernels return bit-identical answers and
    // work metrics (docs/KERNELS.md), so this never changes the output.
    let kernel: Kernel = args.parse_or("kernel", Kernel::default())?;
    let question = WhyNotQuestion::new(query.clone(), missing.clone(), lambda);

    let algo = args.optional("algo").unwrap_or("kcr");
    let approx: usize = args.parse_or("approx", 0)?;
    // 0 = unlimited for both budget knobs; on exhaustion the solver
    // degrades to the approximate fallback and says so below.
    let deadline_ms: u64 = args.parse_or("deadline-ms", 0)?;
    let max_page_reads: u64 = args.parse_or("max-page-reads", 0)?;
    let mut budget = QueryBudget::unlimited();
    if deadline_ms > 0 {
        budget = budget.with_deadline(std::time::Duration::from_millis(deadline_ms));
    }
    if max_page_reads > 0 {
        budget = budget.with_max_page_reads(max_page_reads);
    }

    let explain = parse_explain(args)?;
    let trace_sample: usize = args.parse_or("trace-sample", 0)?;
    let export_target = args.optional("metrics-export").map(ExportTarget::parse);
    // One CLI invocation runs a single query — index 0 — which every
    // sample rate selects, so `--trace-sample N` here simply turns
    // tracing on without asking for the explain rendering (the 1-in-N
    // behaviour matters under `xp bench`, which traces whole batches).
    let tracer = if explain.is_some() || trace_sample >= 1 {
        Tracer::new()
    } else {
        Tracer::off()
    };

    let registry = Registry::new();
    let (answer, before): (WhyNotAnswer, Snapshot) = match (algo, approx) {
        ("bs", 0) => {
            let mut tree = SetRTree::open(open_pool_registered(
                args.required("setr")?,
                &registry,
                "setr.pool.",
                &tracer,
            )?)
            .map_err(|e| e.to_string())?;
            tree.register_metrics(&registry, "setr.");
            tree.set_tracer(tracer.clone());
            let before = registry.snapshot();
            // BS = AdvancedBS with every optimisation off; threads only
            // change how candidates are distributed, not the answer.
            let opts = AdvancedOptions {
                budget,
                threads,
                kernel,
                ..AdvancedOptions::none()
            };
            let a = answer_advanced(&ds, &tree, &question, opts).map_err(|e| e.to_string())?;
            (a, before)
        }
        ("advanced", 0) => {
            let mut tree = SetRTree::open(open_pool_registered(
                args.required("setr")?,
                &registry,
                "setr.pool.",
                &tracer,
            )?)
            .map_err(|e| e.to_string())?;
            tree.register_metrics(&registry, "setr.");
            tree.set_tracer(tracer.clone());
            let before = registry.snapshot();
            let opts = AdvancedOptions {
                budget,
                threads,
                kernel,
                ..AdvancedOptions::default()
            };
            let a = answer_advanced(&ds, &tree, &question, opts).map_err(|e| e.to_string())?;
            (a, before)
        }
        ("kcr", t) => {
            let mut tree = KcrTree::open(open_pool_registered(
                args.required("kcr")?,
                &registry,
                "kcr.pool.",
                &tracer,
            )?)
            .map_err(|e| e.to_string())?;
            tree.register_metrics(&registry, "kcr.");
            tree.set_tracer(tracer.clone());
            let before = registry.snapshot();
            let opts = KcrOptions {
                budget,
                threads,
                kernel,
                ..KcrOptions::default()
            };
            let a = if t == 0 {
                answer_kcr(&ds, &tree, &question, opts)
            } else {
                answer_approx_kcr(&ds, &tree, &question, opts, t)
            }
            .map_err(|e| e.to_string())?;
            (a, before)
        }
        (other, t) if t > 0 => {
            return Err(format!(
                "--approx is only supported with --algo kcr, not '{other}'"
            ))
        }
        (other, _) => return Err(format!("unknown --algo '{other}' (bs|advanced|kcr)")),
    };
    let trace_report = tracer.drain();

    let mut out = String::new();
    for &m in &missing {
        let o = ds.object(m);
        writeln!(
            out,
            "missing {m:?} {} ranks {} under the initial query",
            render(&o.doc, &vocab),
            ds.rank_of(m, &query)
        )
        .unwrap();
    }
    writeln!(
        out,
        "refined query: keywords {} with k' = {} (penalty {:.4}, {} edit{})",
        render(&answer.refined.doc, &vocab),
        answer.refined.k,
        answer.refined.penalty,
        answer.refined.edit_distance,
        if answer.refined.edit_distance == 1 {
            ""
        } else {
            "s"
        },
    )
    .unwrap();
    writeln!(
        out,
        "solved in {:.2} ms with {} physical page reads",
        answer.stats.wall.as_secs_f64() * 1e3,
        answer.stats.io
    )
    .unwrap();
    if !answer.quality.is_exact() {
        writeln!(out, "answer quality: {}", answer.quality).unwrap();
    }
    match &explain {
        Some(ExplainMode::Tree) => {
            writeln!(out, "\nexplain (span tree):").unwrap();
            out.push_str(&trace_report.render_tree());
        }
        Some(ExplainMode::Json) => {
            writeln!(out, "\nexplain (json):").unwrap();
            out.push_str(&trace_report.to_json().render());
            out.push('\n');
        }
        None => {}
    }
    // Solver stats land in the registry exactly once, no matter how
    // many reporting sections (`--metrics`, `--metrics-export`) read it.
    if args.flag("metrics") || export_target.is_some() {
        answer.stats.record_into(&registry);
    }
    if args.flag("metrics") {
        let label = match (algo, approx) {
            ("bs", _) => "BS",
            ("advanced", _) => "AdvancedBS",
            (_, 0) => "KcRBased",
            _ => "ApproxKcR",
        };
        out.push_str(&render_metrics(
            &registry,
            &before,
            label,
            answer.stats.wall,
            &answer.stats.phases(),
        ));
    }
    if let Some(target) = &export_target {
        out.push_str(
            &export::export(&registry.snapshot().since(&before), target)
                .map_err(|e| e.to_string())?,
        );
    }
    Ok(out)
}

/// Builds the warm in-memory engine `wnsk serve` runs on.
fn build_serve_engine(args: &ParsedArgs) -> Result<wnsk_core::WhyNotEngine, String> {
    let (ds, vocab) = load_dataset(args)?;
    Ok(wnsk_core::WhyNotEngine::build_in_memory(ds)
        .map_err(|e| format!("building indexes: {e}"))?
        .with_vocabulary(vocab))
}

/// Opens (or creates) the write-ahead log file and attaches it to the
/// engine: committed records are replayed through the same mutation
/// path live ingest takes, so the engine resumes at the exact epoch a
/// never-crashed twin would have reached. Returns the recovery report.
fn attach_wal(
    engine: &mut wnsk_core::WhyNotEngine,
    path: &str,
) -> Result<wnsk_storage::RecoveryReport, String> {
    let pool = open_pool(path, !Path::new(path).exists())?;
    engine
        .attach_wal(pool)
        .map_err(|e| format!("recovering WAL {path}: {e}"))
}

fn render_recovery(path: &str, report: &wnsk_storage::RecoveryReport) -> String {
    let mut line = format!(
        "recovered {path}: {} records replayed, {} bytes truncated, epoch {}",
        report.records_replayed, report.bytes_truncated, report.last_lsn
    );
    if let Some(stop) = &report.stopped_by {
        write!(line, " (scan stopped by: {stop})").unwrap();
    }
    line.push('\n');
    line
}

/// Renders a sharded recovery banner: one line per shard WAL plus the
/// route-log summary (records found, records redone into shards whose
/// own WAL had lost them).
fn render_shard_recovery(dir: &str, recovery: &wnsk_shard::ShardRecovery) -> String {
    let mut out = String::new();
    for (s, report) in recovery.shards.iter().enumerate() {
        out.push_str(&render_recovery(&format!("{dir}/shard-{s}.wal"), report));
    }
    writeln!(
        out,
        "route log: {} committed records, {} redone into lagging shards",
        recovery.route_records, recovery.redone
    )
    .unwrap();
    out
}

/// Writes `contents` to `path` via a temp file in the same directory
/// plus an atomic rename, so a reader polling for the file (a test
/// harness or CI script waiting on an address) never observes a torn
/// or empty write.
fn write_text_atomic(path: &str, contents: &str) -> Result<(), String> {
    let target = Path::new(path);
    let name = target
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| format!("cannot write {path}: not a file path"))?;
    let tmp = target.with_file_name(format!(".{name}.{}.tmp", std::process::id()));
    let write = || -> std::io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(contents.as_bytes())?;
        file.sync_all()?;
        std::fs::rename(&tmp, target)
    };
    write().map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("cannot write {path}: {e}")
    })
}

/// One line of a `wnsk ingest` ops file, resolved against the dataset
/// vocabulary. Lines: `insert X Y kw[,kw…]`, `delete ID`,
/// `update ID kw[,kw…]`; blank lines and `#` comments are skipped.
fn parse_ops(text: &str, vocab: &Vocabulary) -> Result<Vec<wnsk_core::Mutation>, String> {
    let keywords = |raw: &str, line_no: usize| -> Result<KeywordSet, String> {
        let terms: Vec<_> = raw
            .split(',')
            .map(str::trim)
            .filter(|w| !w.is_empty())
            .map(|w| {
                vocab
                    .get(w)
                    .ok_or_else(|| format!("line {line_no}: keyword '{w}' not in the vocabulary"))
            })
            .collect::<Result<_, _>>()?;
        if terms.is_empty() {
            return Err(format!("line {line_no}: empty keyword list"));
        }
        Ok(KeywordSet::from_terms(terms))
    };
    let object_id = |raw: &str, line_no: usize| -> Result<ObjectId, String> {
        raw.trim_start_matches('o')
            .parse::<u32>()
            .map(ObjectId)
            .map_err(|_| format!("line {line_no}: bad object id '{raw}'"))
    };
    let mut muts = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let op = parts.next().expect("non-empty line has a first token");
        let rest: Vec<&str> = parts.collect();
        let mutation = match (op, rest.as_slice()) {
            ("insert", [x, y, kws]) => {
                let x: f64 = x
                    .parse()
                    .map_err(|_| format!("line {line_no}: bad x '{x}'"))?;
                let y: f64 = y
                    .parse()
                    .map_err(|_| format!("line {line_no}: bad y '{y}'"))?;
                wnsk_core::Mutation::Insert {
                    loc: wnsk_geo::Point::new(x, y),
                    doc: keywords(kws, line_no)?,
                }
            }
            ("delete", [id]) => wnsk_core::Mutation::Remove {
                id: object_id(id, line_no)?,
            },
            ("update", [id, kws]) => wnsk_core::Mutation::UpdateDoc {
                id: object_id(id, line_no)?,
                doc: keywords(kws, line_no)?,
            },
            _ => {
                return Err(format!(
                    "line {line_no}: expected 'insert X Y kw[,kw…]', 'delete ID' or \
                     'update ID kw[,kw…]', got '{line}'"
                ))
            }
        };
        muts.push(mutation);
    }
    Ok(muts)
}

/// `wnsk ingest` — apply a mutation script through the write-ahead log.
///
/// The engine is rebuilt from the base dataset, the WAL is recovered
/// (replaying every previously committed mutation), and the ops file is
/// appended as one group-committed batch. Running the same command after
/// a crash is safe: recovery replays exactly the committed prefix and
/// truncates any torn tail.
pub fn ingest(args: &ParsedArgs) -> Result<String, String> {
    let mut engine = build_serve_engine(args)?;
    let wal_path = args.required("wal")?;
    let ops_path = args.required("ops")?;
    let registry = engine.registry().clone();
    let before = registry.snapshot();
    let started = std::time::Instant::now();
    let report = attach_wal(&mut engine, wal_path)?;
    let ops_text =
        std::fs::read_to_string(ops_path).map_err(|e| format!("cannot read {ops_path}: {e}"))?;
    let vocab = engine
        .vocabulary()
        .cloned()
        .ok_or("dataset has no vocabulary")?;
    let muts = parse_ops(&ops_text, &vocab)?;
    let ids = engine
        .ingest_batch(&muts)
        .map_err(|e| format!("ingest failed (nothing applied): {e}"))?;
    let wall = started.elapsed();

    let mut out = render_recovery(wal_path, &report);
    let (mut inserts, mut deletes, mut updates) = (0usize, 0usize, 0usize);
    for m in &muts {
        match m {
            wnsk_core::Mutation::Insert { .. } => inserts += 1,
            wnsk_core::Mutation::Remove { .. } => deletes += 1,
            wnsk_core::Mutation::UpdateDoc { .. } => updates += 1,
        }
    }
    writeln!(
        out,
        "applied {} mutations ({inserts} inserts, {deletes} deletes, {updates} updates) — \
         epoch {}, {} live objects",
        ids.len(),
        engine.epoch(),
        engine.dataset().live_len()
    )
    .unwrap();
    if args.flag("metrics") {
        out.push_str(&render_metrics(&registry, &before, "ingest", wall, &[]));
    }
    Ok(out)
}

/// `wnsk serve` — run the embedded query-serving layer over a dataset,
/// either on a single engine or (with `--shards`/`--manifest`) behind
/// the scatter-gather coordinator.
pub fn serve(args: &ParsedArgs) -> Result<String, String> {
    let sharded = args.optional("shards").is_some() || args.optional("manifest").is_some();
    if sharded {
        for flag in ["wal", "replay"] {
            if args.optional(flag).is_some() {
                return Err(format!(
                    "--{flag} drives the single-engine path; sharded serving \
                     persists through --shard-wal-dir"
                ));
            }
        }
    }
    let mut recovery_banner = String::new();
    let admin_addr = args.optional("admin-addr").map(String::from);
    let observability = if admin_addr.is_some() {
        let mut obs = wnsk_serve::ObservabilityConfig::default();
        if let Some(ms) = args.optional("slow-threshold-ms") {
            let ms: u64 = ms
                .parse()
                .map_err(|e| format!("--slow-threshold-ms: {e}"))?;
            obs.slow_threshold = std::time::Duration::from_millis(ms);
        }
        if let Some(ms) = args.optional("slo-ms") {
            let ms: u64 = ms.parse().map_err(|e| format!("--slo-ms: {e}"))?;
            obs.slo = std::time::Duration::from_millis(ms);
        }
        Some(obs)
    } else {
        None
    };
    let config = ServerConfig {
        addr: args.optional("addr").unwrap_or("127.0.0.1:0").to_string(),
        threads: args.parse_or("threads", 2usize)?.max(1),
        queue_depth: args.parse_or("queue-depth", 64usize)?.max(1),
        cache_entries: args.parse_or("cache-entries", 256usize)?.max(1),
        worker_delay: std::time::Duration::from_millis(args.parse_or("worker-delay-ms", 0u64)?),
        admin_addr,
        observability,
    };
    let duration_ms: u64 = args.parse_or("duration-ms", 0)?;
    let export_target = args.optional("metrics-export").map(ExportTarget::parse);
    let export_interval = match args.parse_or("metrics-export-interval-ms", 0u64)? {
        0 => None,
        ms => match &export_target {
            Some(ExportTarget::File(path)) => {
                Some((std::time::Duration::from_millis(ms), path.clone()))
            }
            _ => {
                return Err(
                    "--metrics-export-interval-ms needs --metrics-export FILE (not '-')"
                        .to_string(),
                )
            }
        },
    };

    let (handle, objects, shard_note) = if sharded {
        let (ds, vocab) = load_dataset(args)?;
        let manifest = match args.optional("manifest") {
            Some(path) => {
                let manifest = ShardManifest::load(Path::new(path))?;
                if let Some(n) = args.optional("shards") {
                    let n: usize = n.parse().map_err(|e| format!("--shards: {e}"))?;
                    if n != manifest.shard_count() {
                        return Err(format!(
                            "--shards {n} contradicts {path} ({} shards)",
                            manifest.shard_count()
                        ));
                    }
                }
                manifest
            }
            None => ShardManifest::plan(
                &ds,
                args.parse_or("shards", 2usize)?.max(1),
                args.parse_or("shard-seed", 42u64)?,
            ),
        };
        let coord_config = CoordinatorConfig {
            replicas: args.parse_or("replicas", 1usize)?.max(1),
            threads: config.threads,
            admission_cap: match args.optional("shard-admission") {
                None => None,
                Some(v) => Some(v.parse().map_err(|e| format!("--shard-admission: {e}"))?),
            },
            ..CoordinatorConfig::default()
        };
        let note = format!(
            "{} shards x {} replica(s), routing by keyword affinity",
            manifest.shard_count(),
            coord_config.replicas
        );
        let mut coordinator = Coordinator::new(ds, manifest, coord_config)
            .map_err(|e| format!("building coordinator: {e}"))?
            .with_vocabulary(vocab);
        if let Some(dir) = args.optional("shard-wal-dir") {
            let recovery = coordinator
                .attach_wal_dir(Path::new(dir))
                .map_err(|e| format!("recovering {dir}: {e}"))?;
            recovery_banner = render_shard_recovery(dir, &recovery);
        }
        let objects = coordinator.dataset().live_len();
        let handle = Server::start_sharded(coordinator, config.clone())
            .map_err(|e| format!("starting server: {e}"))?;
        (handle, objects, Some(note))
    } else {
        let mut engine = build_serve_engine(args)?;
        if let Some(wal_path) = args.optional("wal") {
            let report = attach_wal(&mut engine, wal_path)?;
            recovery_banner = render_recovery(wal_path, &report);
        }
        if let Some(session) = args.optional("replay") {
            let cache_entries: usize = args.parse_or("cache-entries", 256usize)?.max(1);
            let mut out = recovery_banner;
            out.push_str(&replay_session(engine, session, cache_entries)?);
            return Ok(out);
        }
        let objects = engine.dataset().live_len();
        let handle =
            Server::start(engine, config.clone()).map_err(|e| format!("starting server: {e}"))?;
        (handle, objects, None)
    };
    let addr = handle.addr();
    if let Some(path) = args.optional("addr-file") {
        write_text_atomic(path, &addr.to_string())?;
    }
    if let Some(path) = args.optional("admin-addr-file") {
        let admin = handle
            .admin_addr()
            .ok_or("--admin-addr-file needs --admin-addr")?;
        write_text_atomic(path, &admin.to_string())?;
    }
    if let Some(prefix) = args.optional("shard-admin-addr-file") {
        let addrs = handle.shard_admin_addrs();
        if addrs.is_empty() {
            return Err(
                "--shard-admin-addr-file needs --admin-addr and --shards/--manifest".into(),
            );
        }
        for (s, shard_addr) in addrs.iter().enumerate() {
            write_text_atomic(&format!("{prefix}{s}"), &shard_addr.to_string())?;
        }
    }
    // The periodic exporter republishes the live registry as Prometheus
    // text on a fixed cadence, via write-tmp-then-rename so scrapers
    // never see a torn file. The channel doubles as the stop signal:
    // dropping the sender disconnects the receiver and ends the loop.
    let exporter = export_interval.map(|(interval, path)| {
        let registry = handle.registry().clone();
        let (stop, ticks) = std::sync::mpsc::channel::<()>();
        let thread = std::thread::spawn(move || loop {
            match ticks.recv_timeout(interval) {
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    let _ = export::export_atomic(&registry.snapshot(), &path);
                }
                _ => return,
            }
        });
        (stop, thread)
    });
    // The banner goes to stderr so scripted clients can treat stdout as
    // the run summary.
    if !recovery_banner.is_empty() {
        eprint!("{recovery_banner}");
    }
    eprintln!(
        "wnsk-serve listening on {addr} ({objects} objects, {} threads, queue depth {}, cache {})",
        config.threads, config.queue_depth, config.cache_entries
    );
    if let Some(note) = &shard_note {
        eprintln!("wnsk-serve scatter-gather coordinator: {note}");
    }
    if let Some(admin) = handle.admin_addr() {
        eprintln!("wnsk-serve admin endpoint on {admin} (/metrics /healthz /slow /flight)");
    }
    for (s, shard_admin) in handle.shard_admin_addrs().iter().enumerate() {
        eprintln!("wnsk-serve shard {s} admin plane on {shard_admin} (/metrics /healthz)");
    }
    if duration_ms == 0 {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    std::thread::sleep(std::time::Duration::from_millis(duration_ms));
    if let Some((stop, thread)) = exporter {
        drop(stop);
        let _ = thread.join();
    }

    let snapshot = handle.registry().snapshot();
    let counter = |name| snapshot.counter(name);
    let mut out = format!(
        "served {addr} for {duration_ms} ms: accepted {}, shed {}, cache {} hits / {} misses\n",
        counter(wnsk_obs::names::SERVE_ACCEPTED),
        counter(wnsk_obs::names::SERVE_SHED),
        counter(wnsk_obs::names::SERVE_CACHE_HITS),
        counter(wnsk_obs::names::SERVE_CACHE_MISSES),
    );
    if let Some(target) = &export_target {
        out.push_str(&export::export(&snapshot, target).map_err(|e| e.to_string())?);
    }
    handle.shutdown();
    Ok(out)
}

/// `wnsk shard-plan` — compute the deterministic keyword-aware
/// partition of a dataset and write the shard manifest atomically.
pub fn shard_plan(args: &ParsedArgs) -> Result<String, String> {
    let (ds, vocab) = load_dataset(args)?;
    let shards: usize = args.parse_or("shards", 2usize)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let seed: u64 = args.parse_or("seed", 42)?;
    let out_path = args.required("out")?;
    let manifest = ShardManifest::plan(&ds, shards, seed);
    manifest
        .write_atomic(Path::new(out_path))
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let mut out = format!(
        "planned {} shards over {} objects, {} distinct terms (seed {}) -> {out_path}\n",
        manifest.shard_count(),
        ds.len(),
        vocab.len(),
        seed
    );
    for (s, spec) in manifest.shards.iter().enumerate() {
        writeln!(
            out,
            "  shard {s}: {} objects in {} id runs, {} routed terms",
            spec.object_count(),
            spec.id_runs.len(),
            spec.terms.len()
        )
        .unwrap();
    }
    Ok(out)
}

/// Counter families every healthy `/metrics` scrape must expose (plain
/// counters appear under their sanitized name directly).
const REQUIRED_COUNTER_FAMILIES: &[&str] = &[
    "wnsk_serve_accepted",
    "wnsk_serve_shed",
    "wnsk_serve_cache_hits",
    "wnsk_serve_cache_misses",
    "wnsk_serve_window_ticks",
    "wnsk_serve_slo_violations",
    "wnsk_obs_recorder_recorded",
];

/// Histogram families every healthy scrape must expose (checked via
/// their `_count` series).
const REQUIRED_HIST_FAMILIES: &[&str] = &[
    "wnsk_serve_request_ns",
    "wnsk_serve_queue_depth",
    "wnsk_serve_window_request_ns",
];

/// `wnsk top` — poll a serving admin endpoint and render a live
/// terminal dashboard, or (with `--check`) validate one `/metrics` +
/// `/healthz` scrape for CI.
pub fn top(args: &ParsedArgs) -> Result<String, String> {
    let admin = args.required("admin")?;
    if args.flag("check") {
        return scrape_check(admin, args.optional("metrics-out"));
    }
    let interval = std::time::Duration::from_millis(args.parse_or("interval-ms", 1000u64)?);
    let iterations: u64 = args.parse_or("iterations", 0u64)?;
    let mut shown = 0u64;
    loop {
        let healthz = admin_json(admin, "/healthz")?;
        let slow = admin_json(admin, "/slow")?;
        let frame = render_top(admin, &healthz, &slow);
        shown += 1;
        if iterations != 0 && shown >= iterations {
            // The final frame is the command output — this is also the
            // one-shot mode (`--iterations 1`) tests and scripts use.
            return Ok(frame);
        }
        // Live mode: repaint in place (clear screen, home cursor).
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        std::thread::sleep(interval);
    }
}

/// One `--check` scrape: `/metrics` must parse as Prometheus text and
/// carry every required family; `/healthz` must parse and report ok.
/// `--metrics-out` saves the raw exposition (the CI artifact).
fn scrape_check(admin: &str, metrics_out: Option<&str>) -> Result<String, String> {
    let (status, text) = wnsk_serve::http_get(admin, "/metrics")
        .map_err(|e| format!("GET /metrics from {admin}: {e}"))?;
    if status != 200 {
        return Err(format!("GET /metrics: HTTP {status}"));
    }
    let samples = wnsk_obs::parse_prometheus_text(&text)
        .map_err(|e| format!("/metrics is not valid Prometheus text: {e}"))?;
    let mut missing: Vec<String> = REQUIRED_COUNTER_FAMILIES
        .iter()
        .filter(|name| !samples.contains_key(**name))
        .map(|name| name.to_string())
        .collect();
    missing.extend(
        REQUIRED_HIST_FAMILIES
            .iter()
            .filter(|base| !samples.contains_key(&format!("{base}_count")))
            .map(|base| base.to_string()),
    );
    if !missing.is_empty() {
        return Err(format!(
            "/metrics is missing required families: {}",
            missing.join(", ")
        ));
    }
    let healthz = admin_json(admin, "/healthz")?;
    if healthz.get("ok") != Some(&JsonValue::Bool(true)) {
        return Err(format!("/healthz does not report ok: {}", healthz.render()));
    }
    if let Some(path) = metrics_out {
        std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    let shard_note = healthz
        .get("shards")
        .and_then(JsonValue::as_array)
        .map(|rows| format!(", {} shards reporting", rows.len()))
        .unwrap_or_default();
    Ok(format!(
        "scrape OK: {} samples, {} required families present, healthz ok{shard_note}\n",
        samples.len(),
        REQUIRED_COUNTER_FAMILIES.len() + REQUIRED_HIST_FAMILIES.len(),
    ))
}

/// GETs an admin route and parses the JSON body.
fn admin_json(admin: &str, path: &str) -> Result<JsonValue, String> {
    let (status, body) =
        wnsk_serve::http_get(admin, path).map_err(|e| format!("GET {path} from {admin}: {e}"))?;
    if status != 200 {
        return Err(format!("GET {path}: HTTP {status}: {body}"));
    }
    JsonValue::parse(&body).map_err(|e| format!("GET {path}: malformed JSON: {e}"))
}

/// Renders one dashboard frame from the `/healthz` and `/slow`
/// documents. Pure — unit-tested on synthetic documents.
fn render_top(admin: &str, healthz: &JsonValue, slow: &JsonValue) -> String {
    let num = |doc: &JsonValue, key: &str| doc.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
    let accepted = num(healthz, "accepted");
    let shed = num(healthz, "shed");
    let hits = num(healthz, "cache_hits");
    let misses = num(healthz, "cache_misses");
    let pct = |part: f64, whole: f64| {
        if whole > 0.0 {
            100.0 * part / whole
        } else {
            0.0
        }
    };
    let mut out = format!("wnsk top — {admin}\n");
    writeln!(
        out,
        "queue {}/{} · epoch {} · wal {} · cache {} entries",
        num(healthz, "queue_depth"),
        num(healthz, "queue_capacity"),
        num(healthz, "epoch"),
        if healthz.get("wal_attached") == Some(&JsonValue::Bool(true)) {
            "attached"
        } else {
            "none"
        },
        num(healthz, "cache_entries"),
    )
    .unwrap();
    writeln!(
        out,
        "accepted {accepted} · shed {shed} ({:.1}%) · cache {hits} hits / {misses} misses ({:.1}% hit)",
        pct(shed, accepted + shed),
        pct(hits, hits + misses),
    )
    .unwrap();
    if let Some(recorder) = healthz.get("recorder") {
        writeln!(
            out,
            "slo violations {} · slow logged {} · recorder {} recorded / {} slots ({} B)",
            num(healthz, "slo_violations"),
            num(healthz, "slow_logged"),
            num(recorder, "recorded"),
            num(recorder, "capacity"),
            num(recorder, "memory_bytes"),
        )
        .unwrap();
    }
    if let Some(windows) = healthz.get("windows") {
        writeln!(
            out,
            "{:>8} {:>8} {:>8} {:>10} {:>10} {:>6} {:>6}",
            "window", "count", "qps", "p50", "p99", "shed", "error"
        )
        .unwrap();
        for span in ["1s", "10s", "60s"] {
            let Some(w) = windows.get(span) else { continue };
            let seconds: f64 = span.trim_end_matches('s').parse().unwrap_or(1.0);
            writeln!(
                out,
                "{span:>8} {:>8} {:>8.1} {:>10} {:>10} {:>6} {:>6}",
                num(w, "count"),
                num(w, "count") / seconds,
                fmt_ms(num(w, "p50_ns")),
                fmt_ms(num(w, "p99_ns")),
                num(w, "shed"),
                num(w, "error"),
            )
            .unwrap();
        }
    }
    // Sharded servers expose one row per shard; the shed rate is per
    // shard mutation traffic (epoch counts applied mutations).
    if let Some(shards) = healthz.get("shards").and_then(JsonValue::as_array) {
        writeln!(
            out,
            "{:>6} {:>9} {:>8} {:>9} {:>6} {:>10} {:>9} {:>9}",
            "shard", "objects", "epoch", "inflight", "shed", "shed-rate", "wal-lsn", "replicas"
        )
        .unwrap();
        for row in shards {
            let shed = num(row, "shed");
            let epoch = num(row, "epoch");
            writeln!(
                out,
                "{:>6} {:>9} {:>8} {:>9} {:>6} {:>9.1}% {:>9} {:>9}",
                num(row, "shard"),
                num(row, "objects"),
                epoch,
                num(row, "inflight"),
                shed,
                pct(shed, epoch + shed),
                num(row, "wal_lsn"),
                num(row, "replicas"),
            )
            .unwrap();
        }
    }
    let slowest = slow.get("entries").and_then(JsonValue::as_array);
    if let Some(entries) = slowest.filter(|e| !e.is_empty()) {
        out.push_str("slowest recent:\n");
        // Newest entries last in the log; show newest first.
        for entry in entries.iter().rev().take(5) {
            writeln!(
                out,
                "  {:>9} {} {}{}",
                fmt_ms(num(entry, "total_ns")),
                entry.get("kind").and_then(JsonValue::as_str).unwrap_or("?"),
                entry.get("key").and_then(JsonValue::as_str).unwrap_or(""),
                if entry.get("trace").is_some() {
                    " [trace]"
                } else {
                    ""
                },
            )
            .unwrap();
        }
    }
    out
}

/// Formats a nanosecond reading as milliseconds for the dashboard.
fn fmt_ms(ns: f64) -> String {
    format!("{:.2}ms", ns / 1e6)
}

/// Drops the cache-provenance markers from a response line so a cached
/// answer and its fresh recomputation compare equal exactly when the
/// *answer* is bit-identical.
fn strip_cache_markers(line: &str) -> String {
    match wnsk_obs::JsonValue::parse(line.trim_end()) {
        Ok(wnsk_obs::JsonValue::Object(fields)) => wnsk_obs::JsonValue::Object(
            fields
                .into_iter()
                .filter(|(k, _)| k != "cached" && k != "rank_reused")
                .collect(),
        )
        .render(),
        _ => line.trim_end().to_string(),
    }
}

/// `wnsk serve --replay` — re-execute a recorded session in-process
/// (no TCP) and hold every response to a cache-bypassing recomputation
/// of the same request. Repeats in the session hit the answer cache on
/// the served side, so this checks the serving layer's core promise:
/// a cached answer is bit-identical to a fresh one. Deadlines recorded
/// in the session are ignored — replay must be deterministic.
fn replay_session(
    engine: wnsk_core::WhyNotEngine,
    path: &str,
    cache_entries: usize,
) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let serve = wnsk_serve::ServeEngine::new(engine, cache_entries);
    let before = serve.registry().snapshot();
    let (mut queries, mut mutations, mut skipped) = (0usize, 0usize, 0usize);
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parsed = wnsk_serve::protocol::parse_request(line)
            .map_err(|e| format!("{path}:{line_no}: {e}"))?;
        let resolved = serve.resolve(&parsed.request).map_err(|e| {
            format!("{path}:{line_no}: request does not resolve against --data: {e}")
        })?;
        // Baseline first: the cache must not have been populated by the
        // request it is checked against.
        let fresh = serve.execute_uncached(&resolved);
        let served = serve.execute(&resolved, None);
        match fresh {
            None => {
                // Mutations advance the state both sides see next;
                // stats responses are counter-dependent, skip them.
                if matches!(resolved, wnsk_serve::ResolvedRequest::Ingest(_)) {
                    mutations += 1;
                } else {
                    skipped += 1;
                }
            }
            Some(fresh) => {
                queries += 1;
                let served = strip_cache_markers(&served);
                let fresh = strip_cache_markers(&fresh);
                if served != fresh {
                    return Err(format!(
                        "{path}:{line_no}: served answer diverges from the uncached baseline\n  \
                         request: {line}\n  served:  {served}\n  fresh:   {fresh}"
                    ));
                }
            }
        }
    }
    if queries == 0 {
        return Err(format!("{path}: session has no replayable query requests"));
    }
    let delta = serve.registry().snapshot().since(&before);
    Ok(format!(
        "replayed {path}: {queries} queries bit-identical to the uncached baseline \
         ({} cache hits, {} misses), {mutations} mutations, {skipped} stats skipped\n",
        delta.counter(wnsk_obs::names::SERVE_CACHE_HITS),
        delta.counter(wnsk_obs::names::SERVE_CACHE_MISSES),
    ))
}

/// Builds a deterministic request-line pool for `wnsk loadgen`: query
/// locations and keywords are sampled from real objects (so top-k
/// answers are non-trivial), and every fourth entry is a why-not
/// question whose missing object is picked by brute-force ranking to be
/// genuinely outside the top-k *of the canonicalized query* — the same
/// query the server executes after snapping.
#[allow(clippy::too_many_arguments)]
fn build_loadgen_pool(
    ds: &Dataset,
    vocab: &Vocabulary,
    pool_size: usize,
    k: usize,
    alpha: f64,
    lambda: f64,
    seed: u64,
    mutate_ratio: f64,
) -> Vec<String> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = Vec::with_capacity(pool_size);
    for i in 0..pool_size {
        let o = ds.object(ObjectId(rng.gen_range(0..ds.len() as u32)));
        let at = wnsk_serve::cache::canonical_point(o.loc);
        let terms: Vec<_> = o.doc.iter().collect();
        let take = rng.gen_range(1..=terms.len().min(2));
        let names: Vec<&str> = terms[..take]
            .iter()
            .filter_map(|&t| vocab.name(t))
            .collect();
        if names.is_empty() {
            continue;
        }
        // Mutations are insert-only: the zipf-sampled pool replays
        // entries, and a repeated delete would fail on the second hit
        // while a repeated insert stays valid (and routes through the
        // partitioner on a sharded server). The extra draw only happens
        // when the ratio is set, so ratio 0 reproduces historic pools
        // bit for bit.
        if mutate_ratio > 0.0 && rng.gen::<f64>() < mutate_ratio {
            pool.push(wnsk_serve::client::insert_line((at.x, at.y), &names));
            continue;
        }
        if i % 4 == 3 {
            let ids = terms[..take].iter().map(|t| t.0);
            let query = SpatialKeywordQuery::new(at, KeywordSet::from_ids(ids), k, alpha);
            let mut scored: Vec<(ObjectId, f64)> = ds
                .objects()
                .iter()
                .map(|obj| (obj.id, ds.score(obj, &query)))
                .collect();
            scored.sort_by(|a, b| b.1.total_cmp(&a.1));
            let kth = scored.get(k.saturating_sub(1)).map(|&(_, s)| s);
            let candidate = kth.and_then(|kth_score| {
                scored[k..(k + 10).min(scored.len())]
                    .iter()
                    .find(|&&(_, s)| s < kth_score)
                    .map(|&(id, _)| id)
            });
            if let Some(missing) = candidate {
                pool.push(wnsk_serve::client::whynot_line(
                    (at.x, at.y),
                    &names,
                    k,
                    alpha,
                    &[missing.0],
                    lambda,
                    None,
                ));
                continue;
            }
        }
        pool.push(wnsk_serve::client::topk_line(
            (at.x, at.y),
            &names,
            k,
            alpha,
        ));
    }
    pool
}

/// `wnsk loadgen` — closed-loop load generation against a running
/// server.
pub fn loadgen(args: &ParsedArgs) -> Result<String, String> {
    let addr = args.required("addr")?.to_string();
    let (ds, vocab) = load_dataset(args)?;
    let k: usize = args.parse_or("k", 5)?;
    let alpha: f64 = args.parse_or("alpha", 0.5)?;
    let lambda: f64 = args.parse_or("lambda", 0.5)?;
    let pool_size: usize = args.parse_or("pool", 32)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let mutate_ratio: f64 = args.parse_or("mutate-ratio", 0.0f64)?;
    if k == 0 || pool_size == 0 {
        return Err("--k and --pool must be at least 1".into());
    }
    if !(0.0..=1.0).contains(&mutate_ratio) {
        return Err("--mutate-ratio must be in [0, 1]".into());
    }
    let pool = build_loadgen_pool(&ds, &vocab, pool_size, k, alpha, lambda, seed, mutate_ratio);
    if pool.is_empty() {
        return Err("query pool came out empty — dataset too small?".into());
    }
    let config = LoadgenConfig {
        addr,
        connections: args.parse_or("connections", 4usize)?.max(1),
        requests: args.parse_or("requests", 200usize)?,
        target_qps: args.parse_or("qps", 0.0f64)?,
        zipf_exponent: args.parse_or("zipf", 1.0f64)?,
        seed,
    };
    match args.optional("record") {
        None => {
            let report =
                wnsk_serve::loadgen::run(&config, &pool).map_err(|e| format!("loadgen: {e}"))?;
            Ok(format!("{}\n", report.render()))
        }
        Some(record_path) => {
            let (report, session) = wnsk_serve::loadgen::run_session(&config, &pool)
                .map_err(|e| format!("loadgen: {e}"))?;
            let mut body = format!(
                "# wnsk loadgen session: {} requests against {} (seed {}, zipf {})\n\
                 # replay with: wnsk serve --data <same dataset> --replay {record_path}\n",
                session.len(),
                config.addr,
                config.seed,
                config.zipf_exponent,
            );
            for line in &session {
                body.push_str(line);
                body.push('\n');
            }
            std::fs::write(record_path, body)
                .map_err(|e| format!("cannot write {record_path}: {e}"))?;
            Ok(format!(
                "{}\nrecorded {} request lines to {record_path}\n",
                report.render(),
                session.len()
            ))
        }
    }
}

/// `wnsk fuzz` — differential fuzzing of the whole solver matrix
/// against the sequential BS / single-thread / scalar oracle, with
/// delta-debug shrinking of any divergence (see `crates/fuzz`).
pub fn fuzz(args: &ParsedArgs) -> Result<String, String> {
    let seed: u64 = args.parse_or("seed", 1)?;
    let cases: u64 = args.parse_or("cases", 25)?;
    if cases == 0 {
        return Err("--cases must be at least 1".into());
    }
    let shrink_limit: usize = args.parse_or("shrink-limit", 400)?;
    let inject = match args.optional("inject-bug") {
        None => None,
        Some(name) => Some(wnsk_fuzz::InjectedBug::parse(name)?),
    };
    let emit_dir = args.optional("emit-dir").map(std::path::PathBuf::from);
    let config = wnsk_fuzz::FuzzConfig {
        seed,
        cases,
        inject,
        emit_dir,
        shrink_limit,
    };
    let registry = Registry::new();
    let before = registry.snapshot();
    let started = std::time::Instant::now();
    let report = wnsk_fuzz::run_fuzz(&config, &registry).map_err(|e| format!("fuzz: {e}"))?;
    let wall = started.elapsed();

    let mut out = String::new();
    for o in &report.outcomes {
        match &o.verdict {
            wnsk_fuzz::Verdict::Pass => {
                writeln!(out, "case {:>3} seed {:>16}: pass", o.index, o.seed).unwrap();
            }
            wnsk_fuzz::Verdict::Invalid(why) => {
                writeln!(
                    out,
                    "case {:>3} seed {:>16}: invalid ({why})",
                    o.index, o.seed
                )
                .unwrap();
            }
            wnsk_fuzz::Verdict::Fail(f) => {
                writeln!(
                    out,
                    "case {:>3} seed {:>16}: FAIL {}",
                    o.index, o.seed, f.check
                )
                .unwrap();
                writeln!(out, "      {}", f.detail).unwrap();
                if let Some(s) = &o.shrunk {
                    writeln!(
                        out,
                        "      shrunk to {} objects, {} mutations in {} steps",
                        s.case.objects.len(),
                        s.case.mutations.len(),
                        s.steps
                    )
                    .unwrap();
                }
                if let Some(p) = &o.emitted {
                    writeln!(out, "      emitted {}", p.display()).unwrap();
                }
            }
        }
    }
    writeln!(
        out,
        "fuzz: seed {} — {} cases ({} invalid), {} cross-checks, {} failures in {:.2}s",
        seed,
        report.cases,
        report.invalid,
        report.checks,
        report.failures,
        wall.as_secs_f64()
    )
    .unwrap();
    if args.flag("metrics") {
        out.push_str(&render_metrics(&registry, &before, "fuzz", wall, &[]));
    }
    if report.failures > 0 {
        return Err(format!(
            "{out}fuzz: {} of {} cases diverged from the oracle",
            report.failures, report.cases
        ));
    }
    Ok(out)
}

/// `wnsk corpus` — replay every committed regression case in a
/// directory (the CI corpus-replay lane, runnable locally).
pub fn corpus(args: &ParsedArgs) -> Result<String, String> {
    let dir = args.required("dir")?;
    let registry = Registry::new();
    let outcomes = wnsk_fuzz::replay_dir(Path::new(dir))?;
    registry
        .counter(wnsk_obs::names::FUZZ_CORPUS_REPLAYED)
        .add(outcomes.len() as u64);
    let mut out = String::new();
    let mut regressions = 0usize;
    for o in &outcomes {
        match &o.regression {
            None => writeln!(out, "ok   {}", o.path.display()).unwrap(),
            Some(why) => {
                regressions += 1;
                writeln!(out, "FAIL {}: {why}", o.path.display()).unwrap();
            }
        }
    }
    writeln!(
        out,
        "corpus: {} cases replayed, {} regressions",
        outcomes.len(),
        regressions
    )
    .unwrap();
    if regressions > 0 {
        return Err(format!("{out}corpus: {regressions} case(s) regressed"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    fn run(parts: &[&str]) -> Result<String, String> {
        crate::run(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("wnsk-cli-{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    /// One full CLI session: generate → stats → build → topk → whynot.
    #[test]
    fn full_session() {
        let data = tmp("data.txt");
        let setr = tmp("setr.db");
        let kcr = tmp("kcr.db");

        let out = run(&[
            "generate", "--preset", "tiny", "--scale", "1.0", "--out", &data, "--seed", "7",
        ])
        .unwrap();
        assert!(out.contains("300 objects"), "{out}");

        let out = run(&["stats", "--data", &data]).unwrap();
        assert!(out.contains("objects:        300"), "{out}");

        let out = run(&[
            "build", "--data", &data, "--setr", &setr, "--kcr", &kcr, "--fanout", "16",
        ])
        .unwrap();
        assert!(out.contains("over 300 objects"), "{out}");

        // Pick a keyword that certainly exists: read the file back.
        let body = std::fs::read_to_string(&data).unwrap();
        let word = body
            .lines()
            .find(|l| !l.starts_with('#'))
            .unwrap()
            .split_whitespace()
            .nth(2)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .to_string();

        let out = run(&[
            "topk",
            "--data",
            &data,
            "--setr",
            &setr,
            "--at",
            "0.5,0.5",
            "--keywords",
            &word,
            "--k",
            "5",
        ])
        .unwrap();
        assert!(out.lines().count() >= 6, "{out}");
        assert!(out.contains("#1"), "{out}");

        // Find an object outside the top-5 to ask why-not about: take the
        // last listed rank line id from a larger topk.
        let out = run(&[
            "topk",
            "--data",
            &data,
            "--setr",
            &setr,
            "--at",
            "0.5,0.5",
            "--keywords",
            &word,
            "--k",
            "30",
        ])
        .unwrap();
        let last = out
            .lines()
            .rfind(|l| l.starts_with('#'))
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .to_string();

        for algo in ["bs", "advanced", "kcr"] {
            let out = run(&[
                "whynot",
                "--data",
                &data,
                "--setr",
                &setr,
                "--kcr",
                &kcr,
                "--at",
                "0.5,0.5",
                "--keywords",
                &word,
                "--k",
                "5",
                "--missing",
                &last,
                "--algo",
                algo,
            ])
            .unwrap();
            assert!(out.contains("refined query"), "{algo}: {out}");
        }

        // Approximate path.
        let out = run(&[
            "whynot",
            "--data",
            &data,
            "--setr",
            &setr,
            "--kcr",
            &kcr,
            "--at",
            "0.5,0.5",
            "--keywords",
            &word,
            "--k",
            "5",
            "--missing",
            &last,
            "--approx",
            "16",
        ])
        .unwrap();
        assert!(out.contains("refined query"), "{out}");

        // --metrics appends the unified report: phases, tree traversal
        // counters and buffer-pool I/O from one registry.
        let out = run(&[
            "whynot",
            "--data",
            &data,
            "--setr",
            &setr,
            "--kcr",
            &kcr,
            "--at",
            "0.5,0.5",
            "--keywords",
            &word,
            "--k",
            "5",
            "--missing",
            &last,
            "--algo",
            "kcr",
            "--metrics",
        ])
        .unwrap();
        assert!(out.contains("report (KcRBased"), "{out}");
        assert!(out.contains("wall time"), "{out}");
        assert!(out.contains("phase verification"), "{out}");
        assert!(out.contains("kcr.node_visits"), "{out}");
        assert!(out.contains("kcr.pool.physical_reads"), "{out}");

        let out = run(&[
            "topk",
            "--data",
            &data,
            "--setr",
            &setr,
            "--at",
            "0.5,0.5",
            "--keywords",
            &word,
            "--k",
            "5",
            "--metrics",
        ])
        .unwrap();
        assert!(out.contains("report (topk"), "{out}");
        assert!(out.contains("setr.node_visits"), "{out}");
        assert!(out.contains("setr.pool.logical_reads"), "{out}");

        for f in [&data, &setr, &kcr] {
            std::fs::remove_file(f).ok();
        }
    }

    /// `wnsk ingest` twice over the same WAL: the second run must replay
    /// exactly the records the first one committed — the durable log, not
    /// the process, carries the epoch.
    #[test]
    fn ingest_recovers_its_own_wal() {
        let data = tmp("ingest.txt");
        let wal = tmp("ingest-wal.db");
        let ops1 = tmp("ingest-ops1.txt");
        let ops2 = tmp("ingest-ops2.txt");
        run(&[
            "generate", "--preset", "tiny", "--scale", "1.0", "--out", &data, "--seed", "11",
        ])
        .unwrap();
        let body = std::fs::read_to_string(&data).unwrap();
        let word = body
            .lines()
            .find(|l| !l.starts_with('#'))
            .unwrap()
            .split_whitespace()
            .nth(2)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .to_string();

        std::fs::write(
            &ops1,
            format!("# churn script\ninsert 0.25 0.75 {word}\ndelete o3\nupdate 5 {word}\n"),
        )
        .unwrap();
        let out = run(&[
            "ingest",
            "--data",
            &data,
            "--wal",
            &wal,
            "--ops",
            &ops1,
            "--metrics",
        ])
        .unwrap();
        assert!(out.contains("0 records replayed"), "{out}");
        assert!(
            out.contains("applied 3 mutations (1 inserts, 1 deletes, 1 updates)"),
            "{out}"
        );
        assert!(out.contains("epoch 3, 300 live objects"), "{out}");
        assert!(out.contains("ingest.applied"), "{out}");
        assert!(out.contains("wal.commits"), "{out}");

        // Second run on a fresh process: recovery replays the first
        // batch, then the new op lands at epoch 4.
        std::fs::write(&ops2, "delete 7\n").unwrap();
        let out = run(&["ingest", "--data", &data, "--wal", &wal, "--ops", &ops2]).unwrap();
        assert!(out.contains("3 records replayed"), "{out}");
        assert!(out.contains("epoch 4, 299 live objects"), "{out}");

        // Bad scripts fail before anything is applied.
        let bad = tmp("ingest-bad.txt");
        std::fs::write(&bad, "teleport 1 2\n").unwrap();
        let err = run(&["ingest", "--data", &data, "--wal", &wal, "--ops", &bad]).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        std::fs::write(&bad, "insert 0.1 0.2 notaword\n").unwrap();
        let err = run(&["ingest", "--data", &data, "--wal", &wal, "--ops", &bad]).unwrap_err();
        assert!(err.contains("not in the vocabulary"), "{err}");

        for f in [&data, &wal, &ops1, &ops2, &bad] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn error_paths() {
        assert!(run(&[]).is_err());
        assert!(run(&["frobnicate"]).is_err());
        assert!(run(&["generate", "--preset", "mars", "--out", "/tmp/x"]).is_err());
        assert!(run(&["stats", "--data", "/nonexistent/file"]).is_err());
        let err = run(&["topk", "--data", "/nonexistent/file"]).unwrap_err();
        assert!(err.contains("cannot open"), "{err}");
    }

    /// A starved page-read budget degrades to the approximate answer and
    /// the CLI reports the non-exact quality.
    #[test]
    fn budget_exhaustion_reports_degraded_quality() {
        let data = tmp("budget.txt");
        let setr = tmp("budget-setr.db");
        let kcr = tmp("budget-kcr.db");
        run(&[
            "generate", "--preset", "tiny", "--scale", "1.0", "--out", &data, "--seed", "3",
        ])
        .unwrap();
        run(&[
            "build", "--data", &data, "--setr", &setr, "--kcr", &kcr, "--fanout", "16",
        ])
        .unwrap();
        let body = std::fs::read_to_string(&data).unwrap();
        let word = body
            .lines()
            .find(|l| !l.starts_with('#'))
            .unwrap()
            .split_whitespace()
            .nth(2)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .to_string();
        let out = run(&[
            "topk",
            "--data",
            &data,
            "--setr",
            &setr,
            "--at",
            "0.5,0.5",
            "--keywords",
            &word,
            "--k",
            "30",
        ])
        .unwrap();
        let last = out
            .lines()
            .rfind(|l| l.starts_with('#'))
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .to_string();

        let out = run(&[
            "whynot",
            "--data",
            &data,
            "--setr",
            &setr,
            "--kcr",
            &kcr,
            "--at",
            "0.5,0.5",
            "--keywords",
            &word,
            "--k",
            "5",
            "--missing",
            &last,
            "--algo",
            "bs",
            "--max-page-reads",
            "1",
        ])
        .unwrap();
        assert!(out.contains("refined query"), "{out}");
        assert!(
            out.contains("answer quality: degraded (page-read limit reached)"),
            "{out}"
        );
        for f in [&data, &setr, &kcr] {
            std::fs::remove_file(f).ok();
        }
    }

    /// `--explain`, `--metrics` and `--metrics-export` compose: each
    /// section appears exactly once, the span tree reconciles with the
    /// counters, and the Prometheus text carries the same registry delta.
    #[test]
    fn explain_and_export_compose() {
        let data = tmp("explain.txt");
        let setr = tmp("explain-setr.db");
        let kcr = tmp("explain-kcr.db");
        run(&[
            "generate", "--preset", "tiny", "--scale", "1.0", "--out", &data, "--seed", "11",
        ])
        .unwrap();
        run(&[
            "build", "--data", &data, "--setr", &setr, "--kcr", &kcr, "--fanout", "16",
        ])
        .unwrap();
        let body = std::fs::read_to_string(&data).unwrap();
        let word = body
            .lines()
            .find(|l| !l.starts_with('#'))
            .unwrap()
            .split_whitespace()
            .nth(2)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .to_string();
        let out = run(&[
            "topk",
            "--data",
            &data,
            "--setr",
            &setr,
            "--at",
            "0.5,0.5",
            "--keywords",
            &word,
            "--k",
            "30",
        ])
        .unwrap();
        let last = out
            .lines()
            .rfind(|l| l.starts_with('#'))
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .to_string();
        let base = [
            "whynot",
            "--data",
            &data,
            "--setr",
            &setr,
            "--kcr",
            &kcr,
            "--at",
            "0.5,0.5",
            "--keywords",
            &word,
            "--k",
            "5",
            "--missing",
            &last,
            "--algo",
            "kcr",
        ];

        // Bare --explain renders the span tree rooted in the query span.
        let mut cmd = base.to_vec();
        cmd.push("--explain");
        let out = run(&cmd).unwrap();
        assert!(out.contains("explain (span tree):"), "{out}");
        assert!(out.contains("kcr.query"), "{out}");
        assert!(out.contains("phase.initial_rank"), "{out}");
        assert!(out.contains("node_visits"), "{out}");

        // --explain=json is parseable JSON and composes with --metrics
        // without repeating either section.
        let mut cmd = base.to_vec();
        cmd.extend(["--explain=json", "--metrics"]);
        let out = run(&cmd).unwrap();
        assert_eq!(out.matches("explain (json):").count(), 1, "{out}");
        assert_eq!(out.matches("report (KcRBased").count(), 1, "{out}");
        let json_part = out
            .split("explain (json):\n")
            .nth(1)
            .unwrap()
            .lines()
            .next()
            .unwrap();
        let v = wnsk_obs::JsonValue::parse(json_part).unwrap();
        assert!(v.get("spans").is_some(), "{json_part}");

        // --metrics-export - appends Prometheus text for this query's
        // registry delta, histograms included.
        let mut cmd = base.to_vec();
        cmd.extend(["--metrics-export", "-"]);
        let out = run(&cmd).unwrap();
        assert!(out.contains("# TYPE wnsk_kcr_node_visits counter"), "{out}");
        assert!(out.contains("wnsk_kcr_pool_physical_reads"), "{out}");
        assert!(
            out.contains("wnsk_kcr_pool_read_latency_ns_bucket"),
            "{out}"
        );
        assert!(out.contains("wnsk_core_phase_ns_verification_sum"), "{out}");

        // Bad export paths are typed errors, not panics.
        let mut cmd = base.to_vec();
        cmd.extend(["--metrics-export", "/nonexistent-dir/m.prom"]);
        let err = run(&cmd).unwrap_err();
        assert!(err.contains("cannot export metrics to"), "{err}");

        // --explain only accepts the two renderings.
        let mut cmd = base.to_vec();
        cmd.push("--explain=dot");
        let err = run(&cmd).unwrap_err();
        assert!(err.contains("bad --explain value"), "{err}");

        for f in [&data, &setr, &kcr] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn unknown_keyword_is_reported() {
        let data = tmp("kw.txt");
        run(&[
            "generate", "--preset", "tiny", "--scale", "1.0", "--out", &data,
        ])
        .unwrap();
        let setr = tmp("kw-setr.db");
        let kcr = tmp("kw-kcr.db");
        run(&["build", "--data", &data, "--setr", &setr, "--kcr", &kcr]).unwrap();
        let err = run(&[
            "topk",
            "--data",
            &data,
            "--setr",
            &setr,
            "--at",
            "0.5,0.5",
            "--keywords",
            "definitely-not-a-word",
        ])
        .unwrap_err();
        assert!(err.contains("not in the dataset vocabulary"), "{err}");
        for f in [&data, &setr, &kcr] {
            std::fs::remove_file(f).ok();
        }
    }

    /// End-to-end `wnsk serve` + `wnsk loadgen`: the server comes up,
    /// answers a scripted session identically to the one-shot CLI,
    /// sustains a load-generation run without errors, and its run
    /// summary reports cache hits plus the Prometheus `serve.*` family.
    #[test]
    fn serve_and_loadgen_session() {
        use wnsk_obs::JsonValue;

        let data = tmp("serve-data.txt");
        run(&[
            "generate", "--preset", "tiny", "--scale", "1.0", "--out", &data, "--seed", "7",
        ])
        .unwrap();
        let (_, vocab) = {
            let file = std::fs::File::open(&data).unwrap();
            wnsk_data::io::read_dataset(std::io::BufReader::new(file)).unwrap()
        };
        let keywords = format!(
            "{},{}",
            vocab.name(wnsk_text::TermId(0)).unwrap(),
            vocab.name(wnsk_text::TermId(1)).unwrap()
        );
        let kw: Vec<&str> = keywords.split(',').collect();

        let addr_file = tmp("serve-addr.txt");
        std::fs::remove_file(&addr_file).ok();
        let server = {
            let data = data.clone();
            let addr_file = addr_file.clone();
            std::thread::spawn(move || {
                run(&[
                    "serve",
                    "--data",
                    &data,
                    "--duration-ms",
                    "8000",
                    "--addr-file",
                    &addr_file,
                    "--threads",
                    "2",
                    "--metrics-export",
                    "-",
                ])
            })
        };
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&addr_file) {
                if !s.is_empty() {
                    break s;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "server never published its address"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        };

        // Scripted session: deep top-k to find a genuinely missing
        // object, then warm why-not.
        let mut client = wnsk_serve::Client::connect(&addr).unwrap();
        let deep = client
            .call_json(&wnsk_serve::client::topk_line((0.5, 0.25), &kw, 12, 0.5))
            .unwrap();
        assert_eq!(deep.get("ok"), Some(&JsonValue::Bool(true)), "{deep:?}");
        let results = deep.get("results").and_then(|v| v.as_array()).unwrap();
        assert!(results.len() >= 7, "need rank depth to pick a missing id");
        let missing = results[5].get("object").and_then(|v| v.as_f64()).unwrap() as u32;

        let wn_line =
            wnsk_serve::client::whynot_line((0.5, 0.25), &kw, 3, 0.5, &[missing], 0.5, None);
        let served = client.call_json(&wn_line).unwrap();
        assert_eq!(served.get("ok"), Some(&JsonValue::Bool(true)), "{served:?}");
        let served_penalty = served
            .get("refined")
            .and_then(|r| r.get("penalty"))
            .and_then(|v| v.as_f64())
            .unwrap();
        let served_k = served
            .get("refined")
            .and_then(|r| r.get("k"))
            .and_then(|v| v.as_f64())
            .unwrap() as usize;
        // Warm repeat: answer unchanged, rank reused from the cache.
        let warm = client.call_json(&wn_line).unwrap();
        assert_eq!(warm.get("rank_reused"), Some(&JsonValue::Bool(true)));
        assert_eq!(
            warm.get("refined")
                .and_then(|r| r.get("penalty"))
                .and_then(|v| v.as_f64())
                .map(f64::to_bits),
            Some(served_penalty.to_bits()),
            "warm answer must be bit-identical"
        );

        // One-shot CLI over file-backed indexes answers the same
        // question with the same refined query.
        let setr = tmp("serve-setr.db");
        let kcr = tmp("serve-kcr.db");
        run(&["build", "--data", &data, "--setr", &setr, "--kcr", &kcr]).unwrap();
        let oneshot = run(&[
            "whynot",
            "--data",
            &data,
            "--setr",
            &setr,
            "--kcr",
            &kcr,
            "--at",
            "0.5,0.25",
            "--keywords",
            &keywords,
            "--missing",
            &missing.to_string(),
            "--k",
            "3",
        ])
        .unwrap();
        assert!(
            oneshot.contains(&format!("penalty {served_penalty:.4}")),
            "one-shot CLI and warm server disagree: served {served_penalty}, cli:\n{oneshot}"
        );
        assert!(oneshot.contains(&format!("k' = {served_k}")), "{oneshot}");

        // Load generation against the same server: no errors, and the
        // zipfian repeats should land cache hits. --record captures the
        // exact request lines sent.
        let session = tmp("serve-session.txt");
        let report = run(&[
            "loadgen",
            "--addr",
            &addr,
            "--data",
            &data,
            "--connections",
            "2",
            "--requests",
            "40",
            "--pool",
            "12",
            "--seed",
            "3",
            "--record",
            &session,
        ])
        .unwrap();
        assert!(report.contains("loadgen: 40 requests"), "{report}");
        assert!(report.contains("errors 0"), "{report}");
        assert!(report.contains("recorded 40 request lines"), "{report}");

        // The recorded session replays in-process: every response must
        // be bit-identical to a cache-bypassing recomputation, and the
        // zipfian repeats must actually exercise the cached path.
        let replayed = run(&["serve", "--data", &data, "--replay", &session]).unwrap();
        assert!(
            replayed.contains("40 queries bit-identical to the uncached baseline"),
            "{replayed}"
        );
        let hits: u64 = replayed
            .split('(')
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(hits > 0, "replay never hit the cache: {replayed}");

        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("accepted"), "{summary}");
        assert!(summary.contains("wnsk_serve_accepted"), "{summary}");
        assert!(summary.contains("wnsk_serve_cache_hits"), "{summary}");
        let hits: u64 = summary
            .lines()
            .find(|l| l.starts_with("wnsk_serve_cache_hits "))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(hits > 0, "warm session must hit the cache:\n{summary}");

        for f in [&data, &setr, &kcr, &addr_file, &session] {
            std::fs::remove_file(f).ok();
        }
    }

    /// The dashboard renderer on synthetic admin documents: pure, so
    /// layout and rate arithmetic are pinned without a live server.
    #[test]
    fn top_renders_the_dashboard_from_admin_documents() {
        use wnsk_obs::JsonValue;
        let healthz = JsonValue::parse(
            r#"{"ok":true,"queue_depth":2,"queue_capacity":64,"epoch":3,
                "wal_attached":true,"cache_entries":12,"accepted":95,"shed":5,
                "cache_hits":60,"cache_misses":40,"slo_violations":1,"slow_logged":2,
                "recorder":{"capacity":256,"recorded":100,"memory_bytes":40960},
                "windows":{"1s":{"count":10,"p50_ns":800000,"p99_ns":2100000,
                "max_ns":3000000,"ok":10,"shed":0,"error":0,"task_p99_ns":0},
                "10s":{"count":80,"p50_ns":700000,"p99_ns":2500000,"max_ns":4000000,
                "ok":78,"shed":1,"error":1,"task_p99_ns":0},
                "60s":{"count":95,"p50_ns":700000,"p99_ns":3000000,"max_ns":4000000,
                "ok":92,"shed":2,"error":1,"task_p99_ns":0}}}"#,
        )
        .unwrap();
        let slow = JsonValue::parse(
            r#"{"threshold_ns":100000000,"logged":2,"entries":[
                {"seq":1,"kind":"topk","key":"0.5,0.25|1+2|k=3|a=0.5","total_ns":120000000},
                {"seq":2,"kind":"whynot","key":"0.5,0.25|1+2|k=3|a=0.5|m=7|l=0.5",
                 "total_ns":150000000,"trace":{"spans":[]}}]}"#,
        )
        .unwrap();
        let frame = super::render_top("127.0.0.1:9", &healthz, &slow);
        assert!(frame.contains("wnsk top — 127.0.0.1:9"), "{frame}");
        assert!(frame.contains("queue 2/64"), "{frame}");
        assert!(frame.contains("epoch 3"), "{frame}");
        assert!(frame.contains("wal attached"), "{frame}");
        assert!(frame.contains("shed 5 (5.0%)"), "{frame}");
        assert!(frame.contains("(60.0% hit)"), "{frame}");
        assert!(frame.contains("slo violations 1"), "{frame}");
        assert!(
            frame.contains("recorder 100 recorded / 256 slots"),
            "{frame}"
        );
        // qps = count / span seconds; the 10s row averages 8 qps.
        let row_10s = frame.lines().find(|l| l.trim().starts_with("10s")).unwrap();
        assert!(row_10s.contains("8.0"), "{row_10s}");
        assert!(row_10s.contains("0.70ms"), "{row_10s}");
        assert!(row_10s.contains("2.50ms"), "{row_10s}");
        // Newest slow entry first; the traced one carries the marker.
        let slow_lines: Vec<&str> = frame
            .lines()
            .skip_while(|l| !l.starts_with("slowest"))
            .skip(1)
            .collect();
        assert!(slow_lines[0].contains("whynot"), "{frame}");
        assert!(slow_lines[0].contains("[trace]"), "{frame}");
        assert!(slow_lines[1].contains("topk"), "{frame}");
        assert!(!slow_lines[1].contains("[trace]"), "{frame}");

        // Without observability fields the frame degrades gracefully.
        let bare = JsonValue::parse(
            r#"{"ok":true,"queue_depth":0,"queue_capacity":64,"epoch":0,
                "wal_attached":false,"cache_entries":0,"accepted":0,"shed":0,
                "cache_hits":0,"cache_misses":0}"#,
        )
        .unwrap();
        let empty_slow = JsonValue::parse(r#"{"logged":0,"entries":[]}"#).unwrap();
        let frame = super::render_top("a:1", &bare, &empty_slow);
        assert!(frame.contains("shed 0 (0.0%)"), "{frame}");
        assert!(!frame.contains("slowest"), "{frame}");
        assert!(!frame.contains("window"), "{frame}");
        assert!(
            !frame.contains("shard"),
            "single servers have no shard table"
        );
    }

    /// A sharded `/healthz` grows a per-shard table: one row per shard
    /// with its epoch, inflight mutations, shed rate and WAL lsn.
    #[test]
    fn top_renders_per_shard_rows() {
        use wnsk_obs::JsonValue;
        let healthz = JsonValue::parse(
            r#"{"ok":true,"queue_depth":0,"queue_capacity":64,"epoch":12,
                "wal_attached":true,"cache_entries":0,"accepted":40,"shed":4,
                "cache_hits":0,"cache_misses":0,
                "shards":[
                  {"shard":0,"replicas":2,"objects":150,"epoch":9,"inflight":1,
                   "admission_cap":16,"shed":3,"wal_lsn":9},
                  {"shard":1,"replicas":2,"objects":152,"epoch":3,"inflight":0,
                   "admission_cap":16,"shed":1,"wal_lsn":3}]}"#,
        )
        .unwrap();
        let empty_slow = JsonValue::parse(r#"{"logged":0,"entries":[]}"#).unwrap();
        let frame = super::render_top("a:1", &healthz, &empty_slow);
        let header = frame
            .lines()
            .find(|l| l.trim_start().starts_with("shard"))
            .expect("shard table header");
        for col in ["objects", "epoch", "inflight", "shed-rate", "wal-lsn"] {
            assert!(header.contains(col), "{header}");
        }
        let row0 = frame.lines().find(|l| l.contains("150")).unwrap();
        // shard 0: 3 shed over 9 applied -> 25.0% of mutation traffic.
        assert!(row0.contains("25.0%"), "{row0}");
        let row1 = frame.lines().find(|l| l.contains("152")).unwrap();
        assert!(row1.contains("25.0%"), "{row1}");
    }

    /// End-to-end observability session: `wnsk serve --admin-addr`
    /// publishes its admin address, `wnsk top` renders a dashboard from
    /// a live scrape and `top --check` validates `/metrics` + `/healthz`
    /// (saving the exposition), while the periodic exporter republishes
    /// the registry file atomically during the run.
    #[test]
    fn serve_admin_endpoint_feeds_top_and_periodic_export() {
        let data = tmp("admin-data.txt");
        run(&[
            "generate", "--preset", "tiny", "--scale", "1.0", "--out", &data, "--seed", "7",
        ])
        .unwrap();
        let (_, vocab) = {
            let file = std::fs::File::open(&data).unwrap();
            wnsk_data::io::read_dataset(std::io::BufReader::new(file)).unwrap()
        };
        let kw = [
            vocab.name(wnsk_text::TermId(0)).unwrap().to_string(),
            vocab.name(wnsk_text::TermId(1)).unwrap().to_string(),
        ];
        let kw: Vec<&str> = kw.iter().map(String::as_str).collect();

        let addr_file = tmp("admin-addr.txt");
        let admin_file = tmp("admin-admin.txt");
        let export_file = tmp("admin-export.prom");
        for f in [&addr_file, &admin_file, &export_file] {
            std::fs::remove_file(f).ok();
        }
        let server = {
            let data = data.clone();
            let addr_file = addr_file.clone();
            let admin_file = admin_file.clone();
            let export_file = export_file.clone();
            std::thread::spawn(move || {
                run(&[
                    "serve",
                    "--data",
                    &data,
                    "--duration-ms",
                    "8000",
                    "--addr-file",
                    &addr_file,
                    "--admin-addr",
                    "127.0.0.1:0",
                    "--admin-addr-file",
                    &admin_file,
                    "--slow-threshold-ms",
                    "0",
                    "--threads",
                    "2",
                    "--metrics-export",
                    &export_file,
                    "--metrics-export-interval-ms",
                    "50",
                ])
            })
        };
        let wait_for = |path: &str| {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
            loop {
                if let Ok(s) = std::fs::read_to_string(path) {
                    if !s.is_empty() {
                        break s;
                    }
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "server never wrote {path}"
                );
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        };
        let addr = wait_for(&addr_file);
        let admin = wait_for(&admin_file);

        // Drive some traffic so the windows and the recorder move.
        let mut client = wnsk_serve::Client::connect(&addr).unwrap();
        for _ in 0..5 {
            let resp = client
                .call_json(&wnsk_serve::client::topk_line((0.5, 0.25), &kw, 3, 0.5))
                .unwrap();
            assert_eq!(
                resp.get("ok"),
                Some(&wnsk_obs::JsonValue::Bool(true)),
                "{resp:?}"
            );
        }

        // One-shot dashboard from the live endpoint.
        let frame = run(&["top", "--admin", &admin, "--iterations", "1"]).unwrap();
        assert!(frame.contains(&format!("wnsk top — {admin}")), "{frame}");
        assert!(frame.contains("accepted 5"), "{frame}");
        assert!(frame.contains("60s"), "{frame}");
        assert!(frame.contains("slowest recent:"), "{frame}");

        // CI scrape check, saving the exposition as the artifact.
        let scrape_out = tmp("admin-scrape.prom");
        std::fs::remove_file(&scrape_out).ok();
        let check = run(&[
            "top",
            "--admin",
            &admin,
            "--check",
            "--metrics-out",
            &scrape_out,
        ])
        .unwrap();
        assert!(check.contains("scrape OK"), "{check}");
        assert!(check.contains("healthz ok"), "{check}");
        let saved = std::fs::read_to_string(&scrape_out).unwrap();
        assert!(saved.contains("wnsk_serve_accepted"), "{saved}");
        assert!(saved.contains("wnsk_serve_window_ticks"), "{saved}");
        wnsk_obs::parse_prometheus_text(&saved).unwrap();

        // The periodic exporter republishes the file during the run —
        // well before the end-of-run export — and atomically (the .tmp
        // sibling never survives a cycle).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let exported = loop {
            if let Ok(s) = std::fs::read_to_string(&export_file) {
                if s.contains("wnsk_serve_accepted") {
                    break s;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "periodic export never appeared"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        wnsk_obs::parse_prometheus_text(&exported).unwrap();

        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("accepted"), "{summary}");
        assert!(summary.contains("exported metrics to"), "{summary}");
        assert!(
            !std::path::Path::new(&format!("{export_file}.tmp")).exists(),
            "exporter left a torn tmp file"
        );

        // Flag validation: the interval needs a file target, the admin
        // address file needs an admin listener, and top needs --admin.
        let err = run(&[
            "serve",
            "--data",
            &data,
            "--metrics-export",
            "-",
            "--metrics-export-interval-ms",
            "50",
        ])
        .unwrap_err();
        assert!(err.contains("needs --metrics-export FILE"), "{err}");
        let err = run(&[
            "serve",
            "--data",
            &data,
            "--admin-addr-file",
            &admin_file,
            "--duration-ms",
            "1",
        ])
        .unwrap_err();
        assert!(err.contains("needs --admin-addr"), "{err}");
        let err = run(&["top"]).unwrap_err();
        assert!(err.contains("missing required --admin"), "{err}");

        for f in [&data, &addr_file, &admin_file, &export_file, &scrape_out] {
            std::fs::remove_file(f).ok();
        }
    }

    /// The acceptance loop of the fuzz lane: with the test-only rank
    /// bug injected, `wnsk fuzz` catches a divergence, shrinks it, and
    /// emits a reproducer that `wnsk corpus` then replays as a
    /// self-test (fails with the bug, passes without).
    #[test]
    fn fuzz_catches_the_injected_bug_and_corpus_replays_it() {
        let dir = tmp("fuzz-emit");
        std::fs::remove_dir_all(&dir).ok();
        // Run seed 1 is pinned: among the first 4 cases, the injected
        // rank bug surfaces (see crates/fuzz/tests/shrinker.rs).
        let err = run(&[
            "fuzz",
            "--seed",
            "1",
            "--cases",
            "4",
            "--inject-bug",
            "rank",
            "--emit-dir",
            &dir,
            "--shrink-limit",
            "300",
        ])
        .unwrap_err();
        assert!(err.contains("FAIL"), "{err}");
        assert!(err.contains("shrunk to"), "{err}");
        assert!(err.contains("diverged from the oracle"), "{err}");

        let emitted: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(!emitted.is_empty(), "no reproducer emitted");
        assert!(
            emitted
                .iter()
                .all(|n| n.starts_with("case-") && n.ends_with(".json")),
            "{emitted:?}"
        );

        let out = run(&["corpus", "--dir", &dir]).unwrap();
        assert!(out.contains("0 regressions"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Clean solvers, clean run — and the per-case output is
    /// reproducible from the seed alone (the wall-time summary line is
    /// the only nondeterministic part).
    #[test]
    fn fuzz_without_injection_is_clean_and_deterministic() {
        let a = run(&["fuzz", "--seed", "42", "--cases", "3"]).unwrap();
        let b = run(&["fuzz", "--seed", "42", "--cases", "3"]).unwrap();
        assert!(a.contains("0 failures"), "{a}");
        let cases = |s: &str| {
            s.lines()
                .filter(|l| l.starts_with("case"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(cases(&a), cases(&b));
        assert_eq!(cases(&a).lines().count(), 3, "{a}");
    }

    /// `wnsk corpus` over the committed corpus — the CI lane, runnable
    /// locally.
    #[test]
    fn corpus_replays_the_committed_set() {
        let dir = format!("{}/../../tests/corpus", env!("CARGO_MANIFEST_DIR"));
        let out = run(&["corpus", "--dir", &dir]).unwrap();
        assert!(out.contains("0 regressions"), "{out}");
        assert!(out.contains("handwritten"), "{out}");

        let err = run(&["corpus", "--dir", "/nonexistent-corpus"]).unwrap_err();
        assert!(err.contains("cannot read corpus dir"), "{err}");
    }
}
