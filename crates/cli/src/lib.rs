//! `wnsk` — command-line why-not spatial keyword querying.
//!
//! Subcommands:
//!
//! ```text
//! wnsk generate --preset euro|gn|tiny --scale S --out data.txt [--seed N]
//! wnsk stats    --data data.txt
//! wnsk build    --data data.txt --setr setr.db --kcr kcr.db [--fanout 100]
//! wnsk topk     --data data.txt --setr setr.db --at X,Y --keywords a,b
//!               [--k 10] [--alpha 0.5] [--metrics]
//! wnsk whynot   --data data.txt --setr setr.db --kcr kcr.db --at X,Y
//!               --keywords a,b --missing ID[,ID…]
//!               [--k 10] [--alpha 0.5] [--lambda 0.5]
//!               [--algo bs|advanced|kcr] [--approx T] [--threads N]
//!               [--kernel scalar|bitset]
//!               [--metrics] [--explain[=tree|json]] [--trace-sample N]
//!               [--metrics-export PATH|-]
//!               [--deadline-ms N] [--max-page-reads N]
//! wnsk ingest   --data data.txt --wal wal.db --ops ops.txt [--metrics]
//! wnsk serve    --data data.txt [--wal wal.db] [--addr HOST:PORT]
//!               [--threads N] [--queue-depth N] [--cache-entries N]
//!               [--duration-ms N] [--worker-delay-ms N] [--addr-file PATH]
//!               [--admin-addr HOST:PORT] [--admin-addr-file PATH]
//!               [--slow-threshold-ms N] [--slo-ms N]
//!               [--metrics-export PATH|-] [--metrics-export-interval-ms N]
//! wnsk top      --admin HOST:PORT [--interval-ms N] [--iterations N]
//!               [--check] [--metrics-out PATH]
//! wnsk loadgen  --addr HOST:PORT --data data.txt [--connections N]
//!               [--requests N] [--qps Q] [--zipf S] [--pool N]
//!               [--k N] [--alpha A] [--seed N] [--record PATH]
//! wnsk fuzz     --seed N --cases N [--emit-dir DIR] [--inject-bug rank]
//!               [--shrink-limit N] [--metrics]
//! wnsk corpus   --dir DIR
//! ```
//!
//! `serve` runs the embedded query-serving layer of [`wnsk_serve`]: a
//! warm engine behind a newline-delimited-JSON TCP endpoint with a
//! bounded admission queue and a cross-query answer cache. `loadgen` is
//! its closed-loop benchmark client (zipfian query mix, target QPS,
//! latency percentiles). `loadgen --record` additionally writes the
//! exact request lines a run sent, in a stable order; `serve --replay`
//! re-executes such a session in-process and verifies every response
//! is bit-identical to a cache-bypassing recomputation.
//!
//! `serve --admin-addr` additionally starts the HTTP admin endpoint of
//! [`wnsk_serve::admin`] (`/metrics`, `/healthz`, `/slow`, `/flight`)
//! and enables the observability plane: flight recorder, slow-query
//! log (threshold `--slow-threshold-ms`), rolling 1s/10s/60s latency
//! windows and the `--slo-ms` burn counter. `top` is its terminal
//! client — a polling dashboard (qps, percentiles, queue depth, cache
//! hit rate, shed rate, slowest recent queries), or with `--check` a
//! one-shot CI scrape validator that fails on unparseable Prometheus
//! text, missing required metric families, or an unhealthy `/healthz`
//! (`--metrics-out` saves the raw scrape as an artifact).
//! `--metrics-export-interval-ms` republishes the live registry to the
//! `--metrics-export` file on that cadence via write-tmp-then-rename,
//! so file-based scrapers never observe a torn exposition.
//!
//! `fuzz` is the differential fuzzing harness of [`wnsk_fuzz`]: seeded
//! random cases run through the full solver × thread × kernel × opt
//! matrix (and the WAL ingest/recovery cycle) against the sequential
//! BS oracle; divergences are delta-debug shrunk and, with
//! `--emit-dir`, written as self-contained regression files. `corpus`
//! replays such a directory — the committed set lives in
//! `tests/corpus/` and is run by the CI corpus-replay lane.
//!
//! `ingest` applies a mutation script (`insert X Y kw[,kw…]`,
//! `delete ID`, `update ID kw[,kw…]`; `#` comments) through the
//! write-ahead log: the WAL is recovered first — replaying every
//! previously committed mutation and truncating any torn tail — then
//! the script is appended as one group-committed batch. `serve --wal`
//! recovers the same log at startup and routes the server's `insert` /
//! `delete` requests through it, so a crashed server resumes at the
//! exact epoch its durable log proves. `--metrics` on `ingest` reports
//! the `wal.*` counters (appends, commits, recovered records, truncated
//! bytes) next to `ingest.applied`.
//!
//! `--metrics` appends the unified observability report: per-phase wall
//! time, SetR/KcR node visits, Theorem 2/3 prune counts, and buffer-pool
//! logical/physical reads, all drawn from one [`wnsk_obs::Registry`].
//!
//! `--explain` additionally traces the query and renders its span tree
//! (per-span durations, node visits, Theorem 2/3 prune events, cache
//! hits); `--explain=json` emits the same tree as JSON.
//! `--metrics-export` writes the query's registry delta as Prometheus
//! text format to a file, or into the output with `-`.
//!
//! Datasets are the plain-text format of [`wnsk_data::io`]; indexes are
//! the file-backed page stores the library reads through its buffer pool.

mod args;
mod commands;
mod export;

pub use args::ParsedArgs;

/// Usage text printed on argument errors.
pub const USAGE: &str = "\
usage: wnsk <command> [options]

commands:
  generate  --preset euro|gn|tiny --scale S --out FILE [--seed N]
  stats     --data FILE
  build     --data FILE --setr FILE --kcr FILE [--fanout N]
  topk      --data FILE --setr FILE --at X,Y --keywords a,b [--k N] [--alpha A]
            [--metrics] [--metrics-export PATH|-]
  whynot    --data FILE --setr FILE --kcr FILE --at X,Y --keywords a,b
            --missing ID[,ID...] [--k N] [--alpha A] [--lambda L]
            [--algo bs|advanced|kcr] [--approx T] [--threads N] [--metrics]
            [--kernel scalar|bitset]
            [--explain[=tree|json]] [--trace-sample N]
            [--metrics-export PATH|-]
            [--deadline-ms N] [--max-page-reads N]
  ingest    --data FILE --wal FILE --ops FILE [--metrics]
  serve     --data FILE [--wal FILE] [--addr HOST:PORT] [--threads N]
            [--queue-depth N] [--cache-entries N] [--duration-ms N]
            [--worker-delay-ms N] [--addr-file PATH] [--metrics-export PATH|-]
            [--metrics-export-interval-ms N] [--replay SESSION]
            [--admin-addr HOST:PORT] [--admin-addr-file PATH]
            [--slow-threshold-ms N] [--slo-ms N]
            [--shards N | --manifest FILE] [--shard-seed N] [--replicas R]
            [--shard-wal-dir DIR] [--shard-admission CAP]
            [--shard-admin-addr-file PREFIX]
  shard-plan --data FILE --shards N --out FILE [--seed N]
  top       --admin HOST:PORT [--interval-ms N] [--iterations N]
            [--check] [--metrics-out PATH]
  loadgen   --addr HOST:PORT --data FILE [--connections N] [--requests N]
            [--qps Q] [--zipf S] [--pool N] [--k N] [--alpha A] [--seed N]
            [--record PATH] [--mutate-ratio F]
  fuzz      --seed N --cases N [--emit-dir DIR] [--inject-bug rank]
            [--shrink-limit N] [--metrics]
  corpus    --dir DIR

--metrics appends the per-query observability report (phase wall times,
node visits, prune counts, buffer-pool I/O).
--explain traces the query and renders its span tree (durations, prune
events, cache hits); --explain=json emits the same tree as JSON.
--metrics-export writes the query's metrics as Prometheus text to a
file ('-' = into the output).
--threads N runs the solver on a work-stealing pool of N workers; the
answer is identical for every N.
--kernel picks the set-arithmetic kernel (default bitset); both kernels
return bit-identical answers and work metrics — only wall time changes
(see docs/KERNELS.md).
--deadline-ms / --max-page-reads cap the query budget (0 = unlimited);
an exhausted budget degrades to the approximate answer and the output
reports the answer quality.
--wal points at the write-ahead log: ingest recovers it, appends the ops
file as one group commit, and reports the recovery (records replayed,
bytes truncated, epoch reached); serve --wal recovers at startup and
logs the insert/delete requests it serves.
loadgen --record writes the session's request lines; serve --replay
re-executes such a session in-process and fails unless every response is
bit-identical to a cache-bypassing recomputation.
serve --admin-addr starts the HTTP admin endpoint (/metrics /healthz
/slow /flight) and enables the flight recorder, slow-query log and
rolling SLO windows; top polls it as a live dashboard, and top --check
validates one scrape for CI (--metrics-out saves the raw text).
serve --shards N (or --manifest FILE from shard-plan) runs the
scatter-gather coordinator: one engine per shard, mutations routed by
keyword affinity, answers merged bit-identically to a single engine.
--replicas fans hot-shard reads out round-robin, --shard-wal-dir gives
every shard its own WAL plus a route log for independent crash
recovery, --shard-admission caps per-shard in-flight mutations, and
--shard-admin-addr-file PREFIX writes each shard's admin address to
PREFIX<i> (all address files land via tmp-file + atomic rename).
loadgen --mutate-ratio F mixes that fraction of routed inserts into
the request pool (insert-only, so zipf replays stay valid).
fuzz cross-checks the full solver matrix against the sequential BS
oracle on seeded random cases, shrinks divergences and (with --emit-dir)
writes them as regression files; corpus replays such a directory
(tests/corpus is the committed set).";

/// Dispatches a full command line (without the program name) and returns
/// the text to print.
pub fn run(args: &[String]) -> Result<String, String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("missing command".into());
    };
    let parsed = ParsedArgs::parse(rest)?;
    match command.as_str() {
        "generate" => commands::generate(&parsed),
        "stats" => commands::stats(&parsed),
        "build" => commands::build(&parsed),
        "topk" => commands::topk(&parsed),
        "whynot" => commands::whynot(&parsed),
        "ingest" => commands::ingest(&parsed),
        "serve" => commands::serve(&parsed),
        "shard-plan" => commands::shard_plan(&parsed),
        "top" => commands::top(&parsed),
        "loadgen" => commands::loadgen(&parsed),
        "fuzz" => commands::fuzz(&parsed),
        "corpus" => commands::corpus(&parsed),
        other => Err(format!("unknown command '{other}'")),
    }
}
