//! `wnsk` — the command-line entry point. All logic lives in the library
//! (`wnsk_cli::run`) so the test suite can drive it without spawning
//! processes.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match wnsk_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", wnsk_cli::USAGE);
            std::process::exit(2);
        }
    }
}
