//! Minimal `--flag value` argument parsing with typed accessors.

use std::collections::HashMap;
use wnsk_geo::Point;

/// Flags that take no value — their presence alone means "on".
const BOOLEAN_FLAGS: &[&str] = &["metrics", "check"];

/// Flags whose value is optional: bare `--explain` means the default,
/// and an explicit value must use the `=` form (`--explain=json`) so
/// the parser never has to guess whether the next token is a value.
const OPTIONAL_VALUE_FLAGS: &[(&str, &str)] = &[("explain", "tree")];

/// Parsed `--key value` pairs.
pub struct ParsedArgs {
    values: HashMap<String, String>,
}

impl ParsedArgs {
    /// Parses alternating `--key value` tokens. `--key=value` is
    /// equivalent to `--key value`. Boolean flags (`--metrics`) stand
    /// alone; optional-value flags (`--explain[=json|tree]`) default
    /// when bare.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let insert = |values: &mut HashMap<String, String>, key: &str, value: String| {
            if values.insert(key.to_string(), value).is_some() {
                return Err(format!("--{key} given twice"));
            }
            Ok(())
        };
        let mut i = 0;
        while i < args.len() {
            let body = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{}'", args[i]))?;
            if let Some((key, value)) = body.split_once('=') {
                if key.is_empty() {
                    return Err(format!("bad flag '{}'", args[i]));
                }
                insert(&mut values, key, value.to_string())?;
                i += 1;
                continue;
            }
            let key = body;
            if BOOLEAN_FLAGS.contains(&key) {
                insert(&mut values, key, "true".into())?;
                i += 1;
                continue;
            }
            if let Some(&(_, default)) = OPTIONAL_VALUE_FLAGS.iter().find(|&&(k, _)| k == key) {
                insert(&mut values, key, default.into())?;
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?;
            insert(&mut values, key, value.clone())?;
            i += 2;
        }
        Ok(ParsedArgs { values })
    }

    /// Whether a boolean flag (e.g. `--metrics`) was given.
    pub fn flag(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// A required string flag.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required --{key}"))
    }

    /// An optional string flag.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// An optional flag parsed as `T`, with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value '{v}' for --{key}")),
        }
    }

    /// A required `X,Y` point flag.
    pub fn point(&self, key: &str) -> Result<Point, String> {
        let raw = self.required(key)?;
        let (x, y) = raw
            .split_once(',')
            .ok_or_else(|| format!("--{key} must be X,Y"))?;
        let x: f64 = x.trim().parse().map_err(|_| format!("bad x in --{key}"))?;
        let y: f64 = y.trim().parse().map_err(|_| format!("bad y in --{key}"))?;
        Ok(Point::new(x, y))
    }

    /// A required comma-separated list flag.
    pub fn list(&self, key: &str) -> Result<Vec<String>, String> {
        let raw = self.required(key)?;
        let items: Vec<String> = raw
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if items.is_empty() {
            return Err(format!("--{key} must list at least one item"));
        }
        Ok(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<ParsedArgs, String> {
        ParsedArgs::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_pairs() {
        let a = parse(&["--k", "10", "--alpha", "0.3"]).unwrap();
        assert_eq!(a.required("k").unwrap(), "10");
        assert_eq!(a.parse_or("alpha", 0.5).unwrap(), 0.3);
        assert_eq!(a.parse_or("lambda", 0.5).unwrap(), 0.5);
        assert!(a.optional("missing").is_none());
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(parse(&["k", "10"]).is_err());
        assert!(parse(&["--k"]).is_err());
        assert!(parse(&["--k", "1", "--k", "2"]).is_err());
    }

    #[test]
    fn point_and_list() {
        let a = parse(&["--at", "0.5, 0.25", "--keywords", "a, b,c"]).unwrap();
        assert_eq!(a.point("at").unwrap(), Point::new(0.5, 0.25));
        assert_eq!(a.list("keywords").unwrap(), vec!["a", "b", "c"]);
        let bad = parse(&["--at", "0.5"]).unwrap();
        assert!(bad.point("at").is_err());
    }

    #[test]
    fn boolean_flags_stand_alone() {
        let a = parse(&["--metrics", "--k", "5"]).unwrap();
        assert!(a.flag("metrics"));
        assert!(!a.flag("verbose"));
        assert_eq!(a.required("k").unwrap(), "5");
        assert!(parse(&["--metrics", "--metrics"]).is_err());
        // Value-taking flags still require their value.
        assert!(parse(&["--k"]).is_err());
    }

    #[test]
    fn typed_parse_errors() {
        let a = parse(&["--k", "ten"]).unwrap();
        assert!(a.parse_or("k", 1usize).is_err());
    }

    #[test]
    fn equals_form_is_equivalent() {
        let a = parse(&["--k=10", "--alpha=0.3", "--metrics"]).unwrap();
        assert_eq!(a.required("k").unwrap(), "10");
        assert_eq!(a.parse_or("alpha", 0.5).unwrap(), 0.3);
        assert!(a.flag("metrics"));
        assert!(parse(&["--k=1", "--k", "2"]).is_err());
        assert!(parse(&["--=x"]).is_err());
    }

    #[test]
    fn optional_value_flags_default_when_bare() {
        let a = parse(&["--explain"]).unwrap();
        assert_eq!(a.optional("explain"), Some("tree"));
        let a = parse(&["--explain=json"]).unwrap();
        assert_eq!(a.optional("explain"), Some("json"));
        let a = parse(&["--k", "5"]).unwrap();
        assert_eq!(a.optional("explain"), None);
        // Bare --explain never swallows the next flag.
        let a = parse(&["--explain", "--k", "5"]).unwrap();
        assert_eq!(a.optional("explain"), Some("tree"));
        assert_eq!(a.required("k").unwrap(), "5");
    }
}
