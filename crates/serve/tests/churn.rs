//! Epoch-based cache invalidation under churn: topk and why-not
//! requests interleaved with inserts and deletes over the live server.
//! The assertions are exactly the staleness hazards the epoch stamp
//! exists to prevent — a cached top-k list served after a mutation that
//! changed the ranking, and a cached initial-rank hint reused after a
//! dominator was deleted.

use wnsk_core::WhyNotEngine;
use wnsk_data::{generate, DatasetSpec};
use wnsk_index::{ObjectId, SpatialKeywordQuery};
use wnsk_obs::{names, JsonValue};
use wnsk_serve::client::{delete_line, insert_line, stats_line, topk_line, whynot_line};
use wnsk_serve::{Client, Server, ServerConfig};
use wnsk_text::KeywordSet;

const AT: (f64, f64) = (0.5, 0.25);
const K: usize = 3;
const ALPHA: f64 = 0.5;
const LAMBDA: f64 = 0.5;

fn warm_engine() -> WhyNotEngine {
    let data = generate(&DatasetSpec::tiny(7));
    WhyNotEngine::build_in_memory(data.dataset)
        .expect("tiny dataset builds")
        .with_vocabulary(data.vocabulary)
}

fn f64_field(doc: &JsonValue, path: &[&str]) -> f64 {
    let mut v = doc;
    for key in path {
        v = v.get(key).unwrap_or_else(|| panic!("missing field {key}"));
    }
    v.as_f64().unwrap()
}

fn result_ids(doc: &JsonValue) -> Vec<u32> {
    doc.get("results")
        .and_then(|v| v.as_array())
        .unwrap()
        .iter()
        .map(|r| f64_field(r, &["object"]) as u32)
        .collect()
}

fn is_cached(doc: &JsonValue) -> bool {
    doc.get("cached") == Some(&JsonValue::Bool(true))
}

/// The exact rank of `missing` under the live engine, recomputed from
/// scratch: strict dominators + 1.
fn brute_rank(engine: &WhyNotEngine, query: &SpatialKeywordQuery, missing: ObjectId) -> usize {
    let ds = engine.dataset();
    let target = ds.score(ds.object(missing), query);
    1 + ds
        .live_objects()
        .filter(|o| ds.score(o, query) > target)
        .count()
}

#[test]
fn mutations_invalidate_cached_answers_and_rank_hints() {
    let handle = Server::start(warm_engine(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Resolve two vocabulary names and a why-not target up front.
    let (kw, query, missing) = {
        let engine = handle.serve_engine().engine();
        let vocab = engine.vocabulary().expect("vocabulary attached");
        let kw: Vec<String> = (0..2)
            .map(|t| vocab.name(wnsk_text::TermId(t)).unwrap().to_string())
            .collect();
        let ids: Vec<u32> = kw.iter().map(|n| vocab.get(n).unwrap().0).collect();
        let query = SpatialKeywordQuery::new(
            wnsk_geo::Point::new(AT.0, AT.1),
            KeywordSet::from_ids(ids),
            K,
            ALPHA,
        );
        let deep = SpatialKeywordQuery::new(query.loc, query.doc.clone(), 20, ALPHA);
        let ranking = engine.top_k(&deep).unwrap();
        assert!(ranking[K].1 > ranking[6].1, "missing pick is outside top-k");
        (kw, query, ranking[6].0)
    };
    let kw: Vec<&str> = kw.iter().map(String::as_str).collect();

    // Warm the top-k cache, then insert an object sitting exactly on the
    // query point with exactly the query keywords: distance 0, perfect
    // text match — it must enter the top-k.
    let cold = client.call_json(&topk_line(AT, &kw, K, ALPHA)).unwrap();
    let warm = client.call_json(&topk_line(AT, &kw, K, ALPHA)).unwrap();
    assert!(!is_cached(&cold) && is_cached(&warm));

    let ack = client.call_json(&insert_line(AT, &kw)).unwrap();
    assert_eq!(ack.get("ok"), Some(&JsonValue::Bool(true)), "{ack:?}");
    let new_id = f64_field(&ack, &["id"]) as u32;
    assert_eq!(f64_field(&ack, &["epoch"]) as u64, 1);

    // The cached pre-insert list must NOT be served: the answer has to
    // be recomputed and contain the new object at rank 1.
    let post_insert = client.call_json(&topk_line(AT, &kw, K, ALPHA)).unwrap();
    assert!(
        !is_cached(&post_insert),
        "stale top-k list served across an insert: {post_insert:?}"
    );
    assert_eq!(
        result_ids(&post_insert)[0],
        new_id,
        "the perfectly matching insert must lead the recomputed top-k"
    );
    {
        let engine = handle.serve_engine().engine();
        let expect = engine.top_k(&query).unwrap();
        let got = result_ids(&post_insert);
        assert_eq!(
            got,
            expect.iter().map(|&(id, _)| id.0).collect::<Vec<_>>(),
            "post-insert answer equals a fresh engine computation"
        );
    }

    // Why-not: cold computes the rank, warm reuses it via the cache.
    let wn = whynot_line(AT, &kw, K, ALPHA, &[missing.0], LAMBDA, None);
    let wn_cold = client.call_json(&wn).unwrap();
    let wn_warm = client.call_json(&wn).unwrap();
    assert_eq!(wn_cold.get("rank_reused"), Some(&JsonValue::Bool(false)));
    assert_eq!(wn_warm.get("rank_reused"), Some(&JsonValue::Bool(true)));
    let rank_before = f64_field(&wn_warm, &["initial_rank"]) as usize;
    assert_eq!(rank_before, {
        let engine = handle.serve_engine().engine();
        brute_rank(&engine, &query, missing)
    });

    // Delete the dominating insert. The missing object's rank improves
    // by one, so a reused hint would now be provably stale.
    let ack = client.call_json(&delete_line(new_id)).unwrap();
    assert_eq!(ack.get("ok"), Some(&JsonValue::Bool(true)), "{ack:?}");
    assert_eq!(f64_field(&ack, &["epoch"]) as u64, 2);

    let wn_post = client.call_json(&wn).unwrap();
    assert_eq!(
        wn_post.get("rank_reused"),
        Some(&JsonValue::Bool(false)),
        "rank hint reused across a delete: {wn_post:?}"
    );
    let rank_after = f64_field(&wn_post, &["initial_rank"]) as usize;
    assert_eq!(rank_after, rank_before - 1, "the deleted dominator is gone");
    assert_eq!(rank_after, {
        let engine = handle.serve_engine().engine();
        brute_rank(&engine, &query, missing)
    });

    // The deleted object is refused everywhere.
    let dup = client.call_json(&delete_line(new_id)).unwrap();
    assert_eq!(dup.get("ok"), Some(&JsonValue::Bool(false)));
    assert!(dup
        .get("error")
        .and_then(|v| v.as_str())
        .unwrap()
        .contains("already been deleted"));
    let wn_deleted = client
        .call_json(&whynot_line(AT, &kw, K, ALPHA, &[new_id], LAMBDA, None))
        .unwrap();
    assert_eq!(wn_deleted.get("ok"), Some(&JsonValue::Bool(false)));
    assert!(wn_deleted
        .get("error")
        .and_then(|v| v.as_str())
        .unwrap()
        .contains("deleted"));

    // The top-k answer after the delete matches the engine again and the
    // deleted id is gone.
    let post_delete = client.call_json(&topk_line(AT, &kw, K, ALPHA)).unwrap();
    assert!(!is_cached(&post_delete));
    assert!(!result_ids(&post_delete).contains(&new_id));

    // Stats tell the honest story: invalidations happened, both
    // mutations were applied, and the object count is back to the seed.
    let stats = client.call_json(&stats_line()).unwrap();
    let counter = |name: &str| f64_field(&stats, &["counters", name]) as u64;
    assert_eq!(counter(names::INGEST_APPLIED), 2);
    assert!(
        counter(names::SERVE_CACHE_INVALIDATED) >= 2,
        "epoch moves must surface as invalidations: {stats:?}"
    );
    assert_eq!(
        f64_field(&stats, &["objects"]) as usize,
        handle.serve_engine().engine().dataset().live_len()
    );

    handle.shutdown();
}

#[test]
fn interleaved_churn_never_serves_a_stale_list() {
    let handle = Server::start(warm_engine(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let kw_owned: Vec<String> = {
        let engine = handle.serve_engine().engine();
        let vocab = engine.vocabulary().unwrap();
        (0..2)
            .map(|t| vocab.name(wnsk_text::TermId(t)).unwrap().to_string())
            .collect()
    };
    let kw: Vec<&str> = kw_owned.iter().map(String::as_str).collect();
    let ids: Vec<u32> = {
        let engine = handle.serve_engine().engine();
        let vocab = engine.vocabulary().unwrap();
        kw.iter().map(|n| vocab.get(n).unwrap().0).collect()
    };
    let query = SpatialKeywordQuery::new(
        wnsk_geo::Point::new(AT.0, AT.1),
        KeywordSet::from_ids(ids),
        K,
        ALPHA,
    );

    // Alternate queries and mutations; after every single step the
    // served list must equal a fresh engine computation bit for bit.
    let mut inserted: Vec<u32> = Vec::new();
    for round in 0..6 {
        let doc = client.call_json(&topk_line(AT, &kw, K, ALPHA)).unwrap();
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(true)), "{doc:?}");
        {
            let engine = handle.serve_engine().engine();
            let expect: Vec<u32> = engine
                .top_k(&query)
                .unwrap()
                .iter()
                .map(|&(id, _)| id.0)
                .collect();
            assert_eq!(result_ids(&doc), expect, "round {round} diverged");
        }
        if round % 2 == 0 {
            // Insert near the query point; spread x slightly so ties
            // stay impossible.
            let at = (0.5 + (round as f64 + 1.0) / 4096.0, 0.25);
            let ack = client.call_json(&insert_line(at, &kw)).unwrap();
            assert_eq!(ack.get("ok"), Some(&JsonValue::Bool(true)), "{ack:?}");
            inserted.push(f64_field(&ack, &["id"]) as u32);
        } else if let Some(id) = inserted.pop() {
            let ack = client.call_json(&delete_line(id)).unwrap();
            assert_eq!(ack.get("ok"), Some(&JsonValue::Bool(true)), "{ack:?}");
        }
    }

    // A repeat with no intervening mutation still hits the cache — the
    // epoch check invalidates, it does not disable caching.
    let a = client.call_json(&topk_line(AT, &kw, K, ALPHA)).unwrap();
    let b = client.call_json(&topk_line(AT, &kw, K, ALPHA)).unwrap();
    assert!(is_cached(&b), "same-epoch repeat must be a cache hit");
    assert_eq!(result_ids(&a), result_ids(&b));

    handle.shutdown();
}
