//! End-to-end sharded serving: a coordinator-backed server must answer
//! the same wire script bit-identically to a single-engine server —
//! topk rank lists and why-not refinements compared field by field,
//! scores and penalties by `f64` bits — while routing mutations by
//! partition key. Also pins the coordinator admin plane: the `/healthz`
//! "shards" array and the per-shard admin listeners.

use wnsk_core::WhyNotEngine;
use wnsk_data::{generate, DatasetSpec};
use wnsk_obs::JsonValue;
use wnsk_serve::client::{delete_line, insert_line, topk_line, whynot_line};
use wnsk_serve::{http_get, Client, Server, ServerConfig, ServerHandle};
use wnsk_shard::{Coordinator, CoordinatorConfig, ShardManifest};

const K: usize = 3;
const ALPHA: f64 = 0.5;
const LAMBDA: f64 = 0.5;

fn single_server() -> ServerHandle {
    let data = generate(&DatasetSpec::tiny(7));
    let engine = WhyNotEngine::build_in_memory(data.dataset)
        .expect("tiny dataset builds")
        .with_vocabulary(data.vocabulary);
    Server::start(engine, ServerConfig::default()).unwrap()
}

fn sharded_server(shards: usize, threads: usize, config: ServerConfig) -> ServerHandle {
    let data = generate(&DatasetSpec::tiny(7));
    let manifest = ShardManifest::plan(&data.dataset, shards, 42);
    let coordinator = Coordinator::new(
        data.dataset,
        manifest,
        CoordinatorConfig {
            threads,
            ..CoordinatorConfig::default()
        },
    )
    .expect("partition covers the dataset")
    .with_vocabulary(data.vocabulary);
    Server::start_sharded(coordinator, config).unwrap()
}

/// Strips the caching markers (`cached`, `rank_reused`) that legally
/// differ between a caching single server and the cache-bypassing
/// sharded why-not path; everything else must be identical.
fn strip_markers(doc: &JsonValue) -> JsonValue {
    match doc {
        JsonValue::Object(fields) => JsonValue::Object(
            fields
                .iter()
                .filter(|(k, _)| k != "cached" && k != "rank_reused")
                .map(|(k, v)| (k.clone(), strip_markers(v)))
                .collect(),
        ),
        JsonValue::Array(items) => JsonValue::Array(items.iter().map(strip_markers).collect()),
        other => other.clone(),
    }
}

/// The first `n` vocabulary names — both servers attach the same
/// seeded vocabulary, so names resolve identically on each side.
fn vocab_names(n: u32) -> Vec<String> {
    let data = generate(&DatasetSpec::tiny(7));
    (0..n)
        .map(|t| {
            data.vocabulary
                .name(wnsk_text::TermId(t))
                .expect("tiny vocabulary has this term")
                .to_string()
        })
        .collect()
}

/// A deterministic wire script mixing queries and mutations.
fn script(names: &[String]) -> Vec<String> {
    let kw = |ix: &[usize]| -> Vec<&str> { ix.iter().map(|&i| names[i].as_str()).collect() };
    let kws = [kw(&[0, 1]), kw(&[2, 3]), kw(&[1, 4])];
    let mut lines = Vec::new();
    for (i, kw) in kws.iter().enumerate() {
        let at = (0.2 + 0.25 * i as f64, 0.3 + 0.2 * i as f64);
        lines.push(topk_line(at, kw, K, ALPHA));
    }
    lines.push(insert_line((0.41, 0.43), &kw(&[0, 2])));
    lines.push(insert_line((0.61, 0.13), &kw(&[1, 3, 5])));
    for (i, kw) in kws.iter().enumerate() {
        let at = (0.2 + 0.25 * i as f64, 0.3 + 0.2 * i as f64);
        lines.push(topk_line(at, kw, K, ALPHA));
    }
    lines
}

#[test]
fn sharded_server_matches_single_server_line_for_line() {
    let names = vocab_names(6);
    for shards in [2usize, 4] {
        let single = single_server();
        let sharded = sharded_server(shards, 2, ServerConfig::default());
        let mut c_single = Client::connect(single.addr()).unwrap();
        let mut c_sharded = Client::connect(sharded.addr()).unwrap();
        for line in script(&names) {
            let a = c_single.call_json(&line).unwrap();
            let b = c_sharded.call_json(&line).unwrap();
            assert_eq!(
                strip_markers(&a),
                strip_markers(&b),
                "s={shards} diverged on line {line}"
            );
        }

        // A why-not question both servers agree is missing: take an
        // object well outside the top-k under a live query.
        let (at, missing) = {
            let engine = single.serve_engine().engine();
            let q = wnsk_index::SpatialKeywordQuery::new(
                wnsk_geo::Point::new(0.45, 0.5),
                wnsk_text::KeywordSet::from_ids([0u32, 1]),
                20,
                ALPHA,
            );
            let ranking = engine.top_k(&q).unwrap();
            ((0.45, 0.5), ranking[10].0 .0)
        };
        let kw = [names[0].as_str(), names[1].as_str()];
        let line = whynot_line(at, &kw, K, ALPHA, &[missing], LAMBDA, None);
        let a = c_single.call_json(&line).unwrap();
        let b = c_sharded.call_json(&line).unwrap();
        assert_eq!(
            strip_markers(&a),
            strip_markers(&b),
            "s={shards} why-not diverged"
        );
        assert_eq!(
            b.get("quality"),
            Some(&JsonValue::String("exact".into())),
            "sharded why-not must be exact: {b:?}"
        );

        // Deletes route to the owning shard and both sides agree.
        let del = delete_line(missing);
        let a = c_single.call_json(&del).unwrap();
        let b = c_sharded.call_json(&del).unwrap();
        assert_eq!(strip_markers(&a), strip_markers(&b), "delete diverged");

        single.shutdown();
        sharded.shutdown();
    }
}

#[test]
fn sharded_healthz_and_per_shard_admin_planes() {
    let config = ServerConfig {
        admin_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    };
    let handle = sharded_server(2, 2, config);
    let admin = handle.admin_addr().expect("admin endpoint bound");
    let shard_admins = handle.shard_admin_addrs();
    assert_eq!(shard_admins.len(), 2, "one admin plane per shard");

    // Drive one mutation so epochs move.
    let names = vocab_names(1);
    let mut client = Client::connect(handle.addr()).unwrap();
    let ack = client
        .call_json(&insert_line((0.5, 0.5), &[names[0].as_str()]))
        .unwrap();
    assert_eq!(ack.get("ok"), Some(&JsonValue::Bool(true)), "{ack:?}");

    let (status, body) = http_get(&admin.to_string(), "/healthz").unwrap();
    assert_eq!(status, 200);
    let doc = JsonValue::parse(&body).unwrap();
    assert_eq!(doc.get("epoch").and_then(JsonValue::as_f64), Some(1.0));
    let rows = doc
        .get("shards")
        .and_then(JsonValue::as_array)
        .expect("healthz exposes a shards array");
    assert_eq!(rows.len(), 2);
    let epoch_sum: f64 = rows
        .iter()
        .map(|r| r.get("epoch").and_then(JsonValue::as_f64).unwrap())
        .sum();
    assert_eq!(epoch_sum, 1.0, "exactly one shard absorbed the insert");
    for (s, row) in rows.iter().enumerate() {
        assert_eq!(row.get("shard").and_then(JsonValue::as_f64), Some(s as f64));
        assert!(row.get("inflight").is_some() && row.get("wal_lsn").is_some());
    }

    // The coordinator /metrics carries both serve.* and shard.*.
    let (status, body) = http_get(&admin.to_string(), "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("wnsk_serve_accepted"), "missing serve.*");
    assert!(body.contains("wnsk_shard_scatter"), "missing shard.*");

    // Each per-shard plane answers with its own registry and row.
    for (s, addr) in shard_admins.iter().enumerate() {
        let (status, body) = http_get(&addr.to_string(), "/metrics").unwrap();
        assert_eq!(status, 200, "shard {s} metrics");
        assert!(
            body.contains("wnsk_ingest_applied") || body.contains("wnsk_"),
            "shard {s} registry empty"
        );
        let (status, body) = http_get(&addr.to_string(), "/healthz").unwrap();
        assert_eq!(status, 200, "shard {s} healthz");
        let row = JsonValue::parse(&body).unwrap();
        assert_eq!(row.get("shard").and_then(JsonValue::as_f64), Some(s as f64));
    }
    handle.shutdown();
}
