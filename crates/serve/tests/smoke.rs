//! End-to-end service smoke: a warm server answers a scripted NDJSON
//! session with bit-identical results to the bare engine, hits the
//! cross-query cache on repeats, sheds under pressure instead of
//! hanging, degrades on budget expiry, and shuts down cleanly with its
//! `serve.*` metrics visible in the Prometheus export.

use wnsk_core::{KcrOptions, WhyNotEngine, WhyNotQuestion};
use wnsk_data::{generate, DatasetSpec};
use wnsk_geo::Point;
use wnsk_index::SpatialKeywordQuery;
use wnsk_obs::{names, prometheus_text, JsonValue};
use wnsk_serve::client::{stats_line, topk_line, whynot_line};
use wnsk_serve::{Client, Server, ServerConfig};
use wnsk_text::KeywordSet;

/// Builds a warm engine over the deterministic tiny dataset. Called
/// twice per test so the server and the reference computation run on
/// independent but identical state.
fn warm_engine() -> WhyNotEngine {
    let data = generate(&DatasetSpec::tiny(7));
    WhyNotEngine::build_in_memory(data.dataset)
        .expect("tiny dataset builds")
        .with_vocabulary(data.vocabulary)
}

/// Two popular keyword names from the synthetic vocabulary.
fn query_keywords(engine: &WhyNotEngine) -> Vec<String> {
    let vocab = engine.vocabulary().expect("vocabulary attached");
    (0..2)
        .map(|t| vocab.name(wnsk_text::TermId(t)).unwrap().to_string())
        .collect()
}

fn term_ids(engine: &WhyNotEngine, names: &[String]) -> Vec<u32> {
    let vocab = engine.vocabulary().unwrap();
    names.iter().map(|n| vocab.get(n).unwrap().0).collect()
}

/// The session's fixed query point: dyadic, so canonicalization is the
/// identity and the reference engine sees exactly the served query.
const AT: (f64, f64) = (0.5, 0.25);
const K: usize = 3;
const ALPHA: f64 = 0.5;
const LAMBDA: f64 = 0.5;

fn f64_field(doc: &JsonValue, path: &[&str]) -> f64 {
    let mut v = doc;
    for key in path {
        v = v.get(key).unwrap_or_else(|| panic!("missing field {key}"));
    }
    v.as_f64().unwrap()
}

#[test]
fn scripted_session_matches_direct_engine_and_hits_cache() {
    let reference = warm_engine();
    let keywords = query_keywords(&reference);
    let kw: Vec<&str> = keywords.iter().map(String::as_str).collect();
    let ids = term_ids(&reference, &keywords);
    let query = SpatialKeywordQuery::new(
        Point::new(AT.0, AT.1),
        KeywordSet::from_ids(ids.iter().copied()),
        K,
        ALPHA,
    );

    // Reference ranking, used to pick genuinely missing objects and to
    // certify the served answers.
    let deep_query = SpatialKeywordQuery::new(query.loc, query.doc.clone(), 20, ALPHA);
    let ranking = reference.top_k(&deep_query).unwrap();
    assert!(ranking.len() >= 12, "tiny dataset ranks deep enough");
    let missing_a = ranking[5].0;
    let missing_b = ranking[9].0;
    assert!(
        ranking[K].1 > ranking[5].1 && ranking[K].1 > ranking[9].1,
        "missing picks rank strictly below the top-{K}"
    );
    let direct_topk = reference.top_k(&query).unwrap();
    let question = WhyNotQuestion::new(query.clone(), vec![missing_a], LAMBDA);
    let direct_answer = reference
        .answer_kcr(&question, KcrOptions::default())
        .unwrap();

    let handle = Server::start(warm_engine(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // 1+2: top-k, cold then warm — same bits, second answer cached.
    let cold = client.call_json(&topk_line(AT, &kw, K, ALPHA)).unwrap();
    let warm = client.call_json(&topk_line(AT, &kw, K, ALPHA)).unwrap();
    assert_eq!(cold.get("cached"), Some(&JsonValue::Bool(false)));
    assert_eq!(warm.get("cached"), Some(&JsonValue::Bool(true)));
    for doc in [&cold, &warm] {
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(true)));
        let results = doc.get("results").and_then(|v| v.as_array()).unwrap();
        assert_eq!(results.len(), direct_topk.len());
        for (got, want) in results.iter().zip(&direct_topk) {
            assert_eq!(f64_field(got, &["object"]) as u32, want.0 .0);
            assert_eq!(f64_field(got, &["score"]).to_bits(), want.1.to_bits());
        }
    }

    // 3+4: why-not, cold then warm — penalties bit-identical to the
    // bare engine; the warm run reuses the cached initial rank.
    let wn_line = whynot_line(AT, &kw, K, ALPHA, &[missing_a.0], LAMBDA, None);
    let wn_cold = client.call_json(&wn_line).unwrap();
    let wn_warm = client.call_json(&wn_line).unwrap();
    for doc in [&wn_cold, &wn_warm] {
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(doc.get("quality").and_then(|v| v.as_str()), Some("exact"));
        let penalty = f64_field(doc, &["refined", "penalty"]);
        assert_eq!(
            penalty.to_bits(),
            direct_answer.refined.penalty.to_bits(),
            "served penalty must be bit-identical to the bare engine"
        );
        assert_eq!(
            f64_field(doc, &["initial_rank"]) as u64,
            direct_answer.stats.initial_rank
        );
    }
    assert_eq!(wn_cold.get("rank_reused"), Some(&JsonValue::Bool(false)));
    assert_eq!(wn_warm.get("rank_reused"), Some(&JsonValue::Bool(true)));

    // 5: a deep cached top-k list lets a *different* why-not question
    // derive its initial rank without ever having been asked before.
    let deep = client.call_json(&topk_line(AT, &kw, 20, ALPHA)).unwrap();
    assert_eq!(deep.get("ok"), Some(&JsonValue::Bool(true)));
    let wn_derived = client
        .call_json(&whynot_line(
            AT,
            &kw,
            K,
            ALPHA,
            &[missing_b.0],
            LAMBDA,
            None,
        ))
        .unwrap();
    assert_eq!(wn_derived.get("ok"), Some(&JsonValue::Bool(true)));
    assert_eq!(
        wn_derived.get("rank_reused"),
        Some(&JsonValue::Bool(true)),
        "rank must be derived from the cached top-20 list"
    );
    assert_eq!(f64_field(&wn_derived, &["initial_rank"]) as usize, 10);

    // 6: stats reflect the session: everything accepted, nothing shed,
    // three cache hits (warm top-k, warm why-not, derived rank).
    let stats = client.call_json(&stats_line()).unwrap();
    assert_eq!(stats.get("ok"), Some(&JsonValue::Bool(true)));
    let counter = |name: &str| f64_field(&stats, &["counters", name]) as u64;
    assert_eq!(counter(names::SERVE_SHED), 0);
    assert_eq!(counter(names::SERVE_CACHE_HITS), 3);
    assert_eq!(counter(names::SERVE_CACHE_MISSES), 3);
    assert!(counter(names::SERVE_ACCEPTED) >= 7);

    // 7: the serve.* family is visible in the Prometheus export next to
    // the engine metrics.
    let text = prometheus_text(&handle.registry().snapshot());
    for metric in [
        "wnsk_serve_accepted",
        "wnsk_serve_cache_hits",
        "wnsk_serve_cache_misses",
        "wnsk_serve_request_ns",
        "wnsk_serve_queue_depth",
    ] {
        assert!(text.contains(metric), "export missing {metric}");
    }

    handle.shutdown();
}

#[test]
fn queue_overflow_sheds_instead_of_hanging() {
    let config = ServerConfig {
        threads: 1,
        queue_depth: 1,
        worker_delay: std::time::Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let handle = Server::start(warm_engine(), config).unwrap();
    let keywords = query_keywords(&handle.serve_engine().engine());
    let kw: Vec<&str> = keywords.iter().map(String::as_str).collect();
    let line = topk_line(AT, &kw, K, ALPHA);

    let responses: Vec<JsonValue> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let line = line.clone();
                let addr = handle.addr();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client.call_json(&line).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let shed: Vec<&JsonValue> = responses
        .iter()
        .filter(|r| r.get("shed") == Some(&JsonValue::Bool(true)))
        .collect();
    assert!(
        !shed.is_empty(),
        "three concurrent requests against a depth-1 queue must shed at least one"
    );
    for s in &shed {
        assert_eq!(s.get("error").and_then(|v| v.as_str()), Some("queue full"));
        assert_eq!(
            s.get("quality").and_then(|v| v.as_str()),
            Some("degraded (queue full)")
        );
    }
    assert!(
        responses
            .iter()
            .any(|r| r.get("ok") == Some(&JsonValue::Bool(true))),
        "at least one request is served"
    );
    handle.shutdown();
}

#[test]
fn expired_deadline_sheds_with_degraded_quality() {
    let handle = Server::start(warm_engine(), ServerConfig::default()).unwrap();
    let keywords = query_keywords(&handle.serve_engine().engine());
    let kw: Vec<&str> = keywords.iter().map(String::as_str).collect();
    let mut client = Client::connect(handle.addr()).unwrap();

    let line = whynot_line(AT, &kw, K, ALPHA, &[250], LAMBDA, Some(0.0));
    let doc = client.call_json(&line).unwrap();
    assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(false)));
    assert_eq!(doc.get("shed"), Some(&JsonValue::Bool(true)));
    assert_eq!(
        doc.get("quality").and_then(|v| v.as_str()),
        Some("degraded (deadline exceeded)")
    );
    handle.shutdown();
}

#[test]
fn page_read_cap_degrades_mid_query_instead_of_failing() {
    let reference = warm_engine();
    let keywords = query_keywords(&reference);
    let ids = term_ids(&reference, &keywords);
    let deep_query = SpatialKeywordQuery::new(
        Point::new(AT.0, AT.1),
        KeywordSet::from_ids(ids.iter().copied()),
        20,
        ALPHA,
    );
    let missing = reference.top_k(&deep_query).unwrap()[6].0;

    let handle = Server::start(warm_engine(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let kw_json: Vec<JsonValue> = keywords.iter().map(|s| s.as_str().into()).collect();
    let line = JsonValue::object(vec![
        ("type", "whynot".into()),
        ("at", JsonValue::Array(vec![AT.0.into(), AT.1.into()])),
        ("keywords", JsonValue::Array(kw_json)),
        ("k", K.into()),
        ("alpha", ALPHA.into()),
        (
            "missing",
            JsonValue::Array(vec![JsonValue::from(missing.0 as u64)]),
        ),
        ("lambda", LAMBDA.into()),
        ("max_page_reads", JsonValue::from(0u64)),
    ])
    .render();

    let doc = client.call_json(&line).unwrap();
    assert_eq!(
        doc.get("ok"),
        Some(&JsonValue::Bool(true)),
        "budget expiry degrades, it does not fail: {doc:?}"
    );
    assert_eq!(
        doc.get("quality").and_then(|v| v.as_str()),
        Some("degraded (page-read limit reached)")
    );
    handle.shutdown();
}

#[test]
fn malformed_and_unresolvable_requests_answer_without_queueing() {
    let handle = Server::start(warm_engine(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    for (line, needle) in [
        ("{oops", "bad JSON"),
        (r#"{"type":"warp"}"#, "unknown request type"),
        (
            r#"{"type":"topk","at":[0.5,0.5],"keywords":["no-such-word"],"k":3}"#,
            "unknown keyword",
        ),
        (
            r#"{"type":"whynot","at":[0.5,0.5],"keywords":[0],"k":3,"missing":[999999]}"#,
            "unknown object id",
        ),
    ] {
        let doc = client.call_json(line).unwrap();
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(false)), "line {line}");
        let err = doc.get("error").and_then(|v| v.as_str()).unwrap();
        assert!(err.contains(needle), "line {line}: got '{err}'");
    }

    // Bad requests never reach admission: nothing accepted yet.
    let stats = client.call_json(&stats_line()).unwrap();
    assert_eq!(
        f64_field(&stats, &["counters", names::SERVE_ACCEPTED]) as u64,
        1,
        "only the stats request itself is admitted"
    );
    handle.shutdown();
}
