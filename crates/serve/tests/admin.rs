//! Admin-endpoint integration: an in-process session drives loadgen
//! traffic at a live server, scrapes `GET /metrics`, and reconciles
//! every `wnsk_serve_*` family exactly with the in-process registry
//! snapshot; `/healthz` windows read all-zero idle and move under
//! traffic; `/slow` entries replay bit-identically through
//! `execute_uncached`; the flight recorder stays memory-bounded.

use std::time::Duration;
use wnsk_core::WhyNotEngine;
use wnsk_data::{generate, DatasetSpec};
use wnsk_obs::{parse_prometheus_text, prometheus_name, JsonValue};
use wnsk_serve::client::{stats_line, topk_line, whynot_line};
use wnsk_serve::{http_get, protocol, Client, ObservabilityConfig, Server, ServerConfig};

fn warm_engine() -> WhyNotEngine {
    let data = generate(&DatasetSpec::tiny(7));
    WhyNotEngine::build_in_memory(data.dataset)
        .expect("tiny dataset builds")
        .with_vocabulary(data.vocabulary)
}

fn keyword_names(engine: &WhyNotEngine, n: u32) -> Vec<String> {
    let vocab = engine.vocabulary().expect("vocabulary attached");
    (0..n)
        .map(|t| vocab.name(wnsk_text::TermId(t)).unwrap().to_string())
        .collect()
}

const AT: (f64, f64) = (0.5, 0.25);
const K: usize = 3;
const ALPHA: f64 = 0.5;
const LAMBDA: f64 = 0.5;

/// A server with the observability plane fully on: admin endpoint
/// bound, every request slow-logged (threshold zero), hour-long window
/// ticks so reads are deterministic (the open tick is the only one a
/// test ever observes).
fn observed_config() -> ServerConfig {
    ServerConfig {
        admin_addr: Some("127.0.0.1:0".to_string()),
        observability: Some(ObservabilityConfig {
            slow_threshold: Duration::ZERO,
            window_interval: Duration::from_secs(3600),
            ..ObservabilityConfig::default()
        }),
        ..ServerConfig::default()
    }
}

/// A small mixed request pool for loadgen.
fn request_pool(engine: &WhyNotEngine) -> Vec<String> {
    let keywords = keyword_names(engine, 2);
    let kw: Vec<&str> = keywords.iter().map(String::as_str).collect();
    let deep = wnsk_index::SpatialKeywordQuery::new(
        wnsk_geo::Point::new(AT.0, AT.1),
        wnsk_text::KeywordSet::from_ids(
            keywords
                .iter()
                .map(|n| engine.vocabulary().unwrap().get(n).unwrap().0),
        ),
        20,
        ALPHA,
    );
    let ranking = engine.top_k(&deep).unwrap();
    let missing = ranking[5].0;
    vec![
        topk_line(AT, &kw, K, ALPHA),
        topk_line(AT, &kw, K + 1, ALPHA),
        whynot_line(AT, &kw, K, ALPHA, &[missing.0], LAMBDA, None),
        stats_line(),
    ]
}

#[test]
fn metrics_scrape_reconciles_exactly_with_registry_snapshot() {
    let handle = Server::start(warm_engine(), observed_config()).unwrap();
    let admin = handle.admin_addr().expect("admin endpoint bound");
    let pool = request_pool(&handle.serve_engine().engine());

    let config = wnsk_serve::LoadgenConfig {
        addr: handle.addr().to_string(),
        connections: 2,
        requests: 40,
        ..wnsk_serve::LoadgenConfig::default()
    };
    let report = wnsk_serve::loadgen::run(&config, &pool).unwrap();
    assert_eq!(report.sent, 40);
    assert_eq!(report.errors, 0, "clean traffic: {report:?}");

    // Loadgen has fully drained (closed loop), so the server is idle:
    // a scrape and a registry snapshot taken back to back must agree
    // sample for sample.
    let (status, text) = http_get(&admin.to_string(), "/metrics").unwrap();
    assert_eq!(status, 200);
    let samples = parse_prometheus_text(&text).expect("scrape parses strictly");
    let snapshot = handle.registry().snapshot();

    let mut families = 0;
    for (name, value) in &snapshot.counters {
        if !name.starts_with("serve.") && !name.starts_with("obs.") {
            continue;
        }
        families += 1;
        let sample = prometheus_name(name);
        assert_eq!(
            samples.get(&sample).copied(),
            Some(*value as f64),
            "counter {name} must reconcile"
        );
    }
    for (name, hist) in &snapshot.hists {
        if !name.starts_with("serve.") {
            continue;
        }
        families += 1;
        let base = prometheus_name(name);
        assert_eq!(
            samples.get(&format!("{base}_count")).copied(),
            Some(hist.count as f64),
            "hist {name} count must reconcile"
        );
        assert_eq!(
            samples.get(&format!("{base}_sum")).copied(),
            Some(hist.sum as f64),
            "hist {name} sum must reconcile"
        );
        assert!(
            samples.contains_key(&format!("{base}_bucket{{le=\"+Inf\"}}")),
            "hist {name} must export its +Inf bucket"
        );
    }
    // The full expected surface was actually exercised: the serve
    // counters, both hists, the window/SLO/recorder families.
    for required in [
        "serve.accepted",
        "serve.shed",
        "serve.cache_hits",
        "serve.cache_misses",
        "serve.cache_invalidated",
        "serve.queue_depth",
        "serve.request_ns",
        "serve.window.request_ns",
        "serve.window.ticks",
        "serve.slo.violations",
        "obs.recorder.recorded",
        "obs.recorder.overwritten",
        "obs.recorder.slow",
    ] {
        let in_counters = snapshot.counters.contains_key(required);
        let in_hists = snapshot.hists.contains_key(required);
        assert!(in_counters || in_hists, "registry must carry {required}");
    }
    assert!(families >= 13, "reconciled only {families} families");

    // Traffic flowed: accepted everything, recorded everything.
    assert!(snapshot.counter("serve.accepted") >= 40);
    assert_eq!(
        snapshot.counter("obs.recorder.recorded"),
        snapshot.counter("serve.accepted"),
        "every admitted request files exactly one flight entry"
    );
    handle.shutdown();
}

#[test]
fn healthz_windows_read_zero_idle_and_move_under_traffic() {
    let handle = Server::start(warm_engine(), observed_config()).unwrap();
    let admin = handle.admin_addr().unwrap().to_string();

    let (status, body) = http_get(&admin, "/healthz").unwrap();
    assert_eq!(status, 200);
    let idle = JsonValue::parse(&body).unwrap();
    assert_eq!(idle.get("ok"), Some(&JsonValue::Bool(true)));
    assert_eq!(idle.get("queue_depth").and_then(|v| v.as_f64()), Some(0.0));
    assert_eq!(
        idle.get("queue_capacity").and_then(|v| v.as_f64()),
        Some(64.0)
    );
    assert_eq!(idle.get("epoch").and_then(|v| v.as_f64()), Some(0.0));
    assert_eq!(idle.get("wal_attached"), Some(&JsonValue::Bool(false)));
    for span in ["1s", "10s", "60s"] {
        let w = idle.get("windows").and_then(|v| v.get(span)).unwrap();
        for field in ["count", "ok", "shed", "error", "p99_ns"] {
            assert_eq!(
                w.get(field).and_then(|v| v.as_f64()),
                Some(0.0),
                "idle window {span}.{field} must be zero"
            );
        }
    }

    // Drive a little traffic, including one mutation and one error.
    let keywords = keyword_names(&handle.serve_engine().engine(), 2);
    let kw: Vec<&str> = keywords.iter().map(String::as_str).collect();
    let mut client = Client::connect(handle.addr()).unwrap();
    for _ in 0..5 {
        let doc = client.call_json(&topk_line(AT, &kw, K, ALPHA)).unwrap();
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(true)));
    }
    let insert = format!(
        r#"{{"type":"insert","at":[0.25,0.75],"keywords":["{}"]}}"#,
        kw[0]
    );
    assert_eq!(
        client.call_json(&insert).unwrap().get("ok"),
        Some(&JsonValue::Bool(true))
    );

    let (_, body) = http_get(&admin, "/healthz").unwrap();
    let busy = JsonValue::parse(&body).unwrap();
    assert_eq!(busy.get("epoch").and_then(|v| v.as_f64()), Some(1.0));
    assert!(busy.get("accepted").and_then(|v| v.as_f64()).unwrap() >= 6.0);
    let w60 = busy.get("windows").and_then(|v| v.get("60s")).unwrap();
    assert!(
        w60.get("count").and_then(|v| v.as_f64()).unwrap() >= 6.0,
        "windows must move under traffic: {body}"
    );
    assert!(w60.get("ok").and_then(|v| v.as_f64()).unwrap() >= 6.0);
    assert!(w60.get("p99_ns").and_then(|v| v.as_f64()).unwrap() > 0.0);
    handle.shutdown();
}

/// Removes the cache markers (`cached`, `rank_reused`) from a rendered
/// response so cached and fresh renderings can be compared
/// bit-for-bit, mirroring what `wnsk serve --replay` does.
fn strip_cache_markers(response: &str) -> String {
    match JsonValue::parse(response).unwrap() {
        JsonValue::Object(fields) => JsonValue::Object(
            fields
                .into_iter()
                .filter(|(k, _)| k != "cached" && k != "rank_reused")
                .collect(),
        )
        .render(),
        other => other.render(),
    }
}

#[test]
fn slow_entries_replay_bit_identical_via_execute_uncached() {
    let handle = Server::start(warm_engine(), observed_config()).unwrap();
    let admin = handle.admin_addr().unwrap().to_string();
    let pool = request_pool(&handle.serve_engine().engine());
    let mut client = Client::connect(handle.addr()).unwrap();
    for line in pool.iter().chain(pool.iter()) {
        client.call_json(line).unwrap();
    }

    let (status, body) = http_get(&admin, "/slow").unwrap();
    assert_eq!(status, 200);
    let doc = JsonValue::parse(&body).unwrap();
    let entries = doc.get("entries").and_then(|v| v.as_array()).unwrap();
    // Threshold zero files every request, including the cached repeats.
    assert_eq!(entries.len(), 8, "all eight requests slow-logged: {body}");

    let serve = handle.serve_engine();
    let mut replayed = 0;
    for entry in entries {
        let kind = entry.get("kind").and_then(|v| v.as_str()).unwrap();
        if kind != "topk" && kind != "whynot" {
            continue;
        }
        let line = entry.get("line").and_then(|v| v.as_str()).unwrap();
        let response = entry.get("response").and_then(|v| v.as_str()).unwrap();
        let parsed = protocol::parse_request(line).unwrap();
        let resolved = serve.resolve(&parsed.request).unwrap();
        let fresh = serve
            .execute_uncached(&resolved)
            .expect("query kinds replay");
        assert_eq!(
            strip_cache_markers(&fresh),
            strip_cache_markers(response),
            "slow entry must replay bit-identically: {line}"
        );
        replayed += 1;
    }
    assert_eq!(replayed, 6, "both query kinds replayed, repeats included");
    handle.shutdown();
}

#[test]
fn flight_recorder_stays_bounded_and_marks_cache_reuse() {
    let mut config = observed_config();
    config.observability.as_mut().unwrap().flight_capacity = 8;
    let handle = Server::start(warm_engine(), config).unwrap();
    let admin = handle.admin_addr().unwrap().to_string();

    let recorder = handle.serve_engine().flight_recorder().unwrap();
    assert_eq!(recorder.capacity(), 8);
    let per_slot = recorder.memory_bytes() / recorder.capacity();
    assert!(
        per_slot < 512,
        "fixed per-entry footprint blew its budget: {per_slot}B"
    );

    let keywords = keyword_names(&handle.serve_engine().engine(), 2);
    let kw: Vec<&str> = keywords.iter().map(String::as_str).collect();
    let mut client = Client::connect(handle.addr()).unwrap();
    for _ in 0..20 {
        client.call_json(&topk_line(AT, &kw, K, ALPHA)).unwrap();
    }

    let (_, body) = http_get(&admin, "/flight").unwrap();
    let doc = JsonValue::parse(&body).unwrap();
    assert_eq!(doc.get("capacity").and_then(|v| v.as_f64()), Some(8.0));
    assert_eq!(doc.get("recorded").and_then(|v| v.as_f64()), Some(20.0));
    let entries = doc.get("entries").and_then(|v| v.as_array()).unwrap();
    assert_eq!(entries.len(), 8, "ring holds exactly its capacity");
    // The repeats were cache hits, and every entry keys the same
    // canonical query.
    assert!(entries
        .iter()
        .all(|e| e.get("cached") == Some(&JsonValue::Bool(true))));
    let key = entries[0].get("key").and_then(|v| v.as_str()).unwrap();
    assert!(
        !key.is_empty() && key.contains("k=3"),
        "canonical key: {key}"
    );
    assert!(entries
        .iter()
        .all(|e| e.get("key").and_then(|v| v.as_str()) == Some(key)));
    handle.shutdown();
}

#[test]
fn admin_rejects_unknown_paths_and_non_get() {
    let handle = Server::start(warm_engine(), observed_config()).unwrap();
    let admin = handle.admin_addr().unwrap().to_string();
    let (status, body) = http_get(&admin, "/nope").unwrap();
    assert_eq!(status, 404);
    assert!(body.contains("not found"));
    // Query strings are ignored, not 404ed.
    let (status, _) = http_get(&admin, "/healthz?verbose=1").unwrap();
    assert_eq!(status, 200);
    handle.shutdown();
}
