//! `wnsk-serve`: an embedded query-serving layer over the why-not
//! spatial keyword engine.
//!
//! The crate turns a warm [`wnsk_core::WhyNotEngine`] (indexes built
//! once at startup) into a multi-threaded TCP service speaking
//! newline-delimited JSON, with:
//!
//! - **admission control** — a bounded request queue drained by a
//!   `wnsk-exec` worker pool; requests beyond `queue_depth` are shed
//!   with an explicit `queue full` response, and per-request deadlines
//!   map onto [`wnsk_core::QueryBudget`] so expiry degrades answers
//!   through the existing quality ladder instead of hanging clients;
//! - **a cross-query answer cache** — top-k result lists and why-not
//!   initial ranks keyed on the canonicalized `(loc-cell, doc, k, α)`
//!   query, built on the shared [`wnsk_storage::cache::Lru`]; repeated
//!   top-k queries are answered from memory and repeated why-not
//!   refinements reuse the cached rank of the missing set (the
//!   denominator of the paper's Eqn 4 penalty) instead of recomputing
//!   it. Every entry is stamped with the dataset epoch it was computed
//!   under and dropped on lookup once a mutation advances the epoch
//!   (`serve.cache_invalidated`), so no stale answer or rank hint is
//!   ever served;
//! - **live mutations** — `insert` and `delete` requests flow through
//!   the same admission queue, take the engine's write lock, go through
//!   the write-ahead log when one is attached, and advance the dataset
//!   epoch; queries always see a full pre- or post-mutation snapshot,
//!   never a torn state;
//! - **service metrics** — `serve.accepted`, `serve.shed`,
//!   `serve.cache_hits`, `serve.cache_misses`, the `serve.queue_depth`
//!   admission histogram and the `serve.request_ns` end-to-end latency
//!   histogram, all in the engine's own [`wnsk_obs::Registry`] so the
//!   prometheus export shows service and engine activity side by side.
//!
//! - **live observability** — an optional HTTP admin endpoint
//!   ([`admin`]) serving `/metrics` (Prometheus text), `/healthz`
//!   (queue, epoch, WAL, rolling 1s/10s/60s latency and shed/error
//!   windows, SLO burn), `/slow` (the slow-query log with sampled
//!   solver traces) and `/flight` (the bounded flight-recorder ring) —
//!   see [`observe`]. All of it is observation only: the determinism
//!   suite pins that a server with the recorder and windows enabled
//!   produces bit-identical work metrics and penalties to one without.
//!
//! [`loadgen`] is the matching closed-loop client: zipfian query mix,
//! target QPS, latency histogram report.

pub mod admin;
pub mod cache;
pub mod client;
pub mod engine;
pub mod loadgen;
pub mod observe;
pub mod protocol;
pub mod server;

pub use admin::http_get;
pub use cache::AnswerCache;
pub use client::Client;
pub use engine::{ResolvedRequest, ServeEngine};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use observe::ObservabilityConfig;
pub use server::{Server, ServerConfig, ServerHandle};
