//! A minimal blocking NDJSON client, shared by tests, the bench gate
//! and `wnsk loadgen`.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use wnsk_obs::JsonValue;

/// One connection to a serving endpoint; requests are answered in
/// order, one line per call.
pub struct Client {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            pending: Vec::new(),
        })
    }

    /// Sends one request line and blocks for its response line.
    pub fn call(&mut self, line: &str) -> std::io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.pending.drain(..=pos).collect();
                return Ok(String::from_utf8_lossy(&line).trim().to_string());
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.pending.extend_from_slice(&chunk[..n]);
        }
    }

    /// [`Client::call`] plus JSON parsing of the response.
    pub fn call_json(&mut self, line: &str) -> std::io::Result<JsonValue> {
        let response = self.call(line)?;
        JsonValue::parse(&response)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Builds a `topk` request line.
pub fn topk_line(at: (f64, f64), keywords: &[&str], k: usize, alpha: f64) -> String {
    JsonValue::object(vec![
        ("type", "topk".into()),
        ("at", JsonValue::Array(vec![at.0.into(), at.1.into()])),
        (
            "keywords",
            JsonValue::Array(keywords.iter().map(|&w| w.into()).collect()),
        ),
        ("k", k.into()),
        ("alpha", alpha.into()),
    ])
    .render()
}

/// Builds a `whynot` request line. `deadline_ms` of `None` means no
/// deadline.
pub fn whynot_line(
    at: (f64, f64),
    keywords: &[&str],
    k: usize,
    alpha: f64,
    missing: &[u32],
    lambda: f64,
    deadline_ms: Option<f64>,
) -> String {
    let mut fields = vec![
        ("type", JsonValue::from("whynot")),
        ("at", JsonValue::Array(vec![at.0.into(), at.1.into()])),
        (
            "keywords",
            JsonValue::Array(keywords.iter().map(|&w| w.into()).collect()),
        ),
        ("k", k.into()),
        ("alpha", alpha.into()),
        (
            "missing",
            JsonValue::Array(missing.iter().map(|&m| JsonValue::from(m as u64)).collect()),
        ),
        ("lambda", lambda.into()),
    ];
    if let Some(ms) = deadline_ms {
        fields.push(("deadline_ms", ms.into()));
    }
    JsonValue::object(fields).render()
}

/// Builds an `insert` mutation line.
pub fn insert_line(at: (f64, f64), keywords: &[&str]) -> String {
    JsonValue::object(vec![
        ("type", "insert".into()),
        ("at", JsonValue::Array(vec![at.0.into(), at.1.into()])),
        (
            "keywords",
            JsonValue::Array(keywords.iter().map(|&w| w.into()).collect()),
        ),
    ])
    .render()
}

/// Builds a `delete` mutation line.
pub fn delete_line(id: u32) -> String {
    JsonValue::object(vec![
        ("type", "delete".into()),
        ("id", JsonValue::from(id as u64)),
    ])
    .render()
}

/// Builds a `stats` request line.
pub fn stats_line() -> String {
    JsonValue::object(vec![("type", "stats".into())]).render()
}
