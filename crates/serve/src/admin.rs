//! The admin endpoint: a minimal std-only HTTP/1.1 listener exposing
//! the serving layer's observability plane.
//!
//! Routes (all `GET`, all `Connection: close`):
//!
//! * `/metrics` — Prometheus text exposition of a live registry
//!   snapshot (`wnsk_obs::prometheus_text`), exactly what
//!   `--metrics-export` writes;
//! * `/healthz` — JSON: queue depth and capacity, dataset epoch, WAL
//!   attachment, lifetime counters, rolling 1s/10s/60s latency and
//!   shed/error windows, SLO burn;
//! * `/slow` — JSON slow-query log (original wire line, response,
//!   timings, sampled solver trace);
//! * `/flight` — JSON flight-recorder ring (last N requests).
//!
//! The listener is deliberately serial — one connection at a time, one
//! request per connection — because it serves an operator or a
//! scraper, not traffic. It shares nothing with the query path beyond
//! read-only access to the observability state, so a stuck scrape can
//! never stall a request.

use crate::server::Shared;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The running admin listener; joined on server shutdown.
pub(crate) struct AdminHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl AdminHandle {
    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the listener and joins it.
    pub(crate) fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// A route table: maps a path to `(content type, body)`, `None` → 404.
pub(crate) type Router = Arc<dyn Fn(&str) -> Option<(&'static str, String)> + Send + Sync>;

/// Binds `addr` and starts the admin accept loop over `shared`.
pub(crate) fn start(addr: &str, shared: Arc<Shared>) -> io::Result<AdminHandle> {
    start_with(addr, Arc::new(move |path| shared.admin_route(path)))
}

/// Binds `addr` and starts an accept loop over an arbitrary route
/// table — the coordinator uses this for its per-shard admin planes
/// (`/metrics` from the shard registry, `/healthz` from the shard
/// status row).
pub(crate) fn start_with(addr: &str, route: Router) -> io::Result<AdminHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if flag.load(Ordering::Acquire) {
                return;
            }
            let Ok(stream) = stream else { continue };
            handle_connection(stream, &route);
        }
    });
    Ok(AdminHandle {
        addr,
        shutdown,
        thread: Some(thread),
    })
}

/// Serves one request on one connection, then closes it.
fn handle_connection(mut stream: TcpStream, route: &Router) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    // Read until the end of the request head (GET requests carry no
    // body); cap the head so a misbehaving client cannot grow memory.
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 16 * 1024 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, reason, content_type, body) = if method != "GET" {
        (
            405,
            "Method Not Allowed",
            "application/json",
            r#"{"ok":false,"error":"only GET is supported"}"#.to_string(),
        )
    } else {
        // Ignore any query string: routes take no parameters.
        let path = target.split('?').next().unwrap_or(target);
        match route(path) {
            Some((content_type, body)) => (200, "OK", content_type, body),
            None => (
                404,
                "Not Found",
                "application/json",
                r#"{"ok":false,"error":"not found"}"#.to_string(),
            ),
        }
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// A one-shot HTTP GET against an admin endpoint: returns the status
/// code and the response body. This is the client side the CLI
/// (`wnsk top`, scrape checks) and the test suite use — std-only, one
/// request per connection, matching the listener above.
pub fn http_get(addr: &str, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: wnsk-admin\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text.split_once("\r\n\r\n").ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "response has no header/body split",
        )
    })?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    Ok((status, body.to_string()))
}
