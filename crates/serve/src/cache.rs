//! The cross-query answer cache.
//!
//! Keys are *canonicalized* queries: the location is snapped to a
//! `2⁻²⁰`-grid cell, the keyword set is the (already sorted) term-id
//! list, and `α` is keyed by its exact bit pattern. Canonicalization
//! happens at admission — the engine only ever executes the snapped
//! query — so a cache hit and a fresh computation are answering the
//! *same* query and stay bit-identical. Dyadic coordinates with at most
//! 20 fractional bits (0.5, 0.25, 0.625, …) are fixed points of the
//! snap.
//!
//! Two structures share the promoted [`wnsk_storage::cache::Lru`]:
//!
//! * **top-k lists** keyed `(cell, doc, k, α)` — repeated top-k queries
//!   are served without touching the indexes;
//! * **rank lists / ranks** keyed `(cell, doc, α)` plus the missing set —
//!   why-not refinement needs `R(M, q₀)` (the denominator of the
//!   paper's Eqn 4 penalty) before anything else. A cached top-k list
//!   that contains every missing object yields the *exact* rank:
//!   `rank_of_set` counts strict dominators + 1, and every strict
//!   dominator of an in-list object is itself in the list. Completed
//!   why-not answers also deposit their computed rank directly.

use std::sync::{Arc, Mutex};
use wnsk_geo::Point;
use wnsk_index::{ObjectId, SpatialKeywordQuery};
use wnsk_storage::cache::Lru;

/// Location grid resolution: `2²⁰` cells per unit axis.
const CELL_SCALE: f64 = (1u64 << 20) as f64;

/// Snaps a coordinate to its cell's lower-left corner. Exact for dyadic
/// rationals with ≤ 20 fractional bits.
fn snap(v: f64) -> f64 {
    (v * CELL_SCALE).floor() / CELL_SCALE
}

/// The grid cell of a point, as integer cell coordinates.
fn cell_of(p: Point) -> (i64, i64) {
    (
        (p.x * CELL_SCALE).floor() as i64,
        (p.y * CELL_SCALE).floor() as i64,
    )
}

/// Canonicalizes a query location: the returned point is the cell's
/// lower-left corner, shared by every query landing in the same cell.
pub fn canonical_point(p: Point) -> Point {
    Point::new(snap(p.x), snap(p.y))
}

/// Canonicalizes a whole query (location only — `doc` term ids are
/// already sorted and `k`/`α` are exact).
pub fn canonical_query(q: &SpatialKeywordQuery) -> SpatialKeywordQuery {
    SpatialKeywordQuery {
        loc: canonical_point(q.loc),
        ..q.clone()
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct TopkKey {
    cell: (i64, i64),
    doc: Vec<u32>,
    k: usize,
    alpha: u64,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct RankListKey {
    cell: (i64, i64),
    doc: Vec<u32>,
    alpha: u64,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct RankKey {
    cell: (i64, i64),
    doc: Vec<u32>,
    alpha: u64,
    missing: Vec<u32>,
}

fn doc_ids(q: &SpatialKeywordQuery) -> Vec<u32> {
    q.doc.iter().map(|t| t.0).collect()
}

fn topk_key(q: &SpatialKeywordQuery) -> TopkKey {
    TopkKey {
        cell: cell_of(q.loc),
        doc: doc_ids(q),
        k: q.k,
        alpha: q.alpha.to_bits(),
    }
}

fn rank_list_key(q: &SpatialKeywordQuery) -> RankListKey {
    RankListKey {
        cell: cell_of(q.loc),
        doc: doc_ids(q),
        alpha: q.alpha.to_bits(),
    }
}

fn rank_key(q: &SpatialKeywordQuery, missing: &[ObjectId]) -> RankKey {
    let mut ids: Vec<u32> = missing.iter().map(|m| m.0).collect();
    ids.sort_unstable();
    RankKey {
        cell: cell_of(q.loc),
        doc: doc_ids(q),
        alpha: q.alpha.to_bits(),
        missing: ids,
    }
}

/// A ranked result list, shared between the cache and in-flight
/// responses.
pub type RankList = Arc<Vec<(ObjectId, f64)>>;

/// The serving layer's cross-query cache (top-k answers + initial-rank
/// reuse for why-not refinement).
pub struct AnswerCache {
    topk: Mutex<Lru<TopkKey, RankList>>,
    rank_lists: Mutex<Lru<RankListKey, RankList>>,
    ranks: Mutex<Lru<RankKey, usize>>,
}

impl AnswerCache {
    /// Creates a cache holding at most `entries` items per structure.
    pub fn new(entries: usize) -> Self {
        let entries = entries.max(1);
        AnswerCache {
            topk: Mutex::new(Lru::new(entries)),
            rank_lists: Mutex::new(Lru::new(entries)),
            ranks: Mutex::new(Lru::new(entries)),
        }
    }

    /// Looks up a top-k answer for an (already canonical) query.
    pub fn get_topk(&self, q: &SpatialKeywordQuery) -> Option<RankList> {
        self.topk.lock().unwrap().get(&topk_key(q)).cloned()
    }

    /// Stores a freshly computed top-k list; the deepest list per
    /// `(cell, doc, α)` is also retained for rank derivation.
    pub fn put_topk(&self, q: &SpatialKeywordQuery, list: RankList) {
        self.topk
            .lock()
            .unwrap()
            .insert(topk_key(q), Arc::clone(&list));
        let key = rank_list_key(q);
        let mut lists = self.rank_lists.lock().unwrap();
        let deeper = match lists.peek(&key) {
            Some(existing) => list.len() > existing.len(),
            None => true,
        };
        if deeper {
            lists.insert(key, list);
        }
    }

    /// The exact initial rank `R(M, q)` for a canonical query, when the
    /// cache can prove it: either a previous why-not computation
    /// deposited it, or a cached rank list contains every missing object
    /// (then `rank = 1 + |{e : score(e) > min missing score}|`, which is
    /// precisely what the solver's scan counts — ties are not
    /// dominators).
    pub fn get_initial_rank(&self, q: &SpatialKeywordQuery, missing: &[ObjectId]) -> Option<usize> {
        if missing.is_empty() {
            return None;
        }
        if let Some(&rank) = self.ranks.lock().unwrap().get(&rank_key(q, missing)) {
            return Some(rank);
        }
        let list = self
            .rank_lists
            .lock()
            .unwrap()
            .get(&rank_list_key(q))
            .cloned()?;
        let mut min_score = f64::INFINITY;
        for m in missing {
            let score = list.iter().find(|(id, _)| id == m).map(|&(_, s)| s)?;
            if score < min_score {
                min_score = score;
            }
        }
        Some(1 + list.iter().filter(|&&(_, s)| s > min_score).count())
    }

    /// Deposits a rank computed by the solver so repeated why-not
    /// questions skip the initial-rank phase.
    pub fn put_initial_rank(&self, q: &SpatialKeywordQuery, missing: &[ObjectId], rank: usize) {
        self.ranks
            .lock()
            .unwrap()
            .insert(rank_key(q, missing), rank);
    }

    /// Resident entries, summed over all structures (for stats
    /// responses).
    pub fn len(&self) -> usize {
        self.topk.lock().unwrap().len()
            + self.rank_lists.lock().unwrap().len()
            + self.ranks.lock().unwrap().len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnsk_text::KeywordSet;

    fn q(x: f64, y: f64, ids: &[u32], k: usize, alpha: f64) -> SpatialKeywordQuery {
        SpatialKeywordQuery::new(
            Point::new(x, y),
            KeywordSet::from_ids(ids.iter().copied()),
            k,
            alpha,
        )
    }

    #[test]
    fn dyadic_points_are_snap_fixed_points() {
        for v in [0.0, 0.5, 0.25, 0.625, 0.9990234375] {
            assert_eq!(snap(v).to_bits(), v.to_bits(), "snap moved {v}");
        }
        // A non-dyadic coordinate moves by less than one cell.
        assert!((snap(0.3) - 0.3).abs() < 1.0 / CELL_SCALE);
        assert!(snap(0.3) <= 0.3);
    }

    #[test]
    fn same_cell_same_key_different_cell_different_key() {
        let cache = AnswerCache::new(4);
        let a = q(0.5, 0.5, &[1, 2], 3, 0.5);
        let list: RankList = Arc::new(vec![(ObjectId(7), 0.9)]);
        cache.put_topk(&a, Arc::clone(&list));
        // Same canonical cell (0.5 + half a cell is a different point but
        // canonicalization happens before the cache — lookups use the
        // snapped query).
        assert!(cache.get_topk(&a).is_some());
        let b = q(0.75, 0.5, &[1, 2], 3, 0.5);
        assert!(cache.get_topk(&b).is_none());
        let different_k = q(0.5, 0.5, &[1, 2], 4, 0.5);
        assert!(cache.get_topk(&different_k).is_none());
        let different_alpha = q(0.5, 0.5, &[1, 2], 3, 0.25);
        assert!(cache.get_topk(&different_alpha).is_none());
    }

    #[test]
    fn rank_derivation_counts_strict_dominators_only() {
        let cache = AnswerCache::new(4);
        let query = q(0.5, 0.5, &[1], 2, 0.5);
        // Scores: 0.9, 0.8, 0.8, 0.7 — the 0.8-scored pair are ties.
        let list: RankList = Arc::new(vec![
            (ObjectId(1), 0.9),
            (ObjectId(2), 0.8),
            (ObjectId(3), 0.8),
            (ObjectId(4), 0.7),
        ]);
        cache.put_topk(
            &SpatialKeywordQuery {
                k: 4,
                ..query.clone()
            },
            list,
        );
        // Missing {3}: only object 1 scores strictly above 0.8 → rank 2.
        assert_eq!(cache.get_initial_rank(&query, &[ObjectId(3)]), Some(2));
        // Missing {4}: three strict dominators → rank 4.
        assert_eq!(cache.get_initial_rank(&query, &[ObjectId(4)]), Some(4));
        // Missing {2, 4}: min score 0.7 → same as {4}.
        assert_eq!(
            cache.get_initial_rank(&query, &[ObjectId(2), ObjectId(4)]),
            Some(4)
        );
        // An object absent from the list cannot be ranked.
        assert_eq!(cache.get_initial_rank(&query, &[ObjectId(9)]), None);
    }

    #[test]
    fn deeper_lists_replace_shallower_ones() {
        let cache = AnswerCache::new(4);
        let base = q(0.5, 0.5, &[1], 2, 0.5);
        let shallow: RankList = Arc::new(vec![(ObjectId(1), 0.9), (ObjectId(2), 0.8)]);
        let deep: RankList = Arc::new(vec![
            (ObjectId(1), 0.9),
            (ObjectId(2), 0.8),
            (ObjectId(3), 0.6),
        ]);
        cache.put_topk(
            &SpatialKeywordQuery {
                k: 3,
                ..base.clone()
            },
            deep,
        );
        cache.put_topk(
            &SpatialKeywordQuery {
                k: 2,
                ..base.clone()
            },
            shallow,
        );
        // The deep list must survive the shallower insert.
        assert_eq!(cache.get_initial_rank(&base, &[ObjectId(3)]), Some(3));
    }

    #[test]
    fn deposited_ranks_are_preferred_and_keyed_by_missing_set() {
        let cache = AnswerCache::new(4);
        let query = q(0.25, 0.25, &[1, 2], 5, 0.5);
        cache.put_initial_rank(&query, &[ObjectId(8), ObjectId(3)], 11);
        // Missing-set order must not matter.
        assert_eq!(
            cache.get_initial_rank(&query, &[ObjectId(3), ObjectId(8)]),
            Some(11)
        );
        assert_eq!(cache.get_initial_rank(&query, &[ObjectId(3)]), None);
        assert!(!cache.is_empty());
    }
}
