//! The cross-query answer cache.
//!
//! Keys are *canonicalized* queries: the location is snapped to a
//! `2⁻²⁰`-grid cell, the keyword set is the (already sorted) term-id
//! list, and `α` is keyed by its exact bit pattern. Canonicalization
//! happens at admission — the engine only ever executes the snapped
//! query — so a cache hit and a fresh computation are answering the
//! *same* query and stay bit-identical. Dyadic coordinates with at most
//! 20 fractional bits (0.5, 0.25, 0.625, …) are fixed points of the
//! snap.
//!
//! Two structures share the promoted [`wnsk_storage::cache::Lru`]:
//!
//! * **top-k lists** keyed `(cell, doc, k, α)` — repeated top-k queries
//!   are served without touching the indexes;
//! * **rank lists / ranks** keyed `(cell, doc, α)` plus the missing set —
//!   why-not refinement needs `R(M, q₀)` (the denominator of the
//!   paper's Eqn 4 penalty) before anything else. A cached top-k list
//!   that contains every missing object yields the *exact* rank:
//!   `rank_of_set` counts strict dominators + 1, and every strict
//!   dominator of an in-list object is itself in the list. Completed
//!   why-not answers also deposit their computed rank directly.
//!
//! # Epoch-based invalidation
//!
//! Every entry is stamped with the **dataset epoch** it was computed
//! under ([`wnsk_core::WhyNotEngine::epoch`], bumped once per applied
//! mutation). Lookups pass the current epoch; an entry stamped with any
//! other epoch is *stale* — a mutation may have changed the answer — so
//! the lookup drops it, counts it into `serve.cache_invalidated`, and
//! reports a miss. Invalidation is lazy: mutations never sweep the
//! cache, they just advance the epoch the serving layer reads under the
//! same lock that executed the query, so a cached answer and the epoch
//! it is checked against can never be torn.

use std::sync::{Arc, Mutex};
use wnsk_geo::Point;
use wnsk_index::{ObjectId, SpatialKeywordQuery};
use wnsk_obs::Counter;
use wnsk_storage::cache::Lru;

/// Location grid resolution: `2²⁰` cells per unit axis.
const CELL_SCALE: f64 = (1u64 << 20) as f64;

/// Snaps a coordinate to its cell's lower-left corner. Exact for dyadic
/// rationals with ≤ 20 fractional bits.
fn snap(v: f64) -> f64 {
    (v * CELL_SCALE).floor() / CELL_SCALE
}

/// The grid cell of a point, as integer cell coordinates.
fn cell_of(p: Point) -> (i64, i64) {
    (
        (p.x * CELL_SCALE).floor() as i64,
        (p.y * CELL_SCALE).floor() as i64,
    )
}

/// Canonicalizes a query location: the returned point is the cell's
/// lower-left corner, shared by every query landing in the same cell.
pub fn canonical_point(p: Point) -> Point {
    Point::new(snap(p.x), snap(p.y))
}

/// Canonicalizes a whole query (location only — `doc` term ids are
/// already sorted and `k`/`α` are exact).
pub fn canonical_query(q: &SpatialKeywordQuery) -> SpatialKeywordQuery {
    SpatialKeywordQuery {
        loc: canonical_point(q.loc),
        ..q.clone()
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct TopkKey {
    cell: (i64, i64),
    doc: Vec<u32>,
    k: usize,
    alpha: u64,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct RankListKey {
    cell: (i64, i64),
    doc: Vec<u32>,
    alpha: u64,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct RankKey {
    cell: (i64, i64),
    doc: Vec<u32>,
    alpha: u64,
    missing: Vec<u32>,
}

fn doc_ids(q: &SpatialKeywordQuery) -> Vec<u32> {
    q.doc.iter().map(|t| t.0).collect()
}

fn topk_key(q: &SpatialKeywordQuery) -> TopkKey {
    TopkKey {
        cell: cell_of(q.loc),
        doc: doc_ids(q),
        k: q.k,
        alpha: q.alpha.to_bits(),
    }
}

fn rank_list_key(q: &SpatialKeywordQuery) -> RankListKey {
    RankListKey {
        cell: cell_of(q.loc),
        doc: doc_ids(q),
        alpha: q.alpha.to_bits(),
    }
}

fn rank_key(q: &SpatialKeywordQuery, missing: &[ObjectId]) -> RankKey {
    let mut ids: Vec<u32> = missing.iter().map(|m| m.0).collect();
    ids.sort_unstable();
    RankKey {
        cell: cell_of(q.loc),
        doc: doc_ids(q),
        alpha: q.alpha.to_bits(),
        missing: ids,
    }
}

/// A ranked result list, shared between the cache and in-flight
/// responses.
pub type RankList = Arc<Vec<(ObjectId, f64)>>;

/// A cached value plus the dataset epoch it was computed under.
struct Stamped<V> {
    epoch: u64,
    value: V,
}

/// The serving layer's cross-query cache (top-k answers + initial-rank
/// reuse for why-not refinement), with epoch-stamped entries.
pub struct AnswerCache {
    topk: Mutex<Lru<TopkKey, Stamped<RankList>>>,
    rank_lists: Mutex<Lru<RankListKey, Stamped<RankList>>>,
    ranks: Mutex<Lru<RankKey, Stamped<usize>>>,
    invalidated: Counter,
}

/// Epoch-checked lookup over one LRU structure: a resident entry from
/// any *other* epoch is removed, counted, and reported as absent.
fn get_fresh<K: Eq + std::hash::Hash + Clone, V: Clone>(
    lru: &mut Lru<K, Stamped<V>>,
    key: &K,
    epoch: u64,
    invalidated: &Counter,
) -> Option<V> {
    match lru.get(key) {
        Some(entry) if entry.epoch == epoch => Some(entry.value.clone()),
        Some(_) => {
            lru.remove(key);
            invalidated.inc();
            None
        }
        None => None,
    }
}

impl AnswerCache {
    /// Creates a cache holding at most `entries` items per structure.
    /// The invalidation counter starts detached; call
    /// [`AnswerCache::with_invalidated_counter`] to publish it.
    pub fn new(entries: usize) -> Self {
        let entries = entries.max(1);
        AnswerCache {
            topk: Mutex::new(Lru::new(entries)),
            rank_lists: Mutex::new(Lru::new(entries)),
            ranks: Mutex::new(Lru::new(entries)),
            invalidated: Counter::new(),
        }
    }

    /// Routes stale-entry drops into `counter` (the serving layer passes
    /// its registered `serve.cache_invalidated` handle).
    pub fn with_invalidated_counter(mut self, counter: Counter) -> Self {
        self.invalidated = counter;
        self
    }

    /// Entries dropped so far because their epoch was superseded.
    pub fn invalidated(&self) -> u64 {
        self.invalidated.get()
    }

    /// Looks up a top-k answer for an (already canonical) query,
    /// honouring only entries computed under `epoch`.
    pub fn get_topk(&self, q: &SpatialKeywordQuery, epoch: u64) -> Option<RankList> {
        get_fresh(
            &mut self.topk.lock().unwrap(),
            &topk_key(q),
            epoch,
            &self.invalidated,
        )
    }

    /// Stores a freshly computed top-k list stamped with the epoch it
    /// was computed under; the deepest current-epoch list per
    /// `(cell, doc, α)` is also retained for rank derivation.
    pub fn put_topk(&self, q: &SpatialKeywordQuery, list: RankList, epoch: u64) {
        self.topk.lock().unwrap().insert(
            topk_key(q),
            Stamped {
                epoch,
                value: Arc::clone(&list),
            },
        );
        let key = rank_list_key(q);
        let mut lists = self.rank_lists.lock().unwrap();
        let deeper = match lists.peek(&key) {
            // A list from another epoch is dead weight regardless of
            // depth — always replace it.
            Some(existing) if existing.epoch == epoch => list.len() > existing.value.len(),
            Some(_) => {
                self.invalidated.inc();
                true
            }
            None => true,
        };
        if deeper {
            lists.insert(key, Stamped { epoch, value: list });
        }
    }

    /// The exact initial rank `R(M, q)` for a canonical query at `epoch`,
    /// when the cache can prove it: either a previous why-not computation
    /// under the same epoch deposited it, or a same-epoch cached rank
    /// list contains every missing object (then
    /// `rank = 1 + |{e : score(e) > min missing score}|`, which is
    /// precisely what the solver's scan counts — ties are not
    /// dominators).
    pub fn get_initial_rank(
        &self,
        q: &SpatialKeywordQuery,
        missing: &[ObjectId],
        epoch: u64,
    ) -> Option<usize> {
        if missing.is_empty() {
            return None;
        }
        if let Some(rank) = get_fresh(
            &mut self.ranks.lock().unwrap(),
            &rank_key(q, missing),
            epoch,
            &self.invalidated,
        ) {
            return Some(rank);
        }
        let list = get_fresh(
            &mut self.rank_lists.lock().unwrap(),
            &rank_list_key(q),
            epoch,
            &self.invalidated,
        )?;
        let mut min_score = f64::INFINITY;
        for m in missing {
            let score = list.iter().find(|(id, _)| id == m).map(|&(_, s)| s)?;
            if score < min_score {
                min_score = score;
            }
        }
        Some(1 + list.iter().filter(|&&(_, s)| s > min_score).count())
    }

    /// Deposits a rank computed by the solver under `epoch` so repeated
    /// why-not questions skip the initial-rank phase.
    pub fn put_initial_rank(
        &self,
        q: &SpatialKeywordQuery,
        missing: &[ObjectId],
        rank: usize,
        epoch: u64,
    ) {
        self.ranks
            .lock()
            .unwrap()
            .insert(rank_key(q, missing), Stamped { epoch, value: rank });
    }

    /// Resident entries, summed over all structures (for stats
    /// responses). Counts stale entries not yet swept by a lookup.
    pub fn len(&self) -> usize {
        self.topk.lock().unwrap().len()
            + self.rank_lists.lock().unwrap().len()
            + self.ranks.lock().unwrap().len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnsk_text::KeywordSet;

    fn q(x: f64, y: f64, ids: &[u32], k: usize, alpha: f64) -> SpatialKeywordQuery {
        SpatialKeywordQuery::new(
            Point::new(x, y),
            KeywordSet::from_ids(ids.iter().copied()),
            k,
            alpha,
        )
    }

    #[test]
    fn dyadic_points_are_snap_fixed_points() {
        for v in [0.0, 0.5, 0.25, 0.625, 0.9990234375] {
            assert_eq!(snap(v).to_bits(), v.to_bits(), "snap moved {v}");
        }
        // A non-dyadic coordinate moves by less than one cell.
        assert!((snap(0.3) - 0.3).abs() < 1.0 / CELL_SCALE);
        assert!(snap(0.3) <= 0.3);
    }

    #[test]
    fn same_cell_same_key_different_cell_different_key() {
        let cache = AnswerCache::new(4);
        let a = q(0.5, 0.5, &[1, 2], 3, 0.5);
        let list: RankList = Arc::new(vec![(ObjectId(7), 0.9)]);
        cache.put_topk(&a, Arc::clone(&list), 0);
        // Same canonical cell (0.5 + half a cell is a different point but
        // canonicalization happens before the cache — lookups use the
        // snapped query).
        assert!(cache.get_topk(&a, 0).is_some());
        let b = q(0.75, 0.5, &[1, 2], 3, 0.5);
        assert!(cache.get_topk(&b, 0).is_none());
        let different_k = q(0.5, 0.5, &[1, 2], 4, 0.5);
        assert!(cache.get_topk(&different_k, 0).is_none());
        let different_alpha = q(0.5, 0.5, &[1, 2], 3, 0.25);
        assert!(cache.get_topk(&different_alpha, 0).is_none());
    }

    #[test]
    fn epoch_mismatch_invalidates_on_lookup() {
        let cache = AnswerCache::new(4);
        let query = q(0.5, 0.5, &[1, 2], 3, 0.5);
        let list: RankList = Arc::new(vec![(ObjectId(7), 0.9)]);
        cache.put_topk(&query, Arc::clone(&list), 3);
        assert!(cache.get_topk(&query, 3).is_some());
        assert_eq!(cache.invalidated(), 0);
        // The dataset epoch moved: the entry is dropped, counted, and the
        // lookup reports a miss — even for the original epoch afterwards.
        assert!(cache.get_topk(&query, 4).is_none());
        assert_eq!(cache.invalidated(), 1);
        assert!(cache.get_topk(&query, 3).is_none());
        assert_eq!(cache.invalidated(), 1);

        cache.put_initial_rank(&query, &[ObjectId(9)], 12, 3);
        assert_eq!(cache.get_initial_rank(&query, &[ObjectId(9)], 3), Some(12));
        // Epoch 4 sweeps both the deposited rank and the rank list the
        // earlier put_topk retained.
        assert_eq!(cache.get_initial_rank(&query, &[ObjectId(9)], 4), None);
        assert_eq!(cache.invalidated(), 3);
    }

    #[test]
    fn stale_rank_list_never_yields_a_rank() {
        let cache = AnswerCache::new(4);
        let query = q(0.5, 0.5, &[1], 2, 0.5);
        let list: RankList = Arc::new(vec![(ObjectId(1), 0.9), (ObjectId(2), 0.8)]);
        cache.put_topk(&query, list, 0);
        assert_eq!(
            cache.get_initial_rank(&query, &[ObjectId(2)], 0),
            Some(2),
            "fresh rank list derives the rank"
        );
        // After a mutation, the derivation path must refuse.
        assert_eq!(cache.get_initial_rank(&query, &[ObjectId(2)], 1), None);
    }

    #[test]
    fn put_topk_replaces_stale_rank_lists_regardless_of_depth() {
        let cache = AnswerCache::new(4);
        let base = q(0.5, 0.5, &[1], 2, 0.5);
        let deep: RankList = Arc::new(vec![
            (ObjectId(1), 0.9),
            (ObjectId(2), 0.8),
            (ObjectId(3), 0.6),
        ]);
        let shallow: RankList = Arc::new(vec![(ObjectId(4), 0.7)]);
        cache.put_topk(
            &SpatialKeywordQuery {
                k: 3,
                ..base.clone()
            },
            deep,
            0,
        );
        // At epoch 1, even a shallower fresh list must displace the deep
        // stale one.
        cache.put_topk(
            &SpatialKeywordQuery {
                k: 1,
                ..base.clone()
            },
            shallow,
            1,
        );
        assert_eq!(cache.get_initial_rank(&base, &[ObjectId(4)], 1), Some(1));
        assert_eq!(cache.get_initial_rank(&base, &[ObjectId(3)], 1), None);
    }

    #[test]
    fn rank_derivation_counts_strict_dominators_only() {
        let cache = AnswerCache::new(4);
        let query = q(0.5, 0.5, &[1], 2, 0.5);
        // Scores: 0.9, 0.8, 0.8, 0.7 — the 0.8-scored pair are ties.
        let list: RankList = Arc::new(vec![
            (ObjectId(1), 0.9),
            (ObjectId(2), 0.8),
            (ObjectId(3), 0.8),
            (ObjectId(4), 0.7),
        ]);
        cache.put_topk(
            &SpatialKeywordQuery {
                k: 4,
                ..query.clone()
            },
            list,
            0,
        );
        // Missing {3}: only object 1 scores strictly above 0.8 → rank 2.
        assert_eq!(cache.get_initial_rank(&query, &[ObjectId(3)], 0), Some(2));
        // Missing {4}: three strict dominators → rank 4.
        assert_eq!(cache.get_initial_rank(&query, &[ObjectId(4)], 0), Some(4));
        // Missing {2, 4}: min score 0.7 → same as {4}.
        assert_eq!(
            cache.get_initial_rank(&query, &[ObjectId(2), ObjectId(4)], 0),
            Some(4)
        );
        // An object absent from the list cannot be ranked.
        assert_eq!(cache.get_initial_rank(&query, &[ObjectId(9)], 0), None);
    }

    #[test]
    fn deeper_lists_replace_shallower_ones() {
        let cache = AnswerCache::new(4);
        let base = q(0.5, 0.5, &[1], 2, 0.5);
        let shallow: RankList = Arc::new(vec![(ObjectId(1), 0.9), (ObjectId(2), 0.8)]);
        let deep: RankList = Arc::new(vec![
            (ObjectId(1), 0.9),
            (ObjectId(2), 0.8),
            (ObjectId(3), 0.6),
        ]);
        cache.put_topk(
            &SpatialKeywordQuery {
                k: 3,
                ..base.clone()
            },
            deep,
            0,
        );
        cache.put_topk(
            &SpatialKeywordQuery {
                k: 2,
                ..base.clone()
            },
            shallow,
            0,
        );
        // The deep list must survive the shallower same-epoch insert.
        assert_eq!(cache.get_initial_rank(&base, &[ObjectId(3)], 0), Some(3));
    }

    #[test]
    fn deposited_ranks_are_preferred_and_keyed_by_missing_set() {
        let cache = AnswerCache::new(4);
        let query = q(0.25, 0.25, &[1, 2], 5, 0.5);
        cache.put_initial_rank(&query, &[ObjectId(8), ObjectId(3)], 11, 0);
        // Missing-set order must not matter.
        assert_eq!(
            cache.get_initial_rank(&query, &[ObjectId(3), ObjectId(8)], 0),
            Some(11)
        );
        assert_eq!(cache.get_initial_rank(&query, &[ObjectId(3)], 0), None);
        assert!(!cache.is_empty());
    }
}
