//! The warm serving engine: one [`WhyNotEngine`] (indexes built once at
//! startup over the storage buffer pool) plus the cross-query
//! [`AnswerCache`] and the `serve.*` metric handles, all publishing
//! into the engine's own registry so `--metrics-export` shows service
//! counters next to buffer-pool and tree-traversal activity.

use crate::cache::{canonical_point, AnswerCache, RankList};
use crate::protocol::{self, WireKeyword, WireRequest};
use std::sync::Arc;
use std::time::Duration;
use wnsk_core::{KcrOptions, QueryBudget, WhyNotEngine, WhyNotQuestion};
use wnsk_index::{ObjectId, SpatialKeywordQuery};
use wnsk_obs::{names, Counter, Hist, Registry};
use wnsk_text::KeywordSet;

/// A request resolved against the dataset: keywords interned, ids
/// validated, location canonicalized. Only resolved requests enter the
/// admission queue, so malformed input never consumes a queue slot.
#[derive(Clone, Debug)]
pub enum ResolvedRequest {
    /// Plain top-k over the canonical query.
    TopK(SpatialKeywordQuery),
    /// Why-not refinement.
    WhyNot {
        /// The question, with the canonical original query.
        question: WhyNotQuestion,
        /// Optional per-request page-read cap.
        max_page_reads: Option<u64>,
    },
    /// Service counters.
    Stats,
}

/// The serving layer's engine: warm indexes + answer cache + metrics.
pub struct ServeEngine {
    engine: WhyNotEngine,
    cache: AnswerCache,
    accepted: Counter,
    shed: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    queue_depth: Hist,
    request_ns: Hist,
}

impl ServeEngine {
    /// Wraps a built engine with a cache of `cache_entries` entries per
    /// structure and registers the `serve.*` metrics into the engine's
    /// registry.
    pub fn new(engine: WhyNotEngine, cache_entries: usize) -> Self {
        let registry = engine.registry();
        let accepted = registry.counter(names::SERVE_ACCEPTED);
        let shed = registry.counter(names::SERVE_SHED);
        let cache_hits = registry.counter(names::SERVE_CACHE_HITS);
        let cache_misses = registry.counter(names::SERVE_CACHE_MISSES);
        let queue_depth = registry.hist(names::SERVE_QUEUE_DEPTH);
        let request_ns = registry.hist(names::SERVE_REQUEST_NS);
        ServeEngine {
            engine,
            cache: AnswerCache::new(cache_entries),
            accepted,
            shed,
            cache_hits,
            cache_misses,
            queue_depth,
            request_ns,
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &WhyNotEngine {
        &self.engine
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &Registry {
        self.engine.registry()
    }

    /// The answer cache.
    pub fn cache(&self) -> &AnswerCache {
        &self.cache
    }

    /// Records an admission (`serve.accepted` + the queue-depth
    /// histogram sampled at admission time).
    pub fn note_accepted(&self, queue_len: usize) {
        self.accepted.inc();
        self.queue_depth.record(queue_len as u64);
    }

    /// Records a load-shed (`serve.shed`).
    pub fn note_shed(&self) {
        self.shed.inc();
    }

    /// Records one completed request's end-to-end latency.
    pub fn note_request_done(&self, elapsed: Duration) {
        self.request_ns.record_duration(elapsed);
    }

    /// Resolves a wire request: interns keywords through the attached
    /// vocabulary (raw term ids pass through), validates missing ids
    /// against the dataset, and canonicalizes the location so cache
    /// keys and execution agree.
    pub fn resolve(&self, wire: &WireRequest) -> Result<ResolvedRequest, String> {
        match wire {
            WireRequest::Stats => Ok(ResolvedRequest::Stats),
            WireRequest::TopK { query } => Ok(ResolvedRequest::TopK(self.resolve_query(query)?)),
            WireRequest::WhyNot {
                query,
                missing,
                lambda,
                max_page_reads,
            } => {
                let query = self.resolve_query(query)?;
                let n = self.engine.dataset().len();
                let mut ids = Vec::with_capacity(missing.len());
                for &m in missing {
                    if (m as usize) >= n {
                        return Err(format!("unknown object id {m} (dataset has {n} objects)"));
                    }
                    ids.push(ObjectId(m));
                }
                Ok(ResolvedRequest::WhyNot {
                    question: WhyNotQuestion::new(query, ids, *lambda),
                    max_page_reads: *max_page_reads,
                })
            }
        }
    }

    fn resolve_query(
        &self,
        query: &crate::protocol::WireQuery,
    ) -> Result<SpatialKeywordQuery, String> {
        let mut ids = Vec::with_capacity(query.keywords.len());
        for kw in &query.keywords {
            match kw {
                WireKeyword::Id(id) => ids.push(*id),
                WireKeyword::Name(name) => match self.engine.vocabulary() {
                    Some(vocab) => match vocab.get(name) {
                        Some(t) => ids.push(t.0),
                        None => return Err(format!("unknown keyword '{name}'")),
                    },
                    None => {
                        return Err(format!(
                            "no vocabulary attached; send keyword '{name}' as a numeric term id"
                        ))
                    }
                },
            }
        }
        Ok(SpatialKeywordQuery::new(
            canonical_point(wnsk_geo::Point::new(query.at.0, query.at.1)),
            KeywordSet::from_ids(ids),
            query.k,
            query.alpha,
        ))
    }

    /// Executes a resolved request and renders the response line.
    /// `remaining` is what is left of the request's deadline once a
    /// worker picks it up; why-not queries run under a [`QueryBudget`]
    /// built from it, so a mid-query expiry degrades the answer through
    /// the existing ladder instead of blowing the latency envelope.
    pub fn execute(&self, request: &ResolvedRequest, remaining: Option<Duration>) -> String {
        match request {
            ResolvedRequest::Stats => self.execute_stats(),
            ResolvedRequest::TopK(query) => self.execute_topk(query),
            ResolvedRequest::WhyNot {
                question,
                max_page_reads,
            } => self.execute_whynot(question, *max_page_reads, remaining),
        }
    }

    fn execute_topk(&self, query: &SpatialKeywordQuery) -> String {
        if let Some(list) = self.cache.get_topk(query) {
            self.cache_hits.inc();
            return render_topk_list(&list, true);
        }
        match self.engine.top_k(query) {
            Ok(results) => {
                self.cache_misses.inc();
                let list: RankList = Arc::new(results);
                self.cache.put_topk(query, Arc::clone(&list));
                render_topk_list(&list, false)
            }
            Err(e) => protocol::render_error(&e.to_string()),
        }
    }

    fn execute_whynot(
        &self,
        question: &WhyNotQuestion,
        max_page_reads: Option<u64>,
        remaining: Option<Duration>,
    ) -> String {
        let hint = self
            .cache
            .get_initial_rank(&question.query, &question.missing);
        let mut budget = QueryBudget::unlimited();
        if let Some(d) = remaining {
            budget = budget.with_deadline(d);
        }
        if let Some(max) = max_page_reads {
            budget = budget.with_max_page_reads(max);
        }
        let opts = KcrOptions {
            budget,
            initial_rank_hint: hint,
            ..KcrOptions::default()
        };
        match self.engine.answer_kcr(question, opts) {
            Ok(answer) => {
                if hint.is_some() {
                    self.cache_hits.inc();
                } else {
                    self.cache_misses.inc();
                    let rank = answer.stats.initial_rank as usize;
                    if rank > question.query.k {
                        self.cache
                            .put_initial_rank(&question.query, &question.missing, rank);
                    }
                }
                answer.stats.record_into(self.engine.registry());
                let keywords: Vec<String> = answer
                    .refined
                    .doc
                    .iter()
                    .map(|t| match self.engine.vocabulary().and_then(|v| v.name(t)) {
                        Some(name) => name.to_string(),
                        None => format!("t{}", t.0),
                    })
                    .collect();
                protocol::render_whynot(
                    &keywords,
                    answer.refined.k,
                    answer.refined.rank,
                    answer.refined.edit_distance,
                    answer.refined.penalty,
                    &answer.quality.to_string(),
                    answer.stats.initial_rank,
                    hint.is_some(),
                )
            }
            Err(e) => protocol::render_error(&e.to_string()),
        }
    }

    fn execute_stats(&self) -> String {
        let snapshot = self.registry().snapshot();
        let counters: Vec<(&str, u64)> = [
            names::SERVE_ACCEPTED,
            names::SERVE_SHED,
            names::SERVE_CACHE_HITS,
            names::SERVE_CACHE_MISSES,
        ]
        .iter()
        .map(|&n| (n, snapshot.counter(n)))
        .collect();
        protocol::render_stats(self.engine.dataset().len(), self.cache.len(), &counters)
    }
}

fn render_topk_list(list: &[(ObjectId, f64)], cached: bool) -> String {
    let raw: Vec<(u32, f64)> = list.iter().map(|&(id, s)| (id.0, s)).collect();
    protocol::render_topk(&raw, cached)
}
