//! The warm serving engine: one [`WhyNotEngine`] (indexes built once at
//! startup over the storage buffer pool) plus the cross-query
//! [`AnswerCache`] and the `serve.*` metric handles, all publishing
//! into the engine's own registry so `--metrics-export` shows service
//! counters next to buffer-pool and tree-traversal activity.
//!
//! # Mutability and epochs
//!
//! The engine sits behind an [`RwLock`]: queries run under the read
//! lock, mutations (`insert` / `delete` requests) take the write lock,
//! funnel through [`WhyNotEngine::ingest`] (and its write-ahead log
//! when one is attached), and advance the dataset epoch. A query reads
//! the epoch under the *same* read lock it executes under, so an
//! answer and the epoch stamped on it can never be torn: concurrent
//! readers see either the full pre-mutation or the full post-mutation
//! snapshot. Cache entries stamped with a superseded epoch are dropped
//! lazily at lookup (`serve.cache_invalidated`) — no stale top-k list
//! or initial-rank hint is ever served across a mutation.

use crate::cache::{canonical_point, AnswerCache, RankList};
use crate::observe::{Observability, ObservabilityConfig, Observed};
use crate::protocol::{self, WireKeyword, WireRequest};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};
use wnsk_core::{KcrOptions, Mutation, QueryBudget, WhyNotAnswer, WhyNotEngine, WhyNotQuestion};
use wnsk_index::{Dataset, ObjectId, SpatialKeywordQuery};
use wnsk_obs::{names, Counter, FlightRecorder, Hist, JsonValue, Registry};
use wnsk_shard::{Coordinator, ShardError};
use wnsk_text::{KeywordSet, Vocabulary};

/// A request resolved against the dataset: keywords interned, ids
/// validated, location canonicalized. Only resolved requests enter the
/// admission queue, so malformed input never consumes a queue slot.
#[derive(Clone, Debug)]
pub enum ResolvedRequest {
    /// Plain top-k over the canonical query.
    TopK(SpatialKeywordQuery),
    /// Why-not refinement.
    WhyNot {
        /// The question, with the canonical original query.
        question: WhyNotQuestion,
        /// Optional per-request page-read cap.
        max_page_reads: Option<u64>,
    },
    /// A mutation, applied under the engine's write lock.
    Ingest(Mutation),
    /// Service counters.
    Stats,
}

/// What answers requests: one engine, or a scatter-gather coordinator
/// over many. Sharded mode answers queries bit-identically to single
/// mode (the shard determinism suite pins that); the differences are
/// operational — routed mutations, per-shard WALs and admission, no
/// rank-hint reuse (the coordinator's exact solver has no budget
/// ladder, so a hint could only change wall time, never bits).
enum Backend {
    Single(RwLock<WhyNotEngine>),
    Sharded(RwLock<Coordinator>),
}

/// The serving layer's engine: warm indexes + answer cache + metrics.
pub struct ServeEngine {
    backend: Backend,
    registry: Registry,
    cache: AnswerCache,
    accepted: Counter,
    shed: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    queue_depth: Hist,
    request_ns: Hist,
    /// The observability plane (flight recorder, slow-query log,
    /// rolling windows); `None` unless enabled at construction.
    obs: Option<Observability>,
}

impl ServeEngine {
    /// Wraps a built engine with a cache of `cache_entries` entries per
    /// structure and registers the `serve.*` metrics into the engine's
    /// registry.
    pub fn new(engine: WhyNotEngine, cache_entries: usize) -> Self {
        let registry = engine.registry().clone();
        Self::with_backend(
            Backend::Single(RwLock::new(engine)),
            registry,
            cache_entries,
        )
    }

    /// Wraps a sharded coordinator instead of a single engine. The
    /// `serve.*` handles register into the *coordinator's* registry
    /// (which already carries `shard.*`), so one scrape covers both
    /// planes and `wnsk top --check` stays satisfied.
    pub fn new_sharded(coordinator: Coordinator, cache_entries: usize) -> Self {
        let registry = coordinator.registry().clone();
        Self::with_backend(
            Backend::Sharded(RwLock::new(coordinator)),
            registry,
            cache_entries,
        )
    }

    fn with_backend(backend: Backend, registry: Registry, cache_entries: usize) -> Self {
        let accepted = registry.counter(names::SERVE_ACCEPTED);
        let shed = registry.counter(names::SERVE_SHED);
        let cache_hits = registry.counter(names::SERVE_CACHE_HITS);
        let cache_misses = registry.counter(names::SERVE_CACHE_MISSES);
        let invalidated = registry.counter(names::SERVE_CACHE_INVALIDATED);
        let queue_depth = registry.hist(names::SERVE_QUEUE_DEPTH);
        let request_ns = registry.hist(names::SERVE_REQUEST_NS);
        ServeEngine {
            backend,
            registry,
            cache: AnswerCache::new(cache_entries).with_invalidated_counter(invalidated),
            accepted,
            shed,
            cache_hits,
            cache_misses,
            queue_depth,
            request_ns,
            obs: None,
        }
    }

    /// Enables the observability plane: the flight recorder, slow-query
    /// log, rolling SLO windows, and the sampled solver tracer. All of
    /// it is observation only — a server with this enabled produces
    /// bit-identical work metrics and penalties to one without (the
    /// determinism suite pins that).
    pub fn with_observability(mut self, config: ObservabilityConfig) -> Self {
        let obs = Observability::new(config, &self.registry);
        // Attach the (initially disabled) tracer so the slow-query log
        // can sample an explain tree when a request wins the trace slot.
        // The coordinator's scattered solver has no tracer hook — the
        // rest of the plane (recorder, windows, slow log) still applies.
        if let Backend::Single(engine) = &mut self.backend {
            engine
                .get_mut()
                .expect("engine lock poisoned")
                .set_tracer(obs.tracer.clone());
        }
        self.obs = Some(obs);
        self
    }

    /// Whether the observability plane is enabled.
    pub fn observability_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// The flight recorder, when observability is enabled (tests pin
    /// its memory bound through this).
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.obs.as_ref().map(|o| &o.recorder)
    }

    /// Read access to the wrapped engine. Queries executed by the
    /// serving layer itself take this lock internally; hold the guard
    /// only for inspection, never across a call back into the server.
    ///
    /// # Panics
    ///
    /// In sharded mode there is no single engine — use
    /// [`ServeEngine::coordinator`] instead.
    pub fn engine(&self) -> std::sync::RwLockReadGuard<'_, WhyNotEngine> {
        match &self.backend {
            Backend::Single(engine) => engine.read().unwrap(),
            Backend::Sharded(_) => {
                panic!("ServeEngine::engine() called on a sharded backend; use coordinator()")
            }
        }
    }

    /// Read access to the coordinator, in sharded mode.
    ///
    /// # Panics
    ///
    /// In single-engine mode — use [`ServeEngine::engine`] instead.
    pub fn coordinator(&self) -> std::sync::RwLockReadGuard<'_, Coordinator> {
        match &self.backend {
            Backend::Sharded(coord) => coord.read().unwrap(),
            Backend::Single(_) => {
                panic!("ServeEngine::coordinator() called on a single-engine backend")
            }
        }
    }

    /// Whether this engine scatters across shards.
    pub fn is_sharded(&self) -> bool {
        matches!(self.backend, Backend::Sharded(_))
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The answer cache.
    pub fn cache(&self) -> &AnswerCache {
        &self.cache
    }

    /// Records an admission (`serve.accepted` + the queue-depth
    /// histogram sampled at admission time).
    pub fn note_accepted(&self, queue_len: usize) {
        self.accepted.inc();
        self.queue_depth.record(queue_len as u64);
    }

    /// Records the queue depth a worker observed right after taking a
    /// job off the queue. `serve.queue_depth` samples at *both* ends of
    /// a request's queue residency — admission and dequeue — so the
    /// histogram reflects drain-side backlog too, not just arrival
    /// bursts (`docs/METRICS.md` documents both sample points).
    pub fn note_dequeued(&self, queue_len: usize) {
        self.queue_depth.record(queue_len as u64);
    }

    /// Records a load-shed (`serve.shed`).
    pub fn note_shed(&self) {
        self.shed.inc();
    }

    /// Records one completed request's end-to-end latency.
    pub fn note_request_done(&self, elapsed: Duration) {
        self.request_ns.record_duration(elapsed);
    }

    /// Resolves a wire request: interns keywords through the attached
    /// vocabulary (raw term ids pass through), validates missing ids
    /// against the live dataset, and canonicalizes the location so
    /// cache keys and execution agree.
    pub fn resolve(&self, wire: &WireRequest) -> Result<ResolvedRequest, String> {
        match &self.backend {
            Backend::Single(engine) => {
                let engine = engine.read().unwrap();
                resolve_against(engine.dataset(), engine.vocabulary(), wire)
            }
            Backend::Sharded(coord) => {
                let coord = coord.read().unwrap();
                resolve_against(coord.dataset(), coord.vocabulary(), wire)
            }
        }
    }

    /// Executes a resolved request and renders the response line.
    /// `remaining` is what is left of the request's deadline once a
    /// worker picks it up; why-not queries run under a [`QueryBudget`]
    /// built from it, so a mid-query expiry degrades the answer through
    /// the existing ladder instead of blowing the latency envelope.
    pub fn execute(&self, request: &ResolvedRequest, remaining: Option<Duration>) -> String {
        match request {
            ResolvedRequest::Stats => self.execute_stats(),
            ResolvedRequest::TopK(query) => self.execute_topk(query),
            ResolvedRequest::WhyNot {
                question,
                max_page_reads,
            } => self.execute_whynot(question, *max_page_reads, remaining),
            ResolvedRequest::Ingest(mutation) => self.execute_ingest(mutation),
        }
    }

    /// [`ServeEngine::execute`] wrapped in the observability plane: the
    /// worker-side entry point. Handles the queued-past-deadline shed,
    /// times the execution, samples a solver trace when the request
    /// wins the trace slot, and files the outcome into the flight
    /// recorder, rolling windows, SLO burn counter and (when slow
    /// enough) the slow-query log. With observability disabled this is
    /// behaviorally identical to the pre-observability worker loop.
    ///
    /// `line` is the original wire line (kept verbatim in slow-log
    /// entries so they can be replayed); `waited` is the time the job
    /// spent queued, measured at dequeue.
    pub fn execute_observed(
        &self,
        request: &ResolvedRequest,
        line: &str,
        deadline: Option<Duration>,
        waited: Duration,
    ) -> String {
        let expired = matches!(deadline, Some(d) if waited >= d);
        let Some(obs) = &self.obs else {
            if expired {
                self.note_shed();
                return protocol::render_shed("deadline exceeded");
            }
            return self.execute(request, deadline.map(|d| d.saturating_sub(waited)));
        };
        let (kind, key) = flight_identity(request);
        if expired {
            self.note_shed();
            let response = protocol::render_shed("deadline exceeded");
            obs.observe(Observed {
                kind,
                key: &key,
                line,
                response: &response,
                deadline,
                queue_wait: waited,
                execute: Duration::ZERO,
                trace: None,
            });
            return response;
        }
        let tracing = obs.begin_trace();
        let started = Instant::now();
        let response = self.execute(request, deadline.map(|d| d.saturating_sub(waited)));
        let execute = started.elapsed();
        let trace = tracing.then(|| obs.end_trace());
        obs.observe(Observed {
            kind,
            key: &key,
            line,
            response: &response,
            deadline,
            queue_wait: waited,
            execute,
            trace,
        });
        response
    }

    /// Files a request shed at admission (queue full) into the flight
    /// recorder and windows; a no-op with observability disabled. The
    /// caller has already called [`ServeEngine::note_shed`] and
    /// rendered `response`.
    pub fn observe_admission_shed(
        &self,
        request: &ResolvedRequest,
        line: &str,
        response: &str,
        deadline: Option<Duration>,
    ) {
        let Some(obs) = &self.obs else { return };
        let (kind, key) = flight_identity(request);
        obs.observe(Observed {
            kind,
            key: &key,
            line,
            response,
            deadline,
            queue_wait: Duration::ZERO,
            execute: Duration::ZERO,
            trace: None,
        });
    }

    fn execute_topk(&self, query: &SpatialKeywordQuery) -> String {
        // The epoch is read under the same lock the query runs under, so
        // the cached list is exactly the answer a fresh computation at
        // this epoch would produce. Sharded answers carry the
        // coordinator's global epoch, so a routed mutation to any shard
        // invalidates exactly like a single-engine mutation would.
        match &self.backend {
            Backend::Single(engine) => {
                let engine = engine.read().unwrap();
                let epoch = engine.epoch();
                if let Some(list) = self.cache.get_topk(query, epoch) {
                    self.cache_hits.inc();
                    return render_topk_list(&list, true);
                }
                match engine.top_k(query) {
                    Ok(results) => {
                        self.cache_misses.inc();
                        let list: RankList = Arc::new(results);
                        self.cache.put_topk(query, Arc::clone(&list), epoch);
                        render_topk_list(&list, false)
                    }
                    Err(e) => protocol::render_error(&e.to_string()),
                }
            }
            Backend::Sharded(coord) => {
                let coord = coord.read().unwrap();
                let epoch = coord.epoch();
                if let Some(list) = self.cache.get_topk(query, epoch) {
                    self.cache_hits.inc();
                    return render_topk_list(&list, true);
                }
                match coord.top_k(query) {
                    Ok(results) => {
                        self.cache_misses.inc();
                        let list: RankList = Arc::new(results);
                        self.cache.put_topk(query, Arc::clone(&list), epoch);
                        render_topk_list(&list, false)
                    }
                    Err(e) => protocol::render_error(&e.to_string()),
                }
            }
        }
    }

    fn execute_whynot(
        &self,
        question: &WhyNotQuestion,
        max_page_reads: Option<u64>,
        remaining: Option<Duration>,
    ) -> String {
        let engine = match &self.backend {
            Backend::Single(engine) => engine,
            Backend::Sharded(coord) => {
                // Every sharded why-not is a fresh exact computation.
                self.cache_misses.inc();
                return self.execute_whynot_sharded(&coord.read().unwrap(), question);
            }
        };
        let engine = engine.read().unwrap();
        let epoch = engine.epoch();
        // A delete can race past `resolve`'s liveness check while the
        // request is queued; the solver would chase an object that no
        // longer exists, so re-check under the execution lock.
        for m in &question.missing {
            if !engine.dataset().is_live(*m) {
                return protocol::render_error(&format!("object id {} has been deleted", m.0));
            }
        }
        let hint = self
            .cache
            .get_initial_rank(&question.query, &question.missing, epoch);
        let mut budget = QueryBudget::unlimited();
        if let Some(d) = remaining {
            budget = budget.with_deadline(d);
        }
        if let Some(max) = max_page_reads {
            budget = budget.with_max_page_reads(max);
        }
        let opts = KcrOptions {
            budget,
            initial_rank_hint: hint,
            ..KcrOptions::default()
        };
        match engine.answer_kcr(question, opts) {
            Ok(answer) => {
                if hint.is_some() {
                    self.cache_hits.inc();
                } else {
                    self.cache_misses.inc();
                    let rank = answer.stats.initial_rank as usize;
                    if rank > question.query.k {
                        self.cache.put_initial_rank(
                            &question.query,
                            &question.missing,
                            rank,
                            epoch,
                        );
                    }
                }
                answer.stats.record_into(&self.registry);
                if let Some(obs) = &self.obs {
                    // Per-task solver latencies feed the task window by
                    // folding the answer's snapshot — observation only,
                    // after the answer is fully computed.
                    obs.win_task.merge_snapshot(&answer.stats.task_latency);
                }
                render_whynot_answer(engine.vocabulary(), &answer, hint.is_some())
            }
            Err(e) => protocol::render_error(&e.to_string()),
        }
    }

    /// Sharded why-not: the coordinator's scatter-gather solver is
    /// always exact (no budget ladder, no approximation rungs), so the
    /// deadline and the cached rank hint are deliberately ignored —
    /// either could only change wall time, and the hint would skip the
    /// scattered initial-rank phase whose count the answer reports.
    fn execute_whynot_sharded(&self, coord: &Coordinator, question: &WhyNotQuestion) -> String {
        for m in &question.missing {
            if !coord.dataset().is_live(*m) {
                return protocol::render_error(&format!("object id {} has been deleted", m.0));
            }
        }
        match coord.whynot(question) {
            Ok(answer) => {
                answer.stats.record_into(&self.registry);
                if let Some(obs) = &self.obs {
                    obs.win_task.merge_snapshot(&answer.stats.task_latency);
                }
                render_whynot_answer(coord.vocabulary(), &answer, false)
            }
            Err(e) => protocol::render_error(&e.to_string()),
        }
    }

    /// Executes a query request with the answer cache bypassed entirely —
    /// neither consulted nor populated, no rank hint. This is the
    /// fresh-computation baseline `wnsk serve --replay` holds every
    /// (possibly cached) response to: after stripping the `cached` /
    /// `rank_reused` markers the two renderings must be bit-identical.
    /// Mutations and stats have no uncached variant (`None`).
    pub fn execute_uncached(&self, request: &ResolvedRequest) -> Option<String> {
        match request {
            ResolvedRequest::TopK(query) => {
                let results = match &self.backend {
                    Backend::Single(engine) => engine
                        .read()
                        .unwrap()
                        .top_k(query)
                        .map_err(|e| e.to_string()),
                    Backend::Sharded(coord) => coord
                        .read()
                        .unwrap()
                        .top_k(query)
                        .map_err(|e| e.to_string()),
                };
                Some(match results {
                    Ok(results) => render_topk_list(&results, false),
                    Err(e) => protocol::render_error(&e),
                })
            }
            ResolvedRequest::WhyNot {
                question,
                max_page_reads,
            } => {
                let engine = match &self.backend {
                    Backend::Single(engine) => engine,
                    Backend::Sharded(coord) => {
                        // The sharded path never consults the cache, so
                        // its uncached baseline is the path itself.
                        return Some(self.execute_whynot_sharded(&coord.read().unwrap(), question));
                    }
                };
                let engine = engine.read().unwrap();
                for m in &question.missing {
                    if !engine.dataset().is_live(*m) {
                        return Some(protocol::render_error(&format!(
                            "object id {} has been deleted",
                            m.0
                        )));
                    }
                }
                let mut budget = QueryBudget::unlimited();
                if let Some(max) = max_page_reads {
                    budget = budget.with_max_page_reads(*max);
                }
                let opts = KcrOptions {
                    budget,
                    ..KcrOptions::default()
                };
                Some(match engine.answer_kcr(question, opts) {
                    Ok(answer) => render_whynot_answer(engine.vocabulary(), &answer, false),
                    Err(e) => protocol::render_error(&e.to_string()),
                })
            }
            ResolvedRequest::Ingest(_) | ResolvedRequest::Stats => None,
        }
    }

    fn execute_ingest(&self, mutation: &Mutation) -> String {
        let kind = match mutation {
            Mutation::Insert { .. } => "insert",
            Mutation::Remove { .. } => "delete",
            Mutation::UpdateDoc { .. } => "update",
        };
        match &self.backend {
            Backend::Single(engine) => {
                let mut engine = engine.write().unwrap();
                match engine.ingest(mutation) {
                    Ok(id) => protocol::render_ingest(kind, id.0, engine.epoch()),
                    Err(e) => protocol::render_error(&e.to_string()),
                }
            }
            Backend::Sharded(coord) => {
                let mut coord = coord.write().unwrap();
                match coord.ingest(mutation) {
                    Ok(id) => protocol::render_ingest(kind, id.0, coord.epoch()),
                    Err(ShardError::Shed { shard }) => {
                        self.note_shed();
                        protocol::render_shed(&format!("shard {shard} admission over capacity"))
                    }
                    Err(e) => protocol::render_error(&e.to_string()),
                }
            }
        }
    }

    fn execute_stats(&self) -> String {
        let objects = match &self.backend {
            Backend::Single(engine) => engine.read().unwrap().dataset().live_len(),
            Backend::Sharded(coord) => coord.read().unwrap().dataset().live_len(),
        };
        let snapshot = self.registry.snapshot();
        let counters: Vec<(&str, u64)> = [
            names::SERVE_ACCEPTED,
            names::SERVE_SHED,
            names::SERVE_CACHE_HITS,
            names::SERVE_CACHE_MISSES,
            names::SERVE_CACHE_INVALIDATED,
            names::INGEST_APPLIED,
        ]
        .iter()
        .map(|&n| (n, snapshot.counter(n)))
        .collect();
        protocol::render_stats(objects, self.cache.len(), &counters)
    }

    /// The `GET /healthz` document: live queue state, dataset epoch,
    /// WAL attachment, lifetime counters, and — when observability is
    /// enabled — the rolling 1s/10s/60s windows and SLO burn. The
    /// caller supplies the queue numbers because the admission queue
    /// lives in the server, not the engine.
    pub fn healthz_json(&self, queue_len: usize, queue_capacity: usize) -> String {
        let (epoch, wal, shards) = match &self.backend {
            Backend::Single(engine) => {
                let engine = engine.read().unwrap();
                (engine.epoch(), engine.wal().is_some(), None)
            }
            Backend::Sharded(coord) => {
                let coord = coord.read().unwrap();
                (
                    coord.epoch(),
                    coord.wal_attached(),
                    Some(coord.statuses_json()),
                )
            }
        };
        let mut fields = vec![
            ("ok", JsonValue::Bool(true)),
            ("queue_depth", JsonValue::from(queue_len)),
            ("queue_capacity", JsonValue::from(queue_capacity)),
            ("epoch", JsonValue::from(epoch)),
            ("wal_attached", JsonValue::Bool(wal)),
            ("cache_entries", JsonValue::from(self.cache.len())),
            ("accepted", JsonValue::from(self.accepted.get())),
            ("shed", JsonValue::from(self.shed.get())),
            ("cache_hits", JsonValue::from(self.cache_hits.get())),
            ("cache_misses", JsonValue::from(self.cache_misses.get())),
        ];
        if let Some(shards) = shards {
            fields.push(("shards", shards));
        }
        if let Some(obs) = &self.obs {
            fields.push(("slo_violations", JsonValue::from(obs.slo_violations())));
            fields.push(("slow_logged", JsonValue::from(obs.slow_logged())));
            fields.push((
                "recorder",
                JsonValue::object(vec![
                    ("capacity", JsonValue::from(obs.recorder.capacity())),
                    ("recorded", JsonValue::from(obs.recorder.recorded())),
                    ("memory_bytes", JsonValue::from(obs.recorder.memory_bytes())),
                ]),
            ));
            fields.push(("windows", obs.windows_json()));
        }
        JsonValue::object(fields).render()
    }

    /// The `GET /slow` document (empty when observability is off).
    pub fn slow_json(&self) -> String {
        match &self.obs {
            Some(obs) => obs.slow_json().render(),
            None => JsonValue::object(vec![
                ("entries", JsonValue::Array(Vec::new())),
                ("logged", JsonValue::from(0u64)),
            ])
            .render(),
        }
    }

    /// The `GET /flight` document (empty when observability is off).
    pub fn flight_json(&self) -> String {
        match &self.obs {
            Some(obs) => obs.recorder.to_json().render(),
            None => JsonValue::object(vec![
                ("capacity", JsonValue::from(0u64)),
                ("recorded", JsonValue::from(0u64)),
                ("entries", JsonValue::Array(Vec::new())),
            ])
            .render(),
        }
    }
}

/// The flight recorder's identity for a resolved request: a short kind
/// tag plus the canonical key of the executed (snapped) query — the
/// same canonical dimensions the answer cache keys on, rendered as a
/// string. Non-cacheable kinds key as empty.
fn flight_identity(request: &ResolvedRequest) -> (&'static str, String) {
    fn query_key(q: &SpatialKeywordQuery) -> String {
        let terms: Vec<String> = q.doc.iter().map(|t| t.0.to_string()).collect();
        format!(
            "{},{}|{}|k={}|a={}",
            q.loc.x,
            q.loc.y,
            terms.join("+"),
            q.k,
            q.alpha
        )
    }
    match request {
        ResolvedRequest::TopK(q) => ("topk", query_key(q)),
        ResolvedRequest::WhyNot { question, .. } => {
            let missing: Vec<String> = question.missing.iter().map(|m| m.0.to_string()).collect();
            (
                "whynot",
                format!(
                    "{}|m={}|l={}",
                    query_key(&question.query),
                    missing.join("+"),
                    question.lambda
                ),
            )
        }
        ResolvedRequest::Ingest(Mutation::Insert { .. }) => ("insert", String::new()),
        ResolvedRequest::Ingest(Mutation::Remove { .. }) => ("delete", String::new()),
        ResolvedRequest::Ingest(Mutation::UpdateDoc { .. }) => ("update", String::new()),
        ResolvedRequest::Stats => ("stats", String::new()),
    }
}

/// Resolves a wire request against a dataset + optional vocabulary —
/// the backend-neutral core of [`ServeEngine::resolve`] (single mode
/// hands in the engine's dataset, sharded mode the coordinator's
/// mirror; both validate against exactly the same live set).
fn resolve_against(
    dataset: &Dataset,
    vocab: Option<&Vocabulary>,
    wire: &WireRequest,
) -> Result<ResolvedRequest, String> {
    match wire {
        WireRequest::Stats => Ok(ResolvedRequest::Stats),
        WireRequest::TopK { query } => Ok(ResolvedRequest::TopK(resolve_query(vocab, query)?)),
        WireRequest::WhyNot {
            query,
            missing,
            lambda,
            max_page_reads,
        } => {
            let query = resolve_query(vocab, query)?;
            let n = dataset.len();
            let mut ids = Vec::with_capacity(missing.len());
            for &m in missing {
                if (m as usize) >= n {
                    return Err(format!("unknown object id {m} (dataset has {n} objects)"));
                }
                if !dataset.is_live(ObjectId(m)) {
                    return Err(format!("object id {m} has been deleted"));
                }
                ids.push(ObjectId(m));
            }
            Ok(ResolvedRequest::WhyNot {
                question: WhyNotQuestion::new(query, ids, *lambda),
                max_page_reads: *max_page_reads,
            })
        }
        WireRequest::Insert { at, keywords } => {
            let doc = resolve_keywords(vocab, keywords)?;
            Ok(ResolvedRequest::Ingest(Mutation::Insert {
                loc: wnsk_geo::Point::new(at.0, at.1),
                doc,
            }))
        }
        WireRequest::Delete { id } => {
            let n = dataset.len();
            if (*id as usize) >= n {
                return Err(format!("unknown object id {id} (dataset has {n} objects)"));
            }
            if !dataset.is_live(ObjectId(*id)) {
                return Err(format!("object id {id} has already been deleted"));
            }
            Ok(ResolvedRequest::Ingest(Mutation::Remove {
                id: ObjectId(*id),
            }))
        }
    }
}

fn resolve_keywords(
    vocab: Option<&Vocabulary>,
    keywords: &[WireKeyword],
) -> Result<KeywordSet, String> {
    let mut ids = Vec::with_capacity(keywords.len());
    for kw in keywords {
        match kw {
            WireKeyword::Id(id) => ids.push(*id),
            WireKeyword::Name(name) => match vocab {
                Some(vocab) => match vocab.get(name) {
                    Some(t) => ids.push(t.0),
                    None => return Err(format!("unknown keyword '{name}'")),
                },
                None => {
                    return Err(format!(
                        "no vocabulary attached; send keyword '{name}' as a numeric term id"
                    ))
                }
            },
        }
    }
    Ok(KeywordSet::from_ids(ids))
}

fn resolve_query(
    vocab: Option<&Vocabulary>,
    query: &crate::protocol::WireQuery,
) -> Result<SpatialKeywordQuery, String> {
    Ok(SpatialKeywordQuery::new(
        canonical_point(wnsk_geo::Point::new(query.at.0, query.at.1)),
        resolve_keywords(vocab, &query.keywords)?,
        query.k,
        query.alpha,
    ))
}

fn render_whynot_answer(
    vocab: Option<&Vocabulary>,
    answer: &WhyNotAnswer,
    rank_reused: bool,
) -> String {
    let keywords: Vec<String> = answer
        .refined
        .doc
        .iter()
        .map(|t| match vocab.and_then(|v| v.name(t)) {
            Some(name) => name.to_string(),
            None => format!("t{}", t.0),
        })
        .collect();
    protocol::render_whynot(
        &keywords,
        answer.refined.k,
        answer.refined.rank,
        answer.refined.edit_distance,
        answer.refined.penalty,
        &answer.quality.to_string(),
        answer.stats.initial_rank,
        rank_reused,
    )
}

fn render_topk_list(list: &[(ObjectId, f64)], cached: bool) -> String {
    let raw: Vec<(u32, f64)> = list.iter().map(|&(id, s)| (id.0, s)).collect();
    protocol::render_topk(&raw, cached)
}
