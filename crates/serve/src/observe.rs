//! Serving-layer observability: the flight recorder, the slow-query
//! log, and the rolling SLO windows behind the admin endpoint.
//!
//! Everything in this module is *observation*: it records what the
//! query path did, strictly after the response line has been rendered,
//! and never feeds a wall-clock reading back into an execution
//! decision. The determinism suite pins that property — a server with
//! the recorder and windows enabled must produce bit-identical work
//! metrics and penalties to one without.
//!
//! The pieces:
//!
//! * a [`FlightRecorder`] ring of the last N completed requests
//!   (`GET /flight`), memory-bounded by construction;
//! * a slow-query log — the last few requests whose end-to-end latency
//!   crossed [`ObservabilityConfig::slow_threshold`], each carrying its
//!   original wire line, the rendered response, and (when the request
//!   won the one-at-a-time trace slot) the solver's `TraceReport`
//!   rendered as JSON (`GET /slow`);
//! * [`RollingWindow`]s over request latency and the ok/shed/error
//!   outcome streams, so `/healthz` reports p50/p99 and shed/error
//!   rates over the last 1s/10s/60s instead of since boot;
//! * the `serve.slo.violations` burn counter, incremented once per
//!   request that finished past [`ObservabilityConfig::slo`].
//!
//! Tracing is sampled through a single CAS slot: at most one in-flight
//! request has the engine tracer enabled, so a captured trace is
//! mostly that request's own spans (a concurrent worker may interleave
//! a few — the report is a debugging aid, not an accounting record).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use wnsk_obs::{
    names, Counter, FlightEntry, FlightRecorder, JsonValue, Registry, RollingWindow, TraceReport,
    Tracer,
};

/// Knobs for the serving layer's observability plane, mirrored by
/// `wnsk serve`'s flags.
#[derive(Clone, Debug)]
pub struct ObservabilityConfig {
    /// Flight-recorder ring capacity (entries). Memory is bounded by
    /// `capacity × size_of::<FlightEntry>()` regardless of traffic.
    pub flight_capacity: usize,
    /// Slow-query log capacity (entries; oldest evicted first).
    pub slow_capacity: usize,
    /// End-to-end latency at or above which a request is filed into the
    /// slow-query log. Zero files everything (useful in tests).
    pub slow_threshold: Duration,
    /// The latency SLO: requests finishing later than this increment
    /// `serve.slo.violations`.
    pub slo: Duration,
    /// Rolling-window tick interval.
    pub window_interval: Duration,
    /// Closed ticks retained per window; `interval × slots` bounds the
    /// longest answerable span (the default covers the 60 s view).
    pub window_slots: usize,
}

impl Default for ObservabilityConfig {
    fn default() -> Self {
        ObservabilityConfig {
            flight_capacity: 256,
            slow_capacity: 32,
            slow_threshold: Duration::from_millis(100),
            slo: Duration::from_millis(250),
            window_interval: Duration::from_secs(1),
            window_slots: 60,
        }
    }
}

/// One slow request: enough to inspect it (`GET /slow`) and to replay
/// it bit-identically through `ServeEngine::execute_uncached`.
pub(crate) struct SlowEntry {
    /// Flight-recorder sequence number at filing time.
    seq: u64,
    kind: String,
    key: String,
    /// The original wire line, replayable as-is.
    line: String,
    /// The rendered response the client received.
    response: String,
    quality: String,
    queue_wait_ns: u64,
    execute_ns: u64,
    total_ns: u64,
    /// The solver trace, when this request held the trace slot.
    trace: Option<JsonValue>,
}

impl SlowEntry {
    fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("seq", JsonValue::from(self.seq)),
            ("kind", self.kind.as_str().into()),
            ("key", self.key.as_str().into()),
            ("line", self.line.as_str().into()),
            ("response", self.response.as_str().into()),
            ("quality", self.quality.as_str().into()),
            ("queue_wait_ns", JsonValue::from(self.queue_wait_ns)),
            ("execute_ns", JsonValue::from(self.execute_ns)),
            ("total_ns", JsonValue::from(self.total_ns)),
        ];
        if let Some(trace) = &self.trace {
            fields.push(("trace", trace.clone()));
        }
        JsonValue::object(fields)
    }
}

/// Everything observed about one completed (or shed) request, handed
/// to [`Observability::observe`] after the response is rendered.
pub(crate) struct Observed<'a> {
    pub kind: &'a str,
    pub key: &'a str,
    pub line: &'a str,
    pub response: &'a str,
    pub deadline: Option<Duration>,
    pub queue_wait: Duration,
    pub execute: Duration,
    pub trace: Option<TraceReport>,
}

/// The serving engine's observability plane. Constructed once per
/// server; all state is either lock-free or behind short-lived mutexes
/// off the response path.
pub(crate) struct Observability {
    pub(crate) recorder: FlightRecorder,
    slow: Mutex<VecDeque<SlowEntry>>,
    slow_capacity: usize,
    slow_threshold: Duration,
    slo: Duration,
    slo_violations: Counter,
    slow_count: Counter,
    /// Request latency; shares its histogram with the registry's
    /// `serve.window.request_ns`, so the cumulative export and the
    /// windows are views of the same samples.
    win_request: RollingWindow,
    win_ok: RollingWindow,
    win_shed: RollingWindow,
    win_error: RollingWindow,
    /// Per-task solver latencies, fed by folding each answer's
    /// `task_latency` snapshot.
    pub(crate) win_task: RollingWindow,
    pub(crate) tracer: Tracer,
    trace_slot: AtomicBool,
}

impl Observability {
    pub(crate) fn new(config: ObservabilityConfig, registry: &Registry) -> Self {
        let interval = config.window_interval;
        let slots = config.window_slots;
        let tracer = Tracer::new();
        tracer.set_enabled(false);
        Observability {
            recorder: FlightRecorder::new(config.flight_capacity).with_counters(
                registry.counter(names::OBS_RECORDER_RECORDED),
                registry.counter(names::OBS_RECORDER_OVERWRITTEN),
            ),
            slow: Mutex::new(VecDeque::new()),
            slow_capacity: config.slow_capacity.max(1),
            slow_threshold: config.slow_threshold,
            slo: config.slo,
            slo_violations: registry.counter(names::SERVE_SLO_VIOLATIONS),
            slow_count: registry.counter(names::OBS_RECORDER_SLOW),
            win_request: RollingWindow::with_hist(
                registry.hist(names::SERVE_WINDOW_REQUEST_NS),
                interval,
                slots,
            )
            .with_ticks_counter(registry.counter(names::SERVE_WINDOW_TICKS)),
            win_ok: RollingWindow::new(interval, slots),
            win_shed: RollingWindow::new(interval, slots),
            win_error: RollingWindow::new(interval, slots),
            win_task: RollingWindow::new(interval, slots),
            tracer,
            trace_slot: AtomicBool::new(false),
        }
    }

    /// Tries to claim the one-at-a-time trace slot; on success the
    /// engine tracer starts recording and the caller must pair with
    /// [`Observability::end_trace`].
    pub(crate) fn begin_trace(&self) -> bool {
        if self
            .trace_slot
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            self.tracer.set_enabled(true);
            true
        } else {
            false
        }
    }

    /// Stops recording, drains the captured report, and releases the
    /// trace slot.
    pub(crate) fn end_trace(&self) -> TraceReport {
        self.tracer.set_enabled(false);
        let report = self.tracer.drain();
        self.trace_slot.store(false, Ordering::Release);
        report
    }

    /// Files one finished request: flight entry, windows, SLO burn,
    /// and (when slow enough) the slow-query log.
    pub(crate) fn observe(&self, o: Observed<'_>) {
        let total = o.queue_wait + o.execute;
        let total_ns = as_ns(total);
        let queue_wait_ns = as_ns(o.queue_wait);
        let execute_ns = as_ns(o.execute);
        // Outcome markers come from the rendered response itself, so
        // the recorder can never disagree with what the client saw.
        let doc = JsonValue::parse(o.response).ok();
        let flag = |key: &str| {
            doc.as_ref()
                .and_then(|d| d.get(key))
                .map(|v| *v == JsonValue::Bool(true))
                .unwrap_or(false)
        };
        let ok = flag("ok");
        let shed = flag("shed");
        let cached = flag("cached");
        let rank_reused = flag("rank_reused");
        let quality = doc
            .as_ref()
            .and_then(|d| d.get("quality"))
            .and_then(|v| v.as_str())
            .unwrap_or("")
            .to_string();

        self.win_request.record(total_ns);
        if shed {
            self.win_shed.record(1);
        } else if ok {
            self.win_ok.record(1);
        } else {
            self.win_error.record(1);
        }
        if total > self.slo {
            self.slo_violations.inc();
        }
        self.recorder.record(FlightEntry::new(
            o.kind,
            o.key,
            &quality,
            o.deadline.map(as_ns).unwrap_or(0),
            queue_wait_ns,
            execute_ns,
            total_ns,
            ok,
            shed,
            cached,
            rank_reused,
        ));
        if total >= self.slow_threshold {
            self.slow_count.inc();
            let entry = SlowEntry {
                seq: self.recorder.recorded(),
                kind: o.kind.to_string(),
                key: o.key.to_string(),
                line: o.line.to_string(),
                response: o.response.to_string(),
                quality,
                queue_wait_ns,
                execute_ns,
                total_ns,
                trace: o.trace.as_ref().map(TraceReport::to_json),
            };
            let mut slow = self.slow.lock().expect("slow log poisoned");
            while slow.len() >= self.slow_capacity {
                slow.pop_front();
            }
            slow.push_back(entry);
        }
    }

    /// The `GET /slow` document: newest entries last.
    pub(crate) fn slow_json(&self) -> JsonValue {
        let slow = self.slow.lock().expect("slow log poisoned");
        JsonValue::object(vec![
            ("threshold_ns", JsonValue::from(as_ns(self.slow_threshold))),
            ("logged", JsonValue::from(self.slow_count.get())),
            (
                "entries",
                JsonValue::Array(slow.iter().map(SlowEntry::to_json).collect()),
            ),
        ])
    }

    /// The per-span rollup of one window for `/healthz`.
    fn span_json(&self, span: Duration) -> JsonValue {
        let req = self.win_request.window(span);
        JsonValue::object(vec![
            ("count", JsonValue::from(req.count)),
            ("p50_ns", JsonValue::from(req.p50())),
            ("p99_ns", JsonValue::from(req.p99())),
            ("max_ns", JsonValue::from(req.max)),
            ("ok", JsonValue::from(self.win_ok.window(span).count)),
            ("shed", JsonValue::from(self.win_shed.window(span).count)),
            ("error", JsonValue::from(self.win_error.window(span).count)),
            (
                "task_p99_ns",
                JsonValue::from(self.win_task.window(span).p99()),
            ),
        ])
    }

    /// The `/healthz` `windows` object: the last 1s/10s/60s views.
    pub(crate) fn windows_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("1s", self.span_json(Duration::from_secs(1))),
            ("10s", self.span_json(Duration::from_secs(10))),
            ("60s", self.span_json(Duration::from_secs(60))),
        ])
    }

    pub(crate) fn slo_violations(&self) -> u64 {
        self.slo_violations.get()
    }

    pub(crate) fn slow_logged(&self) -> u64 {
        self.slow_count.get()
    }
}

fn as_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnsk_obs::Registry;

    fn obs() -> (Observability, Registry) {
        let registry = Registry::new();
        let config = ObservabilityConfig {
            slow_threshold: Duration::ZERO,
            // Hour-long ticks: the open tick is the only one a test
            // ever sees, so window reads are deterministic.
            window_interval: Duration::from_secs(3600),
            ..ObservabilityConfig::default()
        };
        let o = Observability::new(config, &registry);
        (o, registry)
    }

    fn observed<'a>(response: &'a str, line: &'a str) -> Observed<'a> {
        Observed {
            kind: "topk",
            key: "topk|1,2",
            line,
            response,
            deadline: None,
            queue_wait: Duration::from_micros(10),
            execute: Duration::from_micros(40),
            trace: None,
        }
    }

    #[test]
    fn outcome_markers_come_from_the_response() {
        let (o, _r) = obs();
        o.observe(observed(
            r#"{"ok":true,"type":"topk","cached":true,"quality":"exact","results":[]}"#,
            r#"{"type":"topk"}"#,
        ));
        o.observe(observed(r#"{"ok":false,"error":"boom"}"#, "{}"));
        o.observe(observed(
            r#"{"ok":false,"shed":true,"error":"queue full","quality":"degraded (shed)"}"#,
            "{}",
        ));
        let entries = o.recorder.entries();
        assert_eq!(entries.len(), 3);
        // Newest first: shed, error, ok.
        assert!(entries[0].shed && !entries[0].ok);
        assert_eq!(entries[0].quality(), "degraded (shed)");
        assert!(!entries[1].ok && !entries[1].shed);
        assert!(entries[2].ok && entries[2].cached);
        let spans = o.windows_json();
        let one = spans.get("1s").unwrap();
        assert_eq!(one.get("count").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(one.get("ok").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(one.get("shed").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(one.get("error").and_then(|v| v.as_f64()), Some(1.0));
    }

    #[test]
    fn slow_log_keeps_line_and_response_and_caps_capacity() {
        let registry = Registry::new();
        let config = ObservabilityConfig {
            slow_threshold: Duration::ZERO,
            slow_capacity: 2,
            window_interval: Duration::from_secs(3600),
            ..ObservabilityConfig::default()
        };
        let o = Observability::new(config, &registry);
        for i in 0..4 {
            let line = format!(r#"{{"type":"topk","i":{i}}}"#);
            o.observe(observed(r#"{"ok":true,"quality":"exact"}"#, &line));
        }
        let doc = o.slow_json();
        let entries = doc.get("entries").and_then(|v| v.as_array()).unwrap();
        assert_eq!(entries.len(), 2, "capacity caps the log");
        assert_eq!(doc.get("logged").and_then(|v| v.as_f64()), Some(4.0));
        // The survivors are the two newest, with their original lines.
        assert!(entries[1]
            .get("line")
            .and_then(|v| v.as_str())
            .unwrap()
            .contains(r#""i":3"#));
        assert_eq!(o.slow_logged(), 4);
        assert_eq!(registry.snapshot().counter(names::OBS_RECORDER_SLOW), 4);
    }

    #[test]
    fn slow_threshold_filters_fast_requests() {
        let registry = Registry::new();
        let config = ObservabilityConfig {
            slow_threshold: Duration::from_millis(1),
            window_interval: Duration::from_secs(3600),
            ..ObservabilityConfig::default()
        };
        let o = Observability::new(config, &registry);
        o.observe(observed(r#"{"ok":true}"#, "{}")); // 50µs total: fast
        let mut slow = observed(r#"{"ok":true}"#, "{}");
        slow.execute = Duration::from_millis(5);
        o.observe(slow);
        assert_eq!(o.slow_logged(), 1);
        assert_eq!(o.recorder.recorded(), 2, "recorder still sees both");
    }

    #[test]
    fn slo_burn_counts_only_violations() {
        let registry = Registry::new();
        let config = ObservabilityConfig {
            slow_threshold: Duration::from_secs(10),
            slo: Duration::from_millis(1),
            window_interval: Duration::from_secs(3600),
            ..ObservabilityConfig::default()
        };
        let o = Observability::new(config, &registry);
        o.observe(observed(r#"{"ok":true}"#, "{}"));
        let mut late = observed(r#"{"ok":true}"#, "{}");
        late.execute = Duration::from_millis(3);
        o.observe(late);
        assert_eq!(o.slo_violations(), 1);
        assert_eq!(registry.snapshot().counter(names::SERVE_SLO_VIOLATIONS), 1);
    }

    #[test]
    fn trace_slot_admits_one_tracer_at_a_time() {
        let (o, _r) = obs();
        assert!(o.begin_trace());
        assert!(!o.begin_trace(), "slot is exclusive");
        assert!(o.tracer.is_on());
        let report = o.end_trace();
        assert!(report.is_empty());
        assert!(!o.tracer.is_on());
        assert!(o.begin_trace(), "slot is reusable after release");
        o.end_trace();
    }
}
