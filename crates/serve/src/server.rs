//! The TCP server: acceptor, bounded admission queue, and the
//! `wnsk-exec` worker pool that drains it.
//!
//! Request lifecycle:
//!
//! 1. a connection thread reads one NDJSON line, parses and *resolves*
//!    it (vocabulary lookups, id validation) — malformed requests are
//!    answered immediately and never consume a queue slot;
//! 2. admission: the request enters the bounded queue, or is shed with
//!    a `queue full` response when the queue is at `queue_depth`
//!    (`serve.shed`); the queue length at admission feeds the
//!    `serve.queue_depth` histogram;
//! 3. a pool worker dequeues it; if its deadline already expired while
//!    queued it is shed (`deadline exceeded`), otherwise the remaining
//!    deadline becomes the query's [`wnsk_core::QueryBudget`] so a
//!    mid-query expiry degrades the answer instead of stalling the
//!    connection;
//! 4. the response line travels back over the per-job channel and the
//!    end-to-end latency lands in `serve.request_ns`.

use crate::admin::{self, AdminHandle};
use crate::engine::{ResolvedRequest, ServeEngine};
use crate::observe::ObservabilityConfig;
use crate::protocol;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wnsk_core::WhyNotEngine;
use wnsk_exec::{ExecMetrics, Executor};
use wnsk_obs::Registry;
use wnsk_shard::Coordinator;

/// Server configuration, mirrored by `wnsk serve`'s flags.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads draining the admission queue.
    pub threads: usize,
    /// Admission-queue capacity; requests beyond it are shed.
    pub queue_depth: usize,
    /// Answer-cache capacity (entries per cache structure).
    pub cache_entries: usize,
    /// Artificial per-request service delay — a load knob for shedding
    /// experiments and deterministic queue-full tests; zero in
    /// production.
    pub worker_delay: Duration,
    /// Bind address for the HTTP admin endpoint (`/metrics`,
    /// `/healthz`, `/slow`, `/flight`); `None` leaves it off. Setting
    /// an address implies observability (a default
    /// [`ObservabilityConfig`] is used unless one is given).
    pub admin_addr: Option<String>,
    /// Observability plane configuration (flight recorder, slow-query
    /// log, rolling windows); `None` leaves the plane off unless
    /// `admin_addr` turns it on with defaults.
    pub observability: Option<ObservabilityConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            queue_depth: 64,
            cache_entries: 256,
            worker_delay: Duration::ZERO,
            admin_addr: None,
            observability: None,
        }
    }
}

struct Job {
    request: ResolvedRequest,
    /// The original wire line, kept verbatim so slow-log entries can be
    /// replayed exactly as received.
    line: String,
    deadline: Option<Duration>,
    enqueued: Instant,
    reply: mpsc::Sender<String>,
}

pub(crate) struct Shared {
    serve: ServeEngine,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    queue_depth: usize,
    worker_delay: Duration,
}

impl Shared {
    /// Admission control: returns the reply channel on acceptance, the
    /// rendered shed/shutdown response otherwise.
    fn submit(
        &self,
        request: ResolvedRequest,
        line: &str,
        deadline: Option<Duration>,
    ) -> Result<mpsc::Receiver<String>, String> {
        let (reply, rx) = mpsc::channel();
        let mut queue = self.queue.lock().unwrap();
        if self.shutdown.load(Ordering::Acquire) {
            return Err(protocol::render_error("server shutting down"));
        }
        if queue.len() >= self.queue_depth {
            drop(queue);
            self.serve.note_shed();
            let response = protocol::render_shed("queue full");
            self.serve
                .observe_admission_shed(&request, line, &response, deadline);
            return Err(response);
        }
        self.serve.note_accepted(queue.len());
        queue.push_back(Job {
            request,
            line: line.to_string(),
            deadline,
            enqueued: Instant::now(),
            reply,
        });
        self.available.notify_one();
        Ok(rx)
    }

    /// Dispatches one admin-endpoint path; `None` renders as 404.
    pub(crate) fn admin_route(&self, path: &str) -> Option<(&'static str, String)> {
        match path {
            "/metrics" => Some((
                "text/plain; version=0.0.4",
                wnsk_obs::prometheus_text(&self.serve.registry().snapshot()),
            )),
            "/healthz" => {
                let queue_len = self.queue.lock().unwrap().len();
                Some((
                    "application/json",
                    self.serve.healthz_json(queue_len, self.queue_depth),
                ))
            }
            "/slow" => Some(("application/json", self.serve.slow_json())),
            "/flight" => Some(("application/json", self.serve.flight_json())),
            _ => None,
        }
    }

    /// One worker's service loop: drain the queue, exit once shutdown
    /// is signalled *and* the queue is empty (queued requests are
    /// answered, not dropped).
    fn pump(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().unwrap();
                loop {
                    if let Some(job) = queue.pop_front() {
                        // The depth left behind at dequeue is the
                        // drain-side `serve.queue_depth` sample.
                        break Some((job, queue.len()));
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        break None;
                    }
                    let (guard, _timeout) = self
                        .available
                        .wait_timeout(queue, Duration::from_millis(50))
                        .unwrap();
                    queue = guard;
                }
            };
            let Some((job, depth_after)) = job else {
                return;
            };
            self.serve.note_dequeued(depth_after);
            if !self.worker_delay.is_zero() {
                std::thread::sleep(self.worker_delay);
            }
            let waited = job.enqueued.elapsed();
            let response =
                self.serve
                    .execute_observed(&job.request, &job.line, job.deadline, waited);
            self.serve.note_request_done(job.enqueued.elapsed());
            let _ = job.reply.send(response);
        }
    }

    /// Handles one client connection: line-framed request/response with
    /// a read timeout so shutdown is observed even on idle connections.
    fn handle_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let _ = stream.set_nodelay(true);
        let mut pending: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            match stream.read(&mut chunk) {
                Ok(0) => return,
                Ok(n) => {
                    pending.extend_from_slice(&chunk[..n]);
                    while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                        let line: Vec<u8> = pending.drain(..=pos).collect();
                        let line = String::from_utf8_lossy(&line);
                        let line = line.trim();
                        if line.is_empty() {
                            continue;
                        }
                        let response = self.handle_line(line);
                        if stream.write_all(response.as_bytes()).is_err()
                            || stream.write_all(b"\n").is_err()
                        {
                            return;
                        }
                        let _ = stream.flush();
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(_) => return,
            }
        }
    }

    fn handle_line(&self, line: &str) -> String {
        let parsed = match protocol::parse_request(line) {
            Ok(p) => p,
            Err(e) => return protocol::render_error(&e),
        };
        let resolved = match self.serve.resolve(&parsed.request) {
            Ok(r) => r,
            Err(e) => return protocol::render_error(&e),
        };
        match self.submit(resolved, line, parsed.deadline) {
            Ok(rx) => rx
                .recv()
                .unwrap_or_else(|_| protocol::render_error("server shutting down")),
            Err(response) => response,
        }
    }
}

/// The running server. Constructed by [`Server::start`]; dropped or
/// explicitly [`ServerHandle::shutdown`] to stop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    admin: Option<AdminHandle>,
    shard_admins: Vec<AdminHandle>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound admin-endpoint address, when one was configured.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin.as_ref().map(AdminHandle::addr)
    }

    /// The bound per-shard admin addresses (sharded servers with an
    /// admin endpoint only; shard order). Each serves that shard's
    /// `/metrics` (the shard primary's registry) and `/healthz` (the
    /// shard status row).
    pub fn shard_admin_addrs(&self) -> Vec<SocketAddr> {
        self.shard_admins.iter().map(AdminHandle::addr).collect()
    }

    /// The shared metrics registry (engine + `serve.*`).
    pub fn registry(&self) -> &Registry {
        self.shared.serve.registry()
    }

    /// The serving engine (for in-process inspection in tests and the
    /// bench gate).
    pub fn serve_engine(&self) -> &ServeEngine {
        &self.shared.serve
    }

    /// Graceful shutdown: stop admitting, answer everything already
    /// queued, join every thread.
    pub fn shutdown(mut self) {
        self.stop();
        if let Some(admin) = self.admin.take() {
            admin.shutdown();
        }
        for admin in std::mem::take(&mut self.shard_admins) {
            admin.shutdown();
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.workers.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.connections.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }

    fn stop(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        // Unblock the acceptor's blocking `accept`.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Best-effort signal; `shutdown()` is the joining path.
        self.stop();
    }
}

/// Builder entry point for the serving layer.
pub struct Server;

impl Server {
    /// Binds `config.addr` and starts the acceptor plus the worker
    /// pool. The engine is expected warm (indexes already built); the
    /// server adds only the cache and admission machinery.
    pub fn start(engine: WhyNotEngine, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let serve = ServeEngine::new(engine, config.cache_entries);
        Self::start_with(serve, config)
    }

    /// Starts a *sharded* server: the scatter-gather coordinator
    /// answers every query (bit-identically to a single engine over the
    /// same corpus), mutations route by partition key, and — when an
    /// admin endpoint is configured — each shard additionally gets its
    /// own admin listener on an ephemeral port (see
    /// [`ServerHandle::shard_admin_addrs`]).
    pub fn start_sharded(
        coordinator: Coordinator,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let serve = ServeEngine::new_sharded(coordinator, config.cache_entries);
        Self::start_with(serve, config)
    }

    fn start_with(mut serve: ServeEngine, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let threads = config.threads.max(1);
        // An admin endpoint without an explicit observability config
        // still gets the default plane: /slow and /flight would
        // otherwise always read empty.
        let observability = config.observability.clone().or_else(|| {
            config
                .admin_addr
                .as_ref()
                .map(|_| ObservabilityConfig::default())
        });
        if let Some(obs_config) = observability {
            serve = serve.with_observability(obs_config);
        }
        let shared = Arc::new(Shared {
            serve,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            queue_depth: config.queue_depth.max(1),
            worker_delay: config.worker_delay,
        });
        let admin = match &config.admin_addr {
            Some(admin_addr) => Some(admin::start(admin_addr, Arc::clone(&shared))?),
            None => None,
        };
        // Per-shard admin planes ride along with the coordinator admin
        // endpoint: one ephemeral-port listener per shard, serving that
        // shard's registry and status row.
        let mut shard_admins = Vec::new();
        if admin.is_some() && shared.serve.is_sharded() {
            let shard_count = shared.serve.coordinator().shard_count();
            for s in 0..shard_count {
                let route_shared = Arc::clone(&shared);
                let route: admin::Router = Arc::new(move |path| {
                    let coord = route_shared.serve.coordinator();
                    match path {
                        "/metrics" => Some((
                            "text/plain; version=0.0.4",
                            wnsk_obs::prometheus_text(&coord.shard_registry(s).snapshot()),
                        )),
                        "/healthz" => coord
                            .shard_statuses()
                            .get(s)
                            .map(|st| ("application/json", st.to_json().render())),
                        _ => None,
                    }
                });
                shard_admins.push(admin::start_with("127.0.0.1:0", route)?);
            }
        }

        // The worker pool: one long-lived pump task per worker, seeded
        // into the work-stealing executor. Each pump loops over the
        // shared queue until shutdown, so requests are genuinely
        // dispatched onto the wnsk-exec pool.
        let pool_shared = Arc::clone(&shared);
        let workers = std::thread::spawn(move || {
            let exec = Executor::new(threads);
            let metrics = ExecMetrics::new(exec.threads());
            let seeds: Vec<usize> = (0..threads).collect();
            let result: Result<Vec<()>, std::convert::Infallible> = exec.run(
                seeds,
                &metrics,
                || false,
                |_| (),
                |_, _pump, _handle| {
                    pool_shared.pump();
                    Ok(())
                },
            );
            result.expect("pump tasks are infallible");
        });

        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_connections = Arc::clone(&connections);
        let acceptor = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let Ok(stream) = stream else { continue };
                let conn_shared = Arc::clone(&accept_shared);
                let handle = std::thread::spawn(move || conn_shared.handle_connection(stream));
                accept_connections.lock().unwrap().push(handle);
            }
        });

        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers: Some(workers),
            connections,
            admin,
            shard_admins,
        })
    }
}
