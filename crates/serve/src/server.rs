//! The TCP server: acceptor, bounded admission queue, and the
//! `wnsk-exec` worker pool that drains it.
//!
//! Request lifecycle:
//!
//! 1. a connection thread reads one NDJSON line, parses and *resolves*
//!    it (vocabulary lookups, id validation) — malformed requests are
//!    answered immediately and never consume a queue slot;
//! 2. admission: the request enters the bounded queue, or is shed with
//!    a `queue full` response when the queue is at `queue_depth`
//!    (`serve.shed`); the queue length at admission feeds the
//!    `serve.queue_depth` histogram;
//! 3. a pool worker dequeues it; if its deadline already expired while
//!    queued it is shed (`deadline exceeded`), otherwise the remaining
//!    deadline becomes the query's [`wnsk_core::QueryBudget`] so a
//!    mid-query expiry degrades the answer instead of stalling the
//!    connection;
//! 4. the response line travels back over the per-job channel and the
//!    end-to-end latency lands in `serve.request_ns`.

use crate::engine::{ResolvedRequest, ServeEngine};
use crate::protocol;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wnsk_core::WhyNotEngine;
use wnsk_exec::{ExecMetrics, Executor};
use wnsk_obs::Registry;

/// Server configuration, mirrored by `wnsk serve`'s flags.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads draining the admission queue.
    pub threads: usize,
    /// Admission-queue capacity; requests beyond it are shed.
    pub queue_depth: usize,
    /// Answer-cache capacity (entries per cache structure).
    pub cache_entries: usize,
    /// Artificial per-request service delay — a load knob for shedding
    /// experiments and deterministic queue-full tests; zero in
    /// production.
    pub worker_delay: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            queue_depth: 64,
            cache_entries: 256,
            worker_delay: Duration::ZERO,
        }
    }
}

struct Job {
    request: ResolvedRequest,
    deadline: Option<Duration>,
    enqueued: Instant,
    reply: mpsc::Sender<String>,
}

struct Shared {
    serve: ServeEngine,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    queue_depth: usize,
    worker_delay: Duration,
}

impl Shared {
    /// Admission control: returns the reply channel on acceptance, the
    /// rendered shed/shutdown response otherwise.
    fn submit(
        &self,
        request: ResolvedRequest,
        deadline: Option<Duration>,
    ) -> Result<mpsc::Receiver<String>, String> {
        let (reply, rx) = mpsc::channel();
        let mut queue = self.queue.lock().unwrap();
        if self.shutdown.load(Ordering::Acquire) {
            return Err(protocol::render_error("server shutting down"));
        }
        if queue.len() >= self.queue_depth {
            drop(queue);
            self.serve.note_shed();
            return Err(protocol::render_shed("queue full"));
        }
        self.serve.note_accepted(queue.len());
        queue.push_back(Job {
            request,
            deadline,
            enqueued: Instant::now(),
            reply,
        });
        self.available.notify_one();
        Ok(rx)
    }

    /// One worker's service loop: drain the queue, exit once shutdown
    /// is signalled *and* the queue is empty (queued requests are
    /// answered, not dropped).
    fn pump(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().unwrap();
                loop {
                    if let Some(job) = queue.pop_front() {
                        break Some(job);
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        break None;
                    }
                    let (guard, _timeout) = self
                        .available
                        .wait_timeout(queue, Duration::from_millis(50))
                        .unwrap();
                    queue = guard;
                }
            };
            let Some(job) = job else { return };
            if !self.worker_delay.is_zero() {
                std::thread::sleep(self.worker_delay);
            }
            let waited = job.enqueued.elapsed();
            let response = match job.deadline {
                Some(deadline) if waited >= deadline => {
                    self.serve.note_shed();
                    protocol::render_shed("deadline exceeded")
                }
                deadline => {
                    let remaining = deadline.map(|d| d.saturating_sub(waited));
                    self.serve.execute(&job.request, remaining)
                }
            };
            self.serve.note_request_done(job.enqueued.elapsed());
            let _ = job.reply.send(response);
        }
    }

    /// Handles one client connection: line-framed request/response with
    /// a read timeout so shutdown is observed even on idle connections.
    fn handle_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let _ = stream.set_nodelay(true);
        let mut pending: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            match stream.read(&mut chunk) {
                Ok(0) => return,
                Ok(n) => {
                    pending.extend_from_slice(&chunk[..n]);
                    while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                        let line: Vec<u8> = pending.drain(..=pos).collect();
                        let line = String::from_utf8_lossy(&line);
                        let line = line.trim();
                        if line.is_empty() {
                            continue;
                        }
                        let response = self.handle_line(line);
                        if stream.write_all(response.as_bytes()).is_err()
                            || stream.write_all(b"\n").is_err()
                        {
                            return;
                        }
                        let _ = stream.flush();
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(_) => return,
            }
        }
    }

    fn handle_line(&self, line: &str) -> String {
        let parsed = match protocol::parse_request(line) {
            Ok(p) => p,
            Err(e) => return protocol::render_error(&e),
        };
        let resolved = match self.serve.resolve(&parsed.request) {
            Ok(r) => r,
            Err(e) => return protocol::render_error(&e),
        };
        match self.submit(resolved, parsed.deadline) {
            Ok(rx) => rx
                .recv()
                .unwrap_or_else(|_| protocol::render_error("server shutting down")),
            Err(response) => response,
        }
    }
}

/// The running server. Constructed by [`Server::start`]; dropped or
/// explicitly [`ServerHandle::shutdown`] to stop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared metrics registry (engine + `serve.*`).
    pub fn registry(&self) -> &Registry {
        self.shared.serve.registry()
    }

    /// The serving engine (for in-process inspection in tests and the
    /// bench gate).
    pub fn serve_engine(&self) -> &ServeEngine {
        &self.shared.serve
    }

    /// Graceful shutdown: stop admitting, answer everything already
    /// queued, join every thread.
    pub fn shutdown(mut self) {
        self.stop();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.workers.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.connections.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }

    fn stop(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        // Unblock the acceptor's blocking `accept`.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Best-effort signal; `shutdown()` is the joining path.
        self.stop();
    }
}

/// Builder entry point for the serving layer.
pub struct Server;

impl Server {
    /// Binds `config.addr` and starts the acceptor plus the worker
    /// pool. The engine is expected warm (indexes already built); the
    /// server adds only the cache and admission machinery.
    pub fn start(engine: WhyNotEngine, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let threads = config.threads.max(1);
        let shared = Arc::new(Shared {
            serve: ServeEngine::new(engine, config.cache_entries),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            queue_depth: config.queue_depth.max(1),
            worker_delay: config.worker_delay,
        });

        // The worker pool: one long-lived pump task per worker, seeded
        // into the work-stealing executor. Each pump loops over the
        // shared queue until shutdown, so requests are genuinely
        // dispatched onto the wnsk-exec pool.
        let pool_shared = Arc::clone(&shared);
        let workers = std::thread::spawn(move || {
            let exec = Executor::new(threads);
            let metrics = ExecMetrics::new(exec.threads());
            let seeds: Vec<usize> = (0..threads).collect();
            let result: Result<Vec<()>, std::convert::Infallible> = exec.run(
                seeds,
                &metrics,
                || false,
                |_| (),
                |_, _pump, _handle| {
                    pool_shared.pump();
                    Ok(())
                },
            );
            result.expect("pump tasks are infallible");
        });

        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_connections = Arc::clone(&connections);
        let acceptor = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let Ok(stream) = stream else { continue };
                let conn_shared = Arc::clone(&accept_shared);
                let handle = std::thread::spawn(move || conn_shared.handle_connection(stream));
                accept_connections.lock().unwrap().push(handle);
            }
        });

        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers: Some(workers),
            connections,
        })
    }
}
