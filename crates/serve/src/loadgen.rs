//! A closed-loop load generator: N connections replay a zipfian mix of
//! prepared request lines against a serving endpoint at a target
//! aggregate QPS, recording end-to-end latencies into a
//! [`wnsk_obs::Hist`].
//!
//! Closed-loop means each connection waits for its response before
//! sending the next request (so the generator can never outrun the
//! server by more than `connections` in-flight requests); the target
//! rate is enforced by pacing each connection against its share of the
//! aggregate schedule. The zipfian index over the query pool is what
//! makes the answer cache earn its keep — hot queries repeat.

use crate::client::Client;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use wnsk_data::zipf::Zipf;
use wnsk_obs::{Hist, HistSnapshot, JsonValue};

/// Load-generation parameters, mirrored by `wnsk loadgen`'s flags.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent closed-loop connections.
    pub connections: usize,
    /// Total requests to send across all connections.
    pub requests: usize,
    /// Aggregate target rate; `0.0` sends as fast as the closed loop
    /// allows.
    pub target_qps: f64,
    /// Zipf exponent of the query-mix distribution (0 = uniform).
    pub zipf_exponent: f64,
    /// RNG seed for the per-connection query mix.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7878".to_string(),
            connections: 4,
            requests: 200,
            target_qps: 0.0,
            zipf_exponent: 1.0,
            seed: 42,
        }
    }
}

/// What came back: request counts by outcome plus the latency
/// distribution.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Requests completed (every request is classified exactly once).
    pub sent: usize,
    /// `ok: true` responses.
    pub ok: usize,
    /// Shed responses (`shed: true` — queue full or deadline expired in
    /// queue).
    pub shed: usize,
    /// Degraded-quality answers (`ok: true` but a `degraded (…)`
    /// quality tag).
    pub degraded: usize,
    /// Error responses and unparseable reply lines.
    pub errors: usize,
    /// Wall-clock time for the whole run.
    pub wall: Duration,
    /// End-to-end latency distribution, nanoseconds.
    pub latency: HistSnapshot,
}

impl LoadgenReport {
    /// Requests per second actually achieved.
    pub fn achieved_qps(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.sent as f64 / self.wall.as_secs_f64()
    }

    /// Fraction of requests shed by admission control.
    pub fn shed_rate(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        self.shed as f64 / self.sent as f64
    }

    /// Human-readable summary (the `wnsk loadgen` output).
    pub fn render(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        format!(
            "loadgen: {} requests in {:.2}s ({:.1} qps achieved)\n  \
             ok {}, shed {} ({:.1}%), degraded {}, errors {}\n  \
             latency p50 {:.2}ms p90 {:.2}ms p99 {:.2}ms",
            self.sent,
            self.wall.as_secs_f64(),
            self.achieved_qps(),
            self.ok,
            self.shed,
            100.0 * self.shed_rate(),
            self.degraded,
            self.errors,
            ms(self.latency.p50()),
            ms(self.latency.p90()),
            ms(self.latency.p99()),
        )
    }
}

/// The session recorder: `(connection index, per-connection send
/// sequence, request line)` per request actually sent — sortable into
/// the stable order [`run_session`] returns.
type SessionRecorder = Mutex<Vec<(usize, u32, String)>>;

/// `(ok, shed, degraded)` for one response line.
fn classify(response: &str) -> (bool, bool, bool) {
    match JsonValue::parse(response) {
        Ok(doc) => {
            let ok = doc.get("ok") == Some(&JsonValue::Bool(true));
            let shed = doc.get("shed") == Some(&JsonValue::Bool(true));
            let degraded = doc
                .get("quality")
                .and_then(|q| q.as_str())
                .is_some_and(|q| q.starts_with("degraded"));
            (ok, shed, ok && degraded)
        }
        Err(_) => (false, false, false),
    }
}

/// Runs the closed loop: `pool` is the prepared request-line mix.
pub fn run(config: &LoadgenConfig, pool: &[String]) -> std::io::Result<LoadgenReport> {
    run_inner(config, pool, None)
}

/// Like [`run`], but also records every request line actually sent, in
/// a stable order (by connection, then by that connection's send
/// sequence). The recorded session is what `wnsk serve --replay` checks
/// the cache against: the exact zipfian mix a real run produced, not
/// the prepared pool it was drawn from.
pub fn run_session(
    config: &LoadgenConfig,
    pool: &[String],
) -> std::io::Result<(LoadgenReport, Vec<String>)> {
    let recorder = SessionRecorder::new(Vec::new());
    let report = run_inner(config, pool, Some(&recorder))?;
    let mut sent = recorder.into_inner().expect("recorder poisoned");
    sent.sort_by_key(|&(conn, seq, _)| (conn, seq));
    Ok((report, sent.into_iter().map(|(_, _, line)| line).collect()))
}

fn run_inner(
    config: &LoadgenConfig,
    pool: &[String],
    recorder: Option<&SessionRecorder>,
) -> std::io::Result<LoadgenReport> {
    assert!(!pool.is_empty(), "loadgen needs a non-empty query pool");
    let connections = config.connections.max(1);
    let zipf = Zipf::new(pool.len(), config.zipf_exponent.max(0.0));
    let slots = AtomicUsize::new(0);
    let ok = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    let degraded = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let hist = Hist::new();
    let start = Instant::now();

    std::thread::scope(|scope| -> std::io::Result<()> {
        let mut handles = Vec::with_capacity(connections);
        for conn_idx in 0..connections {
            let zipf = &zipf;
            let slots = &slots;
            let ok = &ok;
            let shed = &shed;
            let degraded = &degraded;
            let errors = &errors;
            let hist = &hist;
            let addr = config.addr.clone();
            let total = config.requests;
            let seed = config.seed.wrapping_add(conn_idx as u64);
            let per_conn_interval = if config.target_qps > 0.0 {
                Some(Duration::from_secs_f64(
                    connections as f64 / config.target_qps,
                ))
            } else {
                None
            };
            handles.push(scope.spawn(move || -> std::io::Result<()> {
                let mut client = Client::connect(&addr)?;
                let mut rng = StdRng::seed_from_u64(seed);
                let conn_start = Instant::now();
                let mut local_seq: u32 = 0;
                loop {
                    if slots.fetch_add(1, Ordering::Relaxed) >= total {
                        return Ok(());
                    }
                    if let Some(interval) = per_conn_interval {
                        let scheduled = conn_start + interval * local_seq;
                        if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                    }
                    local_seq += 1;
                    let line = &pool[zipf.sample(&mut rng)];
                    if let Some(rec) = recorder {
                        rec.lock().expect("recorder poisoned").push((
                            conn_idx,
                            local_seq,
                            line.clone(),
                        ));
                    }
                    let sent_at = Instant::now();
                    let response = client.call(line)?;
                    hist.record_duration(sent_at.elapsed());
                    let (is_ok, is_shed, is_degraded) = classify(&response);
                    if is_ok {
                        ok.fetch_add(1, Ordering::Relaxed);
                    } else if is_shed {
                        shed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                    if is_degraded {
                        degraded.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("loadgen thread panicked")?;
        }
        Ok(())
    })?;

    let (ok, shed, errors) = (
        ok.load(Ordering::Relaxed),
        shed.load(Ordering::Relaxed),
        errors.load(Ordering::Relaxed),
    );
    Ok(LoadgenReport {
        sent: ok + shed + errors,
        ok,
        shed,
        degraded: degraded.load(Ordering::Relaxed),
        errors,
        wall: start.elapsed(),
        latency: hist.snapshot(),
    })
}
