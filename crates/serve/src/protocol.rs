//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, in order.
//! Parsing and rendering are built on [`wnsk_obs::JsonValue`] — the
//! same hand-rolled JSON the observability layer exports with — so the
//! server adds no wire-format dependency.
//!
//! Requests (`type` selects the variant):
//!
//! ```json
//! {"type":"topk","at":[0.5,0.5],"keywords":["cafe","wifi"],"k":5,"alpha":0.5}
//! {"type":"whynot","at":[0.5,0.5],"keywords":["cafe"],"k":5,"alpha":0.5,
//!  "missing":[42],"lambda":0.5,"deadline_ms":200}
//! {"type":"insert","at":[0.5,0.5],"keywords":["cafe","wifi"]}
//! {"type":"delete","id":42}
//! {"type":"stats"}
//! ```
//!
//! `insert` and `delete` are mutations: they run through the same
//! admission queue as queries, take the engine's write lock, go through
//! the write-ahead log when one is attached, and advance the dataset
//! epoch (invalidating cached answers). Their responses carry the
//! affected object `id` and the post-mutation `epoch`.
//!
//! Optional fields: `alpha` (default 0.5), `lambda` (default 0.5),
//! `deadline_ms` (admission + execution deadline, measured from
//! enqueue), `max_page_reads` (why-not only; maps onto the
//! [`wnsk_core::QueryBudget`] page-read cap). Keywords may be strings
//! (resolved against the dataset vocabulary) or raw numeric term ids.
//!
//! Every response carries `"ok"`; answers carry a `"quality"` string in
//! [`wnsk_core::AnswerQuality`] display form, and shed responses carry
//! `"shed": true` plus a degraded quality tag, so a client can always
//! distinguish the rung of the degradation ladder it was served from.

use std::time::Duration;
use wnsk_obs::JsonValue;

/// A keyword as it appears on the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum WireKeyword {
    /// A keyword string, resolved against the dataset vocabulary.
    Name(String),
    /// A raw term id.
    Id(u32),
}

/// The query core shared by `topk` and `whynot` requests.
#[derive(Clone, Debug, PartialEq)]
pub struct WireQuery {
    /// Query location.
    pub at: (f64, f64),
    /// Query keywords.
    pub keywords: Vec<WireKeyword>,
    /// Result-set size `k`.
    pub k: usize,
    /// Ranking preference α ∈ (0, 1).
    pub alpha: f64,
}

/// A parsed request body.
#[derive(Clone, Debug, PartialEq)]
pub enum WireRequest {
    /// Plain spatial keyword top-k.
    TopK {
        /// The query.
        query: WireQuery,
    },
    /// Why-not refinement for a set of missing objects.
    WhyNot {
        /// The original query `q₀`.
        query: WireQuery,
        /// Missing object ids.
        missing: Vec<u32>,
        /// Penalty trade-off λ.
        lambda: f64,
        /// Optional physical page-read cap for this request.
        max_page_reads: Option<u64>,
    },
    /// Insert a new object (mutation; advances the dataset epoch).
    Insert {
        /// The new object's location.
        at: (f64, f64),
        /// The new object's keywords.
        keywords: Vec<WireKeyword>,
    },
    /// Delete an object by id (mutation; advances the dataset epoch).
    Delete {
        /// The object to delete.
        id: u32,
    },
    /// Service counters.
    Stats,
}

/// A request plus its admission metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedRequest {
    /// What to execute.
    pub request: WireRequest,
    /// End-to-end deadline measured from enqueue; expiry before a
    /// worker picks the request up sheds it, expiry mid-query degrades
    /// it through the budget ladder.
    pub deadline: Option<Duration>,
}

fn field_f64(obj: &JsonValue, key: &str) -> Result<Option<f64>, String> {
    match obj.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field '{key}' must be a number")),
    }
}

fn required_usize(obj: &JsonValue, key: &str) -> Result<usize, String> {
    let v = field_f64(obj, key)?.ok_or_else(|| format!("missing field '{key}'"))?;
    if v.fract() != 0.0 || v < 0.0 || v > u32::MAX as f64 {
        return Err(format!("field '{key}' must be a non-negative integer"));
    }
    Ok(v as usize)
}

fn parse_at(obj: &JsonValue) -> Result<(f64, f64), String> {
    let at = obj.get("at").ok_or("missing field 'at'")?;
    let coords = at.as_array().ok_or("field 'at' must be [x, y]")?;
    if coords.len() != 2 {
        return Err("field 'at' must be [x, y]".into());
    }
    let x = coords[0].as_f64().ok_or("field 'at' must hold numbers")?;
    let y = coords[1].as_f64().ok_or("field 'at' must hold numbers")?;
    if !x.is_finite() || !y.is_finite() {
        return Err("location must be finite".into());
    }
    Ok((x, y))
}

fn parse_keywords(obj: &JsonValue) -> Result<Vec<WireKeyword>, String> {
    let kws = obj
        .get("keywords")
        .and_then(|v| v.as_array())
        .ok_or("missing or non-array field 'keywords'")?;
    if kws.is_empty() {
        return Err("field 'keywords' must be non-empty".into());
    }
    let mut keywords = Vec::with_capacity(kws.len());
    for kw in kws {
        match kw {
            JsonValue::String(s) => keywords.push(WireKeyword::Name(s.clone())),
            JsonValue::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u32::MAX as f64 => {
                keywords.push(WireKeyword::Id(*n as u32))
            }
            _ => return Err("keywords must be strings or non-negative term ids".into()),
        }
    }
    Ok(keywords)
}

fn parse_query(obj: &JsonValue) -> Result<WireQuery, String> {
    let (x, y) = parse_at(obj)?;
    let keywords = parse_keywords(obj)?;
    let k = required_usize(obj, "k")?;
    if k == 0 {
        return Err("field 'k' must be at least 1".into());
    }
    let alpha = field_f64(obj, "alpha")?.unwrap_or(0.5);
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err("field 'alpha' must be in (0, 1)".into());
    }
    Ok(WireQuery {
        at: (x, y),
        keywords,
        k,
        alpha,
    })
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<ParsedRequest, String> {
    let doc = JsonValue::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    if !matches!(doc, JsonValue::Object(_)) {
        return Err("request must be a JSON object".into());
    }
    let deadline = match field_f64(&doc, "deadline_ms")? {
        Some(ms) if ms < 0.0 => return Err("field 'deadline_ms' must be non-negative".into()),
        Some(ms) => Some(Duration::from_nanos((ms * 1e6) as u64)),
        None => None,
    };
    let ty = doc
        .get("type")
        .and_then(|v| v.as_str())
        .ok_or("missing string field 'type'")?;
    let request = match ty {
        "topk" => WireRequest::TopK {
            query: parse_query(&doc)?,
        },
        "whynot" => {
            let query = parse_query(&doc)?;
            let missing_field = doc
                .get("missing")
                .and_then(|v| v.as_array())
                .ok_or("missing or non-array field 'missing'")?;
            if missing_field.is_empty() {
                return Err("field 'missing' must be non-empty".into());
            }
            let mut missing = Vec::with_capacity(missing_field.len());
            for m in missing_field {
                match m.as_f64() {
                    Some(v) if v.fract() == 0.0 && v >= 0.0 && v <= u32::MAX as f64 => {
                        missing.push(v as u32)
                    }
                    _ => return Err("missing object ids must be non-negative integers".into()),
                }
            }
            let lambda = field_f64(&doc, "lambda")?.unwrap_or(0.5);
            if !(lambda > 0.0 && lambda < 1.0) {
                return Err("field 'lambda' must be in (0, 1)".into());
            }
            let max_page_reads = match field_f64(&doc, "max_page_reads")? {
                Some(v) if v.fract() == 0.0 && v >= 0.0 => Some(v as u64),
                Some(_) => {
                    return Err("field 'max_page_reads' must be a non-negative integer".into())
                }
                None => None,
            };
            WireRequest::WhyNot {
                query,
                missing,
                lambda,
                max_page_reads,
            }
        }
        "insert" => WireRequest::Insert {
            at: parse_at(&doc)?,
            keywords: parse_keywords(&doc)?,
        },
        "delete" => {
            let id = required_usize(&doc, "id")?;
            WireRequest::Delete { id: id as u32 }
        }
        "stats" => WireRequest::Stats,
        other => return Err(format!("unknown request type '{other}'")),
    };
    Ok(ParsedRequest { request, deadline })
}

/// Renders a protocol error (malformed request, unknown keyword, …).
pub fn render_error(message: &str) -> String {
    JsonValue::object(vec![
        ("ok", JsonValue::Bool(false)),
        ("error", message.into()),
    ])
    .render()
}

/// Renders a load-shedding response: the request was *not* executed.
/// `reason` is `"queue full"` or `"deadline exceeded"`; the quality tag
/// mirrors [`wnsk_core::AnswerQuality::Degraded`]'s display form so
/// clients read one quality vocabulary everywhere.
pub fn render_shed(reason: &str) -> String {
    JsonValue::object(vec![
        ("ok", JsonValue::Bool(false)),
        ("shed", JsonValue::Bool(true)),
        ("error", reason.into()),
        ("quality", format!("degraded ({reason})").into()),
    ])
    .render()
}

/// Renders a top-k answer.
pub fn render_topk(results: &[(u32, f64)], cached: bool) -> String {
    let items = results
        .iter()
        .map(|&(id, score)| {
            JsonValue::object(vec![
                ("object", JsonValue::from(id as u64)),
                ("score", score.into()),
            ])
        })
        .collect();
    JsonValue::object(vec![
        ("ok", JsonValue::Bool(true)),
        ("type", "topk".into()),
        ("cached", JsonValue::Bool(cached)),
        ("quality", "exact".into()),
        ("results", JsonValue::Array(items)),
    ])
    .render()
}

/// Renders a why-not answer. `keywords` are the refined query's
/// keywords, already rendered to strings; `rank_reused` reports whether
/// `R(M, q₀)` came from the answer cache.
#[allow(clippy::too_many_arguments)]
pub fn render_whynot(
    keywords: &[String],
    k: usize,
    rank: usize,
    edit_distance: usize,
    penalty: f64,
    quality: &str,
    initial_rank: u64,
    rank_reused: bool,
) -> String {
    let refined = JsonValue::object(vec![
        (
            "keywords",
            JsonValue::Array(keywords.iter().map(|s| s.as_str().into()).collect()),
        ),
        ("k", k.into()),
        ("rank", rank.into()),
        ("edit_distance", edit_distance.into()),
        ("penalty", penalty.into()),
    ]);
    JsonValue::object(vec![
        ("ok", JsonValue::Bool(true)),
        ("type", "whynot".into()),
        ("quality", quality.into()),
        ("initial_rank", initial_rank.into()),
        ("rank_reused", JsonValue::Bool(rank_reused)),
        ("refined", refined),
    ])
    .render()
}

/// Renders a mutation acknowledgement. `kind` is `"insert"` or
/// `"delete"`, `id` the affected object, `epoch` the dataset epoch
/// *after* the mutation (cached answers from earlier epochs are now
/// invalid).
pub fn render_ingest(kind: &str, id: u32, epoch: u64) -> String {
    JsonValue::object(vec![
        ("ok", JsonValue::Bool(true)),
        ("type", kind.into()),
        ("id", JsonValue::from(id as u64)),
        ("epoch", JsonValue::from(epoch)),
    ])
    .render()
}

/// Renders a stats answer from `(name, value)` counter pairs.
pub fn render_stats(objects: usize, cache_entries: usize, counters: &[(&str, u64)]) -> String {
    let mut fields = vec![
        ("ok", JsonValue::Bool(true)),
        ("type", "stats".into()),
        ("objects", objects.into()),
        ("cache_entries", cache_entries.into()),
    ];
    let mut counter_fields = Vec::with_capacity(counters.len());
    for &(name, value) in counters {
        counter_fields.push((name.to_owned(), JsonValue::from(value)));
    }
    fields.push(("counters", JsonValue::Object(counter_fields)));
    JsonValue::object(fields).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_topk_request() {
        let p = parse_request(
            r#"{"type":"topk","at":[0.5,0.25],"keywords":["cafe",7],"k":5,"alpha":0.7,"deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(p.deadline, Some(Duration::from_millis(250)));
        match p.request {
            WireRequest::TopK { query } => {
                assert_eq!(query.at, (0.5, 0.25));
                assert_eq!(
                    query.keywords,
                    vec![WireKeyword::Name("cafe".into()), WireKeyword::Id(7)]
                );
                assert_eq!(query.k, 5);
                assert_eq!(query.alpha, 0.7);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn parses_whynot_with_defaults() {
        let p = parse_request(
            r#"{"type":"whynot","at":[0.1,0.2],"keywords":[1],"k":3,"missing":[42,7]}"#,
        )
        .unwrap();
        assert_eq!(p.deadline, None);
        match p.request {
            WireRequest::WhyNot {
                query,
                missing,
                lambda,
                max_page_reads,
            } => {
                assert_eq!(query.alpha, 0.5);
                assert_eq!(missing, vec![42, 7]);
                assert_eq!(lambda, 0.5);
                assert_eq!(max_page_reads, None);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_requests_with_messages() {
        for (line, needle) in [
            ("{", "bad JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"type":"nope"}"#, "unknown request type"),
            (
                r#"{"type":"topk","keywords":["a"],"k":3}"#,
                "missing field 'at'",
            ),
            (
                r#"{"type":"topk","at":[0.5],"keywords":["a"],"k":3}"#,
                "[x, y]",
            ),
            (
                r#"{"type":"topk","at":[0.5,0.5],"keywords":[],"k":3}"#,
                "non-empty",
            ),
            (
                r#"{"type":"topk","at":[0.5,0.5],"keywords":["a"]}"#,
                "missing field 'k'",
            ),
            (
                r#"{"type":"topk","at":[0.5,0.5],"keywords":["a"],"k":0}"#,
                "at least 1",
            ),
            (
                r#"{"type":"topk","at":[0.5,0.5],"keywords":["a"],"k":3,"alpha":1.5}"#,
                "alpha",
            ),
            (
                r#"{"type":"whynot","at":[0.5,0.5],"keywords":["a"],"k":3,"missing":[]}"#,
                "non-empty",
            ),
            (
                r#"{"type":"whynot","at":[0.5,0.5],"keywords":["a"],"k":3,"missing":[1],"lambda":0}"#,
                "lambda",
            ),
            (
                r#"{"type":"topk","at":[0.5,0.5],"keywords":["a"],"k":3,"deadline_ms":-1}"#,
                "deadline_ms",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "line {line}: got '{err}'");
        }
    }

    #[test]
    fn parses_mutations_and_renders_their_acks() {
        let p =
            parse_request(r#"{"type":"insert","at":[0.25,0.75],"keywords":["cafe",3]}"#).unwrap();
        assert_eq!(
            p.request,
            WireRequest::Insert {
                at: (0.25, 0.75),
                keywords: vec![WireKeyword::Name("cafe".into()), WireKeyword::Id(3)],
            }
        );
        let p = parse_request(r#"{"type":"delete","id":42}"#).unwrap();
        assert_eq!(p.request, WireRequest::Delete { id: 42 });

        let ack = render_ingest("insert", 300, 7);
        let doc = JsonValue::parse(&ack).unwrap();
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(doc.get("type").and_then(|v| v.as_str()), Some("insert"));
        assert_eq!(doc.get("id").and_then(|v| v.as_f64()), Some(300.0));
        assert_eq!(doc.get("epoch").and_then(|v| v.as_f64()), Some(7.0));
    }

    #[test]
    fn rejects_malformed_mutations() {
        for (line, needle) in [
            (
                r#"{"type":"insert","keywords":["a"]}"#,
                "missing field 'at'",
            ),
            (
                r#"{"type":"insert","at":[0.5,0.5],"keywords":[]}"#,
                "non-empty",
            ),
            (r#"{"type":"delete"}"#, "missing field 'id'"),
            (r#"{"type":"delete","id":-3}"#, "non-negative"),
            (r#"{"type":"delete","id":1.5}"#, "non-negative"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "line {line}: got '{err}'");
        }
    }

    #[test]
    fn stats_round_trip() {
        let p = parse_request(r#"{"type":"stats"}"#).unwrap();
        assert_eq!(p.request, WireRequest::Stats);
        let rendered = render_stats(300, 2, &[("serve.accepted", 5)]);
        let doc = JsonValue::parse(&rendered).unwrap();
        assert_eq!(doc.get("objects").and_then(|v| v.as_f64()), Some(300.0));
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("serve.accepted"))
                .and_then(|v| v.as_f64()),
            Some(5.0)
        );
    }

    #[test]
    fn rendered_penalties_round_trip_bit_identical() {
        let penalty = 0.123_456_789_012_345_68_f64 * std::f64::consts::PI;
        let line = render_whynot(&["a".into()], 7, 9, 1, penalty, "exact", 9, true);
        let doc = JsonValue::parse(&line).unwrap();
        let parsed = doc
            .get("refined")
            .and_then(|r| r.get("penalty"))
            .and_then(|v| v.as_f64())
            .unwrap();
        assert_eq!(parsed.to_bits(), penalty.to_bits());
    }

    #[test]
    fn shed_responses_carry_degraded_quality() {
        let line = render_shed("queue full");
        let doc = JsonValue::parse(&line).unwrap();
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(false)));
        assert_eq!(doc.get("shed"), Some(&JsonValue::Bool(true)));
        assert_eq!(
            doc.get("quality").and_then(|v| v.as_str()),
            Some("degraded (queue full)")
        );
    }
}
