//! Fault injection: on-disk corruption must surface as typed errors, not
//! panics or silent wrong answers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use wnsk_geo::{Point, WorldBounds};
use wnsk_index::{Dataset, KcrTree, ObjectId, SetRTree, SpatialKeywordQuery, SpatialObject};
use wnsk_storage::{BufferPool, MemBackend, PageId, StorageBackend, PAGE_SIZE};
use wnsk_text::KeywordSet;

fn dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let objects = (0..n)
        .map(|_| SpatialObject {
            id: ObjectId(0),
            loc: Point::new(rng.gen(), rng.gen()),
            doc: KeywordSet::from_ids((0..rng.gen_range(1..5)).map(|_| rng.gen_range(0..30u32))),
        })
        .collect();
    Dataset::new(objects, WorldBounds::unit())
}

fn query() -> SpatialKeywordQuery {
    SpatialKeywordQuery::new(Point::new(0.5, 0.5), KeywordSet::from_ids([1, 2]), 10, 0.5)
}

/// Corrupting any single page must never panic a SetR-tree scan: it either
/// still succeeds (the page was not on the scan's path or the damage was
/// semantically silent) or surfaces a storage/corruption error.
#[test]
fn setr_survives_arbitrary_page_corruption() {
    let ds = dataset(300, 1);
    let backend = Arc::new(MemBackend::new());
    {
        let pool = Arc::new(BufferPool::with_default_config(
            Arc::clone(&backend) as Arc<dyn StorageBackend>
        ));
        SetRTree::build(pool, &ds, 8).unwrap();
    }
    let n_pages = backend.page_count();
    let mut rng = StdRng::seed_from_u64(99);
    let mut errors = 0;
    for _trial in 0..30 {
        let victim = PageId(rng.gen_range(1..n_pages)); // keep the meta page
                                                        // Save, smash, scan, restore.
        let mut original = vec![0u8; PAGE_SIZE];
        backend.read_page(victim, &mut original).unwrap();
        let mut garbage = original.clone();
        for b in garbage.iter_mut().take(64) {
            *b = rng.gen();
        }
        backend.write_page(victim, &garbage).unwrap();

        let pool = Arc::new(BufferPool::with_default_config(
            Arc::clone(&backend) as Arc<dyn StorageBackend>
        ));
        match SetRTree::open(Arc::clone(&pool)) {
            Ok(tree) => {
                // Must not panic; Err is acceptable and expected.
                if tree.top_k(&query()).is_err() {
                    errors += 1;
                }
            }
            Err(_) => errors += 1,
        }
        backend.write_page(victim, &original).unwrap();
    }
    // At least some corruptions must actually be detected (the test would
    // be vacuous if nothing ever noticed).
    assert!(
        errors > 0,
        "no corruption was ever detected across 30 trials"
    );
}

/// A zeroed meta page is rejected at open time with a corruption error.
#[test]
fn zeroed_meta_page_is_rejected() {
    let ds = dataset(50, 2);
    let backend = Arc::new(MemBackend::new());
    {
        let pool = Arc::new(BufferPool::with_default_config(
            Arc::clone(&backend) as Arc<dyn StorageBackend>
        ));
        KcrTree::build(pool, &ds, 8).unwrap();
    }
    backend
        .write_page(PageId(0), &vec![0u8; PAGE_SIZE])
        .unwrap();
    let pool = Arc::new(BufferPool::with_default_config(
        Arc::clone(&backend) as Arc<dyn StorageBackend>
    ));
    let err = KcrTree::open(pool).err().expect("open must fail");
    assert!(err.to_string().contains("magic"), "unexpected error: {err}");
}

/// Opening a SetR-tree file as a KcR-tree (and vice versa) fails cleanly.
#[test]
fn cross_format_open_is_rejected() {
    let ds = dataset(50, 3);
    let backend = Arc::new(MemBackend::new());
    {
        let pool = Arc::new(BufferPool::with_default_config(
            Arc::clone(&backend) as Arc<dyn StorageBackend>
        ));
        SetRTree::build(pool, &ds, 8).unwrap();
    }
    let pool = Arc::new(BufferPool::with_default_config(
        Arc::clone(&backend) as Arc<dyn StorageBackend>
    ));
    assert!(KcrTree::open(pool).is_err());
}

/// Truncated storage (missing pages) errors instead of panicking.
#[test]
fn truncated_storage_is_an_error() {
    let ds = dataset(200, 4);
    let full = Arc::new(MemBackend::new());
    {
        let pool = Arc::new(BufferPool::with_default_config(
            Arc::clone(&full) as Arc<dyn StorageBackend>
        ));
        SetRTree::build(pool, &ds, 8).unwrap();
    }
    // Copy only the first half of the pages into a fresh backend.
    let truncated = Arc::new(MemBackend::new());
    let half = full.page_count() / 2;
    for i in 0..half {
        let id = truncated.allocate_page().unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        full.read_page(PageId(i), &mut buf).unwrap();
        truncated.write_page(id, &buf).unwrap();
    }
    let pool = Arc::new(BufferPool::with_default_config(
        truncated as Arc<dyn StorageBackend>,
    ));
    match SetRTree::open(Arc::clone(&pool)) {
        Err(_) => {}
        Ok(tree) => {
            let r = tree.top_k(&query());
            assert!(r.is_err(), "scan over truncated storage must error");
        }
    }
}
