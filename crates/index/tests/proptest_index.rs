//! Property-based tests for the indexes: search paths equal brute force,
//! node bounds dominate member scores, dominance bounds bracket the
//! truth.

use proptest::prelude::*;
use std::sync::Arc;
use wnsk_geo::{Point, Rect, WorldBounds};
use wnsk_index::kcr::{max_dom, min_dom, PreparedNode};
use wnsk_index::{
    tsim_node_upper, Dataset, KcrTree, NodeSummary, ObjectId, RankMode, SetRTree,
    SpatialKeywordQuery, SpatialObject,
};
use wnsk_storage::{BufferPool, BufferPoolConfig, MemBackend};
use wnsk_text::{jaccard, KeywordCountMap, KeywordSet, TextModel};

fn arb_doc() -> impl Strategy<Value = KeywordSet> {
    proptest::collection::vec(0u32..20, 1..6).prop_map(KeywordSet::from_ids)
}

fn arb_dataset(max_n: usize) -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64, arb_doc()), 1..max_n).prop_map(|items| {
        let objects = items
            .into_iter()
            .map(|(x, y, doc)| SpatialObject {
                id: ObjectId(0),
                loc: Point::new(x, y),
                doc,
            })
            .collect();
        Dataset::new(objects, WorldBounds::unit())
    })
}

fn arb_model() -> impl Strategy<Value = TextModel> {
    prop::sample::select(vec![TextModel::Jaccard, TextModel::Dice, TextModel::Cosine])
}

fn arb_query() -> impl Strategy<Value = SpatialKeywordQuery> {
    (
        0.0..1.0f64,
        0.0..1.0f64,
        proptest::collection::vec(0u32..22, 0..4),
        1usize..8,
        0.05..0.95f64,
        arb_model(),
    )
        .prop_map(|(x, y, doc, k, alpha, sim)| {
            SpatialKeywordQuery::new(Point::new(x, y), KeywordSet::from_ids(doc), k, alpha)
                .with_model(sim)
        })
}

fn pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::new(
        Arc::new(MemBackend::new()),
        BufferPoolConfig::default(),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// SetR-tree top-k equals brute-force top-k for arbitrary data and
    /// queries (ids and order).
    #[test]
    fn setr_topk_equals_brute_force(ds in arb_dataset(60), q in arb_query()) {
        let tree = SetRTree::build(pool(), &ds, 4).unwrap();
        let got: Vec<ObjectId> = tree.top_k(&q).unwrap().iter().map(|t| t.0).collect();
        let want: Vec<ObjectId> = ds.top_k(&q).iter().map(|t| t.0).collect();
        prop_assert_eq!(got, want);
    }

    /// KcR-tree top-k equals brute-force top-k too (its looser bound only
    /// costs work, never correctness).
    #[test]
    fn kcr_topk_equals_brute_force(ds in arb_dataset(60), q in arb_query()) {
        let tree = KcrTree::build(pool(), &ds, 4).unwrap();
        let got: Vec<ObjectId> = tree.top_k(&q).unwrap().iter().map(|t| t.0).collect();
        let want: Vec<ObjectId> = ds.top_k(&q).iter().map(|t| t.0).collect();
        prop_assert_eq!(got, want);
    }

    /// Rank search equals Eqn. 3's definition in both modes.
    #[test]
    fn rank_search_equals_definition(ds in arb_dataset(60), q in arb_query(), pick in any::<prop::sample::Index>()) {
        let tree = SetRTree::build(pool(), &ds, 4).unwrap();
        let target = ds.objects()[pick.index(ds.len())].id;
        let score = ds.score(ds.object(target), &q);
        let want = ds.rank_of(target, &q);
        for mode in [RankMode::StopAtScore, RankMode::UntilFound] {
            let got = tree.rank_of(&q, target, score, None, mode).unwrap();
            prop_assert_eq!(got.rank(), Some(want));
        }
    }

    /// Theorem 1: the node textual bound dominates every member's
    /// Jaccard similarity.
    #[test]
    fn theorem1_bound_dominates(docs in proptest::collection::vec(arb_doc(), 1..10), q in arb_doc()) {
        let union = docs.iter().fold(KeywordSet::empty(), |acc, d| acc.union(d));
        let inter = docs[1..]
            .iter()
            .fold(docs[0].clone(), |acc, d| acc.intersection(d));
        let bound = tsim_node_upper(&union, &inter, &q);
        for d in &docs {
            prop_assert!(jaccard(d, &q) <= bound + 1e-12);
        }
    }

    /// MaxDom/MinDom bracket the true count of objects whose similarity
    /// exceeds the threshold, for any concrete document multiset — under
    /// every text model.
    #[test]
    fn dom_bounds_bracket_truth(
        docs in proptest::collection::vec(arb_doc(), 1..15),
        s in proptest::collection::vec(0u32..22, 0..5),
        tau in -0.2..1.2f64,
        model in arb_model(),
    ) {
        let s = KeywordSet::from_ids(s);
        let mut kcm = KeywordCountMap::new();
        for d in &docs {
            kcm.add_doc(d);
        }
        let prep = PreparedNode::new(&NodeSummary {
            mbr: Rect::point(Point::new(0.0, 0.0)),
            cnt: docs.len() as u32,
            kcm,
        });
        let truth = docs
            .iter()
            .filter(|d| model.similarity(d, &s) > tau)
            .count() as u32;
        let lo = min_dom(&prep, &s, tau, model);
        let hi = max_dom(&prep, &s, tau, model);
        prop_assert!(lo <= truth, "{model:?}: min_dom {lo} > truth {truth}");
        prop_assert!(truth <= hi, "{model:?}: truth {truth} > max_dom {hi}");
    }

    /// The generalised node bound (Theorem 1 per model) dominates every
    /// member's similarity.
    #[test]
    fn node_bound_dominates_per_model(
        docs in proptest::collection::vec(arb_doc(), 1..10),
        q in arb_doc(),
        model in arb_model(),
    ) {
        let union = docs.iter().fold(KeywordSet::empty(), |acc, d| acc.union(d));
        let inter = docs[1..]
            .iter()
            .fold(docs[0].clone(), |acc, d| acc.intersection(d));
        let bound = model.node_upper(&union, &inter, &q);
        for d in &docs {
            prop_assert!(
                model.similarity(d, &q) <= bound + 1e-12,
                "{model:?}: {} > {bound}",
                model.similarity(d, &q)
            );
        }
    }

    /// Emitted stream order is non-increasing in score and exhaustive.
    #[test]
    fn stream_is_sorted_and_complete(ds in arb_dataset(40), q in arb_query()) {
        let tree = SetRTree::build(pool(), &ds, 4).unwrap();
        let mut search = wnsk_index::TopKSearch::new(&tree, q);
        let mut seen = std::collections::HashSet::new();
        let mut last = f64::INFINITY;
        while let Some((id, score)) = search.next_object().unwrap() {
            prop_assert!(score <= last + 1e-12);
            last = score;
            prop_assert!(seen.insert(id), "object emitted twice");
        }
        prop_assert_eq!(seen.len(), ds.len());
    }

    /// Both trees round-trip through their on-disk format: reopening the
    /// storage yields identical query results.
    #[test]
    fn reopen_preserves_results(ds in arb_dataset(40), q in arb_query()) {
        let p = pool();
        let want;
        {
            let tree = SetRTree::build(Arc::clone(&p), &ds, 4).unwrap();
            want = tree.top_k(&q).unwrap();
        }
        let tree = SetRTree::open(p).unwrap();
        prop_assert_eq!(tree.top_k(&q).unwrap(), want);
    }
}
