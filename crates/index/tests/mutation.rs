//! Property tests for the incremental mutation paths: after a randomized
//! sequence of inserts, deletes, and keyword updates,
//!
//! 1. every stored node aggregate (SetR union/intersection, KcR
//!    `cnt`/`kcm`, both trees' MBRs) equals a recomputation from the
//!    subtree's member documents — the bounds stay *exact*, not merely
//!    conservative;
//! 2. the mutated trees answer top-k and rank queries identically to a
//!    fresh STR bulk load over the same surviving objects; and
//! 3. the `MaxDom`/`MinDom` prune decisions computed from the mutated
//!    KcR-tree's summaries agree with the freshly built twin.

use proptest::prelude::*;
use std::sync::Arc;
use wnsk_geo::{Point, Rect, WorldBounds};
use wnsk_index::kcr::{max_dom, min_dom, PreparedNode};
use wnsk_index::setr::{SetRTree, SetrNode};
use wnsk_index::{
    Dataset, KcrNode, KcrTree, NodeSummary, ObjectId, RankMode, SpatialKeywordQuery, SpatialObject,
};
use wnsk_storage::{BlobRef, BufferPool, BufferPoolConfig, MemBackend};
use wnsk_text::{KeywordCountMap, KeywordSet, TextModel};

const FANOUT: usize = 4;

fn pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::new(
        Arc::new(MemBackend::new()),
        BufferPoolConfig::default(),
    ))
}

fn arb_doc() -> impl Strategy<Value = KeywordSet> {
    proptest::collection::vec(0u32..20, 1..6).prop_map(KeywordSet::from_ids)
}

/// One step of a mutation script. Object choices are sampling indexes so
/// the script stays valid however the live set evolves.
#[derive(Clone, Debug)]
enum Op {
    Insert {
        x: f64,
        y: f64,
        doc: KeywordSet,
    },
    Remove {
        pick: prop::sample::Index,
    },
    Update {
        pick: prop::sample::Index,
        doc: KeywordSet,
    },
}

fn arb_ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    // Weighted choice via a selector range: 0-2 insert, 3-4 remove,
    // 5 update.
    let op = (
        0u32..6,
        0.0..1.0f64,
        0.0..1.0f64,
        arb_doc(),
        any::<prop::sample::Index>(),
    )
        .prop_map(|(sel, x, y, doc, pick)| match sel {
            0..=2 => Op::Insert { x, y, doc },
            3..=4 => Op::Remove { pick },
            _ => Op::Update { pick, doc },
        });
    proptest::collection::vec(op, 1..max)
}

fn arb_dataset(max_n: usize) -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64, arb_doc()), 1..max_n).prop_map(|items| {
        let objects = items
            .into_iter()
            .map(|(x, y, doc)| SpatialObject {
                id: ObjectId(0),
                loc: Point::new(x, y),
                doc,
            })
            .collect();
        Dataset::new(objects, WorldBounds::unit())
    })
}

fn arb_query() -> impl Strategy<Value = SpatialKeywordQuery> {
    (
        0.0..1.0f64,
        0.0..1.0f64,
        proptest::collection::vec(0u32..22, 0..4),
        1usize..8,
        0.05..0.95f64,
    )
        .prop_map(|(x, y, doc, k, alpha)| {
            SpatialKeywordQuery::new(Point::new(x, y), KeywordSet::from_ids(doc), k, alpha)
        })
}

/// Applies the script to the dataset and both trees in lockstep.
fn apply_ops(ds: &mut Dataset, setr: &mut SetRTree, kcr: &mut KcrTree, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Insert { x, y, doc } => {
                let loc = Point::new(*x, *y);
                let id = ds.insert(loc, doc.clone()).unwrap();
                setr.insert(id, loc, doc).unwrap();
                kcr.insert(id, loc, doc).unwrap();
            }
            Op::Remove { pick } => {
                let live: Vec<&SpatialObject> = ds.live_objects().collect();
                if live.is_empty() {
                    continue;
                }
                let o = live[pick.index(live.len())];
                let (id, loc) = (o.id, o.loc);
                ds.remove(id).unwrap();
                setr.remove(id, loc).unwrap();
                kcr.remove(id, loc).unwrap();
            }
            Op::Update { pick, doc } => {
                let live: Vec<&SpatialObject> = ds.live_objects().collect();
                if live.is_empty() {
                    continue;
                }
                let o = live[pick.index(live.len())];
                let (id, loc) = (o.id, o.loc);
                ds.update_doc(id, doc.clone()).unwrap();
                setr.update_doc(id, loc, doc).unwrap();
                kcr.update_doc(id, loc, doc).unwrap();
            }
        }
    }
}

/// Recomputed aggregates of a SetR subtree.
struct SetrAgg {
    mbr: Rect,
    union: KeywordSet,
    inter: KeywordSet,
    n: usize,
}

/// Walks a SetR subtree, asserting every stored aggregate payload equals
/// the recomputation from the member documents.
fn check_setr(tree: &SetRTree, node: BlobRef, level: u32) -> SetrAgg {
    match tree.read_node(node).unwrap() {
        SetrNode::Leaf(entries) => {
            assert_eq!(level, 1, "leaves must all sit at level 1");
            assert!(entries.len() <= FANOUT, "leaf overflows the fanout");
            let mut mbr = Rect::EMPTY;
            let mut union = KeywordSet::empty();
            let mut inter: Option<KeywordSet> = None;
            let n = entries.len();
            for e in &entries {
                mbr = mbr.union(&Rect::point(e.loc));
                let doc = tree.read_keyword_set(e.doc).unwrap();
                union = union.union(&doc);
                inter = Some(match inter {
                    None => doc,
                    Some(acc) => acc.intersection(&doc),
                });
            }
            SetrAgg {
                mbr,
                union,
                inter: inter.unwrap_or_else(KeywordSet::empty),
                n,
            }
        }
        SetrNode::Internal(entries) => {
            assert!(level > 1);
            assert!(!entries.is_empty(), "internal nodes never go empty");
            assert!(
                entries.len() <= FANOUT,
                "internal node overflows the fanout"
            );
            let mut mbr = Rect::EMPTY;
            let mut union = KeywordSet::empty();
            let mut inter: Option<KeywordSet> = None;
            let mut n = 0usize;
            for e in &entries {
                let sub = check_setr(tree, e.child, level - 1);
                assert!(sub.n > 0, "child subtrees never go empty");
                assert_eq!(e.mbr, sub.mbr, "stored MBR drifted from the subtree");
                let stored_union = tree.read_keyword_set(e.union).unwrap();
                let stored_inter = tree.read_keyword_set(e.intersection).unwrap();
                assert!(stored_union == sub.union, "stored union set drifted");
                assert!(stored_inter == sub.inter, "stored intersection set drifted");
                mbr = mbr.union(&sub.mbr);
                union = union.union(&sub.union);
                inter = Some(match inter {
                    None => sub.inter,
                    Some(acc) => acc.intersection(&sub.inter),
                });
                n += sub.n;
            }
            SetrAgg {
                mbr,
                union,
                inter: inter.unwrap_or_else(KeywordSet::empty),
                n,
            }
        }
    }
}

/// Recomputed aggregates of a KcR subtree.
struct KcrAgg {
    mbr: Rect,
    cnt: u32,
    kcm: KeywordCountMap,
}

/// Walks a KcR subtree, asserting every stored `cnt`/`kcm`/MBR equals the
/// recomputation from the member documents.
fn check_kcr(tree: &KcrTree, node: BlobRef, level: u32) -> KcrAgg {
    match tree.read_node(node).unwrap() {
        KcrNode::Leaf(entries) => {
            assert_eq!(level, 1, "leaves must all sit at level 1");
            assert!(entries.len() <= FANOUT, "leaf overflows the fanout");
            let mut mbr = Rect::EMPTY;
            let mut kcm = KeywordCountMap::new();
            for e in &entries {
                mbr = mbr.union(&Rect::point(e.loc));
                kcm.add_doc(&tree.read_doc(e.doc).unwrap());
            }
            KcrAgg {
                mbr,
                cnt: entries.len() as u32,
                kcm,
            }
        }
        KcrNode::Internal(entries) => {
            assert!(level > 1);
            assert!(!entries.is_empty(), "internal nodes never go empty");
            assert!(
                entries.len() <= FANOUT,
                "internal node overflows the fanout"
            );
            let mut mbr = Rect::EMPTY;
            let mut cnt = 0u32;
            let mut kcm = KeywordCountMap::new();
            for e in &entries {
                let sub = check_kcr(tree, e.child, level - 1);
                assert!(sub.cnt > 0, "child subtrees never go empty");
                assert_eq!(e.mbr, sub.mbr, "stored MBR drifted from the subtree");
                assert_eq!(e.cnt, sub.cnt, "stored cnt drifted from the subtree");
                let stored_kcm = tree.read_kcm(e.kcm).unwrap();
                assert!(stored_kcm == sub.kcm, "stored kcm drifted from the subtree");
                mbr = mbr.union(&sub.mbr);
                cnt += sub.cnt;
                kcm.merge(&sub.kcm);
            }
            KcrAgg { mbr, cnt, kcm }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Acceptance criterion of the mutable-index tentpole: after a random
    /// mutation sequence, every per-node aggregate equals the
    /// recomputation over survivors, and the mutated trees answer
    /// identically to a fresh STR bulk load of the same dataset.
    #[test]
    fn mutated_trees_match_fresh_bulk_load(
        ds in arb_dataset(24),
        ops in arb_ops(30),
        q in arb_query(),
    ) {
        let mut ds = ds;
        let mut setr = SetRTree::build(pool(), &ds, FANOUT).unwrap();
        let mut kcr = KcrTree::build(pool(), &ds, FANOUT).unwrap();
        apply_ops(&mut ds, &mut setr, &mut kcr, &ops);

        // Per-node aggregates are exact.
        let live = ds.live_len() as u64;
        prop_assert_eq!(setr.len(), live);
        prop_assert_eq!(kcr.len(), live);
        let s_agg = check_setr(&setr, setr.root(), setr.height());
        prop_assert_eq!(s_agg.n as u64, live);
        let k_agg = check_kcr(&kcr, kcr.root(), kcr.height());
        prop_assert_eq!(k_agg.cnt as u64, live);

        // Fresh bulk loads over the mutated dataset (same surviving
        // objects, same ids — tombstones are skipped by the builder).
        let fresh_setr = SetRTree::build(pool(), &ds, FANOUT).unwrap();
        let fresh_kcr = KcrTree::build(pool(), &ds, FANOUT).unwrap();

        // Identical query answers, and both match brute force.
        let want: Vec<ObjectId> = ds.top_k(&q).iter().map(|t| t.0).collect();
        if live > 0 {
            let got: Vec<ObjectId> = setr.top_k(&q).unwrap().iter().map(|t| t.0).collect();
            let fresh: Vec<ObjectId> =
                fresh_setr.top_k(&q).unwrap().iter().map(|t| t.0).collect();
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(&fresh, &want);
            let got: Vec<ObjectId> = kcr.top_k(&q).unwrap().iter().map(|t| t.0).collect();
            prop_assert_eq!(&got, &want);
        }

        // The mutated KcR root summary is byte-for-byte the fresh one, so
        // every MaxDom/MinDom bound — and hence every prune decision —
        // agrees between the two trees.
        let mutated = kcr.root_summary().unwrap();
        let fresh = fresh_kcr.root_summary().unwrap();
        prop_assert_eq!(mutated.cnt, fresh.cnt);
        prop_assert!(mutated.kcm == fresh.kcm, "root kcm differs from fresh bulk load");
        if live > 0 {
            prop_assert_eq!(mutated.mbr, fresh.mbr);
        }
        dom_decisions_agree(&mutated, &fresh, &q.doc)?;
    }

    /// Rank search through a mutated SetR-tree equals the brute-force
    /// definition (Eqn. 3) in both modes.
    #[test]
    fn mutated_rank_search_equals_definition(
        ds in arb_dataset(20),
        ops in arb_ops(20),
        q in arb_query(),
        pick in any::<prop::sample::Index>(),
    ) {
        let mut ds = ds;
        let mut setr = SetRTree::build(pool(), &ds, FANOUT).unwrap();
        let mut kcr = KcrTree::build(pool(), &ds, FANOUT).unwrap();
        apply_ops(&mut ds, &mut setr, &mut kcr, &ops);
        let live: Vec<ObjectId> = ds.live_objects().map(|o| o.id).collect();
        prop_assume!(!live.is_empty());
        let target = live[pick.index(live.len())];
        let score = ds.score(ds.object(target), &q);
        let want = ds.rank_of(target, &q);
        for mode in [RankMode::StopAtScore, RankMode::UntilFound] {
            let got = setr.rank_of(&q, target, score, None, mode).unwrap();
            prop_assert_eq!(got.rank(), Some(want));
        }
    }
}

/// Asserts `max_dom`/`min_dom` produce identical bounds from the two
/// summaries across models and thresholds — identical bounds mean the
/// bound-and-prune driver takes identical prune decisions.
fn dom_decisions_agree(
    mutated: &NodeSummary,
    fresh: &NodeSummary,
    s: &KeywordSet,
) -> std::result::Result<(), TestCaseError> {
    let pm = PreparedNode::new(mutated);
    let pf = PreparedNode::new(fresh);
    for model in [TextModel::Jaccard, TextModel::Dice, TextModel::Cosine] {
        for tau in [0.0, 0.25, 0.5, 0.75, 1.0] {
            prop_assert_eq!(
                max_dom(&pm, s, tau, model),
                max_dom(&pf, s, tau, model),
                "MaxDom diverged at tau={}",
                tau
            );
            prop_assert_eq!(
                min_dom(&pm, s, tau, model),
                min_dom(&pf, s, tau, model),
                "MinDom diverged at tau={}",
                tau
            );
        }
    }
    Ok(())
}
