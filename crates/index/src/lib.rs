//! Disk-resident spatio-textual indexes for the why-not spatial keyword
//! library.
//!
//! Two index structures from the paper are implemented on top of the
//! `wnsk-storage` page substrate:
//!
//! * [`SetRTree`] — an IR-tree variant whose internal entries carry the
//!   *union* and *intersection* keyword sets of their subtree (§IV-B).
//!   Theorem 1 turns those sets into a per-node upper bound on the ranking
//!   score, powering the incremental best-first [`TopKSearch`] and the
//!   rank-of-object search used by the basic why-not algorithm.
//! * [`KcrTree`] — the Keyword-count R-tree (§V-A, after \[22\]): internal
//!   entries carry a keyword-count map and subtree cardinality, from which
//!   [`kcr::max_dom`] / [`kcr::min_dom`] bound the number of dominators of
//!   a missing object inside a subtree *without descending into it*
//!   (Theorems 2 & 3, Algorithm 2).
//!
//! Both trees are STR bulk-loaded ([`str_pack`]), store nodes as
//! blob-chained pages, and route every access through the buffer pool so
//! experiments can meter physical I/O exactly as the paper does. The
//! shared object/dataset model ([`model`]) includes deliberately naive
//! brute-force evaluators used as ground truth by the test suites.

mod descend;
pub mod kcr;
pub mod model;
pub mod payload;
pub mod query;
pub mod setr;
pub mod stats;
pub mod str_pack;
mod stream;
mod util;

pub use descend::{LeafSimKernel, ScoredChildren};
pub use kcr::{KcrEntry, KcrNode, KcrTree, NodeSummary};
pub use model::{Dataset, ObjectId, SpatialObject};
pub use query::{st_score, tsim_node_upper, SpatialKeywordQuery};
pub use setr::{RankMode, RankOutcome, SetRTree, TopKSearch};
pub use stats::TraversalStats;
pub use stream::ObjectStream;
pub use util::OrdF64;
