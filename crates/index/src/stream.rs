//! A common interface over the incremental best-first searches of both
//! trees, letting the why-not algorithms run rank scans generically.

use crate::model::ObjectId;
use wnsk_storage::Result;

/// A stream of objects in non-increasing ranking-score order.
///
/// Implemented by [`crate::TopKSearch`] (SetR-tree) and
/// [`crate::kcr::KcrTopKSearch`] (KcR-tree).
pub trait ObjectStream {
    /// Pulls the next-best object, or `None` when the dataset is
    /// exhausted.
    fn next_object(&mut self) -> Result<Option<(ObjectId, f64)>>;
}

impl ObjectStream for crate::setr::TopKSearch<'_> {
    fn next_object(&mut self) -> Result<Option<(ObjectId, f64)>> {
        crate::setr::TopKSearch::next_object(self)
    }
}

impl ObjectStream for crate::kcr::KcrTopKSearch<'_> {
    fn next_object(&mut self) -> Result<Option<(ObjectId, f64)>> {
        crate::kcr::KcrTopKSearch::next_object(self)
    }
}
