//! The spatio-textual object model shared by the indexes, the dataset
//! generators and the why-not algorithms.
//!
//! [`Dataset`] also carries deliberately naive brute-force evaluators
//! (`top_k`, `rank_of`); the index search paths are property-tested against
//! them.

use crate::query::SpatialKeywordQuery;
use crate::st_score;
use crate::util::OrdF64;
use std::fmt;
use wnsk_geo::{Point, WorldBounds};
use wnsk_text::{CorpusStats, KeywordSet};

/// Identifier of an object in a [`Dataset`] — its index in the object
/// vector.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The raw vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A spatial web object: a point location plus a keyword document
/// (`(o.loc, o.doc)` in §III-A).
#[derive(Clone, Debug, PartialEq)]
pub struct SpatialObject {
    pub id: ObjectId,
    pub loc: Point,
    pub doc: KeywordSet,
}

/// A complete dataset: objects, the world bounds normalising distances,
/// and corpus statistics for the particularity weights.
///
/// # Mutability
///
/// The dataset is mutable through [`insert`](Dataset::insert),
/// [`remove`](Dataset::remove) and [`update_doc`](Dataset::update_doc).
/// Object ids are *stable*: a removed object leaves a tombstone (its slot
/// keeps the location and document so concurrent readers of an older
/// snapshot still resolve it) and ids are never reused. [`len`] therefore
/// counts slots; [`live_len`](Dataset::live_len) counts surviving
/// objects, and every brute-force evaluator skips tombstones. Corpus
/// statistics are maintained incrementally and always equal a fresh
/// [`CorpusStats::from_docs`] over the live documents.
///
/// [`len`]: Dataset::len
#[derive(Clone, Debug)]
pub struct Dataset {
    objects: Vec<SpatialObject>,
    /// `live[i]` ⇔ slot `i` is not a tombstone. Always `objects.len()` long.
    live: Vec<bool>,
    n_live: usize,
    world: WorldBounds,
    corpus: CorpusStats,
}

impl Dataset {
    /// Builds a dataset; object ids are reassigned to be dense in input
    /// order, and corpus statistics are derived from the documents.
    ///
    /// `world` may be wider than the objects' extent (e.g. the unit square
    /// for generated data); it must enclose every object.
    pub fn new(mut objects: Vec<SpatialObject>, world: WorldBounds) -> Self {
        for (i, o) in objects.iter_mut().enumerate() {
            o.id = ObjectId(i as u32);
            assert!(
                world.rect().contains_point(&o.loc),
                "object {i} at {:?} outside world bounds",
                o.loc
            );
        }
        let corpus = CorpusStats::from_docs(objects.iter().map(|o| &o.doc));
        let n_live = objects.len();
        Dataset {
            live: vec![true; n_live],
            n_live,
            objects,
            world,
            corpus,
        }
    }

    /// Builds a dataset computing the world bounds from the objects.
    ///
    /// Returns [`wnsk_storage::StorageError::InvalidArgument`] when
    /// `objects` is empty — there is no extent to infer bounds from.
    pub fn with_inferred_world(objects: Vec<SpatialObject>) -> wnsk_storage::Result<Self> {
        let world = WorldBounds::from_points(objects.iter().map(|o| o.loc)).ok_or_else(|| {
            wnsk_storage::StorageError::invalid_argument(
                "dataset",
                "cannot infer world bounds from an empty dataset",
            )
        })?;
        Ok(Self::new(objects, world))
    }

    /// All object slots in id order — *including* tombstones. Scans that
    /// must reflect the current dataset should use
    /// [`live_objects`](Dataset::live_objects) instead.
    #[inline]
    pub fn objects(&self) -> &[SpatialObject] {
        &self.objects
    }

    /// Number of object slots (live + tombstoned) — the exclusive upper
    /// bound on valid [`ObjectId`]s.
    #[inline]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when the dataset has no object slots at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Number of live (non-tombstoned) objects, `|D|`.
    #[inline]
    pub fn live_len(&self) -> usize {
        self.n_live
    }

    /// `true` when slot `id` exists and is not a tombstone.
    #[inline]
    pub fn is_live(&self, id: ObjectId) -> bool {
        self.live.get(id.index()).copied().unwrap_or(false)
    }

    /// The live objects in id order.
    pub fn live_objects(&self) -> impl Iterator<Item = &SpatialObject> {
        self.objects
            .iter()
            .zip(&self.live)
            .filter_map(|(o, &alive)| alive.then_some(o))
    }

    /// Object lookup. Tombstoned slots still resolve (their location and
    /// document are retained for readers of pre-removal snapshots).
    #[inline]
    pub fn object(&self, id: ObjectId) -> &SpatialObject {
        &self.objects[id.index()]
    }

    /// Appends a live object and returns its freshly assigned id.
    ///
    /// Returns [`wnsk_storage::StorageError::InvalidArgument`] when `loc`
    /// falls outside the world bounds (the normalised-distance model of
    /// Eqn. 2 is only meaningful inside them).
    pub fn insert(&mut self, loc: Point, doc: KeywordSet) -> wnsk_storage::Result<ObjectId> {
        if !self.world.rect().contains_point(&loc) {
            return Err(wnsk_storage::StorageError::invalid_argument(
                "dataset insert",
                format!("location {loc:?} outside the world bounds"),
            ));
        }
        let id = ObjectId(self.objects.len() as u32);
        self.corpus.add_doc(&doc);
        self.objects.push(SpatialObject { id, loc, doc });
        self.live.push(true);
        self.n_live += 1;
        Ok(id)
    }

    /// Tombstones a live object. Its id is never reused; its slot keeps
    /// the location and document.
    ///
    /// Returns [`wnsk_storage::StorageError::InvalidArgument`] when `id`
    /// is out of bounds or already tombstoned.
    pub fn remove(&mut self, id: ObjectId) -> wnsk_storage::Result<()> {
        if !self.is_live(id) {
            return Err(wnsk_storage::StorageError::invalid_argument(
                "dataset remove",
                format!("{id:?} does not name a live object"),
            ));
        }
        self.live[id.index()] = false;
        self.n_live -= 1;
        self.corpus.remove_doc(&self.objects[id.index()].doc);
        Ok(())
    }

    /// Replaces a live object's keyword document, keeping its location
    /// and id.
    ///
    /// Returns [`wnsk_storage::StorageError::InvalidArgument`] when `id`
    /// is out of bounds or tombstoned.
    pub fn update_doc(&mut self, id: ObjectId, doc: KeywordSet) -> wnsk_storage::Result<()> {
        if !self.is_live(id) {
            return Err(wnsk_storage::StorageError::invalid_argument(
                "dataset update",
                format!("{id:?} does not name a live object"),
            ));
        }
        let old = std::mem::replace(&mut self.objects[id.index()].doc, doc);
        self.corpus.remove_doc(&old);
        self.corpus.add_doc(&self.objects[id.index()].doc);
        Ok(())
    }

    /// World bounds used for distance normalisation.
    #[inline]
    pub fn world(&self) -> &WorldBounds {
        &self.world
    }

    /// Corpus document frequencies (drive Eqn. 7 particularity).
    #[inline]
    pub fn corpus(&self) -> &CorpusStats {
        &self.corpus
    }

    /// Exact ranking score `ST(o, q)` of Eqn. 1.
    pub fn score(&self, o: &SpatialObject, q: &SpatialKeywordQuery) -> f64 {
        let sdist = self.world.normalized_dist(&o.loc, &q.loc);
        let tsim = q.sim.similarity(&o.doc, &q.doc);
        st_score(q.alpha, sdist, tsim)
    }

    /// Brute-force top-k over the live objects: ids and scores sorted by
    /// descending score, ties broken by ascending object id (the
    /// deterministic order every search path in this workspace uses).
    pub fn top_k(&self, q: &SpatialKeywordQuery) -> Vec<(ObjectId, f64)> {
        let mut scored: Vec<(ObjectId, f64)> = self
            .live_objects()
            .map(|o| (o.id, self.score(o, q)))
            .collect();
        scored.sort_by(|a, b| OrdF64::new(b.1).cmp(&OrdF64::new(a.1)).then(a.0.cmp(&b.0)));
        scored.truncate(q.k);
        scored
    }

    /// Brute-force rank `R(o, q)` of Eqn. 3: one plus the number of live
    /// objects with a *strictly* higher score.
    pub fn rank_of(&self, id: ObjectId, q: &SpatialKeywordQuery) -> usize {
        let target = self.score(self.object(id), q);
        1 + self
            .live_objects()
            .filter(|o| self.score(o, q) > target)
            .count()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use wnsk_geo::Rect;

    /// The four-object example of Fig. 1 of the paper.
    ///
    /// The figure gives scores directly (1 − SDist and TSim per object);
    /// we reconstruct locations on a line so that the normalised distances
    /// reproduce the table exactly: world = [0,10]×[0,0] has diagonal 10,
    /// so an object at x = d has SDist = d/10 from a query at x = 0.
    pub(crate) fn figure1_dataset() -> (Dataset, SpatialKeywordQuery) {
        let t = |ids: &[u32]| KeywordSet::from_ids(ids.iter().copied());
        let obj = |x: f64, doc: KeywordSet| SpatialObject {
            id: ObjectId(0),
            loc: Point::new(x, 0.0),
            doc,
        };
        let objects = vec![
            obj(5.0, t(&[1, 2, 3])), // m:  1−SDist=0.5,  TSim=2/3
            obj(8.0, t(&[1])),       // o1: 1−SDist=0.2,  TSim=1/2
            obj(1.0, t(&[1, 3])),    // o2: 1−SDist=0.9,  TSim=1/3
            obj(6.0, t(&[1, 2])),    // o3: 1−SDist=0.4,  TSim=1
        ];
        let world = WorldBounds::new(Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0)));
        let q = SpatialKeywordQuery::new(Point::new(0.0, 0.0), t(&[1, 2]), 1, 0.5);
        (Dataset::new(objects, world), q)
    }

    #[test]
    fn figure1_scores_match_paper() {
        let (ds, q) = figure1_dataset();
        let st: Vec<f64> = ds.objects().iter().map(|o| ds.score(o, &q)).collect();
        // Paper Fig. 1(b) rounds TSim to two decimals (0.66, 0.33); the
        // exact values are 2/3 and 1/3, giving m = 0.5833 (printed 0.58)
        // and o2 = 0.6167 (printed 0.615 = 0.45 + 0.33/2).
        assert!((st[0] - (0.5 * 0.5 + 0.5 * (2.0 / 3.0))).abs() < 1e-12);
        assert!((st[1] - 0.35).abs() < 1e-12);
        assert!((st[2] - (0.5 * 0.9 + 0.5 / 3.0)).abs() < 1e-12);
        assert!((st[3] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn figure1_rank_of_m_is_three() {
        let (ds, q) = figure1_dataset();
        assert_eq!(ds.rank_of(ObjectId(0), &q), 3);
    }

    #[test]
    fn figure1_top1_is_o3() {
        let (ds, q) = figure1_dataset();
        let top = ds.top_k(&q);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0, ObjectId(3));
    }

    #[test]
    fn top_k_truncates_and_sorts() {
        let (ds, mut q) = figure1_dataset();
        q.k = 2;
        let top = ds.top_k(&q);
        assert_eq!(
            top.iter().map(|t| t.0).collect::<Vec<_>>(),
            vec![ObjectId(3), ObjectId(2)]
        );
        q.k = 100; // larger than the dataset
        assert_eq!(ds.top_k(&q).len(), 4);
    }

    #[test]
    fn rank_ignores_ties() {
        // Two identical objects share a rank.
        let t = KeywordSet::from_ids([1]);
        let objects = vec![
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.5, 0.5),
                doc: t.clone(),
            },
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.5, 0.5),
                doc: t.clone(),
            },
        ];
        let ds = Dataset::new(objects, WorldBounds::unit());
        let q = SpatialKeywordQuery::new(Point::new(0.0, 0.0), t, 1, 0.5);
        assert_eq!(ds.rank_of(ObjectId(0), &q), 1);
        assert_eq!(ds.rank_of(ObjectId(1), &q), 1);
    }

    #[test]
    #[should_panic(expected = "outside world bounds")]
    fn object_outside_world_is_rejected() {
        let objects = vec![SpatialObject {
            id: ObjectId(0),
            loc: Point::new(2.0, 2.0),
            doc: KeywordSet::empty(),
        }];
        Dataset::new(objects, WorldBounds::unit());
    }

    #[test]
    fn ids_are_reassigned_densely() {
        let objects = vec![
            SpatialObject {
                id: ObjectId(42),
                loc: Point::new(0.1, 0.1),
                doc: KeywordSet::empty(),
            },
            SpatialObject {
                id: ObjectId(42),
                loc: Point::new(0.2, 0.2),
                doc: KeywordSet::empty(),
            },
        ];
        let ds = Dataset::new(objects, WorldBounds::unit());
        assert_eq!(ds.object(ObjectId(1)).loc, Point::new(0.2, 0.2));
    }

    #[test]
    fn corpus_stats_derived() {
        let (ds, _) = figure1_dataset();
        // t1 appears in all four documents.
        assert_eq!(ds.corpus().doc_freq(wnsk_text::TermId(1)), 4);
        assert_eq!(ds.corpus().n_docs(), 4);
    }

    #[test]
    fn insert_assigns_the_next_id_and_updates_corpus() {
        let (mut ds, _) = figure1_dataset();
        let id = ds
            .insert(Point::new(2.0, 0.0), KeywordSet::from_ids([1, 9]))
            .unwrap();
        assert_eq!(id, ObjectId(4));
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.live_len(), 5);
        assert_eq!(ds.corpus().doc_freq(wnsk_text::TermId(1)), 5);
        assert_eq!(ds.corpus().doc_freq(wnsk_text::TermId(9)), 1);
        assert!(ds
            .insert(Point::new(99.0, 0.0), KeywordSet::empty())
            .is_err());
    }

    #[test]
    fn remove_tombstones_without_id_reuse() {
        let (mut ds, q) = figure1_dataset();
        ds.remove(ObjectId(3)).unwrap();
        assert_eq!(ds.len(), 4, "the slot stays");
        assert_eq!(ds.live_len(), 3);
        assert!(!ds.is_live(ObjectId(3)));
        // The former winner is gone from brute-force results.
        assert_eq!(ds.top_k(&q)[0].0, ObjectId(2));
        // Its slot still resolves for old-snapshot readers.
        assert_eq!(ds.object(ObjectId(3)).loc, Point::new(6.0, 0.0));
        // Double remove is a typed error.
        assert!(ds.remove(ObjectId(3)).is_err());
        // A subsequent insert gets a *new* id.
        let id = ds
            .insert(Point::new(0.0, 0.0), KeywordSet::empty())
            .unwrap();
        assert_eq!(id, ObjectId(4));
    }

    #[test]
    fn mutations_keep_corpus_equal_to_fresh_build() {
        let (mut ds, _) = figure1_dataset();
        ds.remove(ObjectId(1)).unwrap();
        ds.update_doc(ObjectId(2), KeywordSet::from_ids([2, 7]))
            .unwrap();
        ds.insert(Point::new(3.0, 0.0), KeywordSet::from_ids([3]))
            .unwrap();
        let fresh = CorpusStats::from_docs(ds.live_objects().map(|o| &o.doc));
        assert_eq!(ds.corpus().n_docs(), fresh.n_docs());
        for t in 0..10 {
            let t = wnsk_text::TermId(t);
            assert_eq!(ds.corpus().doc_freq(t), fresh.doc_freq(t), "{t:?}");
        }
    }

    #[test]
    fn rank_of_skips_tombstones() {
        let (mut ds, q) = figure1_dataset();
        assert_eq!(ds.rank_of(ObjectId(0), &q), 3);
        ds.remove(ObjectId(3)).unwrap();
        assert_eq!(ds.rank_of(ObjectId(0), &q), 2, "o3 no longer outranks m");
    }
}
