//! Serialization of keyword payloads (keyword sets and keyword-count
//! maps) stored as blobs next to the tree nodes.

use wnsk_storage::codec::{Reader, Writer};
use wnsk_storage::Result;
use wnsk_text::{KeywordCountMap, KeywordSet, TermId};

/// Encodes a keyword set as `u32 n` followed by `n` sorted `u32` term ids.
pub fn encode_keyword_set(set: &KeywordSet) -> Vec<u8> {
    let mut w = Writer::with_capacity(4 + 4 * set.len());
    w.write_u32(set.len() as u32);
    for t in set.iter() {
        w.write_u32(t.0);
    }
    w.into_vec()
}

/// Decodes a keyword set written by [`encode_keyword_set`].
pub fn decode_keyword_set(bytes: &[u8]) -> Result<KeywordSet> {
    let mut r = Reader::new(bytes, "keyword set payload");
    let n = r.read_u32()? as usize;
    let mut terms = Vec::with_capacity(n);
    for _ in 0..n {
        terms.push(TermId(r.read_u32()?));
    }
    // Stored sorted; re-validate cheaply rather than trusting the disk.
    Ok(KeywordSet::from_terms(terms))
}

/// Encodes a keyword-count map as `u32 n` followed by `(u32 term,
/// u32 count)` pairs in term order.
pub fn encode_kcm(kcm: &KeywordCountMap) -> Vec<u8> {
    let mut w = Writer::with_capacity(4 + 8 * kcm.len());
    w.write_u32(kcm.len() as u32);
    for (t, c) in kcm.iter() {
        w.write_u32(t.0);
        w.write_u32(c);
    }
    w.into_vec()
}

/// Decodes a keyword-count map written by [`encode_kcm`].
pub fn decode_kcm(bytes: &[u8]) -> Result<KeywordCountMap> {
    let mut r = Reader::new(bytes, "keyword count map payload");
    let n = r.read_u32()? as usize;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let t = TermId(r.read_u32()?);
        let c = r.read_u32()?;
        pairs.push((t, c));
    }
    Ok(KeywordCountMap::from_pairs(pairs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_set_roundtrip() {
        for set in [
            KeywordSet::empty(),
            KeywordSet::from_ids([5]),
            KeywordSet::from_ids([1, 2, 3, 1000, u32::MAX - 1]),
        ] {
            let bytes = encode_keyword_set(&set);
            assert_eq!(decode_keyword_set(&bytes).unwrap(), set);
        }
    }

    #[test]
    fn kcm_roundtrip() {
        for kcm in [
            KeywordCountMap::new(),
            KeywordCountMap::from_pairs([(TermId(3), 7), (TermId(1), 2)]),
        ] {
            let bytes = encode_kcm(&kcm);
            assert_eq!(decode_kcm(&bytes).unwrap(), kcm);
        }
    }

    #[test]
    fn truncated_payload_is_error() {
        let set = KeywordSet::from_ids([1, 2, 3]);
        let bytes = encode_keyword_set(&set);
        assert!(decode_keyword_set(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_keyword_set(&bytes[..2]).is_err());
    }
}
