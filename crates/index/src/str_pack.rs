//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Both the SetR-tree and the KcR-tree pack their nodes with the classic
//! STR algorithm (Leutenegger et al.): sort by x into vertical slices,
//! sort each slice by y, and cut runs of `fanout` items into nodes;
//! repeat on the node centers until a single root remains. The paper
//! evaluates static datasets, so bulk loading (rather than dynamic
//! insertion) matches its experimental setup while producing
//! better-clustered nodes.

use wnsk_geo::Rect;

/// One level of the packed tree: `groups[i]` lists the indices (into the
/// level below, or into the input for level 0) gathered under node `i`.
#[derive(Debug, Clone)]
pub struct Level {
    pub groups: Vec<Vec<usize>>,
}

/// Computes the STR grouping for `rects` with the given node `fanout`.
///
/// Returns levels bottom-up; the last level always has exactly one group
/// (the root). An empty input yields a single empty leaf level so callers
/// can still materialise an empty root.
///
/// # Panics
/// Panics if `fanout < 2`.
pub fn str_levels(rects: &[Rect], fanout: usize) -> Vec<Level> {
    assert!(fanout >= 2, "fanout must be at least 2");
    if rects.is_empty() {
        return vec![Level {
            groups: vec![vec![]],
        }];
    }

    let mut levels: Vec<Level> = Vec::new();
    // Current working set: (index into lower level, center rect).
    let mut current: Vec<(usize, Rect)> = rects.iter().copied().enumerate().collect();

    loop {
        let groups = str_partition(&mut current, fanout);
        let done = groups.len() == 1;
        // Compute the MBR of each fresh group for the next round.
        let next: Vec<(usize, Rect)> = groups
            .iter()
            .enumerate()
            .map(|(gi, group)| {
                let mbr = group.iter().fold(Rect::EMPTY, |acc, &(_, r)| acc.union(&r));
                (gi, mbr)
            })
            .collect();
        levels.push(Level {
            groups: groups
                .into_iter()
                .map(|g| g.into_iter().map(|(i, _)| i).collect())
                .collect(),
        });
        if done {
            break;
        }
        current = next;
    }
    levels
}

/// Partitions `items` into STR groups of at most `fanout` members.
fn str_partition(items: &mut [(usize, Rect)], fanout: usize) -> Vec<Vec<(usize, Rect)>> {
    let n = items.len();
    if n <= fanout {
        return vec![items.to_vec()];
    }
    let n_groups = n.div_ceil(fanout);
    // Number of vertical slices.
    let s = (n_groups as f64).sqrt().ceil() as usize;
    let slice_len = s * fanout;

    items.sort_by(|a, b| {
        a.1.center()
            .x
            .total_cmp(&b.1.center().x)
            .then_with(|| a.0.cmp(&b.0))
    });

    let mut groups = Vec::with_capacity(n_groups);
    for slice in items.chunks_mut(slice_len) {
        slice.sort_by(|a, b| {
            a.1.center()
                .y
                .total_cmp(&b.1.center().y)
                .then_with(|| a.0.cmp(&b.0))
        });
        for group in slice.chunks(fanout) {
            groups.push(group.to_vec());
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnsk_geo::Point;

    fn point_rects(n: usize) -> Vec<Rect> {
        // A deterministic scatter over the unit square.
        (0..n)
            .map(|i| {
                let x = (i as f64 * 0.61803398875) % 1.0;
                let y = (i as f64 * 0.3819660113) % 1.0;
                Rect::point(Point::new(x, y))
            })
            .collect()
    }

    fn check_partition_invariants(rects: &[Rect], fanout: usize) {
        let levels = str_levels(rects, fanout);
        // Level 0 covers every input exactly once.
        let mut seen = vec![false; rects.len()];
        for g in &levels[0].groups {
            assert!(g.len() <= fanout, "leaf group exceeds fanout");
            for &i in g {
                assert!(!seen[i], "input {i} grouped twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "some input never grouped");
        // Each level references the one below exactly once.
        for w in levels.windows(2) {
            let below = w[0].groups.len();
            let mut seen = vec![false; below];
            for g in &w[1].groups {
                assert!(g.len() <= fanout);
                assert!(!g.is_empty());
                for &i in g {
                    assert!(i < below);
                    assert!(!seen[i]);
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&b| b));
        }
        // Root level is a single group.
        assert_eq!(levels.last().unwrap().groups.len(), 1);
    }

    #[test]
    fn small_input_single_leaf() {
        let rects = point_rects(5);
        let levels = str_levels(&rects, 10);
        assert_eq!(levels.len(), 1);
        assert_eq!(levels[0].groups.len(), 1);
        assert_eq!(levels[0].groups[0].len(), 5);
    }

    #[test]
    fn empty_input_yields_empty_root() {
        let levels = str_levels(&[], 10);
        assert_eq!(levels.len(), 1);
        assert_eq!(levels[0].groups, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn invariants_hold_across_sizes() {
        for n in [1, 9, 10, 11, 99, 100, 101, 1000, 2357] {
            check_partition_invariants(&point_rects(n), 10);
        }
    }

    #[test]
    fn invariants_hold_for_paper_fanout() {
        check_partition_invariants(&point_rects(12_345), 100);
    }

    #[test]
    fn builds_multiple_levels() {
        let rects = point_rects(1000);
        let levels = str_levels(&rects, 10);
        // 1000 leaves of ≤10 → ≥100 leaf nodes → ≥10 internal → 1 root.
        assert!(
            levels.len() >= 3,
            "expected ≥3 levels, got {}",
            levels.len()
        );
    }

    #[test]
    fn groups_are_spatially_coherent() {
        // STR should give groups whose total MBR area is far below random
        // grouping. Sanity-check that leaf MBRs are small.
        let rects = point_rects(1000);
        let levels = str_levels(&rects, 10);
        let avg_area: f64 = levels[0]
            .groups
            .iter()
            .map(|g| {
                g.iter()
                    .fold(Rect::EMPTY, |acc, &i| acc.union(&rects[i]))
                    .area()
            })
            .sum::<f64>()
            / levels[0].groups.len() as f64;
        // Random groups of 10 over a unit square would average ~0.5 area;
        // STR tiles should be around 1/100 of the square.
        assert!(avg_area < 0.05, "avg leaf MBR area too large: {avg_area}");
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn tiny_fanout_rejected() {
        str_levels(&point_rects(3), 1);
    }
}
