//! Traversal-level observability shared by both trees.

use wnsk_obs::{names, Counter, Registry, TracePayload, Tracer};

/// Counters describing what a tree traversal did: nodes actually read
/// and decoded, subtrees skipped thanks to score bounds, and — for the
/// KcR-tree — candidates retired by the Theorem 2/3 dominance bounds.
///
/// Every tree owns a `TraversalStats`; it starts detached (counting into
/// private counters) and can be published into a shared
/// [`Registry`] with [`TraversalStats::register`], after which the same
/// counters show up in unified query reports.
#[derive(Clone, Debug, Default)]
pub struct TraversalStats {
    /// Nodes read and decoded during search or bound-and-prune.
    pub node_visits: Counter,
    /// Subtrees that were enqueued (or enumerated) but never descended
    /// into because a bound proved them useless.
    pub nodes_pruned: Counter,
    /// Candidates retired because `MaxDom` converged with `MinDom`
    /// (Theorem 2 made the dominator count exact without object access).
    pub prune_maxdom: Counter,
    /// Candidates deactivated because the `MinDom` penalty lower bound
    /// already exceeded the best refined query (Theorem 3).
    pub prune_mindom: Counter,
    /// Emits per-prune trace events when enabled; [`Tracer::off`] (free)
    /// otherwise.
    tracer: Tracer,
}

impl TraversalStats {
    /// Fresh zeroed counters not attached to any registry.
    pub fn detached() -> Self {
        Self::default()
    }

    /// Publishes the counters under `prefix` (e.g. `"kcr."` yields
    /// `kcr.node_visits` …). `dom_bounds` controls whether the
    /// Theorem 2/3 counters are published too — the SetR-tree has no
    /// dominance bounds, so registering them would only add permanent
    /// zero rows to every report.
    ///
    /// If a name already exists in the registry, this stats object
    /// adopts the existing counter (see
    /// [`Registry::register_counter`]).
    pub fn register(&mut self, registry: &Registry, prefix: &str, dom_bounds: bool) {
        self.node_visits = registry.register_counter(
            &format!("{prefix}{}", names::NODE_VISITS),
            self.node_visits.clone(),
        );
        self.nodes_pruned = registry.register_counter(
            &format!("{prefix}{}", names::NODES_PRUNED),
            self.nodes_pruned.clone(),
        );
        if dom_bounds {
            self.prune_maxdom = registry.register_counter(
                &format!("{prefix}{}", names::PRUNE_MAXDOM),
                self.prune_maxdom.clone(),
            );
            self.prune_mindom = registry.register_counter(
                &format!("{prefix}{}", names::PRUNE_MINDOM),
                self.prune_mindom.clone(),
            );
        }
    }

    /// Attaches a tracer so the `*_traced` methods emit span events in
    /// addition to counting. Counters and events share one call site, so
    /// the two can never drift apart.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The attached tracer ([`Tracer::off`] unless installed).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Counts a node visit and (when tracing) emits a `node_visits`
    /// event carrying the node's identity.
    #[inline]
    pub fn visit_traced(&self, node_id: u64) {
        self.node_visits.inc();
        if self.tracer.is_on() {
            self.tracer
                .event(names::NODE_VISITS, TracePayload::NodeVisited { node_id });
        }
    }

    /// Counts a Theorem 2 retirement (`MaxDom` met `MinDom`) and emits a
    /// matching `prune.maxdom` event. The span tree's `prune.maxdom`
    /// event count therefore always equals the `kcr.prune.maxdom`
    /// counter delta for the same query.
    #[inline]
    pub fn prune_maxdom_traced(&self, node_id: u64, max_dom: u32, min_dom: u32, layer: u32) {
        self.prune_maxdom.inc();
        if self.tracer.is_on() {
            self.tracer.event(
                names::PRUNE_MAXDOM,
                TracePayload::NodePruned {
                    node_id,
                    max_dom,
                    min_dom,
                    layer,
                },
            );
        }
    }

    /// Counts a Theorem 3 deactivation (`MinDom` lower bound exceeded
    /// the incumbent) and emits a matching `prune.mindom` event.
    #[inline]
    pub fn prune_mindom_traced(&self, rank_lower_bound: u32) {
        self.prune_mindom.inc();
        if self.tracer.is_on() {
            self.tracer.event(
                names::PRUNE_MINDOM,
                TracePayload::CandidateRejected { rank_lower_bound },
            );
        }
    }

    /// Counts a bound-based subtree prune and emits a `nodes_pruned`
    /// event naming the skipped node.
    #[inline]
    pub fn nodes_pruned_traced(&self, node_id: u64, layer: u32) {
        self.nodes_pruned.inc();
        if self.tracer.is_on() {
            self.tracer.event(
                names::NODES_PRUNED,
                TracePayload::NodePruned {
                    node_id,
                    max_dom: 0,
                    min_dom: 0,
                    layer,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_publishes_selected_counters() {
        let registry = Registry::new();
        let mut setr = TraversalStats::detached();
        setr.register(&registry, "setr.", false);
        let mut kcr = TraversalStats::detached();
        kcr.register(&registry, "kcr.", true);

        setr.node_visits.add(3);
        kcr.prune_mindom.inc();

        let snap = registry.snapshot();
        assert_eq!(snap.counter("setr.node_visits"), 3);
        assert_eq!(snap.counter("kcr.prune.mindom"), 1);
        assert!(!snap.counters.contains_key("setr.prune.mindom"));
        assert!(snap.counters.contains_key("kcr.prune.maxdom"));
    }

    #[test]
    fn traced_methods_keep_counters_and_events_in_lockstep() {
        let mut stats = TraversalStats::detached();
        let tracer = Tracer::new();
        stats.set_tracer(tracer.clone());
        stats.visit_traced(7);
        stats.prune_maxdom_traced(7, 5, 5, 1);
        stats.prune_maxdom_traced(9, 3, 3, 2);
        stats.prune_mindom_traced(12);
        stats.nodes_pruned_traced(4, 0);
        let report = tracer.drain();
        assert_eq!(
            report.count_events(names::PRUNE_MAXDOM),
            stats.prune_maxdom.get()
        );
        assert_eq!(
            report.count_events(names::PRUNE_MINDOM),
            stats.prune_mindom.get()
        );
        assert_eq!(
            report.count_events(names::NODE_VISITS),
            stats.node_visits.get()
        );
        assert_eq!(
            report.count_events(names::NODES_PRUNED),
            stats.nodes_pruned.get()
        );
    }

    #[test]
    fn traced_methods_count_without_a_tracer() {
        let stats = TraversalStats::detached();
        stats.prune_maxdom_traced(1, 0, 0, 0);
        stats.prune_mindom_traced(2);
        assert_eq!(stats.prune_maxdom.get(), 1);
        assert_eq!(stats.prune_mindom.get(), 1);
    }

    #[test]
    fn detached_counters_still_count() {
        let stats = TraversalStats::detached();
        stats.node_visits.inc();
        stats.nodes_pruned.add(2);
        assert_eq!(stats.node_visits.get(), 1);
        assert_eq!(stats.nodes_pruned.get(), 2);
    }
}
