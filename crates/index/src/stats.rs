//! Traversal-level observability shared by both trees.

use wnsk_obs::{names, Counter, Registry};

/// Counters describing what a tree traversal did: nodes actually read
/// and decoded, subtrees skipped thanks to score bounds, and — for the
/// KcR-tree — candidates retired by the Theorem 2/3 dominance bounds.
///
/// Every tree owns a `TraversalStats`; it starts detached (counting into
/// private counters) and can be published into a shared
/// [`Registry`] with [`TraversalStats::register`], after which the same
/// counters show up in unified query reports.
#[derive(Clone, Debug, Default)]
pub struct TraversalStats {
    /// Nodes read and decoded during search or bound-and-prune.
    pub node_visits: Counter,
    /// Subtrees that were enqueued (or enumerated) but never descended
    /// into because a bound proved them useless.
    pub nodes_pruned: Counter,
    /// Candidates retired because `MaxDom` converged with `MinDom`
    /// (Theorem 2 made the dominator count exact without object access).
    pub prune_maxdom: Counter,
    /// Candidates deactivated because the `MinDom` penalty lower bound
    /// already exceeded the best refined query (Theorem 3).
    pub prune_mindom: Counter,
}

impl TraversalStats {
    /// Fresh zeroed counters not attached to any registry.
    pub fn detached() -> Self {
        Self::default()
    }

    /// Publishes the counters under `prefix` (e.g. `"kcr."` yields
    /// `kcr.node_visits` …). `dom_bounds` controls whether the
    /// Theorem 2/3 counters are published too — the SetR-tree has no
    /// dominance bounds, so registering them would only add permanent
    /// zero rows to every report.
    ///
    /// If a name already exists in the registry, this stats object
    /// adopts the existing counter (see
    /// [`Registry::register_counter`]).
    pub fn register(&mut self, registry: &Registry, prefix: &str, dom_bounds: bool) {
        self.node_visits = registry.register_counter(
            &format!("{prefix}{}", names::NODE_VISITS),
            self.node_visits.clone(),
        );
        self.nodes_pruned = registry.register_counter(
            &format!("{prefix}{}", names::NODES_PRUNED),
            self.nodes_pruned.clone(),
        );
        if dom_bounds {
            self.prune_maxdom = registry.register_counter(
                &format!("{prefix}{}", names::PRUNE_MAXDOM),
                self.prune_maxdom.clone(),
            );
            self.prune_mindom = registry.register_counter(
                &format!("{prefix}{}", names::PRUNE_MINDOM),
                self.prune_mindom.clone(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_publishes_selected_counters() {
        let registry = Registry::new();
        let mut setr = TraversalStats::detached();
        setr.register(&registry, "setr.", false);
        let mut kcr = TraversalStats::detached();
        kcr.register(&registry, "kcr.", true);

        setr.node_visits.add(3);
        kcr.prune_mindom.inc();

        let snap = registry.snapshot();
        assert_eq!(snap.counter("setr.node_visits"), 3);
        assert_eq!(snap.counter("kcr.prune.mindom"), 1);
        assert!(!snap.counters.contains_key("setr.prune.mindom"));
        assert!(snap.counters.contains_key("kcr.prune.maxdom"));
    }

    #[test]
    fn detached_counters_still_count() {
        let stats = TraversalStats::detached();
        stats.node_visits.inc();
        stats.nodes_pruned.add(2);
        assert_eq!(stats.node_visits.get(), 1);
        assert_eq!(stats.nodes_pruned.get(), 2);
    }
}
