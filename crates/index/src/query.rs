//! The spatial keyword top-k query and its scoring functions (Eqn. 1).

use wnsk_geo::Point;
use wnsk_text::{KeywordSet, TextModel};

/// A spatial keyword top-k query `q = (loc, doc, k, α)` (Definition 1).
#[derive(Clone, Debug, PartialEq)]
pub struct SpatialKeywordQuery {
    /// Query location.
    pub loc: Point,
    /// Query keyword set.
    pub doc: KeywordSet,
    /// Number of results to retrieve.
    pub k: usize,
    /// Preference between spatial proximity (α→1) and textual similarity
    /// (α→0). Must lie in the open interval `(0, 1)` (Eqn. 1).
    pub alpha: f64,
    /// Text similarity model (the paper's Eqn. 2 Jaccard by default;
    /// footnote 1's Dice/cosine variants are supported throughout).
    pub sim: TextModel,
}

impl SpatialKeywordQuery {
    /// Creates a query, validating `α ∈ (0, 1)` and `k ≥ 1`.
    pub fn new(loc: Point, doc: KeywordSet, k: usize, alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0, 1), got {alpha}"
        );
        assert!(k >= 1, "k must be at least 1");
        SpatialKeywordQuery {
            loc,
            doc,
            k,
            alpha,
            sim: TextModel::Jaccard,
        }
    }

    /// The same query under a different text similarity model.
    pub fn with_model(mut self, sim: TextModel) -> Self {
        self.sim = sim;
        self
    }

    /// The same query with a different keyword set (used when sweeping
    /// candidate refinements).
    pub fn with_doc(&self, doc: KeywordSet) -> Self {
        SpatialKeywordQuery {
            doc,
            ..self.clone()
        }
    }
}

/// The ranking score of Eqn. 1:
/// `ST = α·(1 − SDist) + (1 − α)·TSim`, with `SDist` already normalised.
#[inline]
pub fn st_score(alpha: f64, sdist_norm: f64, tsim: f64) -> f64 {
    alpha * (1.0 - sdist_norm) + (1.0 - alpha) * tsim
}

/// Theorem 1's upper bound on the textual similarity of any object inside
/// a SetR-tree node: `|N∪ ∩ q.doc| / |N∩ ∪ q.doc|`.
///
/// `union` and `intersection` are the node's aggregated keyword sets. The
/// degenerate 0/0 case (empty node sets *and* empty query) is defined as
/// 0, consistent with [`wnsk_text::jaccard`].
#[inline]
pub fn tsim_node_upper(union: &KeywordSet, intersection: &KeywordSet, qdoc: &KeywordSet) -> f64 {
    let num = union.intersection_len(qdoc);
    let den = intersection.union_len(qdoc);
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnsk_text::jaccard;

    #[test]
    fn st_score_blends_linearly() {
        assert_eq!(st_score(0.5, 0.0, 1.0), 1.0);
        assert_eq!(st_score(0.5, 1.0, 0.0), 0.0);
        assert!((st_score(0.3, 0.2, 0.5) - (0.3 * 0.8 + 0.7 * 0.5)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_zero_rejected() {
        SpatialKeywordQuery::new(Point::new(0.0, 0.0), KeywordSet::empty(), 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_one_rejected() {
        SpatialKeywordQuery::new(Point::new(0.0, 0.0), KeywordSet::empty(), 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_rejected() {
        SpatialKeywordQuery::new(Point::new(0.0, 0.0), KeywordSet::empty(), 0, 0.5);
    }

    #[test]
    fn node_bound_dominates_member_jaccard() {
        // Node contains docs {1,2}, {1,2,3}, {1,4}:
        let docs = [
            KeywordSet::from_ids([1, 2]),
            KeywordSet::from_ids([1, 2, 3]),
            KeywordSet::from_ids([1, 4]),
        ];
        let union = docs.iter().fold(KeywordSet::empty(), |acc, d| acc.union(d));
        let inter = docs[1..]
            .iter()
            .fold(docs[0].clone(), |acc, d| acc.intersection(d));
        for qdoc in [
            KeywordSet::from_ids([1]),
            KeywordSet::from_ids([2, 3]),
            KeywordSet::from_ids([5]),
            KeywordSet::empty(),
        ] {
            let bound = tsim_node_upper(&union, &inter, &qdoc);
            for d in &docs {
                assert!(
                    jaccard(d, &qdoc) <= bound + 1e-12,
                    "bound {bound} violated for doc {d:?} query {qdoc:?}"
                );
            }
        }
    }

    #[test]
    fn node_bound_degenerate_cases() {
        let e = KeywordSet::empty();
        assert_eq!(tsim_node_upper(&e, &e, &e), 0.0);
        let q = KeywordSet::from_ids([1]);
        assert_eq!(tsim_node_upper(&e, &e, &q), 0.0);
    }

    #[test]
    fn with_doc_keeps_other_fields() {
        let q = SpatialKeywordQuery::new(Point::new(0.5, 0.5), KeywordSet::from_ids([1]), 10, 0.7);
        let q2 = q.with_doc(KeywordSet::from_ids([2, 3]));
        assert_eq!(q2.loc, q.loc);
        assert_eq!(q2.k, 10);
        assert_eq!(q2.alpha, 0.7);
        assert_eq!(q2.doc, KeywordSet::from_ids([2, 3]));
    }
}
