//! On-disk node format of the SetR-tree.
//!
//! A node is a blob: `u8 kind`, `u32 n`, then `n` fixed-size entries.
//! Leaf entries mirror the paper's `(o, mbr, pks)`: object id, point
//! location, and a blob reference to the object's keyword set. Internal
//! entries mirror `(pc, mbr, pku, pki)`: child node blob, child MBR, and
//! blob references to the child's union and intersection keyword sets.

use wnsk_geo::{Point, Rect};
use wnsk_storage::codec::{Reader, Writer};
use wnsk_storage::{BlobRef, Result, StorageError};

use crate::model::ObjectId;

const KIND_LEAF: u8 = 0;
const KIND_INTERNAL: u8 = 1;

/// A leaf entry: one indexed object.
#[derive(Clone, Debug, PartialEq)]
pub struct SetrLeafEntry {
    pub object: ObjectId,
    pub loc: Point,
    /// Blob holding the object's keyword set (`pks`).
    pub doc: BlobRef,
}

/// An internal entry: one child subtree.
#[derive(Clone, Debug, PartialEq)]
pub struct SetrInternalEntry {
    /// Blob holding the child node (`pc`).
    pub child: BlobRef,
    pub mbr: Rect,
    /// Blob holding the union of the subtree's keyword sets (`pku`).
    pub union: BlobRef,
    /// Blob holding the intersection of the subtree's keyword sets (`pki`).
    pub intersection: BlobRef,
}

/// A decoded SetR-tree node.
#[derive(Clone, Debug, PartialEq)]
pub enum SetrNode {
    Leaf(Vec<SetrLeafEntry>),
    Internal(Vec<SetrInternalEntry>),
}

impl SetrNode {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            SetrNode::Leaf(v) => v.len(),
            SetrNode::Internal(v) => v.len(),
        }
    }

    /// `true` when the node has no entries (only possible for the root of
    /// an empty tree).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the node to its blob payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            SetrNode::Leaf(entries) => {
                let mut w = Writer::with_capacity(5 + entries.len() * 32);
                w.write_u8(KIND_LEAF);
                w.write_u32(entries.len() as u32);
                for e in entries {
                    w.write_u32(e.object.0);
                    w.write_f64(e.loc.x);
                    w.write_f64(e.loc.y);
                    e.doc.encode(&mut w);
                }
                w.into_vec()
            }
            SetrNode::Internal(entries) => {
                let mut w = Writer::with_capacity(5 + entries.len() * 68);
                w.write_u8(KIND_INTERNAL);
                w.write_u32(entries.len() as u32);
                for e in entries {
                    e.child.encode(&mut w);
                    w.write_f64(e.mbr.min.x);
                    w.write_f64(e.mbr.min.y);
                    w.write_f64(e.mbr.max.x);
                    w.write_f64(e.mbr.max.y);
                    e.union.encode(&mut w);
                    e.intersection.encode(&mut w);
                }
                w.into_vec()
            }
        }
    }

    /// Decodes a node from its blob payload.
    pub fn decode(bytes: &[u8]) -> Result<SetrNode> {
        let mut r = Reader::new(bytes, "setr node");
        let kind = r.read_u8()?;
        let n = r.read_u32()? as usize;
        match kind {
            KIND_LEAF => {
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let object = ObjectId(r.read_u32()?);
                    let loc = Point::new(r.read_f64()?, r.read_f64()?);
                    let doc = BlobRef::decode(&mut r)?;
                    entries.push(SetrLeafEntry { object, loc, doc });
                }
                Ok(SetrNode::Leaf(entries))
            }
            KIND_INTERNAL => {
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let child = BlobRef::decode(&mut r)?;
                    let min = Point::new(r.read_f64()?, r.read_f64()?);
                    let max = Point::new(r.read_f64()?, r.read_f64()?);
                    let union = BlobRef::decode(&mut r)?;
                    let intersection = BlobRef::decode(&mut r)?;
                    entries.push(SetrInternalEntry {
                        child,
                        mbr: Rect::new(min, max),
                        union,
                        intersection,
                    });
                }
                Ok(SetrNode::Internal(entries))
            }
            other => Err(StorageError::corrupt(
                "setr node",
                format!("unknown node kind {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(p: u64, len: u32) -> BlobRef {
        BlobRef {
            first_page: wnsk_storage::PageId(p),
            len,
        }
    }

    #[test]
    fn leaf_roundtrip() {
        let node = SetrNode::Leaf(vec![
            SetrLeafEntry {
                object: ObjectId(7),
                loc: Point::new(0.25, -1.5),
                doc: blob(10, 44),
            },
            SetrLeafEntry {
                object: ObjectId(8),
                loc: Point::new(2.0, 3.0),
                doc: blob(11, 8),
            },
        ]);
        let decoded = SetrNode::decode(&node.encode()).unwrap();
        assert_eq!(decoded, node);
    }

    #[test]
    fn internal_roundtrip() {
        let node = SetrNode::Internal(vec![SetrInternalEntry {
            child: blob(5, 200),
            mbr: Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 2.0)),
            union: blob(6, 40),
            intersection: blob(7, 12),
        }]);
        let decoded = SetrNode::decode(&node.encode()).unwrap();
        assert_eq!(decoded, node);
    }

    #[test]
    fn empty_leaf_roundtrip() {
        let node = SetrNode::Leaf(vec![]);
        assert_eq!(SetrNode::decode(&node.encode()).unwrap(), node);
        assert!(node.is_empty());
    }

    #[test]
    fn bad_kind_is_corrupt() {
        let mut bytes = SetrNode::Leaf(vec![]).encode();
        bytes[0] = 9;
        assert!(SetrNode::decode(&bytes).is_err());
    }

    #[test]
    fn truncated_node_is_corrupt() {
        let node = SetrNode::Leaf(vec![SetrLeafEntry {
            object: ObjectId(1),
            loc: Point::new(0.0, 0.0),
            doc: blob(1, 1),
        }]);
        let bytes = node.encode();
        assert!(SetrNode::decode(&bytes[..bytes.len() - 4]).is_err());
    }
}
