//! Incremental mutation of the SetR-tree: insert, remove, and keyword
//! update with exact maintenance of the per-entry union/intersection
//! keyword sets Theorem 1's score bound depends on.
//!
//! Nodes are copy-on-write: the blob store is append-only, so every
//! mutated node (and every refreshed aggregate payload) is written as a
//! fresh blob and only the meta page changes. Readers holding the old
//! root keep a fully consistent pre-mutation snapshot.
//!
//! All tie-breaking is deterministic (entry order, then split order by
//! `(x, y, id)`), which is what makes WAL replay rebuild a tree
//! bit-identical to the one the never-crashed engine maintained.

use super::node::{SetrInternalEntry, SetrLeafEntry, SetrNode};
use super::{Meta, SetRTree};
use crate::model::ObjectId;
use crate::payload;
use wnsk_geo::{Point, Rect};
use wnsk_storage::{BlobRef, Result, StorageError};
use wnsk_text::KeywordSet;

/// A rewritten node plus the aggregates its parent entry records.
struct Rebuilt {
    node: BlobRef,
    mbr: Rect,
    union: KeywordSet,
    intersection: KeywordSet,
    /// The rewritten node has no entries left; the parent drops it.
    empty: bool,
}

/// Outcome of inserting into a subtree.
enum Inserted {
    /// The subtree absorbed the object.
    One(Rebuilt),
    /// The subtree overflowed and split in two.
    Split(Rebuilt, Rebuilt),
}

impl SetRTree {
    /// Inserts one object, maintaining every union/intersection aggregate
    /// along the path (and splitting nodes that exceed the fanout).
    pub fn insert(&mut self, id: ObjectId, loc: Point, doc: &KeywordSet) -> Result<()> {
        let root = self.meta.root;
        let height = self.meta.height;
        let outcome = self.insert_into(root, id, loc, doc)?;
        let (new_root, new_height) = match outcome {
            Inserted::One(r) => (r.node, height),
            Inserted::Split(a, b) => {
                let entries = vec![self.internal_entry(&a)?, self.internal_entry(&b)?];
                let root = self.write_node(&SetrNode::Internal(entries))?;
                (root, height + 1)
            }
        };
        self.meta = Meta {
            root: new_root,
            height: new_height,
            n_objects: self.meta.n_objects + 1,
            ..self.meta
        };
        super::build::write_meta(&self.pool, &self.meta)
    }

    /// Removes the object `id` located at `loc`. Underfull nodes are
    /// permitted (entries are dropped when a subtree empties; a
    /// single-child internal root collapses into its child).
    ///
    /// Returns [`StorageError::InvalidArgument`] when no leaf entry
    /// matches — the tree and dataset would otherwise silently diverge.
    pub fn remove(&mut self, id: ObjectId, loc: Point) -> Result<()> {
        let root = self.meta.root;
        let height = self.meta.height;
        let Some(rebuilt) = self.remove_from(root, id, loc)? else {
            return Err(StorageError::invalid_argument(
                "setr remove",
                format!("{id:?} not found at {loc:?}"),
            ));
        };
        let mut new_root = rebuilt.node;
        let mut new_height = height;
        // Collapse a single-child (or emptied) internal root so the tree
        // keeps the shape invariants of a fresh bulk load.
        loop {
            if new_height <= 1 {
                break;
            }
            match self.read_node(new_root)? {
                SetrNode::Internal(entries) if entries.is_empty() => {
                    new_root = self.write_node(&SetrNode::Leaf(Vec::new()))?;
                    new_height = 1;
                }
                SetrNode::Internal(entries) if entries.len() == 1 => {
                    new_root = entries[0].child;
                    new_height -= 1;
                }
                _ => break,
            }
        }
        self.meta = Meta {
            root: new_root,
            height: new_height,
            n_objects: self.meta.n_objects - 1,
            ..self.meta
        };
        super::build::write_meta(&self.pool, &self.meta)
    }

    /// Replaces the keyword set of object `id` at `loc`: a remove + insert
    /// under the same id, so every aggregate on both paths is refreshed.
    pub fn update_doc(&mut self, id: ObjectId, loc: Point, doc: &KeywordSet) -> Result<()> {
        self.remove(id, loc)?;
        self.insert(id, loc, doc)
    }

    fn write_node(&self, node: &SetrNode) -> Result<BlobRef> {
        self.blobs.write(&node.encode())
    }

    fn write_keyword_set(&self, set: &KeywordSet) -> Result<BlobRef> {
        self.blobs.write(&payload::encode_keyword_set(set))
    }

    /// Builds the parent entry for a rebuilt child, persisting its
    /// aggregate payloads.
    fn internal_entry(&self, r: &Rebuilt) -> Result<SetrInternalEntry> {
        Ok(SetrInternalEntry {
            child: r.node,
            mbr: r.mbr,
            union: self.write_keyword_set(&r.union)?,
            intersection: self.write_keyword_set(&r.intersection)?,
        })
    }

    /// Leaf aggregates recomputed from the member documents.
    fn leaf_rebuilt(&self, entries: Vec<SetrLeafEntry>) -> Result<Rebuilt> {
        let mut mbr = Rect::EMPTY;
        let mut union = KeywordSet::empty();
        let mut intersection: Option<KeywordSet> = None;
        for e in &entries {
            mbr = mbr.union(&Rect::point(e.loc));
            let doc = self.read_keyword_set(e.doc)?;
            union = union.union(&doc);
            intersection = Some(match intersection {
                None => doc,
                Some(acc) => acc.intersection(&doc),
            });
        }
        let empty = entries.is_empty();
        let node = self.write_node(&SetrNode::Leaf(entries))?;
        Ok(Rebuilt {
            node,
            mbr,
            union,
            intersection: intersection.unwrap_or_else(KeywordSet::empty),
            empty,
        })
    }

    /// Internal aggregates recomputed from the entries' stored payloads.
    fn internal_rebuilt(&self, entries: Vec<SetrInternalEntry>) -> Result<Rebuilt> {
        let mut mbr = Rect::EMPTY;
        let mut union = KeywordSet::empty();
        let mut intersection: Option<KeywordSet> = None;
        for e in &entries {
            mbr = mbr.union(&e.mbr);
            union = union.union(&self.read_keyword_set(e.union)?);
            let inter = self.read_keyword_set(e.intersection)?;
            intersection = Some(match intersection {
                None => inter,
                Some(acc) => acc.intersection(&inter),
            });
        }
        let empty = entries.is_empty();
        let node = self.write_node(&SetrNode::Internal(entries))?;
        Ok(Rebuilt {
            node,
            mbr,
            union,
            intersection: intersection.unwrap_or_else(KeywordSet::empty),
            empty,
        })
    }

    fn insert_into(
        &self,
        node: BlobRef,
        id: ObjectId,
        loc: Point,
        doc: &KeywordSet,
    ) -> Result<Inserted> {
        match self.read_node(node)? {
            SetrNode::Leaf(mut entries) => {
                let doc_ref = self.write_keyword_set(doc)?;
                entries.push(SetrLeafEntry {
                    object: id,
                    loc,
                    doc: doc_ref,
                });
                if entries.len() <= self.meta.fanout as usize {
                    return Ok(Inserted::One(self.leaf_rebuilt(entries)?));
                }
                // Deterministic split: order by (x, y, id), cut in half.
                entries.sort_by(|a, b| {
                    a.loc
                        .x
                        .total_cmp(&b.loc.x)
                        .then(a.loc.y.total_cmp(&b.loc.y))
                        .then(a.object.cmp(&b.object))
                });
                let right = entries.split_off(entries.len() / 2);
                Ok(Inserted::Split(
                    self.leaf_rebuilt(entries)?,
                    self.leaf_rebuilt(right)?,
                ))
            }
            SetrNode::Internal(mut entries) => {
                let chosen = choose_subtree(entries.iter().map(|e| &e.mbr), loc);
                let child = entries[chosen].child;
                match self.insert_into(child, id, loc, doc)? {
                    Inserted::One(r) => {
                        entries[chosen] = self.internal_entry(&r)?;
                    }
                    Inserted::Split(a, b) => {
                        entries[chosen] = self.internal_entry(&a)?;
                        entries.insert(chosen + 1, self.internal_entry(&b)?);
                    }
                }
                if entries.len() <= self.meta.fanout as usize {
                    return Ok(Inserted::One(self.internal_rebuilt(entries)?));
                }
                entries.sort_by(|a, b| {
                    let (ca, cb) = (a.mbr.center(), b.mbr.center());
                    ca.x.total_cmp(&cb.x)
                        .then(ca.y.total_cmp(&cb.y))
                        .then(a.child.first_page.cmp(&b.child.first_page))
                });
                let right = entries.split_off(entries.len() / 2);
                Ok(Inserted::Split(
                    self.internal_rebuilt(entries)?,
                    self.internal_rebuilt(right)?,
                ))
            }
        }
    }

    /// Removes `id` from the subtree; `None` when it was not found here.
    fn remove_from(&self, node: BlobRef, id: ObjectId, loc: Point) -> Result<Option<Rebuilt>> {
        match self.read_node(node)? {
            SetrNode::Leaf(mut entries) => {
                let Some(pos) = entries.iter().position(|e| e.object == id) else {
                    return Ok(None);
                };
                entries.remove(pos);
                Ok(Some(self.leaf_rebuilt(entries)?))
            }
            SetrNode::Internal(mut entries) => {
                for i in 0..entries.len() {
                    if !entries[i].mbr.contains_point(&loc) {
                        continue;
                    }
                    let child = entries[i].child;
                    if let Some(r) = self.remove_from(child, id, loc)? {
                        if r.empty {
                            // The child emptied out: drop its entry (and
                            // let emptiness propagate upward in turn).
                            entries.remove(i);
                        } else {
                            entries[i] = self.internal_entry(&r)?;
                        }
                        return Ok(Some(self.internal_rebuilt(entries)?));
                    }
                }
                Ok(None)
            }
        }
    }
}

/// R-tree choose-subtree: minimal area enlargement, ties by minimal area,
/// then lowest entry index — all deterministic.
pub(crate) fn choose_subtree<'a, I: Iterator<Item = &'a Rect>>(mbrs: I, loc: Point) -> usize {
    let target = Rect::point(loc);
    let mut best = 0usize;
    let mut best_enlargement = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, mbr) in mbrs.enumerate() {
        let enlargement = mbr.enlargement(&target);
        let area = mbr.area();
        if enlargement < best_enlargement || (enlargement == best_enlargement && area < best_area) {
            best = i;
            best_enlargement = enlargement;
            best_area = area;
        }
    }
    best
}
