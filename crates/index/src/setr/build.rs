//! STR bulk loading and meta-page persistence for the SetR-tree.

use super::{Meta, SetRTree, MAGIC};
use crate::model::Dataset;
use crate::payload;
use crate::setr::node::{SetrInternalEntry, SetrLeafEntry, SetrNode};
use crate::str_pack;
use std::sync::Arc;
use wnsk_geo::{Point, Rect, WorldBounds};
use wnsk_storage::codec::{Reader, Writer};
use wnsk_storage::{BlobRef, BlobStore, BufferPool, PageId, Result, StorageError, PAGE_DATA_SIZE};
use wnsk_text::KeywordSet;

/// A freshly written node plus the aggregates its parent entry needs.
struct BuiltNode {
    node: BlobRef,
    mbr: Rect,
    union: KeywordSet,
    intersection: KeywordSet,
}

pub(super) fn build(pool: Arc<BufferPool>, dataset: &Dataset, fanout: usize) -> Result<SetRTree> {
    if fanout < 2 {
        return Err(StorageError::invalid_argument(
            "setr build",
            format!("fanout must be at least 2, got {fanout}"),
        ));
    }
    let allocated = pool.backend().page_count();
    if allocated != 0 {
        return Err(StorageError::invalid_argument(
            "setr build",
            format!("SetR-tree must be built into empty storage, found {allocated} pages"),
        ));
    }
    // Reserve page 0 for the meta record, written last.
    let meta_page = pool.allocate()?;
    debug_assert_eq!(meta_page, PageId(0));

    let blobs = BlobStore::new(Arc::clone(&pool));

    // Tombstoned slots never enter the index: a rebuilt tree over a
    // mutated dataset equals one built over the surviving objects.
    let objs: Vec<&crate::model::SpatialObject> = dataset.live_objects().collect();

    // 1. Write every object's keyword set once.
    let doc_refs: Vec<BlobRef> = objs
        .iter()
        .map(|o| blobs.write(&payload::encode_keyword_set(&o.doc)))
        .collect::<Result<_>>()?;

    // 2. STR grouping over the object points.
    let rects: Vec<Rect> = objs.iter().map(|o| Rect::point(o.loc)).collect();
    let levels = str_pack::str_levels(&rects, fanout);

    // 3. Materialise the leaf level.
    let mut current: Vec<BuiltNode> = levels[0]
        .groups
        .iter()
        .map(|group| {
            let entries: Vec<SetrLeafEntry> = group
                .iter()
                .map(|&i| SetrLeafEntry {
                    object: objs[i].id,
                    loc: objs[i].loc,
                    doc: doc_refs[i],
                })
                .collect();
            let mbr = group
                .iter()
                .fold(Rect::EMPTY, |acc, &i| acc.union(&rects[i]));
            let union = group
                .iter()
                .fold(KeywordSet::empty(), |acc, &i| acc.union(&objs[i].doc));
            let intersection = match group.split_first() {
                None => KeywordSet::empty(),
                Some((&first, rest)) => rest.iter().fold(objs[first].doc.clone(), |acc, &i| {
                    acc.intersection(&objs[i].doc)
                }),
            };
            let node = blobs.write(&SetrNode::Leaf(entries).encode())?;
            Ok(BuiltNode {
                node,
                mbr,
                union,
                intersection,
            })
        })
        .collect::<Result<_>>()?;

    // 4. Materialise internal levels bottom-up.
    for level in &levels[1..] {
        current = level
            .groups
            .iter()
            .map(|group| {
                let mut entries = Vec::with_capacity(group.len());
                let mut mbr = Rect::EMPTY;
                let mut union = KeywordSet::empty();
                let mut intersection: Option<KeywordSet> = None;
                for &i in group {
                    let child = &current[i];
                    let union_ref = blobs.write(&payload::encode_keyword_set(&child.union))?;
                    let inter_ref =
                        blobs.write(&payload::encode_keyword_set(&child.intersection))?;
                    entries.push(SetrInternalEntry {
                        child: child.node,
                        mbr: child.mbr,
                        union: union_ref,
                        intersection: inter_ref,
                    });
                    mbr = mbr.union(&child.mbr);
                    union = union.union(&child.union);
                    intersection = Some(match intersection {
                        None => child.intersection.clone(),
                        Some(acc) => acc.intersection(&child.intersection),
                    });
                }
                let node = blobs.write(&SetrNode::Internal(entries).encode())?;
                Ok(BuiltNode {
                    node,
                    mbr,
                    union,
                    intersection: intersection.unwrap_or_else(KeywordSet::empty),
                })
            })
            .collect::<Result<_>>()?;
    }

    debug_assert_eq!(current.len(), 1, "STR must converge to a single root");
    let meta = Meta {
        root: current[0].node,
        height: levels.len() as u32,
        n_objects: objs.len() as u64,
        world: *dataset.world(),
        fanout: fanout as u32,
    };
    write_meta(&pool, &meta)?;
    Ok(SetRTree::from_parts(pool, meta))
}

pub(super) fn write_meta(pool: &BufferPool, meta: &Meta) -> Result<()> {
    let mut w = Writer::with_capacity(PAGE_DATA_SIZE);
    w.write_u32(MAGIC);
    meta.root.encode(&mut w);
    w.write_u32(meta.height);
    w.write_u64(meta.n_objects);
    let rect = meta.world.rect();
    w.write_f64(rect.min.x);
    w.write_f64(rect.min.y);
    w.write_f64(rect.max.x);
    w.write_f64(rect.max.y);
    w.write_u32(meta.fanout);
    // The pool zero-pads to the full payload size and embeds the CRC
    // trailer.
    pool.write(PageId(0), &w.into_vec())
}

pub(super) fn read_meta(pool: &BufferPool) -> Result<Meta> {
    let page = pool.read(PageId(0))?;
    let mut r = Reader::new(&page, "setr meta page");
    let magic = r.read_u32()?;
    if magic != MAGIC {
        return Err(StorageError::corrupt(
            "setr meta page",
            format!("bad magic {magic:#x}"),
        ));
    }
    let root = BlobRef::decode(&mut r)?;
    let height = r.read_u32()?;
    let n_objects = r.read_u64()?;
    let min = Point::new(r.read_f64()?, r.read_f64()?);
    let max = Point::new(r.read_f64()?, r.read_f64()?);
    let fanout = r.read_u32()?;
    Ok(Meta {
        root,
        height,
        n_objects,
        world: WorldBounds::new(Rect::new(min, max)),
        fanout,
    })
}
