//! The SetR-tree (§IV-B): an R-tree whose internal entries carry the
//! union and intersection keyword sets of their subtrees.
//!
//! Theorem 1 bounds the ranking score of every object under a node by
//! combining `MinDist` with `|N∪ ∩ q.doc| / |N∩ ∪ q.doc|`; the search
//! module turns that into an incremental best-first top-k scan and the
//! rank-of-object search at the heart of the basic why-not algorithm.

mod build;
pub(crate) mod mutate;
mod node;
mod search;

pub use node::{SetrInternalEntry, SetrLeafEntry, SetrNode};
pub use search::{RankMode, RankOutcome, TopKSearch};

use crate::model::Dataset;
use crate::payload;
use crate::stats::TraversalStats;
use std::sync::Arc;
use wnsk_geo::WorldBounds;
use wnsk_obs::Registry;
use wnsk_storage::{BlobRef, BlobStore, BufferPool, Result};
use wnsk_text::KeywordSet;

/// Magic number identifying a SetR-tree meta page.
const MAGIC: u32 = 0x5352_5431; // "SRT1"

/// Tree-level metadata persisted on page 0.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Meta {
    pub root: BlobRef,
    pub height: u32,
    pub n_objects: u64,
    pub world: WorldBounds,
    pub fanout: u32,
}

/// A disk-resident SetR-tree.
///
/// Built once with [`SetRTree::build`] and read-only afterwards, matching
/// the paper's static datasets. All reads go through the buffer pool.
pub struct SetRTree {
    pool: Arc<BufferPool>,
    blobs: BlobStore,
    meta: Meta,
    stats: TraversalStats,
}

impl SetRTree {
    /// Bulk-loads a SetR-tree over `dataset` into the storage behind
    /// `pool` (which must be empty) using the given node `fanout`.
    pub fn build(pool: Arc<BufferPool>, dataset: &Dataset, fanout: usize) -> Result<Self> {
        build::build(pool, dataset, fanout)
    }

    /// Opens a previously built tree from its storage.
    pub fn open(pool: Arc<BufferPool>) -> Result<Self> {
        let meta = build::read_meta(&pool)?;
        Ok(Self::from_parts(pool, meta))
    }

    pub(crate) fn from_parts(pool: Arc<BufferPool>, meta: Meta) -> Self {
        let blobs = BlobStore::new(Arc::clone(&pool));
        SetRTree {
            pool,
            blobs,
            meta,
            stats: TraversalStats::detached(),
        }
    }

    /// The buffer pool (I/O metering lives here).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Traversal counters (node visits, pruned subtrees).
    pub fn traversal(&self) -> &TraversalStats {
        &self.stats
    }

    /// Publishes the traversal counters into `registry` under `prefix`
    /// (e.g. `"setr."`). The SetR-tree has no dominance bounds, so only
    /// `node_visits` / `nodes_pruned` are registered.
    pub fn register_metrics(&mut self, registry: &Registry, prefix: &str) {
        self.stats.register(registry, prefix, false);
    }

    /// Attaches a tracer: node visits (and the solvers' prune decisions,
    /// which go through [`TraversalStats`]) emit trace events.
    pub fn set_tracer(&mut self, tracer: wnsk_obs::Tracer) {
        self.stats.set_tracer(tracer);
    }

    /// World bounds the tree was built with.
    pub fn world(&self) -> &WorldBounds {
        &self.meta.world
    }

    /// Number of indexed objects.
    pub fn len(&self) -> u64 {
        self.meta.n_objects
    }

    /// `true` when the tree indexes no objects.
    pub fn is_empty(&self) -> bool {
        self.meta.n_objects == 0
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.meta.height
    }

    /// Blob reference of the root node (the entry point for external
    /// traversals such as the parallel counting rank).
    pub fn root(&self) -> BlobRef {
        self.meta.root
    }

    /// Reads and decodes a node (every traversal path funnels through
    /// here, so this is also where node visits are counted). Public for
    /// external traversals and aggregate verification.
    pub fn read_node(&self, node: BlobRef) -> Result<SetrNode> {
        self.stats.visit_traced(node.first_page.0);
        let bytes = self.blobs.read(node)?;
        SetrNode::decode(&bytes)
    }

    /// Reads a keyword-set payload (object doc or node union/intersection).
    pub fn read_keyword_set(&self, blob: BlobRef) -> Result<KeywordSet> {
        let bytes = self.blobs.read(blob)?;
        payload::decode_keyword_set(&bytes)
    }
}
