//! Best-first search over the SetR-tree: incremental top-k retrieval and
//! the rank-of-object search with early stop.
//!
//! The priority of an internal entry is Theorem 1's score upper bound;
//! objects enter the queue with their exact score, so the queue emits
//! objects in non-increasing score order. Equal scores are resolved
//! deterministically: nodes are expanded before equal-priority objects are
//! emitted, and equal-scored objects are emitted in ascending object id.

use super::SetRTree;
use crate::descend::ScoredChildren;
use crate::model::ObjectId;
use crate::query::SpatialKeywordQuery;
use crate::util::OrdF64;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use wnsk_storage::{BlobRef, Result};

enum Item {
    Node(BlobRef),
    Object(ObjectId),
}

struct HeapEntry {
    score: OrdF64,
    item: Item,
}

impl HeapEntry {
    /// Nodes sort before objects at equal score so every subtree that
    /// might still contain an equally scored object is expanded first;
    /// equal-scored objects emit in ascending id.
    fn rank_key(&self) -> (OrdF64, u8, std::cmp::Reverse<u32>) {
        match self.item {
            Item::Node(_) => (self.score, 1, std::cmp::Reverse(0)),
            Item::Object(id) => (self.score, 0, std::cmp::Reverse(id.0)),
        }
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.rank_key() == other.rank_key()
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank_key().cmp(&other.rank_key())
    }
}

/// An incremental best-first top-k scan.
///
/// Yields `(object, score)` pairs in non-increasing score order; callers
/// stop pulling when they have seen enough (top-k, rank search, early
/// stop...). Errors from storage surface as `Err` items.
pub struct TopKSearch<'a> {
    tree: &'a SetRTree,
    query: SpatialKeywordQuery,
    heap: BinaryHeap<HeapEntry>,
    primed: bool,
}

impl Drop for TopKSearch<'_> {
    fn drop(&mut self) {
        // Subtrees still enqueued when the scan stops were never
        // descended into: the Theorem 1 bound (via score ordering plus
        // the caller's early termination) pruned them.
        let pruned = self
            .heap
            .iter()
            .filter(|e| matches!(e.item, Item::Node(_)))
            .count();
        if pruned > 0 {
            self.tree.traversal().nodes_pruned.add(pruned as u64);
        }
    }
}

impl<'a> TopKSearch<'a> {
    /// Starts a scan for `query` over `tree`.
    pub fn new(tree: &'a SetRTree, query: SpatialKeywordQuery) -> Self {
        TopKSearch {
            tree,
            query,
            heap: BinaryHeap::new(),
            primed: false,
        }
    }

    fn expand(&mut self, node_ref: BlobRef) -> Result<()> {
        match self.tree.scored_children(&self.query, node_ref)? {
            ScoredChildren::Leaf(objects) => {
                for (id, score) in objects {
                    self.heap.push(HeapEntry {
                        score: OrdF64::new(score),
                        item: Item::Object(id),
                    });
                }
            }
            ScoredChildren::Internal(children) => {
                for (child, bound) in children {
                    self.heap.push(HeapEntry {
                        score: OrdF64::new(bound),
                        item: Item::Node(child),
                    });
                }
            }
        }
        Ok(())
    }

    /// Pulls the next-best object, or `None` when exhausted.
    pub fn next_object(&mut self) -> Result<Option<(ObjectId, f64)>> {
        if !self.primed {
            self.primed = true;
            if !self.tree.is_empty() {
                let root = self.tree.root();
                self.expand(root)?;
            }
        }
        while let Some(entry) = self.heap.pop() {
            match entry.item {
                Item::Object(id) => return Ok(Some((id, entry.score.0))),
                Item::Node(node_ref) => self.expand(node_ref)?,
            }
        }
        Ok(None)
    }
}

/// How a rank search terminates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankMode {
    /// Stop as soon as the emitted score drops to the target's score — the
    /// cheapest way to compute an exact rank (used by the optimised
    /// algorithms).
    StopAtScore,
    /// Keep pulling until the target object itself is emitted — the basic
    /// algorithm's behaviour ("process the query until object m appears",
    /// §IV-B). Same result, more work when many objects tie with `m`.
    UntilFound,
}

/// Result of a rank search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankOutcome {
    /// Exact rank (Eqn. 3) of the target under the query.
    Exact { rank: usize },
    /// The search was aborted because the rank provably exceeds
    /// `max_rank`; `seen_dominators` objects scoring above the target were
    /// already retrieved.
    Aborted { seen_dominators: usize },
}

impl RankOutcome {
    /// The exact rank, if the search completed.
    pub fn rank(&self) -> Option<usize> {
        match self {
            RankOutcome::Exact { rank } => Some(*rank),
            RankOutcome::Aborted { .. } => None,
        }
    }
}

impl SetRTree {
    /// Convenience: materialises the full top-k result.
    pub fn top_k(&self, query: &SpatialKeywordQuery) -> Result<Vec<(ObjectId, f64)>> {
        let mut search = TopKSearch::new(self, query.clone());
        let mut out = Vec::with_capacity(query.k);
        while out.len() < query.k {
            match search.next_object()? {
                Some(hit) => out.push(hit),
                None => break,
            }
        }
        Ok(out)
    }

    /// Computes the rank `R(target, query)` (Eqn. 3) by scanning the tree
    /// in score order, counting strict dominators of the target.
    ///
    /// * `target_score` must be the exact `ST(target, query)` — callers
    ///   know the target object's location and document.
    /// * When `max_rank` is set, the scan aborts as soon as the rank
    ///   provably exceeds it (the early-stop optimisation, Eqn. 6).
    /// * `mode` selects the basic algorithm's until-found behaviour or the
    ///   cheaper stop-at-score variant.
    pub fn rank_of(
        &self,
        query: &SpatialKeywordQuery,
        target: ObjectId,
        target_score: f64,
        max_rank: Option<usize>,
        mode: RankMode,
    ) -> Result<RankOutcome> {
        let mut search = TopKSearch::new(self, query.clone());
        let mut dominators = 0usize;
        loop {
            if let Some(max_rank) = max_rank {
                if dominators + 1 > max_rank {
                    return Ok(RankOutcome::Aborted {
                        seen_dominators: dominators,
                    });
                }
            }
            match search.next_object()? {
                None => break,
                Some((id, score)) => {
                    if score > target_score {
                        dominators += 1;
                    } else {
                        match mode {
                            RankMode::StopAtScore => break,
                            RankMode::UntilFound => {
                                if id == target {
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(RankOutcome::Exact {
            rank: dominators + 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Dataset, SpatialObject};
    use crate::query::SpatialKeywordQuery;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;
    use wnsk_geo::{Point, WorldBounds};
    use wnsk_storage::{BufferPool, BufferPoolConfig, MemBackend};
    use wnsk_text::KeywordSet;

    fn random_dataset(n: usize, vocab: u32, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let objects = (0..n)
            .map(|_| {
                let n_terms = rng.gen_range(1..=6);
                let doc = KeywordSet::from_ids((0..n_terms).map(|_| rng.gen_range(0..vocab)));
                SpatialObject {
                    id: ObjectId(0),
                    loc: Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
                    doc,
                }
            })
            .collect();
        Dataset::new(objects, WorldBounds::unit())
    }

    fn build_tree(dataset: &Dataset, fanout: usize) -> SetRTree {
        let pool = Arc::new(BufferPool::new(
            Arc::new(MemBackend::new()),
            BufferPoolConfig::default(),
        ));
        SetRTree::build(pool, dataset, fanout).unwrap()
    }

    fn query(seed: u64, vocab: u32, k: usize, alpha: f64) -> SpatialKeywordQuery {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_terms = rng.gen_range(1..=4);
        SpatialKeywordQuery::new(
            Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
            KeywordSet::from_ids((0..n_terms).map(|_| rng.gen_range(0..vocab))),
            k,
            alpha,
        )
    }

    #[test]
    fn top_k_matches_brute_force() {
        let ds = random_dataset(500, 40, 1);
        let tree = build_tree(&ds, 10);
        for seed in 0..10 {
            let q = query(seed, 40, 10, 0.5);
            let expected = ds.top_k(&q);
            let got = tree.top_k(&q).unwrap();
            assert_eq!(
                got.iter().map(|t| t.0).collect::<Vec<_>>(),
                expected.iter().map(|t| t.0).collect::<Vec<_>>(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn top_k_matches_brute_force_alpha_extremes() {
        let ds = random_dataset(300, 25, 2);
        let tree = build_tree(&ds, 8);
        for alpha in [0.1, 0.9] {
            for seed in 0..5 {
                let q = query(100 + seed, 25, 7, alpha);
                assert_eq!(
                    tree.top_k(&q)
                        .unwrap()
                        .iter()
                        .map(|t| t.0)
                        .collect::<Vec<_>>(),
                    ds.top_k(&q).iter().map(|t| t.0).collect::<Vec<_>>(),
                    "alpha {alpha} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn emitted_scores_are_non_increasing() {
        let ds = random_dataset(400, 30, 3);
        let tree = build_tree(&ds, 10);
        let q = query(7, 30, 1, 0.5);
        let mut search = TopKSearch::new(&tree, q);
        let mut last = f64::INFINITY;
        let mut count = 0;
        while let Some((_, score)) = search.next_object().unwrap() {
            assert!(score <= last + 1e-12);
            last = score;
            count += 1;
        }
        assert_eq!(count, 400, "scan must emit every object exactly once");
    }

    #[test]
    fn rank_matches_brute_force() {
        let ds = random_dataset(300, 30, 4);
        let tree = build_tree(&ds, 10);
        for seed in 0..6 {
            let q = query(200 + seed, 30, 5, 0.5);
            let target = ObjectId((seed as u32 * 37) % 300);
            let score = ds.score(ds.object(target), &q);
            for mode in [RankMode::StopAtScore, RankMode::UntilFound] {
                let outcome = tree.rank_of(&q, target, score, None, mode).unwrap();
                assert_eq!(
                    outcome.rank(),
                    Some(ds.rank_of(target, &q)),
                    "seed {seed} mode {mode:?}"
                );
            }
        }
    }

    #[test]
    fn rank_early_stop_aborts() {
        let ds = random_dataset(300, 30, 5);
        let tree = build_tree(&ds, 10);
        let q = query(300, 30, 5, 0.5);
        // Pick the worst-ranked object so any small bound aborts.
        let worst = ds
            .objects()
            .iter()
            .min_by(|a, b| OrdF64::new(ds.score(a, &q)).cmp(&OrdF64::new(ds.score(b, &q))))
            .unwrap()
            .id;
        let score = ds.score(ds.object(worst), &q);
        let true_rank = ds.rank_of(worst, &q);
        assert!(true_rank > 10);
        let outcome = tree
            .rank_of(&q, worst, score, Some(10), RankMode::StopAtScore)
            .unwrap();
        match outcome {
            RankOutcome::Aborted { seen_dominators } => assert_eq!(seen_dominators, 10),
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn rank_early_stop_exact_when_within_bound() {
        let ds = random_dataset(200, 20, 6);
        let tree = build_tree(&ds, 10);
        let q = query(400, 20, 5, 0.5);
        let target = ds.top_k(&q)[2].0; // rank ≤ 3
        let score = ds.score(ds.object(target), &q);
        let outcome = tree
            .rank_of(&q, target, score, Some(50), RankMode::StopAtScore)
            .unwrap();
        assert_eq!(outcome.rank(), Some(ds.rank_of(target, &q)));
    }

    #[test]
    fn top_k_on_figure1() {
        let (ds, q) = crate::model::tests::figure1_dataset();
        let tree = build_tree(&ds, 2);
        let top = tree.top_k(&q).unwrap();
        assert_eq!(top[0].0, ObjectId(3));
        let m_score = ds.score(ds.object(ObjectId(0)), &q);
        let outcome = tree
            .rank_of(&q, ObjectId(0), m_score, None, RankMode::UntilFound)
            .unwrap();
        assert_eq!(outcome.rank(), Some(3));
    }

    #[test]
    fn k_larger_than_dataset() {
        let ds = random_dataset(25, 10, 7);
        let tree = build_tree(&ds, 4);
        let q = query(1, 10, 100, 0.5);
        assert_eq!(tree.top_k(&q).unwrap().len(), 25);
    }

    #[test]
    fn search_costs_io() {
        let ds = random_dataset(2000, 50, 8);
        let tree = build_tree(&ds, 10);
        tree.pool().clear_cache();
        let before = tree.pool().stats();
        tree.top_k(&query(9, 50, 10, 0.5)).unwrap();
        let delta = tree.pool().stats().since(&before);
        assert!(delta.physical_reads > 0, "cold search must do I/O");
    }

    #[test]
    fn persists_through_file_backend() {
        use wnsk_storage::FileBackend;
        let ds = random_dataset(200, 20, 9);
        let dir = std::env::temp_dir().join(format!("wnsk-setr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("setr.db");
        let q = query(11, 20, 8, 0.5);
        let expected;
        {
            let backend = Arc::new(FileBackend::create(&path).unwrap());
            let pool = Arc::new(BufferPool::with_default_config(backend));
            let tree = SetRTree::build(pool, &ds, 10).unwrap();
            expected = tree.top_k(&q).unwrap();
        }
        {
            let backend = Arc::new(FileBackend::open(&path).unwrap());
            let pool = Arc::new(BufferPool::with_default_config(backend));
            let tree = SetRTree::open(pool).unwrap();
            assert_eq!(tree.top_k(&q).unwrap(), expected);
            assert_eq!(tree.len(), 200);
        }
        std::fs::remove_file(&path).ok();
    }
}
