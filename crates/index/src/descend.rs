//! Query-scored node expansion shared by the best-first searches and the
//! parallel counting traversals.
//!
//! Both trees expose the same primitive: read one node and return every
//! child tagged with its score (leaf objects: the exact `ST` score;
//! internal children: the tree's score *upper bound* for the subtree —
//! Theorem 1's set bound on the SetR-tree, the keyword-count bound on
//! the KcR-tree). A counting traversal descends only into subtrees whose
//! bound exceeds the target score, which visits exactly the strict
//! dominators — the same rank as the best-first scan (ties are never
//! dominators), but decomposable into independent subtree tasks.

use crate::kcr::KcrTree;
use crate::model::ObjectId;
use crate::query::{st_score, SpatialKeywordQuery};
use crate::setr::{SetRTree, SetrNode};
use crate::KcrNode;
use wnsk_storage::{BlobRef, Result};
use wnsk_text::{KeywordSet, SimUniverse, TextModel};

/// One expanded node: children with their score (bound).
pub enum ScoredChildren {
    /// Internal children with the per-subtree score upper bound.
    Internal(Vec<(BlobRef, f64)>),
    /// Leaf objects with their exact score under the query.
    Leaf(Vec<(ObjectId, f64)>),
}

/// Precomputed bitset state for leaf text scoring under one query: the
/// universe slot mapping plus the query keyword set already projected.
///
/// With it, scoring a leaf is one projection of the decoded document
/// followed by an AND+popcount per similarity — exact and bit-identical
/// to the scalar merge because the query set lies fully inside the
/// universe (see [`TextModel::similarity_bits`]). Internal-node bounds
/// stay on the scalar path under both kernels: each bound is evaluated
/// once per node against freshly decoded union/intersection sets, so
/// there is no intersection to amortise.
#[derive(Clone, Debug)]
pub struct LeafSimKernel {
    uni: SimUniverse,
    qdoc: wnsk_text::ProjectedSet,
}

impl LeafSimKernel {
    /// Builds the kernel, or `None` when `universe` spills past
    /// [`wnsk_text::BLOCK_BITS`] or `qdoc` is not fully inside it (both
    /// cases fall back to the scalar path, which is always exact).
    pub fn new(universe: &KeywordSet, qdoc: &KeywordSet) -> Option<Self> {
        let uni = SimUniverse::new(universe)?;
        let q = uni.project(qdoc);
        if !q.in_universe() {
            return None;
        }
        Some(LeafSimKernel { uni, qdoc: q })
    }

    /// `similarity(doc, qdoc)` via the bitset kernel.
    #[inline]
    pub fn similarity(&self, model: TextModel, doc: &KeywordSet) -> f64 {
        model.similarity_bits(&self.uni.project(doc), &self.qdoc)
    }
}

impl SetRTree {
    /// Expands `node`, scoring every child against `query` (Theorem 1's
    /// union/intersection bound for internal entries, the exact score
    /// for leaf objects).
    pub fn scored_children(
        &self,
        query: &SpatialKeywordQuery,
        node: BlobRef,
    ) -> Result<ScoredChildren> {
        self.scored_children_with(query, node, None)
    }

    /// [`SetRTree::scored_children`] with an optional bitset kernel for
    /// the leaf text similarities.
    pub fn scored_children_with(
        &self,
        query: &SpatialKeywordQuery,
        node: BlobRef,
        kernel: Option<&LeafSimKernel>,
    ) -> Result<ScoredChildren> {
        match self.read_node(node)? {
            SetrNode::Leaf(entries) => {
                let mut out = Vec::with_capacity(entries.len());
                for e in entries {
                    let doc = self.read_keyword_set(e.doc)?;
                    let sdist = self.world().normalized_dist(&e.loc, &query.loc);
                    let tsim = match kernel {
                        Some(k) => k.similarity(query.sim, &doc),
                        None => query.sim.similarity(&doc, &query.doc),
                    };
                    out.push((e.object, st_score(query.alpha, sdist, tsim)));
                }
                Ok(ScoredChildren::Leaf(out))
            }
            SetrNode::Internal(entries) => {
                let mut out = Vec::with_capacity(entries.len());
                for e in entries {
                    let union = self.read_keyword_set(e.union)?;
                    let inter = self.read_keyword_set(e.intersection)?;
                    let min_dist = self.world().normalized_min_dist(&query.loc, &e.mbr);
                    let tsim_bound = query.sim.node_upper(&union, &inter, &query.doc);
                    out.push((e.child, st_score(query.alpha, min_dist, tsim_bound)));
                }
                Ok(ScoredChildren::Internal(out))
            }
        }
    }
}

impl KcrTree {
    /// Expands `node`, scoring every child against `query` (the
    /// keyword-count-map bound for internal entries, the exact score for
    /// leaf objects).
    pub fn scored_children(
        &self,
        query: &SpatialKeywordQuery,
        node: BlobRef,
    ) -> Result<ScoredChildren> {
        self.scored_children_with(query, node, None)
    }

    /// [`KcrTree::scored_children`] with an optional bitset kernel for
    /// the leaf text similarities.
    pub fn scored_children_with(
        &self,
        query: &SpatialKeywordQuery,
        node: BlobRef,
        kernel: Option<&LeafSimKernel>,
    ) -> Result<ScoredChildren> {
        match self.read_node(node)? {
            KcrNode::Leaf(entries) => {
                let mut out = Vec::with_capacity(entries.len());
                for e in entries {
                    let doc = self.read_doc(e.doc)?;
                    let sdist = self.world().normalized_dist(&e.loc, &query.loc);
                    let tsim = match kernel {
                        Some(k) => k.similarity(query.sim, &doc),
                        None => query.sim.similarity(&doc, &query.doc),
                    };
                    out.push((e.object, st_score(query.alpha, sdist, tsim)));
                }
                Ok(ScoredChildren::Leaf(out))
            }
            KcrNode::Internal(entries) => {
                let mut out = Vec::with_capacity(entries.len());
                for e in entries {
                    let kcm = self.read_kcm(e.kcm)?;
                    let matched = query.doc.iter().filter(|&t| kcm.count(t) > 0).count();
                    let tsim_bound = query.sim.kcr_upper(matched, query.doc.len());
                    let min_dist = self.world().normalized_min_dist(&query.loc, &e.mbr);
                    out.push((e.child, st_score(query.alpha, min_dist, tsim_bound)));
                }
                Ok(ScoredChildren::Internal(out))
            }
        }
    }
}
