//! Query-scored node expansion shared by the best-first searches and the
//! parallel counting traversals.
//!
//! Both trees expose the same primitive: read one node and return every
//! child tagged with its score (leaf objects: the exact `ST` score;
//! internal children: the tree's score *upper bound* for the subtree —
//! Theorem 1's set bound on the SetR-tree, the keyword-count bound on
//! the KcR-tree). A counting traversal descends only into subtrees whose
//! bound exceeds the target score, which visits exactly the strict
//! dominators — the same rank as the best-first scan (ties are never
//! dominators), but decomposable into independent subtree tasks.

use crate::kcr::KcrTree;
use crate::model::ObjectId;
use crate::query::{st_score, SpatialKeywordQuery};
use crate::setr::{SetRTree, SetrNode};
use crate::KcrNode;
use wnsk_storage::{BlobRef, Result};

/// One expanded node: children with their score (bound).
pub enum ScoredChildren {
    /// Internal children with the per-subtree score upper bound.
    Internal(Vec<(BlobRef, f64)>),
    /// Leaf objects with their exact score under the query.
    Leaf(Vec<(ObjectId, f64)>),
}

impl SetRTree {
    /// Expands `node`, scoring every child against `query` (Theorem 1's
    /// union/intersection bound for internal entries, the exact score
    /// for leaf objects).
    pub fn scored_children(
        &self,
        query: &SpatialKeywordQuery,
        node: BlobRef,
    ) -> Result<ScoredChildren> {
        match self.read_node(node)? {
            SetrNode::Leaf(entries) => {
                let mut out = Vec::with_capacity(entries.len());
                for e in entries {
                    let doc = self.read_keyword_set(e.doc)?;
                    let sdist = self.world().normalized_dist(&e.loc, &query.loc);
                    let tsim = query.sim.similarity(&doc, &query.doc);
                    out.push((e.object, st_score(query.alpha, sdist, tsim)));
                }
                Ok(ScoredChildren::Leaf(out))
            }
            SetrNode::Internal(entries) => {
                let mut out = Vec::with_capacity(entries.len());
                for e in entries {
                    let union = self.read_keyword_set(e.union)?;
                    let inter = self.read_keyword_set(e.intersection)?;
                    let min_dist = self.world().normalized_min_dist(&query.loc, &e.mbr);
                    let tsim_bound = query.sim.node_upper(&union, &inter, &query.doc);
                    out.push((e.child, st_score(query.alpha, min_dist, tsim_bound)));
                }
                Ok(ScoredChildren::Internal(out))
            }
        }
    }
}

impl KcrTree {
    /// Expands `node`, scoring every child against `query` (the
    /// keyword-count-map bound for internal entries, the exact score for
    /// leaf objects).
    pub fn scored_children(
        &self,
        query: &SpatialKeywordQuery,
        node: BlobRef,
    ) -> Result<ScoredChildren> {
        match self.read_node(node)? {
            KcrNode::Leaf(entries) => {
                let mut out = Vec::with_capacity(entries.len());
                for e in entries {
                    let doc = self.read_doc(e.doc)?;
                    let sdist = self.world().normalized_dist(&e.loc, &query.loc);
                    let tsim = query.sim.similarity(&doc, &query.doc);
                    out.push((e.object, st_score(query.alpha, sdist, tsim)));
                }
                Ok(ScoredChildren::Leaf(out))
            }
            KcrNode::Internal(entries) => {
                let mut out = Vec::with_capacity(entries.len());
                for e in entries {
                    let kcm = self.read_kcm(e.kcm)?;
                    let matched = query.doc.iter().filter(|&t| kcm.count(t) > 0).count();
                    let tsim_bound = query.sim.kcr_upper(matched, query.doc.len());
                    let min_dist = self.world().normalized_min_dist(&query.loc, &e.mbr);
                    out.push((e.child, st_score(query.alpha, min_dist, tsim_bound)));
                }
                Ok(ScoredChildren::Internal(out))
            }
        }
    }
}
