use std::cmp::Ordering;

/// A totally ordered wrapper for *finite* `f64` scores, usable as a
/// `BinaryHeap` priority.
///
/// # Panics
/// Construction debug-asserts finiteness; ranking scores are convex
/// combinations of values in `[0, 1]` so NaN/∞ indicate a bug upstream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    /// Wraps a score, checking finiteness in debug builds.
    #[inline]
    pub fn new(v: f64) -> Self {
        debug_assert!(v.is_finite(), "score must be finite, got {v}");
        OrdF64(v)
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Finite floats order totally; `total_cmp` keeps this robust even
        // if a non-finite value slips through in release builds.
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn orders_like_f64() {
        assert!(OrdF64::new(1.0) > OrdF64::new(0.5));
        assert!(OrdF64::new(-1.0) < OrdF64::new(0.0));
        assert_eq!(OrdF64::new(0.25), OrdF64::new(0.25));
    }

    #[test]
    fn works_as_heap_priority() {
        let mut heap = BinaryHeap::new();
        for v in [0.3, 0.9, 0.1, 0.7] {
            heap.push(OrdF64::new(v));
        }
        assert_eq!(heap.pop(), Some(OrdF64::new(0.9)));
        assert_eq!(heap.pop(), Some(OrdF64::new(0.7)));
    }
}
