//! STR bulk loading and meta-page persistence for the KcR-tree.

use super::node::{KcrInternalEntry, KcrLeafEntry, KcrNode};
use super::{KcrTree, Meta, MAGIC};
use crate::model::Dataset;
use crate::payload;
use crate::str_pack;
use std::sync::Arc;
use wnsk_geo::{Point, Rect, WorldBounds};
use wnsk_storage::codec::{Reader, Writer};
use wnsk_storage::{BlobRef, BlobStore, BufferPool, PageId, Result, StorageError, PAGE_DATA_SIZE};
use wnsk_text::KeywordCountMap;

/// A freshly written node plus the aggregates its parent entry needs.
struct BuiltNode {
    node: BlobRef,
    mbr: Rect,
    cnt: u32,
    kcm: KeywordCountMap,
}

pub(super) fn build(pool: Arc<BufferPool>, dataset: &Dataset, fanout: usize) -> Result<KcrTree> {
    if fanout < 2 {
        return Err(StorageError::invalid_argument(
            "kcr build",
            format!("fanout must be at least 2, got {fanout}"),
        ));
    }
    let allocated = pool.backend().page_count();
    if allocated != 0 {
        return Err(StorageError::invalid_argument(
            "kcr build",
            format!("KcR-tree must be built into empty storage, found {allocated} pages"),
        ));
    }
    let meta_page = pool.allocate()?;
    debug_assert_eq!(meta_page, PageId(0));

    let blobs = BlobStore::new(Arc::clone(&pool));

    // Tombstoned slots never enter the index (see the SetR build).
    let objs: Vec<&crate::model::SpatialObject> = dataset.live_objects().collect();

    let doc_refs: Vec<BlobRef> = objs
        .iter()
        .map(|o| blobs.write(&payload::encode_keyword_set(&o.doc)))
        .collect::<Result<_>>()?;

    let rects: Vec<Rect> = objs.iter().map(|o| Rect::point(o.loc)).collect();
    let levels = str_pack::str_levels(&rects, fanout);

    // Leaf level.
    let mut current: Vec<BuiltNode> = levels[0]
        .groups
        .iter()
        .map(|group| {
            let entries: Vec<KcrLeafEntry> = group
                .iter()
                .map(|&i| KcrLeafEntry {
                    object: objs[i].id,
                    loc: objs[i].loc,
                    doc: doc_refs[i],
                })
                .collect();
            let mbr = group
                .iter()
                .fold(Rect::EMPTY, |acc, &i| acc.union(&rects[i]));
            let mut kcm = KeywordCountMap::new();
            for &i in group {
                kcm.add_doc(&objs[i].doc);
            }
            let node = blobs.write(&KcrNode::Leaf(entries).encode())?;
            Ok(BuiltNode {
                node,
                mbr,
                cnt: group.len() as u32,
                kcm,
            })
        })
        .collect::<Result<_>>()?;

    // Internal levels.
    for level in &levels[1..] {
        current = level
            .groups
            .iter()
            .map(|group| {
                let mut entries = Vec::with_capacity(group.len());
                let mut mbr = Rect::EMPTY;
                let mut cnt = 0u32;
                let mut kcm = KeywordCountMap::new();
                for &i in group {
                    let child = &current[i];
                    let kcm_ref = blobs.write(&payload::encode_kcm(&child.kcm))?;
                    entries.push(KcrInternalEntry {
                        child: child.node,
                        mbr: child.mbr,
                        cnt: child.cnt,
                        kcm: kcm_ref,
                    });
                    mbr = mbr.union(&child.mbr);
                    cnt += child.cnt;
                    kcm.merge(&child.kcm);
                }
                let node = blobs.write(&KcrNode::Internal(entries).encode())?;
                Ok(BuiltNode {
                    node,
                    mbr,
                    cnt,
                    kcm,
                })
            })
            .collect::<Result<_>>()?;
    }

    debug_assert_eq!(current.len(), 1);
    let root = &current[0];
    let root_kcm = blobs.write(&payload::encode_kcm(&root.kcm))?;
    let meta = Meta {
        root: root.node,
        root_mbr: if root.mbr.is_empty() {
            Rect::point(Point::new(0.0, 0.0))
        } else {
            root.mbr
        },
        root_cnt: root.cnt,
        root_kcm,
        height: levels.len() as u32,
        n_objects: objs.len() as u64,
        world: *dataset.world(),
        fanout: fanout as u32,
    };
    write_meta(&pool, &meta)?;
    Ok(KcrTree::from_parts(pool, meta))
}

pub(super) fn write_meta(pool: &BufferPool, meta: &Meta) -> Result<()> {
    let mut w = Writer::with_capacity(PAGE_DATA_SIZE);
    w.write_u32(MAGIC);
    meta.root.encode(&mut w);
    w.write_f64(meta.root_mbr.min.x);
    w.write_f64(meta.root_mbr.min.y);
    w.write_f64(meta.root_mbr.max.x);
    w.write_f64(meta.root_mbr.max.y);
    w.write_u32(meta.root_cnt);
    meta.root_kcm.encode(&mut w);
    w.write_u32(meta.height);
    w.write_u64(meta.n_objects);
    let rect = meta.world.rect();
    w.write_f64(rect.min.x);
    w.write_f64(rect.min.y);
    w.write_f64(rect.max.x);
    w.write_f64(rect.max.y);
    w.write_u32(meta.fanout);
    // The pool zero-pads to the full payload size and embeds the CRC
    // trailer.
    pool.write(PageId(0), &w.into_vec())
}

pub(super) fn read_meta(pool: &BufferPool) -> Result<Meta> {
    let page = pool.read(PageId(0))?;
    let mut r = Reader::new(&page, "kcr meta page");
    let magic = r.read_u32()?;
    if magic != MAGIC {
        return Err(StorageError::corrupt(
            "kcr meta page",
            format!("bad magic {magic:#x}"),
        ));
    }
    let root = BlobRef::decode(&mut r)?;
    let rmin = Point::new(r.read_f64()?, r.read_f64()?);
    let rmax = Point::new(r.read_f64()?, r.read_f64()?);
    let root_cnt = r.read_u32()?;
    let root_kcm = BlobRef::decode(&mut r)?;
    let height = r.read_u32()?;
    let n_objects = r.read_u64()?;
    let wmin = Point::new(r.read_f64()?, r.read_f64()?);
    let wmax = Point::new(r.read_f64()?, r.read_f64()?);
    let fanout = r.read_u32()?;
    Ok(Meta {
        root,
        root_mbr: Rect::new(rmin, rmax),
        root_cnt,
        root_kcm,
        height,
        n_objects,
        world: WorldBounds::new(Rect::new(wmin, wmax)),
        fanout,
    })
}
