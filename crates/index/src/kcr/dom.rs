//! Dominator-count bounds over KcR-tree nodes: `MaxDom` (Algorithm 2) and
//! `MinDom` (its dual, which the paper leaves as "done similarly").
//!
//! Setting. Under a refined keyword set `S`, an object `o` inside node `N`
//! *dominates* the missing object `m` when `ST(o) > ST(m)`. Theorem 2
//! turns that into textual thresholds:
//!
//! * necessary: `TSim(o, S) > τ_L` with
//!   `τ_L = α/(1−α)·(MinDist(N,q) − SDist(m,q)) + TSim(m,S)` — any object
//!   failing this cannot dominate, so the number of objects that *can*
//!   exceed `τ_L` upper-bounds the dominators (`MaxDom`);
//! * sufficient: `TSim(o, S) > τ_U` with `MaxDist` in place of `MinDist` —
//!   any object exceeding `τ_U` must dominate, so the number of objects
//!   *forced* above `τ_U` lower-bounds the dominators (`MinDom`).
//!
//! Both counts are evaluated against the node's keyword-count map alone,
//! adversarially over every document assignment consistent with it.
//!
//! **`MaxDom`** follows Algorithm 2: start with all `cnt` objects assumed
//! dominating and virtually prune one object at a time, packing as many
//! query-irrelevant keywords as possible onto pruned objects, until
//! Theorem 3's aggregate test `TSim~(N,S) ≥ τ_L` passes. Each pruned
//! object holds every term at most once, so after pruning `k = cnt − ans`
//! objects the adversarial counts are
//! `count_t^cur = min(count_t, ans)` for relevant terms (relevant
//! occurrences are kept on the remaining objects) and
//! `count_t^cur = max(0, count_t − k)` for irrelevant ones (each pruned
//! object absorbs one occurrence of each irrelevant term, matching the
//! paper's Example 5 trace) — which lets each iteration run in
//! `O(|S| + log |N.doc|)` using per-node prefix sums instead of touching
//! the whole map. Soundness: if the true dominator count is `d`, the real
//! assignment witnesses `TSim~(d) ≥ τ_L` (sum Theorem 2 over the
//! dominators and bound each aggregate adversarially), so the largest
//! passing `ans` is ≥ `d`. This is property-tested against brute force.
//!
//! **`MinDom`** is derived as the feasibility dual. Suppose only `ans`
//! objects dominate. Then the other `cnt − ans` objects all satisfy
//! `TSim(o,S) ≤ τ_U`, i.e. `|o.doc ∩ S| ≤ τ_U·|o.doc ∪ S|`. Summing over
//! the non-dominators and bounding each side adversarially —
//! the dominators can absorb at most `ans` occurrences of each relevant
//! term, so non-dominators hold at least
//! `R_min = Σ_{t∈S∩N.doc} max(0, count_t − ans)` relevant occurrences,
//! while they can hold at most
//! `I_max = Σ_{t∈N.doc−S} min(count_t, cnt−ans)` irrelevant ones — yields
//! the necessary condition `R_min ≤ τ_U·(|S|·(cnt−ans) + I_max)`. The
//! smallest `ans` satisfying it is a sound lower bound: violating it for
//! every assignment forces at least `ans+1` objects above `τ_U`.

use super::NodeSummary;
use wnsk_text::{KeywordCountMap, KeywordSet, ProjectedSet, SimUniverse, TextModel};

/// Slack for floating-point comparisons, oriented so both bounds stay
/// conservative (MaxDom can only grow, MinDom only shrink).
const EPS: f64 = 1e-9;

/// `τ_L` of Theorem 2 (with the node's minimum distance): the textual
/// similarity every dominator inside the node must strictly exceed.
#[inline]
pub fn tau_lower(alpha: f64, min_dist_norm: f64, m_sdist_norm: f64, m_tsim: f64) -> f64 {
    alpha / (1.0 - alpha) * (min_dist_norm - m_sdist_norm) + m_tsim
}

/// `τ_U`: the dual threshold using the node's maximum distance — any
/// object strictly exceeding it is guaranteed to dominate.
#[inline]
pub fn tau_upper(alpha: f64, max_dist_norm: f64, m_sdist_norm: f64, m_tsim: f64) -> f64 {
    alpha / (1.0 - alpha) * (max_dist_norm - m_sdist_norm) + m_tsim
}

/// Per-node preprocessing shared by every candidate keyword set evaluated
/// against the node (Algorithm 3 batches many `S` per node, so this
/// amortises the sort over the whole batch).
pub struct PreparedNode {
    cnt: u32,
    /// Σ over all terms of `count_t`.
    total: u64,
    /// Term counts sorted ascending, with prefix sums.
    sorted_counts: Vec<u32>,
    prefix_counts: Vec<u64>,
    kcm: KeywordCountMap,
    /// Bitset-kernel layout: `count_t` per universe slot, contiguous and
    /// addressed by bit index instead of hash lookup. Built by
    /// [`PreparedNode::with_projection`]; `None` on the scalar path.
    slot_counts: Option<Box<[u32]>>,
}

impl PreparedNode {
    /// Preprocesses a node summary.
    pub fn new(summary: &NodeSummary) -> Self {
        let mut sorted_counts: Vec<u32> = summary.kcm.iter().map(|(_, c)| c).collect();
        sorted_counts.sort_unstable();
        let mut prefix_counts = Vec::with_capacity(sorted_counts.len() + 1);
        let mut acc = 0u64;
        prefix_counts.push(0);
        for &x in &sorted_counts {
            acc += x as u64;
            prefix_counts.push(acc);
        }
        PreparedNode {
            cnt: summary.cnt,
            total: acc,
            sorted_counts,
            prefix_counts,
            kcm: summary.kcm.clone(),
            slot_counts: None,
        }
    }

    /// Preprocesses a node summary for the bitset kernel: additionally
    /// packs the keyword-count map into a dense per-slot array over the
    /// question's [`SimUniverse`], so evaluating a candidate becomes a
    /// popcount-driven gather instead of per-term hash lookups.
    ///
    /// Slot order is ascending `TermId` (the universe invariant), so the
    /// gathered counts are *the same sequence* the scalar path produces —
    /// which is what keeps the two kernels bit-identical.
    pub fn with_projection(summary: &NodeSummary, uni: &SimUniverse) -> Self {
        let mut prep = Self::new(summary);
        prep.slot_counts = Some(
            (0..uni.len())
                .map(|slot| prep.kcm.count(uni.term_at(slot)))
                .collect(),
        );
        prep
    }

    /// Number of objects under the node.
    pub fn cnt(&self) -> u32 {
        self.cnt
    }

    /// `Σ_t min(k, count_t)` over **all** node terms.
    fn g_all(&self, k: u64) -> u64 {
        // Values ≤ k contribute themselves; larger values contribute k.
        let idx = self.sorted_counts.partition_point(|&v| (v as u64) <= k);
        self.prefix_counts[idx] + k * (self.sorted_counts.len() - idx) as u64
    }

    /// Counts of the candidate terms present in the node (`S ∩ N.doc`).
    fn s_counts(&self, s: &KeywordSet) -> Vec<u32> {
        s.iter()
            .map(|t| self.kcm.count(t))
            .filter(|&c| c > 0)
            .collect()
    }

    /// The candidate-term profile the dominator cores consume, via the
    /// scalar merge path.
    pub fn profile(&self, s: &KeywordSet) -> SCounts {
        SCounts {
            counts: self.s_counts(s),
            s_len: s.len() as u64,
        }
    }

    /// The candidate-term profile via the bitset kernel: gathers the
    /// packed per-slot counts along the candidate's set bits (ascending
    /// slots = ascending `TermId`s, so this equals [`Self::profile`] on
    /// the same candidate).
    ///
    /// The candidate must lie fully inside the universe this node was
    /// prepared with — true for every enumerated candidate, which is a
    /// subset of `doc₀ ∪ M.doc` by construction.
    ///
    /// # Panics
    /// If the node was built with [`PreparedNode::new`] rather than
    /// [`PreparedNode::with_projection`].
    pub fn profile_bits(&self, s: &ProjectedSet) -> SCounts {
        let slot_counts = self
            .slot_counts
            .as_ref()
            .expect("profile_bits on a node prepared without a projection");
        debug_assert!(s.in_universe(), "candidate spills outside the universe");
        let counts = s
            .bits()
            .iter_slots()
            .map(|slot| slot_counts[slot])
            .filter(|&c| c > 0)
            .collect();
        SCounts {
            counts,
            s_len: s.full_len() as u64,
        }
    }
}

/// The per-(node, candidate) term profile both dominator bounds consume:
/// the counts of candidate terms present under the node plus the full
/// candidate cardinality `|S|`.
///
/// Built once per candidate and shared by [`max_dom_counts`] and
/// [`min_dom_counts`] across every missing object's threshold — and by
/// *both* kernels, which converge on this type before any arithmetic
/// happens (the structural form of the bit-identity invariant).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SCounts {
    /// `count_t` for each `t ∈ S ∩ N.doc`, in ascending `TermId` order.
    counts: Vec<u32>,
    /// `|S|` — the *full* candidate length, including terms absent from
    /// the node (the similarity denominators need it).
    s_len: u64,
}

/// `MaxDom(N, S, m)` (Algorithm 2, generalised per text model): an
/// upper bound on the number of objects under the node whose textual
/// similarity to `S` can strictly exceed `tau` — and hence on the
/// dominators of the missing object when `tau = τ_L`.
///
/// Model-specific aggregate tests (each a necessary condition for all
/// remaining `ans` objects to dominate, derived like Theorem 3):
/// * **Jaccard**: `c_in/(|S|·ans + c_out) ≥ τ`;
/// * **Dice**: `2·c_in/(|S|·ans + c_in + c_out) ≥ τ` (sum
///   `2|o∩S| > τ(|o|+|S|)` over the remaining objects and bound each
///   aggregate adversarially);
/// * **Cosine**: `|o∩S| > τ√(|o||S|)` with `|o| ≥ |o∩S|` forces each
///   dominator to hold more than `τ²|S|` relevant terms, so
///   `c_in(ans) ≥ ans·x_min` with `x_min = ⌊τ²|S|⌋+1`.
pub fn max_dom(prep: &PreparedNode, s: &KeywordSet, tau: f64, model: TextModel) -> u32 {
    if prep.cnt == 0 {
        return 0;
    }
    if !(0.0..=1.0).contains(&tau) {
        // Resolved inside the core without needing the profile.
        return max_dom_counts(
            prep,
            &SCounts {
                counts: Vec::new(),
                s_len: 0,
            },
            tau,
            model,
        );
    }
    max_dom_counts(prep, &prep.profile(s), tau, model)
}

/// [`max_dom`] over a prebuilt candidate profile — the shared core both
/// kernels call, so a batch can amortise one [`SCounts`] across every
/// missing object's threshold.
pub fn max_dom_counts(prep: &PreparedNode, sc: &SCounts, tau: f64, model: TextModel) -> u32 {
    let cnt = prep.cnt;
    if cnt == 0 {
        return 0;
    }
    if tau <= 0.0 {
        // Similarity ≥ 0 ≥ tau: every object can dominate.
        return cnt;
    }
    if tau > 1.0 {
        return 0; // Similarity ≤ 1 < tau for every object.
    }
    let s_counts = &sc.counts;
    let c_in_total: u64 = s_counts.iter().map(|&c| c as u64).sum();
    if c_in_total == 0 {
        // No candidate term occurs in the subtree.
        return 0;
    }
    let s_len = sc.s_len;
    let total_out = prep.total - c_in_total;
    // Relevant occurrences kept on the remaining `ans` objects.
    let c_in = |ans: u64| -> u64 { s_counts.iter().map(|&c| (c as u64).min(ans)).sum() };
    // Irrelevant occurrences that cannot all be packed onto the k pruned
    // objects: Σ_{t∈N−S} max(0, count_t − k).
    let c_out = |k: u64| -> u64 {
        let g_s: u64 = s_counts.iter().map(|&c| (c as u64).min(k)).sum();
        total_out - (prep.g_all(k) - g_s)
    };
    let cmax = (*s_counts.iter().max().expect("non-empty") as u64).min(cnt as u64);

    match model {
        TextModel::Jaccard | TextModel::Dice => {
            let passes = |ans: u64| -> bool {
                let k = cnt as u64 - ans;
                let cin = c_in(ans);
                let cout = c_out(k);
                let (num, den) = match model {
                    TextModel::Jaccard => (cin as f64, (s_len * ans + cout) as f64),
                    TextModel::Dice => (2.0 * cin as f64, (s_len * ans + cin + cout) as f64),
                    TextModel::Cosine => unreachable!(),
                };
                let tsim = if den == 0.0 { 0.0 } else { num / den };
                tsim >= tau - EPS
            };
            descending_search(cnt, cmax, passes)
        }
        TextModel::Cosine => {
            // Each dominator must hold at least x_min relevant terms.
            let x_min = ((tau * tau * s_len as f64 - EPS).floor().max(0.0) as u64) + 1;
            if x_min > s_counts.len() as u64 {
                return 0; // More distinct relevant terms than the node has.
            }
            // c_in(ans)/ans is nonincreasing in ans, so the predicate
            // c_in(ans) ≥ ans·x_min is downward closed: binary search the
            // largest satisfying ans.
            let sat = |ans: u64| c_in(ans) >= ans * x_min;
            if sat(cnt as u64) {
                return cnt;
            }
            if !sat(1) {
                return 0;
            }
            let (mut lo, mut hi) = (1u64, cnt as u64); // lo sat, hi unsat
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if sat(mid) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            lo as u32
        }
    }
}

/// The descending scan shared by the Jaccard and Dice aggregate tests:
/// binary search in the monotone region `[cmax, cnt]`, capped linear scan
/// below it.
fn descending_search(cnt: u32, cmax: u64, passes: impl Fn(u64) -> bool) -> u32 {
    if passes(cnt as u64) {
        return cnt;
    }
    if cmax < cnt as u64 && passes(cmax) {
        // Largest passing ans lies in [cmax, cnt): invariant lo passes,
        // hi fails.
        let (mut lo, mut hi) = (cmax, cnt as u64);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if passes(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        return lo as u32;
    }
    // Below cmax the numerator shrinks too and the test is no longer
    // monotone: scan linearly, but cap the work — returning the cutoff
    // value early only *loosens* the upper bound, which stays sound.
    let start = cmax.min(cnt as u64).saturating_sub(1);
    let floor = start.saturating_sub(LINEAR_SCAN_CAP);
    for ans in (1..=start).rev() {
        if ans <= floor {
            return ans as u32;
        }
        if passes(ans) {
            return ans as u32;
        }
    }
    0
}

/// Iteration budget for the non-monotone region of `max_dom` / the
/// feasibility scan of `min_dom`. Exceeding it returns the cutoff value,
/// which is a *looser but sound* bound — the traversal simply descends
/// one level earlier. 512 keeps per-node work bounded while staying exact
/// for every node whose relevant-term counts are below it (all but the
/// top one or two tree levels).
const LINEAR_SCAN_CAP: u64 = 512;

/// `MinDom(N, S, m)`: a lower bound on the number of objects under the
/// node whose textual similarity to `S` strictly exceeds `tau` for every
/// document assignment consistent with the node's keyword-count map — and
/// hence on the dominators when `tau = τ_U`. See the module docs for the
/// Jaccard derivation; Dice substitutes the feasibility inequality
/// `2·r_min ≤ τ·(|S|·nd + r_min + i_max)`. For cosine the adversary can
/// always dilute denominators with irrelevant terms, so the sound bound
/// degenerates to 0 (or `cnt` when `tau < 0`) — costing pruning power,
/// never correctness.
pub fn min_dom(prep: &PreparedNode, s: &KeywordSet, tau: f64, model: TextModel) -> u32 {
    if prep.cnt == 0 {
        return 0;
    }
    if !(0.0..1.0).contains(&tau) {
        return min_dom_counts(
            prep,
            &SCounts {
                counts: Vec::new(),
                s_len: 0,
            },
            tau,
            model,
        );
    }
    min_dom_counts(prep, &prep.profile(s), tau, model)
}

/// [`min_dom`] over a prebuilt candidate profile — the shared core both
/// kernels call (see [`max_dom_counts`]).
pub fn min_dom_counts(prep: &PreparedNode, sc: &SCounts, tau: f64, model: TextModel) -> u32 {
    let cnt = prep.cnt;
    if cnt == 0 {
        return 0;
    }
    if tau < 0.0 {
        // Every object has similarity ≥ 0 > tau and therefore dominates.
        return cnt;
    }
    if tau >= 1.0 {
        return 0; // Similarity > tau ≥ 1 is impossible.
    }
    let s_counts = &sc.counts;
    if s_counts.is_empty() {
        return 0; // Every object can have similarity 0 ≤ tau.
    }
    if model == TextModel::Cosine {
        return 0;
    }
    let s_len = sc.s_len;
    for ans in 0..cnt as u64 {
        if ans > LINEAR_SCAN_CAP {
            // Every smaller count is proven infeasible, so at least `ans`
            // objects dominate — stopping here only loosens (lowers) the
            // bound, which stays sound.
            return ans as u32;
        }
        let nd = cnt as u64 - ans;
        let r_min: u64 = s_counts
            .iter()
            .map(|&c| (c as u64).saturating_sub(ans))
            .sum();
        if r_min == 0 {
            // Non-dominators can be fully irrelevant (similarity 0 ≤ tau).
            return ans as u32;
        }
        let g_s: u64 = s_counts.iter().map(|&c| (c as u64).min(nd)).sum();
        let i_max = prep.g_all(nd) - g_s;
        let feasible = match model {
            TextModel::Jaccard => r_min as f64 <= tau * (s_len * nd + i_max) as f64 + EPS,
            TextModel::Dice => {
                2.0 * r_min as f64 <= tau * (s_len * nd + r_min + i_max) as f64 + EPS
            }
            TextModel::Cosine => unreachable!(),
        };
        if feasible {
            return ans as u32;
        }
    }
    cnt
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnsk_geo::{Point, Rect};
    use wnsk_text::TermId;

    fn summary(pairs: &[(u32, u32)], cnt: u32) -> NodeSummary {
        NodeSummary {
            mbr: Rect::point(Point::new(0.0, 0.0)),
            cnt,
            kcm: KeywordCountMap::from_pairs(pairs.iter().map(|&(t, c)| (TermId(t), c))),
        }
    }

    #[test]
    fn paper_example5_trace() {
        // kcm = {(t1,8),(t2,3),(t3,7),(t4,2),(t5,1)}, cnt = 8, S = {t3,t4},
        // τ_L = 0.395 → MaxDom = 6 (paper Example 5).
        let prep = PreparedNode::new(&summary(&[(1, 8), (2, 3), (3, 7), (4, 2), (5, 1)], 8));
        let s = KeywordSet::from_ids([3, 4]);
        assert_eq!(max_dom(&prep, &s, 0.395, TextModel::Jaccard), 6);
    }

    #[test]
    fn max_dom_trivial_thresholds() {
        let prep = PreparedNode::new(&summary(&[(1, 5), (2, 3)], 5));
        let s = KeywordSet::from_ids([1]);
        assert_eq!(
            max_dom(&prep, &s, -0.5, TextModel::Jaccard),
            5,
            "negative tau keeps everyone"
        );
        assert_eq!(
            max_dom(&prep, &s, 1.5, TextModel::Jaccard),
            0,
            "tau above 1 excludes everyone"
        );
    }

    #[test]
    fn max_dom_irrelevant_node_is_zero() {
        let prep = PreparedNode::new(&summary(&[(1, 5), (2, 3)], 5));
        let s = KeywordSet::from_ids([9]);
        assert_eq!(max_dom(&prep, &s, 0.3, TextModel::Jaccard), 0);
    }

    #[test]
    fn max_dom_fully_relevant_node() {
        // Every object has exactly the query keyword: TSim = 1 for all.
        let prep = PreparedNode::new(&summary(&[(1, 4)], 4));
        let s = KeywordSet::from_ids([1]);
        assert_eq!(max_dom(&prep, &s, 0.9, TextModel::Jaccard), 4);
    }

    #[test]
    fn min_dom_trivial_thresholds() {
        let prep = PreparedNode::new(&summary(&[(1, 5)], 5));
        let s = KeywordSet::from_ids([1]);
        assert_eq!(
            min_dom(&prep, &s, -0.1, TextModel::Jaccard),
            5,
            "negative tau forces everyone"
        );
        assert_eq!(
            min_dom(&prep, &s, 1.0, TextModel::Jaccard),
            0,
            "tau at 1 forces no one"
        );
    }

    #[test]
    fn min_dom_forced_dominators() {
        // 3 objects, every one contains the only query term and nothing
        // else: each must have TSim(o, {t1}) = 1 > 0.5.
        let prep = PreparedNode::new(&summary(&[(1, 3)], 3));
        let s = KeywordSet::from_ids([1]);
        assert_eq!(min_dom(&prep, &s, 0.5, TextModel::Jaccard), 3);
    }

    #[test]
    fn min_dom_zero_when_irrelevant_mass_absorbs() {
        // One relevant occurrence but plenty of irrelevant terms to dilute
        // it below τ: nothing is forced.
        let prep = PreparedNode::new(&summary(&[(1, 1), (2, 4), (3, 4)], 4));
        let s = KeywordSet::from_ids([1]);
        assert_eq!(min_dom(&prep, &s, 0.4, TextModel::Jaccard), 0);
    }

    #[test]
    fn min_dom_never_exceeds_max_dom() {
        let prep = PreparedNode::new(&summary(&[(1, 6), (2, 2), (3, 9), (4, 1)], 9));
        for s in [
            KeywordSet::from_ids([1]),
            KeywordSet::from_ids([1, 3]),
            KeywordSet::from_ids([2, 4, 7]),
        ] {
            for tau in [0.0, 0.2, 0.5, 0.8, 1.0] {
                assert!(
                    min_dom(&prep, &s, tau, TextModel::Jaccard)
                        <= max_dom(&prep, &s, tau, TextModel::Jaccard),
                    "s={s:?} tau={tau}"
                );
            }
        }
    }

    /// Brute-force soundness check: generate concrete documents, build
    /// the node summary they induce, and verify
    /// `min_dom ≤ |{o : TSim(o,S) > τ}| ≤ max_dom`.
    #[test]
    fn bounds_are_sound_against_concrete_documents() {
        // A deterministic little generator (LCG) keeps this test
        // dependency-free and reproducible.
        let mut state = 0x12345678u64;
        let mut next = move |m: u32| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % m
        };
        for case in 0..200 {
            let n_objs = 1 + next(12);
            let vocab = 1 + next(8);
            let docs: Vec<KeywordSet> = (0..n_objs)
                .map(|_| {
                    let len = 1 + next(4);
                    KeywordSet::from_ids((0..len).map(|_| next(vocab)))
                })
                .collect();
            let mut kcm = KeywordCountMap::new();
            for d in &docs {
                kcm.add_doc(d);
            }
            let prep = PreparedNode::new(&NodeSummary {
                mbr: Rect::point(Point::new(0.0, 0.0)),
                cnt: n_objs,
                kcm,
            });
            let s_len = 1 + next(3);
            let s = KeywordSet::from_ids((0..s_len).map(|_| next(vocab + 2)));
            let tau = next(120) as f64 / 100.0 - 0.1;
            let true_count = docs
                .iter()
                .filter(|d| wnsk_text::jaccard(d, &s) > tau)
                .count() as u32;
            let lo = min_dom(&prep, &s, tau, TextModel::Jaccard);
            let hi = max_dom(&prep, &s, tau, TextModel::Jaccard);
            assert!(
                lo <= true_count && true_count <= hi,
                "case {case}: lo={lo} true={true_count} hi={hi} tau={tau} s={s:?} docs={docs:?}"
            );
        }
    }

    #[test]
    fn bitset_profile_matches_scalar_profile() {
        let summary = summary(&[(1, 8), (2, 3), (3, 7), (4, 2), (5, 1)], 8);
        let uni = SimUniverse::new(&KeywordSet::from_ids([1, 3, 4, 9])).unwrap();
        let prep = PreparedNode::with_projection(&summary, &uni);
        for s in [
            KeywordSet::from_ids([3, 4]),
            KeywordSet::from_ids([1, 3, 9]),
            KeywordSet::from_ids([9]),
            KeywordSet::empty(),
        ] {
            let scalar = prep.profile(&s);
            let bits = prep.profile_bits(&uni.project(&s));
            assert_eq!(scalar, bits, "s={s:?}");
            // And the cores see through to identical bounds.
            for tau in [0.0, 0.395, 0.8] {
                for model in [TextModel::Jaccard, TextModel::Dice, TextModel::Cosine] {
                    assert_eq!(
                        max_dom_counts(&prep, &scalar, tau, model),
                        max_dom_counts(&prep, &bits, tau, model)
                    );
                    assert_eq!(
                        min_dom_counts(&prep, &scalar, tau, model),
                        min_dom_counts(&prep, &bits, tau, model)
                    );
                }
            }
        }
    }

    #[test]
    fn counts_core_matches_set_entry_points() {
        let prep = PreparedNode::new(&summary(&[(1, 8), (2, 3), (3, 7), (4, 2), (5, 1)], 8));
        let s = KeywordSet::from_ids([3, 4]);
        for tau in [-0.5, 0.0, 0.395, 0.9, 1.0, 1.5] {
            for model in [TextModel::Jaccard, TextModel::Dice, TextModel::Cosine] {
                assert_eq!(
                    max_dom(&prep, &s, tau, model),
                    max_dom_counts(&prep, &prep.profile(&s), tau, model),
                    "max tau={tau} {model:?}"
                );
                assert_eq!(
                    min_dom(&prep, &s, tau, model),
                    min_dom_counts(&prep, &prep.profile(&s), tau, model),
                    "min tau={tau} {model:?}"
                );
            }
        }
    }

    #[test]
    fn tau_helpers() {
        // α = 0.5 → α/(1−α) = 1.
        assert!((tau_lower(0.5, 0.3, 0.1, 0.4) - 0.6).abs() < 1e-12);
        assert!((tau_upper(0.5, 0.9, 0.1, 0.4) - 1.2).abs() < 1e-12);
        // τ_L ≤ τ_U since MinDist ≤ MaxDist.
        assert!(tau_lower(0.7, 0.2, 0.1, 0.0) <= tau_upper(0.7, 0.5, 0.1, 0.0));
    }

    #[test]
    fn empty_node_is_zero() {
        let prep = PreparedNode::new(&summary(&[], 0));
        let s = KeywordSet::from_ids([1]);
        assert_eq!(max_dom(&prep, &s, 0.5, TextModel::Jaccard), 0);
        assert_eq!(min_dom(&prep, &s, 0.5, TextModel::Jaccard), 0);
    }

    #[test]
    fn empty_candidate_set() {
        // S = ∅: TSim(o, ∅) = 0 for every object; nothing exceeds a
        // non-negative tau, everything exceeds a negative one.
        let prep = PreparedNode::new(&summary(&[(1, 3)], 3));
        let s = KeywordSet::empty();
        assert_eq!(max_dom(&prep, &s, 0.1, TextModel::Jaccard), 0);
        assert_eq!(max_dom(&prep, &s, -0.1, TextModel::Jaccard), 3);
        assert_eq!(min_dom(&prep, &s, 0.1, TextModel::Jaccard), 0);
        assert_eq!(min_dom(&prep, &s, -0.1, TextModel::Jaccard), 3);
    }
}
