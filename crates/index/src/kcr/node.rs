//! On-disk node format of the KcR-tree.
//!
//! Leaf entries are `(o, mbr, pks)` exactly like the SetR-tree. Internal
//! entries are `(pc, mbr, pcm)` plus the child's subtree cardinality
//! `cnt`, so that `MaxDom`/`MinDom` of a child can be evaluated from the
//! parent entry alone (the child *node* is only fetched when the
//! traversal decides to descend).

use wnsk_geo::{Point, Rect};
use wnsk_storage::codec::{Reader, Writer};
use wnsk_storage::{BlobRef, Result, StorageError};

use crate::model::ObjectId;

const KIND_LEAF: u8 = 0;
const KIND_INTERNAL: u8 = 1;

/// A leaf entry: one indexed object.
#[derive(Clone, Debug, PartialEq)]
pub struct KcrLeafEntry {
    pub object: ObjectId,
    pub loc: Point,
    /// Blob holding the object's keyword set (`pks`).
    pub doc: BlobRef,
}

/// An internal entry: one child subtree.
#[derive(Clone, Debug, PartialEq)]
pub struct KcrInternalEntry {
    /// Blob holding the child node (`pc`).
    pub child: BlobRef,
    pub mbr: Rect,
    /// Number of objects under the child (`cnt`).
    pub cnt: u32,
    /// Blob holding the child's keyword-count map (`pcm`).
    pub kcm: BlobRef,
}

/// Either kind of child reference, as seen by the bound-and-prune
/// traversal (Algorithm 3 treats "children" uniformly).
#[derive(Clone, Debug, PartialEq)]
pub enum KcrEntry {
    Leaf(KcrLeafEntry),
    Internal(KcrInternalEntry),
}

/// A decoded KcR-tree node.
#[derive(Clone, Debug, PartialEq)]
pub enum KcrNode {
    Leaf(Vec<KcrLeafEntry>),
    Internal(Vec<KcrInternalEntry>),
}

impl KcrNode {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            KcrNode::Leaf(v) => v.len(),
            KcrNode::Internal(v) => v.len(),
        }
    }

    /// `true` when the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The node's children as uniform [`KcrEntry`] values.
    pub fn entries(&self) -> Vec<KcrEntry> {
        match self {
            KcrNode::Leaf(v) => v.iter().cloned().map(KcrEntry::Leaf).collect(),
            KcrNode::Internal(v) => v.iter().cloned().map(KcrEntry::Internal).collect(),
        }
    }

    /// Serializes the node to its blob payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            KcrNode::Leaf(entries) => {
                let mut w = Writer::with_capacity(5 + entries.len() * 32);
                w.write_u8(KIND_LEAF);
                w.write_u32(entries.len() as u32);
                for e in entries {
                    w.write_u32(e.object.0);
                    w.write_f64(e.loc.x);
                    w.write_f64(e.loc.y);
                    e.doc.encode(&mut w);
                }
                w.into_vec()
            }
            KcrNode::Internal(entries) => {
                let mut w = Writer::with_capacity(5 + entries.len() * 60);
                w.write_u8(KIND_INTERNAL);
                w.write_u32(entries.len() as u32);
                for e in entries {
                    e.child.encode(&mut w);
                    w.write_f64(e.mbr.min.x);
                    w.write_f64(e.mbr.min.y);
                    w.write_f64(e.mbr.max.x);
                    w.write_f64(e.mbr.max.y);
                    w.write_u32(e.cnt);
                    e.kcm.encode(&mut w);
                }
                w.into_vec()
            }
        }
    }

    /// Decodes a node from its blob payload.
    pub fn decode(bytes: &[u8]) -> Result<KcrNode> {
        let mut r = Reader::new(bytes, "kcr node");
        let kind = r.read_u8()?;
        let n = r.read_u32()? as usize;
        match kind {
            KIND_LEAF => {
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let object = ObjectId(r.read_u32()?);
                    let loc = Point::new(r.read_f64()?, r.read_f64()?);
                    let doc = BlobRef::decode(&mut r)?;
                    entries.push(KcrLeafEntry { object, loc, doc });
                }
                Ok(KcrNode::Leaf(entries))
            }
            KIND_INTERNAL => {
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let child = BlobRef::decode(&mut r)?;
                    let min = Point::new(r.read_f64()?, r.read_f64()?);
                    let max = Point::new(r.read_f64()?, r.read_f64()?);
                    let cnt = r.read_u32()?;
                    let kcm = BlobRef::decode(&mut r)?;
                    entries.push(KcrInternalEntry {
                        child,
                        mbr: Rect::new(min, max),
                        cnt,
                        kcm,
                    });
                }
                Ok(KcrNode::Internal(entries))
            }
            other => Err(StorageError::corrupt(
                "kcr node",
                format!("unknown node kind {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(p: u64, len: u32) -> BlobRef {
        BlobRef {
            first_page: wnsk_storage::PageId(p),
            len,
        }
    }

    #[test]
    fn leaf_roundtrip() {
        let node = KcrNode::Leaf(vec![KcrLeafEntry {
            object: ObjectId(3),
            loc: Point::new(1.0, 2.0),
            doc: blob(9, 16),
        }]);
        assert_eq!(KcrNode::decode(&node.encode()).unwrap(), node);
    }

    #[test]
    fn internal_roundtrip() {
        let node = KcrNode::Internal(vec![
            KcrInternalEntry {
                child: blob(1, 100),
                mbr: Rect::new(Point::new(0.0, 0.0), Point::new(0.5, 0.5)),
                cnt: 42,
                kcm: blob(2, 200),
            },
            KcrInternalEntry {
                child: blob(3, 120),
                mbr: Rect::new(Point::new(0.5, 0.5), Point::new(1.0, 1.0)),
                cnt: 58,
                kcm: blob(4, 220),
            },
        ]);
        assert_eq!(KcrNode::decode(&node.encode()).unwrap(), node);
    }

    #[test]
    fn entries_unify_kinds() {
        let leaf = KcrNode::Leaf(vec![KcrLeafEntry {
            object: ObjectId(1),
            loc: Point::new(0.0, 0.0),
            doc: blob(1, 4),
        }]);
        assert!(matches!(leaf.entries()[0], KcrEntry::Leaf(_)));
        let internal = KcrNode::Internal(vec![KcrInternalEntry {
            child: blob(1, 4),
            mbr: Rect::point(Point::new(0.0, 0.0)),
            cnt: 1,
            kcm: blob(2, 4),
        }]);
        assert!(matches!(internal.entries()[0], KcrEntry::Internal(_)));
    }

    #[test]
    fn corrupt_kind_rejected() {
        let mut bytes = KcrNode::Leaf(vec![]).encode();
        bytes[0] = 0xFF;
        assert!(KcrNode::decode(&bytes).is_err());
    }
}
