//! The KcR-tree (*Keyword count R-tree*, §V-A, following \[22\]): an R-tree
//! whose internal entries carry, for each child, the subtree cardinality
//! `cnt` and a keyword-count map `kcm` (term → number of objects in the
//! subtree containing it).
//!
//! The dominance-bound machinery ([`max_dom`] /
//! [`min_dom`], module [`dom`]) estimates, for a
//! candidate keyword set, how many objects under a node out-rank the
//! missing object — without descending into the node. The bound-and-prune
//! why-not algorithm (Algorithm 3, implemented in `wnsk-core`) drives one
//! tree traversal for a whole batch of candidate sets.

pub mod dom;

mod build;
mod mutate;
mod node;
mod search;

pub use dom::{
    max_dom, max_dom_counts, min_dom, min_dom_counts, tau_lower, tau_upper, PreparedNode, SCounts,
};
pub use node::{KcrEntry, KcrInternalEntry, KcrLeafEntry, KcrNode};
pub use search::KcrTopKSearch;

use crate::payload;
use crate::stats::TraversalStats;
use std::sync::Arc;
use wnsk_geo::{Rect, WorldBounds};
use wnsk_obs::Registry;
use wnsk_storage::{BlobRef, BlobStore, BufferPool, Result};
use wnsk_text::{KeywordCountMap, KeywordSet};

/// Magic number identifying a KcR-tree meta page.
const MAGIC: u32 = 0x4B43_5231; // "KCR1"

/// The spatial/textual summary of a subtree: everything `MaxDom`/`MinDom`
/// need (§V-B).
#[derive(Clone, Debug)]
pub struct NodeSummary {
    pub mbr: Rect,
    /// Number of objects in the subtree (`N.cnt`).
    pub cnt: u32,
    /// Keyword-count map of the subtree (`N.kcm`).
    pub kcm: KeywordCountMap,
}

/// Tree-level metadata persisted on page 0.
#[derive(Clone, Debug)]
pub(crate) struct Meta {
    pub root: BlobRef,
    pub root_mbr: Rect,
    pub root_cnt: u32,
    pub root_kcm: BlobRef,
    pub height: u32,
    pub n_objects: u64,
    pub world: WorldBounds,
    pub fanout: u32,
}

/// A disk-resident KcR-tree. Bulk-built, read-only afterwards.
pub struct KcrTree {
    pool: Arc<BufferPool>,
    blobs: BlobStore,
    meta: Meta,
    stats: TraversalStats,
}

impl KcrTree {
    /// Bulk-loads a KcR-tree over `dataset` into empty storage.
    pub fn build(
        pool: Arc<BufferPool>,
        dataset: &crate::model::Dataset,
        fanout: usize,
    ) -> Result<Self> {
        build::build(pool, dataset, fanout)
    }

    /// Opens a previously built tree.
    pub fn open(pool: Arc<BufferPool>) -> Result<Self> {
        let meta = build::read_meta(&pool)?;
        Ok(Self::from_parts(pool, meta))
    }

    pub(crate) fn from_parts(pool: Arc<BufferPool>, meta: Meta) -> Self {
        let blobs = BlobStore::new(Arc::clone(&pool));
        KcrTree {
            pool,
            blobs,
            meta,
            stats: TraversalStats::detached(),
        }
    }

    /// The buffer pool (I/O metering lives here).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Traversal counters: node visits, pruned subtrees, and the
    /// Theorem 2/3 `MaxDom`/`MinDom` prune events recorded by the
    /// bound-and-prune driver.
    pub fn traversal(&self) -> &TraversalStats {
        &self.stats
    }

    /// Publishes the traversal counters into `registry` under `prefix`
    /// (e.g. `"kcr."`), including the dominance-bound counters.
    pub fn register_metrics(&mut self, registry: &Registry, prefix: &str) {
        self.stats.register(registry, prefix, true);
    }

    /// Attaches a tracer: node visits (and the solvers' Theorem 2/3
    /// prune decisions, which go through [`TraversalStats`]) emit trace
    /// events.
    pub fn set_tracer(&mut self, tracer: wnsk_obs::Tracer) {
        self.stats.set_tracer(tracer);
    }

    /// World bounds the tree was built with.
    pub fn world(&self) -> &WorldBounds {
        &self.meta.world
    }

    /// Number of indexed objects.
    pub fn len(&self) -> u64 {
        self.meta.n_objects
    }

    /// `true` when the tree indexes no objects.
    pub fn is_empty(&self) -> bool {
        self.meta.n_objects == 0
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.meta.height
    }

    /// Blob reference of the root node.
    pub fn root(&self) -> BlobRef {
        self.meta.root
    }

    /// Summary of the whole tree (the root's `mbr`/`cnt`/`kcm`), reading
    /// the root keyword-count map from storage.
    pub fn root_summary(&self) -> Result<NodeSummary> {
        Ok(NodeSummary {
            mbr: self.meta.root_mbr,
            cnt: self.meta.root_cnt,
            kcm: self.read_kcm(self.meta.root_kcm)?,
        })
    }

    /// Reads and decodes a node (every traversal path funnels through
    /// here, so this is also where node visits are counted).
    pub fn read_node(&self, node: BlobRef) -> Result<KcrNode> {
        self.stats.visit_traced(node.first_page.0);
        let bytes = self.blobs.read(node)?;
        KcrNode::decode(&bytes)
    }

    /// Reads a child's keyword-count map.
    pub fn read_kcm(&self, blob: BlobRef) -> Result<KeywordCountMap> {
        let bytes = self.blobs.read(blob)?;
        payload::decode_kcm(&bytes)
    }

    /// Reads an object's keyword set.
    pub fn read_doc(&self, blob: BlobRef) -> Result<KeywordSet> {
        let bytes = self.blobs.read(blob)?;
        payload::decode_keyword_set(&bytes)
    }
}
