//! Best-first top-k / rank search over the KcR-tree.
//!
//! The KcR-tree's keyword-count maps give a per-node textual bound
//! `TSim(o, q.doc) ≤ |q.doc ∩ N.doc| / |q.doc|` (each object can match at
//! most the distinct query terms present in the subtree, and its union
//! with the query has at least `|q.doc|` terms). Combined with `MinDist`
//! this yields a correct, if looser than the SetR-tree's, score upper
//! bound — enough for the KcR-based algorithm to determine the missing
//! object's initial rank on its own index (§V-D, Algorithm 4 line 1).

use super::KcrTree;
use crate::descend::ScoredChildren;
use crate::model::ObjectId;
use crate::query::SpatialKeywordQuery;
use crate::setr::{RankMode, RankOutcome};
use crate::util::OrdF64;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use wnsk_storage::{BlobRef, Result};

enum Item {
    Node(BlobRef),
    Object(ObjectId),
}

struct HeapEntry {
    score: OrdF64,
    item: Item,
}

impl HeapEntry {
    fn rank_key(&self) -> (OrdF64, u8, std::cmp::Reverse<u32>) {
        match self.item {
            Item::Node(_) => (self.score, 1, std::cmp::Reverse(0)),
            Item::Object(id) => (self.score, 0, std::cmp::Reverse(id.0)),
        }
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.rank_key() == other.rank_key()
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank_key().cmp(&other.rank_key())
    }
}

/// Incremental best-first scan over a [`KcrTree`].
pub struct KcrTopKSearch<'a> {
    tree: &'a KcrTree,
    query: SpatialKeywordQuery,
    heap: BinaryHeap<HeapEntry>,
    primed: bool,
}

impl Drop for KcrTopKSearch<'_> {
    fn drop(&mut self) {
        // Subtrees still enqueued when the scan stops were pruned by the
        // keyword-count score bound: the caller terminated before their
        // bound reached the front of the queue.
        let pruned = self
            .heap
            .iter()
            .filter(|e| matches!(e.item, Item::Node(_)))
            .count();
        if pruned > 0 {
            self.tree.traversal().nodes_pruned.add(pruned as u64);
        }
    }
}

impl<'a> KcrTopKSearch<'a> {
    /// Starts a scan for `query`.
    pub fn new(tree: &'a KcrTree, query: SpatialKeywordQuery) -> Self {
        KcrTopKSearch {
            tree,
            query,
            heap: BinaryHeap::new(),
            primed: false,
        }
    }

    fn expand(&mut self, node_ref: BlobRef) -> Result<()> {
        match self.tree.scored_children(&self.query, node_ref)? {
            ScoredChildren::Leaf(objects) => {
                for (id, score) in objects {
                    self.heap.push(HeapEntry {
                        score: OrdF64::new(score),
                        item: Item::Object(id),
                    });
                }
            }
            ScoredChildren::Internal(children) => {
                for (child, bound) in children {
                    self.heap.push(HeapEntry {
                        score: OrdF64::new(bound),
                        item: Item::Node(child),
                    });
                }
            }
        }
        Ok(())
    }

    /// Pulls the next-best object, or `None` when exhausted.
    pub fn next_object(&mut self) -> Result<Option<(ObjectId, f64)>> {
        if !self.primed {
            self.primed = true;
            if !self.tree.is_empty() {
                let root = self.tree.root();
                self.expand(root)?;
            }
        }
        while let Some(entry) = self.heap.pop() {
            match entry.item {
                Item::Object(id) => return Ok(Some((id, entry.score.0))),
                Item::Node(node_ref) => self.expand(node_ref)?,
            }
        }
        Ok(None)
    }
}

impl KcrTree {
    /// Materialises the top-k result.
    pub fn top_k(&self, query: &SpatialKeywordQuery) -> Result<Vec<(ObjectId, f64)>> {
        let mut search = KcrTopKSearch::new(self, query.clone());
        let mut out = Vec::with_capacity(query.k);
        while out.len() < query.k {
            match search.next_object()? {
                Some(hit) => out.push(hit),
                None => break,
            }
        }
        Ok(out)
    }

    /// Computes the rank `R(target, query)` (Eqn. 3), with the same
    /// early-stop contract as [`crate::SetRTree::rank_of`].
    pub fn rank_of(
        &self,
        query: &SpatialKeywordQuery,
        target: ObjectId,
        target_score: f64,
        max_rank: Option<usize>,
        mode: RankMode,
    ) -> Result<RankOutcome> {
        let mut search = KcrTopKSearch::new(self, query.clone());
        let mut dominators = 0usize;
        loop {
            if let Some(max_rank) = max_rank {
                if dominators + 1 > max_rank {
                    return Ok(RankOutcome::Aborted {
                        seen_dominators: dominators,
                    });
                }
            }
            match search.next_object()? {
                None => break,
                Some((id, score)) => {
                    if score > target_score {
                        dominators += 1;
                    } else {
                        match mode {
                            RankMode::StopAtScore => break,
                            RankMode::UntilFound => {
                                if id == target {
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(RankOutcome::Exact {
            rank: dominators + 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcr::KcrNode;
    use crate::model::{Dataset, SpatialObject};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;
    use wnsk_geo::{Point, WorldBounds};
    use wnsk_storage::{BufferPool, BufferPoolConfig, MemBackend};
    use wnsk_text::KeywordSet;

    fn random_dataset(n: usize, vocab: u32, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let objects = (0..n)
            .map(|_| {
                let n_terms = rng.gen_range(1..=6);
                let doc = KeywordSet::from_ids((0..n_terms).map(|_| rng.gen_range(0..vocab)));
                SpatialObject {
                    id: ObjectId(0),
                    loc: Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
                    doc,
                }
            })
            .collect();
        Dataset::new(objects, WorldBounds::unit())
    }

    fn build_tree(dataset: &Dataset, fanout: usize) -> KcrTree {
        let pool = Arc::new(BufferPool::new(
            Arc::new(MemBackend::new()),
            BufferPoolConfig::default(),
        ));
        KcrTree::build(pool, dataset, fanout).unwrap()
    }

    fn query(seed: u64, vocab: u32, k: usize, alpha: f64) -> SpatialKeywordQuery {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_terms = rng.gen_range(1..=4);
        SpatialKeywordQuery::new(
            Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
            KeywordSet::from_ids((0..n_terms).map(|_| rng.gen_range(0..vocab))),
            k,
            alpha,
        )
    }

    #[test]
    fn top_k_matches_brute_force() {
        let ds = random_dataset(400, 35, 21);
        let tree = build_tree(&ds, 10);
        for seed in 0..8 {
            let q = query(500 + seed, 35, 10, 0.5);
            assert_eq!(
                tree.top_k(&q)
                    .unwrap()
                    .iter()
                    .map(|t| t.0)
                    .collect::<Vec<_>>(),
                ds.top_k(&q).iter().map(|t| t.0).collect::<Vec<_>>(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn rank_matches_brute_force() {
        let ds = random_dataset(250, 30, 22);
        let tree = build_tree(&ds, 8);
        for seed in 0..6 {
            let q = query(600 + seed, 30, 5, 0.4);
            let target = ObjectId((seed as u32 * 41) % 250);
            let score = ds.score(ds.object(target), &q);
            let outcome = tree
                .rank_of(&q, target, score, None, RankMode::StopAtScore)
                .unwrap();
            assert_eq!(outcome.rank(), Some(ds.rank_of(target, &q)), "seed {seed}");
        }
    }

    #[test]
    fn rank_early_stop() {
        let ds = random_dataset(250, 30, 23);
        let tree = build_tree(&ds, 8);
        let q = query(700, 30, 5, 0.5);
        let worst = ds
            .objects()
            .iter()
            .min_by(|a, b| OrdF64::new(ds.score(a, &q)).cmp(&OrdF64::new(ds.score(b, &q))))
            .unwrap()
            .id;
        let score = ds.score(ds.object(worst), &q);
        assert!(matches!(
            tree.rank_of(&q, worst, score, Some(5), RankMode::StopAtScore)
                .unwrap(),
            RankOutcome::Aborted { seen_dominators: 5 }
        ));
    }

    #[test]
    fn summaries_aggregate_correctly() {
        // The root summary must count every object and every term
        // occurrence exactly once.
        let ds = random_dataset(300, 20, 24);
        let tree = build_tree(&ds, 7);
        let root = tree.root_summary().unwrap();
        assert_eq!(root.cnt, 300);
        let mut expected = wnsk_text::KeywordCountMap::new();
        for o in ds.objects() {
            expected.add_doc(&o.doc);
        }
        assert_eq!(root.kcm, expected);
        for o in ds.objects() {
            assert!(root.mbr.contains_point(&o.loc));
        }
    }

    #[test]
    fn child_summaries_partition_parent() {
        let ds = random_dataset(500, 25, 25);
        let tree = build_tree(&ds, 9);
        let root = tree.read_node(tree.root()).unwrap();
        if let KcrNode::Internal(entries) = root {
            let total: u32 = entries.iter().map(|e| e.cnt).sum();
            assert_eq!(total, 500);
            let mut merged = wnsk_text::KeywordCountMap::new();
            for e in &entries {
                merged.merge(&tree.read_kcm(e.kcm).unwrap());
            }
            assert_eq!(merged, tree.root_summary().unwrap().kcm);
        } else {
            panic!("expected internal root for 500 objects with fanout 9");
        }
    }

    #[test]
    fn persists_through_file_backend() {
        use wnsk_storage::FileBackend;
        let ds = random_dataset(150, 15, 26);
        let dir = std::env::temp_dir().join(format!("wnsk-kcr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kcr.db");
        let q = query(800, 15, 7, 0.5);
        let expected;
        {
            let backend = Arc::new(FileBackend::create(&path).unwrap());
            let pool = Arc::new(BufferPool::with_default_config(backend));
            let tree = KcrTree::build(pool, &ds, 10).unwrap();
            expected = tree.top_k(&q).unwrap();
        }
        {
            let backend = Arc::new(FileBackend::open(&path).unwrap());
            let pool = Arc::new(BufferPool::with_default_config(backend));
            let tree = KcrTree::open(pool).unwrap();
            assert_eq!(tree.top_k(&q).unwrap(), expected);
        }
        std::fs::remove_file(&path).ok();
    }
}
