//! Incremental mutation of the KcR-tree: insert, remove, and keyword
//! update with exact maintenance of the per-entry `cnt` cardinalities and
//! `kcm` keyword-count maps the `MaxDom`/`MinDom` bounds read.
//!
//! Copy-on-write over the append-only blob store, mirroring the SetR
//! mutation path: every rewritten node and refreshed aggregate payload is
//! a fresh blob, and only the meta page (which also carries the root
//! summary) changes. All tie-breaking is deterministic so WAL replay
//! reproduces the exact tree a never-crashed engine maintains.

use super::node::{KcrInternalEntry, KcrLeafEntry, KcrNode};
use super::{KcrTree, Meta};
use crate::model::ObjectId;
use crate::payload;
use crate::setr::mutate::choose_subtree;
use wnsk_geo::{Point, Rect};
use wnsk_storage::{BlobRef, Result, StorageError};
use wnsk_text::{KeywordCountMap, KeywordSet};

/// A rewritten node plus the aggregates its parent entry records.
struct Rebuilt {
    node: BlobRef,
    mbr: Rect,
    cnt: u32,
    kcm: KeywordCountMap,
    /// The rewritten node has no entries left; the parent drops it.
    empty: bool,
}

/// Outcome of inserting into a subtree.
enum Inserted {
    One(Rebuilt),
    Split(Rebuilt, Rebuilt),
}

impl KcrTree {
    /// Inserts one object, maintaining `cnt`/`kcm` along the path.
    pub fn insert(&mut self, id: ObjectId, loc: Point, doc: &KeywordSet) -> Result<()> {
        let root = self.meta.root;
        let height = self.meta.height;
        let outcome = self.insert_into(root, id, loc, doc)?;
        let (rebuilt, new_height) = match outcome {
            Inserted::One(r) => (r, height),
            Inserted::Split(a, b) => {
                let entries = vec![self.internal_entry(&a)?, self.internal_entry(&b)?];
                (self.internal_rebuilt(entries)?, height + 1)
            }
        };
        self.refresh_meta(rebuilt, new_height, self.meta.n_objects + 1)
    }

    /// Removes the object `id` located at `loc`. Underfull nodes are
    /// permitted; emptied subtrees are dropped and a single-child
    /// internal root collapses.
    ///
    /// Returns [`StorageError::InvalidArgument`] when no leaf entry
    /// matches — the tree and dataset would otherwise silently diverge.
    pub fn remove(&mut self, id: ObjectId, loc: Point) -> Result<()> {
        let root = self.meta.root;
        let height = self.meta.height;
        let Some(mut rebuilt) = self.remove_from(root, id, loc)? else {
            return Err(StorageError::invalid_argument(
                "kcr remove",
                format!("{id:?} not found at {loc:?}"),
            ));
        };
        let mut new_height = height;
        // Collapse a single-child (or emptied) internal root so the tree
        // keeps the shape invariants of a fresh bulk load.
        loop {
            if new_height <= 1 {
                break;
            }
            match self.read_node(rebuilt.node)? {
                KcrNode::Internal(entries) if entries.is_empty() => {
                    rebuilt.node = self.write_node(&KcrNode::Leaf(Vec::new()))?;
                    new_height = 1;
                }
                KcrNode::Internal(entries) if entries.len() == 1 => {
                    // The entry already carries the child's aggregates.
                    let e = &entries[0];
                    rebuilt = Rebuilt {
                        node: e.child,
                        mbr: e.mbr,
                        cnt: e.cnt,
                        kcm: self.read_kcm(e.kcm)?,
                        empty: e.cnt == 0,
                    };
                    new_height -= 1;
                }
                _ => break,
            }
        }
        self.refresh_meta(rebuilt, new_height, self.meta.n_objects - 1)
    }

    /// Replaces the keyword set of object `id` at `loc`: a remove + insert
    /// under the same id.
    pub fn update_doc(&mut self, id: ObjectId, loc: Point, doc: &KeywordSet) -> Result<()> {
        self.remove(id, loc)?;
        self.insert(id, loc, doc)
    }

    /// Rewrites the meta page with a new root, refreshing the root
    /// summary (`root_mbr`/`root_cnt`/`root_kcm`) the solvers seed their
    /// traversals with.
    fn refresh_meta(&mut self, root: Rebuilt, height: u32, n_objects: u64) -> Result<()> {
        let root_kcm = self.blobs.write(&payload::encode_kcm(&root.kcm))?;
        self.meta = Meta {
            root: root.node,
            root_mbr: if root.mbr.is_empty() {
                // Matches the bulk-load convention for an empty tree.
                Rect::point(Point::new(0.0, 0.0))
            } else {
                root.mbr
            },
            root_cnt: root.cnt,
            root_kcm,
            height,
            n_objects,
            ..self.meta.clone()
        };
        super::build::write_meta(&self.pool, &self.meta)
    }

    fn write_node(&self, node: &KcrNode) -> Result<BlobRef> {
        self.blobs.write(&node.encode())
    }

    fn internal_entry(&self, r: &Rebuilt) -> Result<KcrInternalEntry> {
        Ok(KcrInternalEntry {
            child: r.node,
            mbr: r.mbr,
            cnt: r.cnt,
            kcm: self.blobs.write(&payload::encode_kcm(&r.kcm))?,
        })
    }

    /// Leaf aggregates recomputed from the member documents.
    fn leaf_rebuilt(&self, entries: Vec<KcrLeafEntry>) -> Result<Rebuilt> {
        let mut mbr = Rect::EMPTY;
        let mut kcm = KeywordCountMap::new();
        for e in &entries {
            mbr = mbr.union(&Rect::point(e.loc));
            kcm.add_doc(&self.read_doc(e.doc)?);
        }
        let cnt = entries.len() as u32;
        let empty = entries.is_empty();
        let node = self.write_node(&KcrNode::Leaf(entries))?;
        Ok(Rebuilt {
            node,
            mbr,
            cnt,
            kcm,
            empty,
        })
    }

    /// Internal aggregates recomputed from the entries' stored payloads.
    fn internal_rebuilt(&self, entries: Vec<KcrInternalEntry>) -> Result<Rebuilt> {
        let mut mbr = Rect::EMPTY;
        let mut cnt = 0u32;
        let mut kcm = KeywordCountMap::new();
        for e in &entries {
            mbr = mbr.union(&e.mbr);
            cnt += e.cnt;
            kcm.merge(&self.read_kcm(e.kcm)?);
        }
        let empty = entries.is_empty();
        let node = self.write_node(&KcrNode::Internal(entries))?;
        Ok(Rebuilt {
            node,
            mbr,
            cnt,
            kcm,
            empty,
        })
    }

    fn insert_into(
        &self,
        node: BlobRef,
        id: ObjectId,
        loc: Point,
        doc: &KeywordSet,
    ) -> Result<Inserted> {
        match self.read_node(node)? {
            KcrNode::Leaf(mut entries) => {
                let doc_ref = self.blobs.write(&payload::encode_keyword_set(doc))?;
                entries.push(KcrLeafEntry {
                    object: id,
                    loc,
                    doc: doc_ref,
                });
                if entries.len() <= self.meta.fanout as usize {
                    return Ok(Inserted::One(self.leaf_rebuilt(entries)?));
                }
                // Deterministic split: order by (x, y, id), cut in half.
                entries.sort_by(|a, b| {
                    a.loc
                        .x
                        .total_cmp(&b.loc.x)
                        .then(a.loc.y.total_cmp(&b.loc.y))
                        .then(a.object.cmp(&b.object))
                });
                let right = entries.split_off(entries.len() / 2);
                Ok(Inserted::Split(
                    self.leaf_rebuilt(entries)?,
                    self.leaf_rebuilt(right)?,
                ))
            }
            KcrNode::Internal(mut entries) => {
                let chosen = choose_subtree(entries.iter().map(|e| &e.mbr), loc);
                let child = entries[chosen].child;
                match self.insert_into(child, id, loc, doc)? {
                    Inserted::One(r) => {
                        entries[chosen] = self.internal_entry(&r)?;
                    }
                    Inserted::Split(a, b) => {
                        entries[chosen] = self.internal_entry(&a)?;
                        entries.insert(chosen + 1, self.internal_entry(&b)?);
                    }
                }
                if entries.len() <= self.meta.fanout as usize {
                    return Ok(Inserted::One(self.internal_rebuilt(entries)?));
                }
                entries.sort_by(|a, b| {
                    let (ca, cb) = (a.mbr.center(), b.mbr.center());
                    ca.x.total_cmp(&cb.x)
                        .then(ca.y.total_cmp(&cb.y))
                        .then(a.child.first_page.cmp(&b.child.first_page))
                });
                let right = entries.split_off(entries.len() / 2);
                Ok(Inserted::Split(
                    self.internal_rebuilt(entries)?,
                    self.internal_rebuilt(right)?,
                ))
            }
        }
    }

    /// Removes `id` from the subtree; `None` when it was not found here.
    fn remove_from(&self, node: BlobRef, id: ObjectId, loc: Point) -> Result<Option<Rebuilt>> {
        match self.read_node(node)? {
            KcrNode::Leaf(mut entries) => {
                let Some(pos) = entries.iter().position(|e| e.object == id) else {
                    return Ok(None);
                };
                entries.remove(pos);
                Ok(Some(self.leaf_rebuilt(entries)?))
            }
            KcrNode::Internal(mut entries) => {
                for i in 0..entries.len() {
                    if !entries[i].mbr.contains_point(&loc) {
                        continue;
                    }
                    let child = entries[i].child;
                    if let Some(r) = self.remove_from(child, id, loc)? {
                        if r.empty {
                            entries.remove(i);
                        } else {
                            entries[i] = self.internal_entry(&r)?;
                        }
                        return Ok(Some(self.internal_rebuilt(entries)?));
                    }
                }
                Ok(None)
            }
        }
    }
}
