//! Property-based coverage for the log-linear [`Hist`]: merge algebra,
//! bucket boundary behaviour across the whole `u64` range, percentile
//! monotonicity, and cumulativity of the exported Prometheus buckets.

use proptest::prelude::*;
use wnsk_obs::{prometheus_text, Hist, Registry};

fn hist_of(samples: &[u64]) -> Hist {
    let h = Hist::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Samples spanning every regime: the exact region (<32), mid-range
/// values, and the saturating top octaves.
fn sample_value() -> impl Strategy<Value = u64> {
    (any::<u64>(), 0u8..5).prop_map(|(v, kind)| match kind {
        0 => v % 64,
        1 => v % 1_000_000,
        2 => u64::MAX,
        3 => u64::MAX - (v % 3),
        _ => v,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging snapshots in either order equals recording everything
    /// into one histogram.
    #[test]
    fn merge_is_commutative_and_matches_combined(
        xs in proptest::collection::vec(sample_value(), 0..100),
        ys in proptest::collection::vec(sample_value(), 0..100),
    ) {
        let a = hist_of(&xs).snapshot();
        let b = hist_of(&ys).snapshot();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        let combined: Vec<u64> = xs.iter().chain(&ys).copied().collect();
        prop_assert_eq!(&ab, &hist_of(&combined).snapshot());
    }

    /// Count and saturating sum are exact; the maximum is exact (not
    /// bucket-rounded); percentiles bound the true max from above with
    /// at most one sub-bucket (≤1/16) of relative rounding.
    #[test]
    fn totals_and_extremes_are_faithful(
        xs in proptest::collection::vec(sample_value(), 1..100),
    ) {
        let s = hist_of(&xs).snapshot();
        prop_assert_eq!(s.count, xs.len() as u64);
        let true_sum = xs.iter().fold(0u64, |a, &v| a.saturating_add(v));
        prop_assert_eq!(s.sum, true_sum);
        let max = *xs.iter().max().unwrap();
        prop_assert_eq!(s.max, max);
        let p100 = s.percentile(100.0);
        prop_assert!(p100 >= max);
        prop_assert!(p100 <= max.saturating_add(max / 16 + 1));
    }

    /// percentile(p) is monotone non-decreasing in p.
    #[test]
    fn percentiles_are_monotone(
        xs in proptest::collection::vec(sample_value(), 1..100),
        pa in 0.0f64..100.0,
        pb in 0.0f64..100.0,
    ) {
        let (p1, p2) = if pa <= pb { (pa, pb) } else { (pb, pa) };
        let s = hist_of(&xs).snapshot();
        prop_assert!(s.percentile(p1) <= s.percentile(p2));
        prop_assert!(s.p50() <= s.p90());
        prop_assert!(s.p90() <= s.p99());
        prop_assert!(s.p99() <= s.percentile(100.0));
    }

    /// since() is the inverse of recording more samples.
    #[test]
    fn since_isolates_the_delta(
        xs in proptest::collection::vec(sample_value(), 0..50),
        ys in proptest::collection::vec(sample_value(), 0..50),
    ) {
        let h = hist_of(&xs);
        let before = h.snapshot();
        for &v in &ys {
            h.record(v);
        }
        let delta = h.snapshot().since(&before);
        prop_assert_eq!(delta.count, ys.len() as u64);
        // The sum identity only holds while the accumulator has not
        // saturated (saturation deliberately loses delta information).
        let total: u128 = xs.iter().chain(&ys).map(|&v| v as u128).sum();
        if total < u64::MAX as u128 {
            prop_assert_eq!(delta.sum, ys.iter().copied().sum::<u64>());
        }
        // Bucket-for-bucket the delta matches a fresh recording of ys
        // (max differs: it cannot be un-merged, so since() keeps the
        // later max).
        let fresh = hist_of(&ys).snapshot();
        let deltas: Vec<_> = delta.nonzero_buckets().collect();
        let freshs: Vec<_> = fresh.nonzero_buckets().collect();
        prop_assert_eq!(deltas, freshs);
    }

    /// The exported Prometheus buckets are cumulative, their le bounds
    /// strictly increase, and `+Inf` equals `_count`.
    #[test]
    fn prometheus_buckets_are_cumulative(
        xs in proptest::collection::vec(sample_value(), 0..100),
    ) {
        let r = Registry::new();
        let h = r.hist("lat_ns");
        for &v in &xs {
            h.record(v);
        }
        let text = prometheus_text(&r.snapshot());
        let mut prev_le = -1.0f64;
        let mut prev_cum = 0u64;
        let mut inf = None;
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("wnsk_lat_ns_bucket{le=\"") else {
                continue;
            };
            let (le, rest) = rest.split_once('"').unwrap();
            let cum: u64 = rest.trim_start_matches('}').trim().parse().unwrap();
            prop_assert!(cum >= prev_cum, "buckets must be cumulative: {line}");
            prev_cum = cum;
            if le == "+Inf" {
                inf = Some(cum);
            } else {
                let le: f64 = le.parse().unwrap();
                prop_assert!(le > prev_le, "le must increase: {line}");
                prev_le = le;
            }
        }
        prop_assert_eq!(inf, Some(xs.len() as u64));
        prop_assert!(text.contains("wnsk_lat_ns_sum "));
        let count_line = format!("wnsk_lat_ns_count {}", xs.len());
        prop_assert!(text.contains(&count_line));
    }
}
