//! Property-based coverage for the hand-rolled [`JsonValue`]
//! parser/renderer pair, which carries the serving layer's wire
//! protocol, the bench-gate baselines and the `--explain=json` output:
//! arbitrary finite documents must round-trip losslessly, numbers
//! bit-identically, and the parser must reject trailing garbage.
//!
//! The vendored proptest shim has no recursive/regex strategies, so
//! documents are grown by a deterministic splitmix64 expansion of a
//! single `u64` seed — every case is still fully reproducible.

use proptest::prelude::*;
use wnsk_obs::JsonValue;

fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Characters that exercise every rendering path: plain ASCII, the two
/// mandatory escapes, control characters (`\u` escapes), multi-byte
/// UTF-8 and an astral-plane scalar.
const CHAR_POOL: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{1}', '\u{1f}', '\u{7f}', 'é', 'π',
    '💧', '{', '[', ':', ',',
];

fn gen_string(state: &mut u64) -> String {
    let len = (next(state) % 9) as usize;
    (0..len)
        .map(|_| CHAR_POOL[(next(state) as usize) % CHAR_POOL.len()])
        .collect()
}

/// A finite number — JSON has no NaN/Infinity (the renderer maps them
/// to `null`, deliberately not a round trip) — with `-0.0` normalised
/// to `0.0`, since integral values render through `i64` and the sign of
/// zero is not representable there.
fn normalize(v: f64) -> f64 {
    if !v.is_finite() || v == 0.0 {
        0.0
    } else {
        v
    }
}

fn gen_number(state: &mut u64) -> f64 {
    let raw = next(state);
    let v = match raw % 4 {
        0 => next(state) as i32 as f64,
        1 => f64::from_bits(next(state)),
        2 => (next(state) as i32 as f64) * 1e-7,
        _ => (next(state) as i32 as f64) * 1e18,
    };
    normalize(v)
}

fn gen_value(state: &mut u64, depth: u32) -> JsonValue {
    let containers_allowed = depth < 4;
    match next(state) % if containers_allowed { 6 } else { 4 } {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(next(state).is_multiple_of(2)),
        2 => JsonValue::Number(gen_number(state)),
        3 => JsonValue::String(gen_string(state)),
        4 => {
            let n = (next(state) % 5) as usize;
            JsonValue::Array((0..n).map(|_| gen_value(state, depth + 1)).collect())
        }
        _ => {
            let n = (next(state) % 5) as usize;
            JsonValue::Object(
                (0..n)
                    .map(|_| (gen_string(state), gen_value(state, depth + 1)))
                    .collect(),
            )
        }
    }
}

fn json_value() -> impl Strategy<Value = JsonValue> {
    any::<u64>().prop_map(|seed| {
        let mut state = seed;
        gen_value(&mut state, 0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse ∘ render` is the identity on finite documents — including
    /// every number bit, every escape-worthy string and every nesting
    /// the generator produces.
    #[test]
    fn parse_render_round_trips(v in json_value()) {
        let rendered = v.render();
        match JsonValue::parse(&rendered) {
            Ok(parsed) => prop_assert_eq!(parsed, v),
            Err(e) => prop_assert!(false, "own output must parse: {e}\n{rendered}"),
        }
    }

    /// Rendering is a normal form: one round trip reaches a fixed
    /// point, so response lines can be compared textually.
    #[test]
    fn render_is_a_fixed_point(v in json_value()) {
        let once = v.render();
        let twice = JsonValue::parse(&once).unwrap().render();
        prop_assert_eq!(once, twice);
    }

    /// Numbers survive the wire bit-for-bit — the property the serving
    /// layer's "cached answers are bit-identical" guarantee rests on.
    #[test]
    fn numbers_round_trip_bit_identically(bits in any::<u64>(), scale in -40i32..40) {
        let n = normalize(f64::from_bits(bits) * 10f64.powi(scale));
        let rendered = JsonValue::Number(n).render();
        let parsed = JsonValue::parse(&rendered).unwrap().as_f64().unwrap();
        prop_assert_eq!(parsed.to_bits(), n.to_bits(), "rendered as {}", rendered);
    }

    /// Anything after a complete document is an error, not silently
    /// ignored — NDJSON framing depends on it.
    #[test]
    fn trailing_garbage_is_rejected(
        v in json_value(),
        // No bare digits here: `5` + `0` would merge into the valid
        // document `50` instead of being trailing garbage.
        garbage in proptest::sample::select(vec!["x", "{}", "[", "null", ",", "}"]),
    ) {
        let line = format!("{}{garbage}", v.render());
        prop_assert!(JsonValue::parse(&line).is_err(), "accepted: {}", line);
    }

    /// Surrounding ASCII whitespace never changes the parse.
    #[test]
    fn surrounding_whitespace_is_insignificant(
        v in json_value(),
        pad in proptest::sample::select(vec!["", " ", "\t", "\n", " \r\n ", "  \t  "]),
    ) {
        let line = format!("{pad}{}{pad}", v.render());
        prop_assert_eq!(JsonValue::parse(&line).unwrap(), v);
    }
}

/// The recursion guard holds exactly at the documented depth.
#[test]
fn nesting_beyond_the_cap_is_rejected() {
    let deep = |n: usize| format!("{}null{}", "[".repeat(n), "]".repeat(n));
    assert!(JsonValue::parse(&deep(128)).is_ok());
    let err = JsonValue::parse(&deep(129)).unwrap_err();
    assert!(err.contains("nesting deeper"), "{err}");
}
