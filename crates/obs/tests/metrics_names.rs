//! The metrics-name lint: `wnsk_obs::names` and `docs/METRICS.md` must
//! agree in both directions, so the reference cannot drift from the
//! code. CI runs this as an explicit lint step
//! (`cargo test -p wnsk-obs --test metrics_names`).

use std::collections::BTreeSet;

fn metrics_doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/METRICS.md");
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("docs/METRICS.md must exist next to the workspace: {e}"))
}

/// Strips the registration prefixes the pools/trees apply, mapping a
/// documented name like `kcr.pool.physical_reads` back onto the
/// canonical suffix `physical_reads`.
fn canonical(doc_name: &str) -> &str {
    for prefix in ["setr.pool.", "kcr.pool.", "setr.", "kcr."] {
        if let Some(rest) = doc_name.strip_prefix(prefix) {
            return rest;
        }
    }
    doc_name
}

/// Backticked identifiers in the doc that look like metric names:
/// lowercase segments joined by `.`/`_`, at least one letter, no
/// spaces, not a CLI flag or file path.
fn documented_metrics(doc: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for raw in doc.split('`').skip(1).step_by(2) {
        let ok = !raw.is_empty()
            && raw
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
            && raw.chars().any(|c| c.is_ascii_lowercase())
            && !raw.ends_with(".md")
            && !raw.ends_with(".rs");
        if ok {
            out.insert(raw.to_owned());
        }
    }
    out
}

#[test]
fn every_canonical_name_is_documented() {
    let doc = metrics_doc();
    let missing: Vec<&str> = wnsk_obs::names::ALL
        .iter()
        .copied()
        .filter(|name| !doc.contains(&format!("`{name}`")) && !documented_with_prefix(&doc, name))
        .collect();
    assert!(
        missing.is_empty(),
        "wnsk_obs::names constants absent from docs/METRICS.md: {missing:?}"
    );
}

/// A suffix-style name (e.g. `physical_reads`) counts as documented if
/// any prefixed form (e.g. `kcr.pool.physical_reads`) appears.
fn documented_with_prefix(doc: &str, name: &str) -> bool {
    ["setr.pool.", "kcr.pool.", "setr.", "kcr."]
        .iter()
        .any(|p| doc.contains(&format!("`{p}{name}`")))
}

#[test]
fn every_documented_metric_is_a_canonical_name() {
    let doc = metrics_doc();
    let known: BTreeSet<&str> = wnsk_obs::names::ALL.iter().copied().collect();
    let unknown: Vec<String> = documented_metrics(&doc)
        .into_iter()
        .filter(|m| {
            let c = canonical(m);
            // Words documented as prose (e.g. `count`, `total_ms` report
            // fields) are exempted via an explicit allowlist; everything
            // that *looks* like a registry metric must exist in names.
            let is_metric_shaped = c.contains('.') || c.contains('_');
            is_metric_shaped && !known.contains(c) && !ALLOWED_NON_METRICS.contains(&c)
        })
        .collect();
    assert!(
        unknown.is_empty(),
        "docs/METRICS.md documents names missing from wnsk_obs::names \
         (add the constant or extend ALLOWED_NON_METRICS): {unknown:?}"
    );
}

/// Backticked identifiers in METRICS.md that are not registry metric
/// names: report/JSON field names, CLI flag values, type names.
const ALLOWED_NON_METRICS: &[&str] = &[
    // QueryReport / snapshot JSON fields.
    "algorithm",
    "queries",
    "wall_ms",
    "phases",
    "counters",
    "timers",
    "hists",
    "count",
    "total_ms",
    "max_ms",
    "total_nanoseconds",
    "hit_ratio",
    "time_ms",
    "penalty",
    "p50",
    "p90",
    "p99",
    "sum",
    "max",
    "wal_lsn",
    // Flag/config identifiers discussed in prose.
    "io_latency_us",
    "trace_sample",
    "metrics_export",
    // API names discussed in prose.
    "attach_wal",
    "fetch_min",
    "read_node",
    "register_metrics",
    "record_into",
    "worker_scope",
    "set_scope",
    // Prometheus export series suffixes and sanitized sample names.
    "_bucket",
    "_sum",
    "_count",
    "_seconds_total",
    "_max_seconds",
    "wnsk_",
    "wnsk_kcr_prune_maxdom",
];
