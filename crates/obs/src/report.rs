//! [`QueryReport`]: the human- and machine-readable summary of what one
//! query (or one averaged experiment run) cost.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::json::JsonValue;
use crate::registry::Snapshot;

/// Everything observed while answering a query: wall time, per-phase
/// breakdown, and every counter that moved in the registry delta.
///
/// The CLI prints [`QueryReport::render`] under `--metrics`; the bench
/// runner serialises [`QueryReport::to_json`] next to its CSV output.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryReport {
    /// Algorithm that produced the answer (paper legend name).
    pub algorithm: String,
    /// Number of queries aggregated into this report (1 for the CLI,
    /// the batch size for bench experiments).
    pub queries: usize,
    /// Total wall-clock time across all aggregated queries.
    pub wall: Duration,
    /// Ordered per-phase wall times (execution order preserved).
    pub phases: Vec<(String, Duration)>,
    /// Counter deltas attributed to this query batch.
    pub counters: BTreeMap<String, u64>,
}

impl QueryReport {
    /// Starts a report for `algorithm` with a known wall time.
    pub fn new(algorithm: impl Into<String>, wall: Duration) -> Self {
        QueryReport {
            algorithm: algorithm.into(),
            queries: 1,
            wall,
            phases: Vec::new(),
            counters: BTreeMap::new(),
        }
    }

    /// Appends a named phase (kept in insertion order).
    pub fn push_phase(&mut self, name: impl Into<String>, elapsed: Duration) {
        self.phases.push((name.into(), elapsed));
    }

    /// Folds a registry delta into the report: counters are added, and
    /// timers whose name starts with `core.phase.` become phases (in
    /// the registry's sorted order) unless a phase of that name already
    /// exists.
    pub fn absorb(&mut self, delta: &Snapshot) {
        for (name, value) in &delta.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, timer) in &delta.timers {
            if timer.count == 0 {
                continue;
            }
            let label = match name.strip_prefix("core.phase.") {
                Some(rest) => rest.to_owned(),
                None => name.clone(),
            };
            if !self.phases.iter().any(|(p, _)| *p == label) {
                self.phases.push((label, timer.total()));
            }
        }
    }

    /// Value of a counter in this report, zero if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Multi-line plain-text rendering, e.g.
    ///
    /// ```text
    /// report (KcRBased, 1 query):
    ///   wall time              12.34 ms
    ///   phase initial_rank      1.20 ms
    ///   phase verification     11.10 ms
    ///   kcr.node_visits           123
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        let plural = if self.queries == 1 {
            "query"
        } else {
            "queries"
        };
        out.push_str(&format!(
            "report ({}, {} {plural}):\n",
            self.algorithm, self.queries
        ));
        let width = self
            .phases
            .iter()
            .map(|(n, _)| n.len() + 6)
            .chain(self.counters.keys().map(String::len))
            .chain(std::iter::once("wall time".len()))
            .max()
            .unwrap_or(0);
        out.push_str(&format!(
            "  {:<width$}  {:>10.2} ms\n",
            "wall time",
            self.wall.as_secs_f64() * 1e3,
        ));
        for (name, elapsed) in &self.phases {
            out.push_str(&format!(
                "  {:<width$}  {:>10.2} ms\n",
                format!("phase {name}"),
                elapsed.as_secs_f64() * 1e3,
            ));
        }
        for (name, value) in &self.counters {
            out.push_str(&format!("  {name:<width$}  {value:>10}\n"));
        }
        out
    }

    /// JSON object mirroring [`QueryReport::render`]; durations are
    /// reported in milliseconds.
    pub fn to_json(&self) -> JsonValue {
        let phases = self
            .phases
            .iter()
            .map(|(n, d)| (n.clone(), JsonValue::from(d.as_secs_f64() * 1e3)))
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), JsonValue::from(*v)))
            .collect();
        JsonValue::object(vec![
            ("algorithm", self.algorithm.as_str().into()),
            ("queries", self.queries.into()),
            ("wall_ms", (self.wall.as_secs_f64() * 1e3).into()),
            ("phases", JsonValue::Object(phases)),
            ("counters", JsonValue::Object(counters)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> QueryReport {
        let registry = Registry::new();
        registry.counter("kcr.node_visits").add(123);
        registry.counter("kcr.pool.physical_reads").add(17);
        registry
            .timer("core.phase.verification")
            .record(Duration::from_millis(11));
        let mut report = QueryReport::new("KcRBased", Duration::from_millis(12));
        report.push_phase("initial_rank", Duration::from_millis(1));
        report.absorb(&registry.snapshot());
        report
    }

    #[test]
    fn absorb_merges_counters_and_phase_timers() {
        let report = sample();
        assert_eq!(report.counter("kcr.node_visits"), 123);
        assert_eq!(report.counter("kcr.pool.physical_reads"), 17);
        assert_eq!(report.phases.len(), 2);
        assert_eq!(report.phases[0].0, "initial_rank");
        assert_eq!(report.phases[1].0, "verification");
    }

    #[test]
    fn absorb_does_not_duplicate_existing_phase() {
        let registry = Registry::new();
        registry
            .timer("core.phase.initial_rank")
            .record(Duration::from_millis(5));
        let mut report = QueryReport::new("BS", Duration::from_millis(6));
        report.push_phase("initial_rank", Duration::from_millis(5));
        report.absorb(&registry.snapshot());
        assert_eq!(report.phases.len(), 1);
    }

    #[test]
    fn render_mentions_everything() {
        let text = sample().render();
        assert!(text.contains("KcRBased"), "{text}");
        assert!(text.contains("wall time"), "{text}");
        assert!(text.contains("phase initial_rank"), "{text}");
        assert!(text.contains("phase verification"), "{text}");
        assert!(text.contains("kcr.node_visits"), "{text}");
        assert!(text.contains("123"), "{text}");
    }

    #[test]
    fn json_shape() {
        let json = sample().to_json().render();
        assert!(json.contains("\"algorithm\":\"KcRBased\""), "{json}");
        assert!(json.contains("\"wall_ms\":12"), "{json}");
        assert!(json.contains("\"kcr.node_visits\":123"), "{json}");
        assert!(json.contains("\"initial_rank\":1"), "{json}");
    }
}
