//! [`FlightRecorder`]: a bounded in-process ring of the last N
//! completed requests.
//!
//! The serving layer files one fixed-size [`FlightEntry`] per request
//! it finishes — kind, canonical cache key, deadline, queue wait,
//! execute time, outcome markers — and `GET /flight` dumps the ring as
//! JSON. The ring is claim-cursor lock-free: a writer takes its slot
//! with one `fetch_add` and publishes through that slot's latch, so
//! concurrent workers never contend unless the ring has wrapped all
//! the way around onto the same slot.
//!
//! Memory is bounded by construction: `capacity` slots of
//! `size_of::<FlightEntry>()`-fixed entries (strings are truncated
//! into fixed byte arrays at record time, never heap-allocated), so
//! the recorder can stay on for the life of a server regardless of
//! traffic. [`FlightRecorder::memory_bytes`] reports the bound and the
//! test suite pins it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::JsonValue;
use crate::metric::Counter;

/// Canonical-key bytes retained per entry (longer keys truncate).
pub const KEY_BYTES: usize = 96;
/// Quality-tag bytes retained per entry (longer tags truncate).
pub const QUALITY_BYTES: usize = 40;

/// A fixed-size byte string: truncating copy in, lossy UTF-8 out.
#[derive(Clone, Copy, Debug)]
struct FixedStr<const N: usize> {
    bytes: [u8; N],
    len: u8,
}

impl<const N: usize> FixedStr<N> {
    fn new(s: &str) -> Self {
        let mut bytes = [0u8; N];
        // Truncate on a char boundary so the readback stays valid UTF-8.
        let mut len = s.len().min(N);
        while len > 0 && !s.is_char_boundary(len) {
            len -= 1;
        }
        bytes[..len].copy_from_slice(&s.as_bytes()[..len]);
        FixedStr {
            bytes,
            len: len as u8,
        }
    }

    fn as_str(&self) -> &str {
        std::str::from_utf8(&self.bytes[..self.len as usize]).unwrap_or("")
    }
}

/// One completed request, fixed size (no heap pointers — the ring's
/// memory bound is `capacity × size_of::<FlightEntry>()` plus slot
/// latches).
#[derive(Clone, Copy, Debug)]
pub struct FlightEntry {
    /// Monotone completion sequence number (ring eviction order).
    pub seq: u64,
    /// Request type (`topk`, `whynot`, `insert`, `delete`, `stats`).
    kind: FixedStr<16>,
    /// Canonical cache key of the executed (snapped) query, empty for
    /// non-cacheable kinds.
    key: FixedStr<KEY_BYTES>,
    /// Answer quality tag (`exact`, `degraded (…)`), empty when shed.
    quality: FixedStr<QUALITY_BYTES>,
    /// Requested deadline, nanoseconds (0 = none).
    pub deadline_ns: u64,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait_ns: u64,
    /// Time spent executing (zero for shed requests).
    pub execute_ns: u64,
    /// End-to-end latency, enqueue to rendered response.
    pub total_ns: u64,
    /// Response `ok` marker.
    pub ok: bool,
    /// Shed by admission control (never executed).
    pub shed: bool,
    /// Answered from the answer cache.
    pub cached: bool,
    /// Initial rank `R(M,q)` reused from a cached rank list.
    pub rank_reused: bool,
}

impl FlightEntry {
    /// Builds an entry; `kind`/`key`/`quality` are truncated into the
    /// fixed-size fields.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: &str,
        key: &str,
        quality: &str,
        deadline_ns: u64,
        queue_wait_ns: u64,
        execute_ns: u64,
        total_ns: u64,
        ok: bool,
        shed: bool,
        cached: bool,
        rank_reused: bool,
    ) -> Self {
        FlightEntry {
            seq: 0,
            kind: FixedStr::new(kind),
            key: FixedStr::new(key),
            quality: FixedStr::new(quality),
            deadline_ns,
            queue_wait_ns,
            execute_ns,
            total_ns,
            ok,
            shed,
            cached,
            rank_reused,
        }
    }

    /// The request type.
    pub fn kind(&self) -> &str {
        self.kind.as_str()
    }

    /// The canonical cache key (possibly truncated).
    pub fn key(&self) -> &str {
        self.key.as_str()
    }

    /// The answer quality tag.
    pub fn quality(&self) -> &str {
        self.quality.as_str()
    }

    /// The `GET /flight` rendering of one entry.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("seq", JsonValue::from(self.seq)),
            ("kind", self.kind.as_str().into()),
            ("key", self.key.as_str().into()),
            ("quality", self.quality.as_str().into()),
            ("deadline_ns", JsonValue::from(self.deadline_ns)),
            ("queue_wait_ns", JsonValue::from(self.queue_wait_ns)),
            ("execute_ns", JsonValue::from(self.execute_ns)),
            ("total_ns", JsonValue::from(self.total_ns)),
            ("ok", JsonValue::Bool(self.ok)),
            ("shed", JsonValue::Bool(self.shed)),
            ("cached", JsonValue::Bool(self.cached)),
            ("rank_reused", JsonValue::Bool(self.rank_reused)),
        ])
    }
}

/// The bounded ring of recent [`FlightEntry`]s.
pub struct FlightRecorder {
    slots: Box<[Mutex<Option<FlightEntry>>]>,
    cursor: AtomicU64,
    /// Entries filed (detached by default; route into
    /// `obs.recorder.recorded`).
    recorded: Counter,
    /// Entries evicted by wraparound (route into
    /// `obs.recorder.overwritten`).
    overwritten: Counter,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` completed requests.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            recorded: Counter::new(),
            overwritten: Counter::new(),
        }
    }

    /// Routes the recorded/overwritten events into registry counters.
    pub fn with_counters(mut self, recorded: Counter, overwritten: Counter) -> Self {
        self.recorded = recorded;
        self.overwritten = overwritten;
        self
    }

    /// Ring capacity in entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The fixed memory bound: slots × fixed slot size. Independent of
    /// traffic — this is the number the ARCHITECTURE.md bound quotes.
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Mutex<Option<FlightEntry>>>()
    }

    /// Entries filed since construction.
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Files one completed request. The claim is one `fetch_add`; only
    /// the claimed slot's latch is touched.
    pub fn record(&self, mut entry: FlightEntry) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        entry.seq = seq;
        let slot = (seq % self.slots.len() as u64) as usize;
        let mut guard = self.slots[slot].lock().expect("recorder slot poisoned");
        if guard.is_some() {
            self.overwritten.inc();
        }
        *guard = Some(entry);
        drop(guard);
        self.recorded.inc();
    }

    /// The resident entries, newest first.
    pub fn entries(&self) -> Vec<FlightEntry> {
        let mut out: Vec<FlightEntry> = self
            .slots
            .iter()
            .filter_map(|s| *s.lock().expect("recorder slot poisoned"))
            .collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.seq));
        out
    }

    /// The `GET /flight` rendering: newest-first entry array plus the
    /// ring's bookkeeping.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("capacity", JsonValue::from(self.capacity() as u64)),
            ("recorded", JsonValue::from(self.recorded())),
            (
                "entries",
                JsonValue::Array(self.entries().iter().map(FlightEntry::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(kind: &str, key: &str) -> FlightEntry {
        FlightEntry::new(kind, key, "exact", 0, 10, 20, 35, true, false, false, false)
    }

    #[test]
    fn ring_keeps_the_last_capacity_entries_newest_first() {
        let r = FlightRecorder::new(3);
        for i in 0..5 {
            r.record(entry("topk", &format!("key-{i}")));
        }
        let entries = r.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].key(), "key-4");
        assert_eq!(entries[2].key(), "key-2");
        assert_eq!(r.recorded(), 5);
    }

    #[test]
    fn overwrite_counter_counts_evictions() {
        let recorded = Counter::new();
        let overwritten = Counter::new();
        let r = FlightRecorder::new(2).with_counters(recorded.clone(), overwritten.clone());
        for i in 0..5 {
            r.record(entry("whynot", &format!("k{i}")));
        }
        assert_eq!(recorded.get(), 5);
        assert_eq!(overwritten.get(), 3);
    }

    #[test]
    fn memory_bound_is_capacity_times_fixed_slot_size() {
        let r = FlightRecorder::new(256);
        let per_slot = std::mem::size_of::<Mutex<Option<FlightEntry>>>();
        assert_eq!(r.memory_bytes(), 256 * per_slot);
        // The entry itself is fixed-size and heap-free: the strings are
        // inline byte arrays, so recording cannot grow the ring.
        assert!(per_slot < 512, "slot grew past its budget: {per_slot}B");
    }

    #[test]
    fn long_strings_truncate_on_char_boundaries() {
        let long_key = "k".repeat(KEY_BYTES + 50);
        let e = entry("topk", &long_key);
        assert_eq!(e.key().len(), KEY_BYTES);
        // A multi-byte char straddling the limit is dropped whole.
        let tricky = format!("{}é", "x".repeat(KEY_BYTES - 1));
        let e = entry("topk", &tricky);
        assert_eq!(e.key(), &tricky[..KEY_BYTES - 1]);
    }

    #[test]
    fn json_rendering_carries_every_field() {
        let r = FlightRecorder::new(4);
        r.record(FlightEntry::new(
            "whynot", "wn|cell", "exact", 1_000, 10, 20, 35, true, false, true, true,
        ));
        let doc = r.to_json();
        assert_eq!(doc.get("capacity").and_then(|v| v.as_f64()), Some(4.0));
        let entries = doc.get("entries").and_then(|v| v.as_array()).unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.get("kind").and_then(|v| v.as_str()), Some("whynot"));
        assert_eq!(e.get("key").and_then(|v| v.as_str()), Some("wn|cell"));
        assert_eq!(e.get("cached"), Some(&JsonValue::Bool(true)));
        assert_eq!(e.get("rank_reused"), Some(&JsonValue::Bool(true)));
        assert_eq!(e.get("deadline_ns").and_then(|v| v.as_f64()), Some(1000.0));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = std::sync::Arc::new(FlightRecorder::new(64));
        std::thread::scope(|s| {
            for t in 0..8 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..100 {
                        r.record(entry("topk", &format!("t{t}-{i}")));
                    }
                });
            }
        });
        assert_eq!(r.recorded(), 800);
        assert_eq!(r.entries().len(), 64);
    }
}
