//! `wnsk-obs` — the workspace's unified observability substrate.
//!
//! The paper's entire evaluation (§VII) is a story told in counters:
//! number of I/Os, candidate sets examined, nodes pruned by the
//! Theorem 2/3 bounds. This crate provides the measurement vocabulary
//! every other crate shares:
//!
//! * [`Counter`] — a cheaply clonable atomic event counter.
//! * [`Timer`] — histogram-ish duration accumulator (count / total /
//!   max) with an RAII [`Span`] guard.
//! * [`Registry`] — a get-or-create namespace of counters and timers;
//!   [`Registry::snapshot`] captures every metric at once and
//!   [`Snapshot::since`] produces deltas, so concurrent queries can be
//!   metered without resetting anything.
//! * [`QueryReport`] — the per-query (or per-experiment) summary the CLI
//!   prints under `--metrics` and the bench runner writes as JSON.
//! * [`Hist`] — a lock-free log-linear latency histogram with mergeable
//!   [`HistSnapshot`]s and p50/p90/p99 queries (`docs/METRICS.md`,
//!   "Histograms").
//! * [`RollingWindow`] — recent-past views over a live [`Hist`]: a ring
//!   of fixed-interval snapshot deltas merged on read, so `/healthz`
//!   can answer "p99 over the last 10 s" instead of "since boot".
//! * [`FlightRecorder`] — a bounded lock-free ring of fixed-size
//!   [`FlightEntry`] records, the last-N-requests view behind the
//!   serving layer's `GET /flight`.
//! * [`Tracer`] — per-query structured tracing: per-worker span buffers
//!   merged into the deterministic span tree behind `--explain` (see
//!   [`trace`]).
//! * [`prometheus_text`] — Prometheus text exposition of a [`Snapshot`]
//!   for `--metrics-export`.
//!
//! The crate is dependency-free by design: it sits below `wnsk-storage`
//! in the crate graph, so everything — buffer pools, tree traversals,
//! solvers, the bench harness — can register into one registry.
//!
//! ```
//! use wnsk_obs::Registry;
//! use std::time::Duration;
//!
//! let registry = Registry::new();
//! let before = registry.snapshot();
//!
//! registry.counter("setr.node_visits").add(3);
//! registry.timer("phase.verification").record(Duration::from_millis(2));
//!
//! let delta = registry.snapshot().since(&before);
//! assert_eq!(delta.counter("setr.node_visits"), 3);
//! assert_eq!(delta.timers["phase.verification"].count, 1);
//! ```

mod export;
mod hist;
mod json;
mod metric;
mod recorder;
mod registry;
mod report;
pub mod trace;
mod window;

pub use export::{parse_prometheus_text, prometheus_name, prometheus_text};
pub use hist::{Hist, HistSnapshot};
pub use json::JsonValue;
pub use metric::{Counter, Span, Timer, TimerSnapshot};
pub use recorder::{FlightEntry, FlightRecorder, KEY_BYTES, QUALITY_BYTES};
pub use registry::{Registry, Snapshot};
pub use report::QueryReport;
pub use trace::{SpanId, SpanRecord, TracePayload, TraceReport, Tracer};
pub use window::RollingWindow;

/// Canonical metric-name suffixes, shared by every crate so the same
/// quantity always lands under the same registry key (`docs/METRICS.md`
/// documents each one against the paper figure it reproduces).
pub mod names {
    /// Page reads served from cache or disk (buffer pool).
    pub const LOGICAL_READS: &str = "logical_reads";
    /// Page reads that went to the backend — the paper's "number of
    /// I/Os" metric.
    pub const PHYSICAL_READS: &str = "physical_reads";
    /// Page writes to the backend.
    pub const PHYSICAL_WRITES: &str = "physical_writes";
    /// Index nodes read and decoded during traversal.
    pub const NODE_VISITS: &str = "node_visits";
    /// Subtrees never descended into thanks to score bounds.
    pub const NODES_PRUNED: &str = "nodes_pruned";
    /// Candidates retired because the MaxDom bound converged (Theorem 2).
    pub const PRUNE_MAXDOM: &str = "prune.maxdom";
    /// Candidates pruned by the MinDom penalty lower bound (Theorem 3).
    pub const PRUNE_MINDOM: &str = "prune.mindom";
    /// Solver phase: determining the missing set's initial rank.
    pub const PHASE_INITIAL_RANK: &str = "core.phase.initial_rank";
    /// Solver phase: enumerating candidate keyword sets.
    pub const PHASE_ENUMERATION: &str = "core.phase.enumeration";
    /// Solver phase: verifying candidates against the index.
    pub const PHASE_VERIFICATION: &str = "core.phase.verification";
    /// Candidate keyword sets generated.
    pub const CORE_CANDIDATES: &str = "core.candidates";
    /// Candidates discarded by the Opt3 dominator-cache filter.
    pub const CORE_PRUNED_FILTER: &str = "core.pruned.filter";
    /// Candidates never fully examined thanks to penalty bounds.
    pub const CORE_PRUNED_BOUND: &str = "core.pruned.bound";
    /// Spatial keyword queries actually executed.
    pub const CORE_QUERIES_RUN: &str = "core.queries_run";
    /// KcR-tree nodes expanded by bound-and-prune.
    pub const CORE_NODES_EXPANDED: &str = "core.nodes_expanded";
    /// Extra attempts spent retrying transient storage faults.
    pub const RETRIES: &str = "retries";
    /// Storage operations that failed even after all retries.
    pub const RETRIES_EXHAUSTED: &str = "retries_exhausted";
    /// Total nanoseconds slept in retry backoff.
    pub const RETRY_BACKOFF_NANOS: &str = "retry_backoff_nanos";
    /// Page reads whose embedded CRC32 did not match the payload.
    pub const CHECKSUM_FAILURES: &str = "checksum_failures";
    /// Queries that exhausted their budget and degraded to the
    /// sampling-based approximate answer.
    pub const CORE_DEGRADED: &str = "core.degraded";
    /// Tasks the work-stealing executor ran off a peer worker's deque
    /// (summed over workers; per-worker splits live in `AlgoStats`).
    pub const EXEC_TASKS_STOLEN: &str = "exec.tasks_stolen";
    /// Times a worker lowered the shared best-penalty bound.
    pub const EXEC_BOUND_REFRESHES: &str = "exec.bound_refreshes";
    /// Prunes performed against the shared best-penalty bound.
    pub const EXEC_PRUNE_HITS: &str = "exec.prune_hits";
    /// Histogram of buffer-pool miss latencies (nanoseconds per
    /// physical read, including any simulated `--io-latency-us` wait).
    pub const READ_LATENCY_NS: &str = "read_latency_ns";
    /// Histogram of individual retry-backoff sleeps, nanoseconds.
    pub const RETRY_BACKOFF_NS: &str = "retry_backoff_ns";
    /// Histogram of per-task executor latencies, nanoseconds.
    pub const EXEC_TASK_NS: &str = "exec.task_ns";
    /// Histogram of initial-rank phase latencies, nanoseconds per query.
    pub const PHASE_NS_INITIAL_RANK: &str = "core.phase_ns.initial_rank";
    /// Histogram of enumeration phase latencies, nanoseconds per query.
    pub const PHASE_NS_ENUMERATION: &str = "core.phase_ns.enumeration";
    /// Histogram of verification phase latencies, nanoseconds per query.
    pub const PHASE_NS_VERIFICATION: &str = "core.phase_ns.verification";
    /// Requests admitted past the serving layer's bounded queue.
    pub const SERVE_ACCEPTED: &str = "serve.accepted";
    /// Requests shed by admission control (queue full, or the deadline
    /// expired before a worker picked the request up).
    pub const SERVE_SHED: &str = "serve.shed";
    /// Requests answered from the cross-query answer cache, including
    /// why-not requests whose initial rank `R(M,q)` was reused from a
    /// cached rank list.
    pub const SERVE_CACHE_HITS: &str = "serve.cache_hits";
    /// Cacheable requests that had to be computed from the indexes.
    pub const SERVE_CACHE_MISSES: &str = "serve.cache_misses";
    /// Histogram of the request-queue depth observed at each admission.
    pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Histogram of end-to-end request latencies (enqueue to response),
    /// nanoseconds.
    pub const SERVE_REQUEST_NS: &str = "serve.request_ns";
    /// Answer-cache entries dropped because the dataset epoch moved past
    /// the epoch they were computed under.
    pub const SERVE_CACHE_INVALIDATED: &str = "serve.cache_invalidated";
    /// Histogram of request latencies feeding the serving layer's
    /// rolling windows (the `/healthz` 1s/10s/60s percentiles); the
    /// cumulative view exported here reconciles with the windows by
    /// construction — they are snapshots of the same histogram.
    pub const SERVE_WINDOW_REQUEST_NS: &str = "serve.window.request_ns";
    /// Rolling-window ticks closed across the serving layer's windows
    /// (a moving value proves the recent-past views are advancing).
    pub const SERVE_WINDOW_TICKS: &str = "serve.window.ticks";
    /// Requests whose end-to-end latency exceeded the configured SLO
    /// threshold — the burn counter SLO alerting integrates over.
    pub const SERVE_SLO_VIOLATIONS: &str = "serve.slo.violations";
    /// Completed requests filed into the flight recorder's ring.
    pub const OBS_RECORDER_RECORDED: &str = "obs.recorder.recorded";
    /// Flight-recorder entries evicted by ring wraparound.
    pub const OBS_RECORDER_OVERWRITTEN: &str = "obs.recorder.overwritten";
    /// Requests whose latency crossed the slow-query threshold and were
    /// filed (with their trace, when sampled) into the slow-query log.
    pub const OBS_RECORDER_SLOW: &str = "obs.recorder.slow";
    /// Records buffered into the write-ahead log (before commit).
    pub const WAL_APPENDS: &str = "wal.appends";
    /// Group commits synced to the log (one per `commit()`, however many
    /// records it batched).
    pub const WAL_COMMITS: &str = "wal.commits";
    /// Committed records replayed during crash recovery.
    pub const WAL_RECOVERED_RECORDS: &str = "wal.recovered_records";
    /// Bytes of torn or corrupt log tail truncated during crash recovery.
    pub const WAL_TRUNCATED_BYTES: &str = "wal.truncated_bytes";
    /// Mutations applied to the engine (live ingest and WAL replay both
    /// count; this equals the dataset epoch).
    pub const INGEST_APPLIED: &str = "ingest.applied";
    /// Fuzz cases generated and executed by the differential harness.
    pub const FUZZ_CASES: &str = "fuzz.cases";
    /// Individual oracle cross-checks evaluated (one per matrix
    /// configuration per case, plus the recovery-phase comparisons).
    pub const FUZZ_CHECKS: &str = "fuzz.checks";
    /// Cases whose outcome diverged from the sequential oracle.
    pub const FUZZ_FAILURES: &str = "fuzz.failures";
    /// Candidate reductions the delta-debugging shrinker attempted
    /// (accepted or rejected) while minimising failing cases.
    pub const FUZZ_SHRINK_STEPS: &str = "fuzz.shrink_steps";
    /// Committed regression cases re-executed by corpus replay.
    pub const FUZZ_CORPUS_REPLAYED: &str = "fuzz.corpus_replayed";
    /// Scatter fan-outs issued by the shard coordinator (one per
    /// coordinator-level top-k / why-not / rank-scan round, regardless
    /// of shard count).
    pub const SHARD_SCATTER: &str = "shard.scatter";
    /// Nanoseconds the coordinator spent merging per-shard partial
    /// results into the global answer (histogram).
    pub const SHARD_MERGE_NS: &str = "shard.merge_ns";
    /// Times the cross-shard penalty bound was actually lowered by a
    /// partial result streaming back from a shard.
    pub const SHARD_BOUND_TIGHTENINGS: &str = "shard.bound_tightenings";
    /// Reads served by a non-primary replica of a hot shard.
    pub const SHARD_REPLICA_HITS: &str = "shard.replica_hits";

    /// Every canonical name, for the docs/METRICS.md lint: the test in
    /// `tests/metrics_names.rs` fails when this list and the reference
    /// drift apart in either direction.
    pub const ALL: &[&str] = &[
        LOGICAL_READS,
        PHYSICAL_READS,
        PHYSICAL_WRITES,
        NODE_VISITS,
        NODES_PRUNED,
        PRUNE_MAXDOM,
        PRUNE_MINDOM,
        PHASE_INITIAL_RANK,
        PHASE_ENUMERATION,
        PHASE_VERIFICATION,
        CORE_CANDIDATES,
        CORE_PRUNED_FILTER,
        CORE_PRUNED_BOUND,
        CORE_QUERIES_RUN,
        CORE_NODES_EXPANDED,
        RETRIES,
        RETRIES_EXHAUSTED,
        RETRY_BACKOFF_NANOS,
        CHECKSUM_FAILURES,
        CORE_DEGRADED,
        EXEC_TASKS_STOLEN,
        EXEC_BOUND_REFRESHES,
        EXEC_PRUNE_HITS,
        READ_LATENCY_NS,
        RETRY_BACKOFF_NS,
        EXEC_TASK_NS,
        PHASE_NS_INITIAL_RANK,
        PHASE_NS_ENUMERATION,
        PHASE_NS_VERIFICATION,
        SERVE_ACCEPTED,
        SERVE_SHED,
        SERVE_CACHE_HITS,
        SERVE_CACHE_MISSES,
        SERVE_QUEUE_DEPTH,
        SERVE_REQUEST_NS,
        SERVE_CACHE_INVALIDATED,
        SERVE_WINDOW_REQUEST_NS,
        SERVE_WINDOW_TICKS,
        SERVE_SLO_VIOLATIONS,
        OBS_RECORDER_RECORDED,
        OBS_RECORDER_OVERWRITTEN,
        OBS_RECORDER_SLOW,
        WAL_APPENDS,
        WAL_COMMITS,
        WAL_RECOVERED_RECORDS,
        WAL_TRUNCATED_BYTES,
        INGEST_APPLIED,
        FUZZ_CASES,
        FUZZ_CHECKS,
        FUZZ_FAILURES,
        FUZZ_SHRINK_STEPS,
        FUZZ_CORPUS_REPLAYED,
        SHARD_SCATTER,
        SHARD_MERGE_NS,
        SHARD_BOUND_TIGHTENINGS,
        SHARD_REPLICA_HITS,
    ];
}
