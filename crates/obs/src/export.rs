//! Prometheus text exposition of a registry [`Snapshot`], behind the
//! CLI's and `xp`'s `--metrics-export`.
//!
//! The output follows the text format version 0.0.4: one `# TYPE` line
//! per family, counters as plain samples, timers as `_count` /
//! `_seconds_total` / `_max_seconds` series, and histograms as
//! cumulative `_bucket{le="..."}` series with the mandatory `+Inf`
//! bucket, `_sum` and `_count`. Metric names are sanitized to
//! `[a-zA-Z0-9_]` and prefixed `wnsk_` so dotted registry names such as
//! `kcr.prune.maxdom` become `wnsk_kcr_prune_maxdom`.

use crate::registry::Snapshot;
use std::collections::BTreeMap;

/// Maps a registry name onto the Prometheus name grammar (the exact
/// mapping [`prometheus_text`] applies): sanitized to `[a-zA-Z0-9_]`
/// and prefixed `wnsk_`. Public so scrapers can translate registry
/// names into the families they expect to find in a scrape.
pub fn prometheus_name(name: &str) -> String {
    sanitize(name)
}

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("wnsk_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders `snapshot` as Prometheus text format.
pub fn prometheus_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    for (name, t) in &snapshot.timers {
        let name = sanitize(name);
        out.push_str(&format!(
            "# TYPE {name}_count counter\n{name}_count {}\n",
            t.count
        ));
        out.push_str(&format!(
            "# TYPE {name}_seconds_total counter\n{name}_seconds_total {}\n",
            t.total_ns as f64 / 1e9
        ));
        out.push_str(&format!(
            "# TYPE {name}_max_seconds gauge\n{name}_max_seconds {}\n",
            t.max_ns as f64 / 1e9
        ));
    }
    for (name, h) in &snapshot.hists {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (upper, count) in h.nonzero_buckets() {
            cumulative += count;
            out.push_str(&format!("{name}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{name}_sum {}\n", h.sum));
        out.push_str(&format!("{name}_count {}\n", h.count));
    }
    out
}

/// A strict parser for the subset of the text exposition format
/// [`prometheus_text`] emits. Returns samples keyed by full sample name
/// (labels included) or a description of the first malformed line —
/// the admin-endpoint smoke check and the scrape-reconciliation tests
/// both hold live scrapes to this grammar:
///
/// * every non-comment line is `name[{labels}] value` with a float
///   value (`+Inf` / `-Inf` / `NaN` included);
/// * metric names match `[a-zA-Z0-9_:]+`;
/// * every sample belongs to a family declared by a `# TYPE` line
///   (histogram samples may use the `_bucket` / `_sum` / `_count`
///   suffixes of their family);
/// * no sample name (labels included) appears twice.
pub fn parse_prometheus_text(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut samples = BTreeMap::new();
    let mut typed: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or_else(|| err("TYPE line missing name"))?;
            let kind = parts.next().ok_or_else(|| err("TYPE line missing kind"))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(err(&format!("unknown metric type {kind:?}")));
            }
            typed.push(name.to_owned());
            continue;
        }
        if line.starts_with('#') {
            // Other comments (e.g. # HELP) are legal exposition text.
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("sample line has no value"))?;
        if value_part.parse::<f64>().is_err() && !matches!(value_part, "+Inf" | "-Inf" | "NaN") {
            return Err(err("sample value is not a number"));
        }
        let value: f64 = match value_part {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v.parse().unwrap(),
        };
        let base = name_part.split('{').next().unwrap_or(name_part);
        if base.is_empty()
            || !base
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(err("bad metric name"));
        }
        let declared = typed.iter().any(|t| {
            base == t
                || base == format!("{t}_bucket")
                || base == format!("{t}_sum")
                || base == format!("{t}_count")
        });
        if !declared {
            return Err(err("sample has no # TYPE declaration"));
        }
        if samples.insert(name_part.to_owned(), value).is_some() {
            return Err(err("duplicate sample"));
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use std::collections::BTreeMap;
    use std::time::Duration;

    /// The shared strict parser, with errors promoted to panics for
    /// test ergonomics.
    fn parse_prometheus(text: &str) -> BTreeMap<String, f64> {
        parse_prometheus_text(text).expect("exposition text must parse")
    }

    /// Asserts histogram invariants for `name`: buckets cumulative and
    /// non-decreasing, le values increasing, `+Inf` equals `_count`.
    fn check_histogram(text: &str, samples: &BTreeMap<String, f64>, name: &str) {
        let mut les = Vec::new();
        let mut counts = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix(&format!("{name}_bucket{{le=\"")) {
                let (le, rest) = rest.split_once('"').unwrap();
                let count: f64 = rest.trim_start_matches('}').trim().parse().unwrap();
                les.push(le.to_owned());
                counts.push(count);
            }
        }
        assert!(!les.is_empty(), "{name} has no buckets");
        assert_eq!(les.last().unwrap(), "+Inf", "{name} missing +Inf bucket");
        let mut prev_le = -1.0f64;
        let mut prev_count = -1.0f64;
        for (le, &count) in les.iter().zip(&counts) {
            if le != "+Inf" {
                let le: f64 = le.parse().unwrap();
                assert!(le > prev_le, "{name} le values must increase");
                prev_le = le;
            }
            assert!(count >= prev_count, "{name} buckets must be cumulative");
            prev_count = count;
        }
        let count = samples[&format!("{name}_count")];
        assert_eq!(*counts.last().unwrap(), count, "{name} +Inf != _count");
        assert!(samples.contains_key(&format!("{name}_sum")), "{name}_sum");
    }

    #[test]
    fn exports_counters_timers_and_histograms() {
        let r = Registry::new();
        r.counter("kcr.prune.maxdom").add(7);
        r.timer("core.phase.verification")
            .record(Duration::from_millis(3));
        let h = r.hist("exec.task_ns");
        for v in [5u64, 40, 40, 999, 1_000_000] {
            h.record(v);
        }
        let text = prometheus_text(&r.snapshot());
        let samples = parse_prometheus(&text);
        assert_eq!(samples["wnsk_kcr_prune_maxdom"], 7.0);
        assert_eq!(samples["wnsk_core_phase_verification_count"], 1.0);
        assert!((samples["wnsk_core_phase_verification_seconds_total"] - 0.003).abs() < 1e-9);
        check_histogram(&text, &samples, "wnsk_exec_task_ns");
        assert_eq!(samples["wnsk_exec_task_ns_count"], 5.0);
        assert_eq!(samples["wnsk_exec_task_ns_sum"], 1_001_084.0);
    }

    #[test]
    fn empty_histogram_still_exports_valid_series() {
        let r = Registry::new();
        let _ = r.hist("quiet");
        let text = prometheus_text(&r.snapshot());
        let samples = parse_prometheus(&text);
        check_histogram(&text, &samples, "wnsk_quiet");
        assert_eq!(samples["wnsk_quiet_count"], 0.0);
    }

    #[test]
    fn sanitizes_dotted_names() {
        assert_eq!(
            sanitize("kcr.pool.read_latency_ns"),
            "wnsk_kcr_pool_read_latency_ns"
        );
        assert_eq!(sanitize("weird-name"), "wnsk_weird_name");
        // The public alias is the same mapping.
        assert_eq!(prometheus_name("serve.accepted"), "wnsk_serve_accepted");
    }

    #[test]
    fn parser_rejects_malformed_exposition_text() {
        for (bad, why) in [
            ("wnsk_orphan 3\n", "undeclared family"),
            ("# TYPE wnsk_x counter\nwnsk_x not-a-number\n", "bad value"),
            ("# TYPE wnsk_x counter\nwnsk_x\n", "missing value"),
            ("# TYPE wnsk_x wibble\nwnsk_x 1\n", "unknown type"),
            (
                "# TYPE wnsk_x counter\nwnsk_x 1\nwnsk_x 2\n",
                "duplicate sample",
            ),
            ("# TYPE wnsk_x counter\nbad name! 1\n", "bad metric name"),
        ] {
            assert!(
                parse_prometheus_text(bad).is_err(),
                "parser accepted {why}: {bad:?}"
            );
        }
    }

    #[test]
    fn parser_accepts_inf_values_and_help_comments() {
        let text = "# HELP wnsk_x a counter\n# TYPE wnsk_x gauge\nwnsk_x +Inf\n";
        let samples = parse_prometheus_text(text).unwrap();
        assert_eq!(samples["wnsk_x"], f64::INFINITY);
    }
}
