//! [`Hist`]: a lock-free log-linear latency histogram (HDR-style).
//!
//! Values are bucketed exactly below 32 and log-linearly above: each
//! power-of-two octave is split into 16 linear sub-buckets, so the
//! relative quantization error is bounded by 1/16 ≈ 6.25% across the
//! whole `u64` range. Recording is a single atomic `fetch_add` on the
//! bucket plus count/sum/max updates — safe on any hot path.
//!
//! [`HistSnapshot`] is the frozen, mergeable view: snapshots add
//! ([`HistSnapshot::merge`]), subtract ([`HistSnapshot::since`]) and
//! answer percentile queries ([`HistSnapshot::percentile`]) whose
//! results are bucket upper bounds, hence monotone in `p` by
//! construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::json::JsonValue;

/// Sub-buckets per octave = 2^SUB_BITS.
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;
/// Values below this are bucketed exactly (identity mapping).
const LINEAR_LIMIT: u64 = 2 * SUBS as u64; // 32
/// Octaves above the linear region: exponents 5..=63.
const OCTAVES: usize = 59;
/// Total bucket count: 32 exact + 59 octaves × 16 sub-buckets = 976.
pub(crate) const BUCKETS: usize = LINEAR_LIMIT as usize + OCTAVES * SUBS;

/// Bucket index for a value (total order preserving).
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // 5..=63
    let sub = (v >> (exp - SUB_BITS)) & (SUBS as u64 - 1);
    LINEAR_LIMIT as usize + (exp as usize - 5) * SUBS + sub as usize
}

/// Inclusive upper bound of a bucket — the value every sample in the
/// bucket is rounded up to when reporting percentiles.
fn bucket_upper(i: usize) -> u64 {
    if i < LINEAR_LIMIT as usize {
        return i as u64;
    }
    let j = i - LINEAR_LIMIT as usize;
    let exp = (j / SUBS) as u32 + 5;
    let sub = (j % SUBS) as u64;
    // Start of the octave plus (sub+1) linear steps, minus one —
    // subtracting first keeps the top bucket (exp=63, sub=15) landing
    // exactly on u64::MAX instead of overflowing.
    ((1u64 << exp) - 1).saturating_add((sub + 1) << (exp - SUB_BITS))
}

#[derive(Debug)]
struct HistInner {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A cheaply clonable, lock-free histogram handle. Clones share the same
/// buckets, mirroring [`crate::Counter`]'s `Arc` idiom.
#[derive(Clone, Debug)]
pub struct Hist {
    inner: Arc<HistInner>,
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Hist {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        let buckets = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Hist {
            inner: Arc::new(HistInner {
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one value (typically nanoseconds).
    pub fn record(&self, v: u64) {
        let inner = &*self.inner;
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        // The sum saturates instead of wrapping: ~584 years of
        // nanoseconds fit in a u64, so saturation is a formality, but
        // wrapping would silently corrupt `_sum` in exported metrics.
        let _ = inner
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Re-applies every sample of a snapshot into this live histogram
    /// (used to fold per-query snapshots into a long-lived registry).
    pub fn merge_snapshot(&self, snap: &HistSnapshot) {
        let inner = &*self.inner;
        for (i, &n) in snap.buckets.iter().enumerate() {
            if n > 0 {
                inner.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        inner.count.fetch_add(snap.count, Ordering::Relaxed);
        let _ = inner
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(snap.sum))
            });
        inner.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// Freezes the current state.
    pub fn snapshot(&self) -> HistSnapshot {
        let inner = &*self.inner;
        let mut buckets: Vec<u64> = inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistSnapshot {
            buckets,
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
        }
    }
}

/// A frozen histogram: dense bucket counts (truncated after the last
/// non-empty bucket), total count/sum, and the exact observed maximum.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts, index order matching the live histogram.
    buckets: Vec<u64>,
    /// Total number of recorded samples.
    pub count: u64,
    /// Saturating sum of all recorded values.
    pub sum: u64,
    /// Exact maximum recorded value (not bucket-rounded).
    pub max: u64,
}

impl HistSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds another snapshot into this one (commutative, associative).
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &n) in other.buckets.iter().enumerate() {
            self.buckets[i] += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Delta against an earlier snapshot of the *same* histogram.
    /// `max` cannot be subtracted, so the delta keeps the later maximum.
    pub fn since(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &v)| v.saturating_sub(earlier.buckets.get(i).copied().unwrap_or(0)))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    /// Value at percentile `p` (0.0..=100.0) as a bucket upper bound;
    /// zero on an empty histogram. Monotone in `p` because cumulative
    /// counts walk the buckets in value order.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // Rank of the target sample, 1-based: ceil(p/100 * count),
        // clamped to [1, count] so p=0 reads the first bucket.
        let target = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(i);
            }
        }
        self.max
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile (bucket upper bound).
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Mean of recorded values, zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)` pairs, in
    /// increasing value order — the exporter builds cumulative
    /// Prometheus buckets from these.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper(i), n))
    }

    /// JSON object with count/sum/max and the headline percentiles.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("count", JsonValue::from(self.count)),
            ("sum", JsonValue::from(self.sum)),
            ("max", JsonValue::from(self.max)),
            ("p50", JsonValue::from(self.p50())),
            ("p90", JsonValue::from(self.p90())),
            ("p99", JsonValue::from(self.p99())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let probes = [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1_000,
            1_000_000,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut prev = 0usize;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(i >= prev, "bucket index not monotone at {v}");
            prev = i;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_upper_bounds_each_bucket() {
        for i in 0..BUCKETS {
            let upper = bucket_upper(i);
            assert_eq!(
                bucket_index(upper),
                i,
                "upper bound {upper} of bucket {i} maps elsewhere"
            );
            if i + 1 < BUCKETS {
                assert!(upper < bucket_upper(i + 1));
                assert_eq!(bucket_index(upper.saturating_add(1)), i + 1);
            }
        }
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn record_and_percentiles() {
        let h = Hist::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        // Exact below 32; ≤6.25% rounding above.
        assert_eq!(s.percentile(10.0), 10);
        assert!(s.p50() >= 50 && s.p50() <= 53, "p50={}", s.p50());
        assert!(s.p99() >= 99 && s.p99() <= 105, "p99={}", s.p99());
        assert_eq!(s.percentile(0.0), 1);
    }

    #[test]
    fn extremes_saturate() {
        let h = Hist::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.sum, u64::MAX, "sum must saturate, not wrap");
        assert_eq!(s.percentile(100.0), u64::MAX);
        assert_eq!(s.percentile(0.0), 0);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let a = Hist::new();
        let b = Hist::new();
        let both = Hist::new();
        for v in [3u64, 40, 40, 999, 12_345] {
            a.record(v);
            both.record(v);
        }
        for v in [7u64, 40, 1_000_000] {
            b.record(v);
            both.record(v);
        }
        let mut ab = a.snapshot();
        ab.merge(&b.snapshot());
        let mut ba = b.snapshot();
        ba.merge(&a.snapshot());
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab, both.snapshot());
    }

    #[test]
    fn since_isolates_new_samples() {
        let h = Hist::new();
        h.record(10);
        h.record(500);
        let before = h.snapshot();
        h.record(10);
        h.record(77);
        let delta = h.snapshot().since(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 87);
        let buckets: Vec<_> = delta.nonzero_buckets().collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (10, 1));
    }

    #[test]
    fn merge_snapshot_into_live_hist() {
        let per_query = Hist::new();
        per_query.record(64);
        per_query.record(128);
        let live = Hist::new();
        live.record(1);
        live.merge_snapshot(&per_query.snapshot());
        let s = live.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 193);
        assert_eq!(s.max, 128);
    }

    #[test]
    fn clones_share_buckets() {
        let h = Hist::new();
        let h2 = h.clone();
        h.record(5);
        assert_eq!(h2.snapshot().count, 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Hist::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i % 100);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 80_000);
    }
}
