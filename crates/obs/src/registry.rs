//! The [`Registry`]: a shared namespace of named counters and timers,
//! plus whole-registry [`Snapshot`]s with delta arithmetic.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::hist::{Hist, HistSnapshot};
use crate::json::JsonValue;
use crate::metric::{Counter, Timer, TimerSnapshot};

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    timers: Mutex<BTreeMap<String, Timer>>,
    hists: Mutex<BTreeMap<String, Hist>>,
}

/// A get-or-create namespace of metrics. Clones share the same store, so
/// one registry can be threaded through buffer pools, index trees, the
/// solver layer and the bench harness, and a single [`Registry::snapshot`]
/// sees everything.
///
/// Lookup takes a mutex, so callers on hot paths should fetch their
/// [`Counter`]/[`Timer`] handle once and keep the clone; the handles
/// themselves are lock-free.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it at zero
    /// on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Registers an externally created counter under `name`. If the name
    /// is already taken the existing counter wins and is returned, so two
    /// racing registrations still converge on one shared handle.
    pub fn register_counter(&self, name: &str, counter: Counter) -> Counter {
        let mut map = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        map.entry(name.to_owned()).or_insert(counter).clone()
    }

    /// Returns the timer registered under `name`, creating it on first
    /// use.
    pub fn timer(&self, name: &str) -> Timer {
        let mut map = self
            .inner
            .timers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Returns the histogram registered under `name`, creating it empty
    /// on first use.
    pub fn hist(&self, name: &str) -> Hist {
        let mut map = self
            .inner
            .hists
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Registers an externally created histogram under `name`; as with
    /// [`Registry::register_counter`], an existing histogram wins.
    pub fn register_hist(&self, name: &str, hist: Hist) -> Hist {
        let mut map = self
            .inner
            .hists
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        map.entry(name.to_owned()).or_insert(hist).clone()
    }

    /// Captures every registered metric at one point in time.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let timers = self
            .inner
            .timers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let hists = self
            .inner
            .hists
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            timers,
            hists,
        }
    }
}

/// A frozen view of a [`Registry`], suitable for delta arithmetic: take
/// one snapshot before a query and one after, and [`Snapshot::since`]
/// isolates exactly what that query did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Timer accumulators by name.
    pub timers: BTreeMap<String, TimerSnapshot>,
    /// Histogram snapshots by name.
    pub hists: BTreeMap<String, HistSnapshot>,
}

impl Snapshot {
    /// Value of a counter, zero if it was never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of a histogram, `None` if it was never registered.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.get(name)
    }

    /// Total accumulated time of a timer, zero if never registered.
    pub fn timer_total(&self, name: &str) -> std::time::Duration {
        self.timers
            .get(name)
            .map(TimerSnapshot::total)
            .unwrap_or_default()
    }

    /// Delta against an earlier snapshot. Metrics that appear only in
    /// `self` (registered after `earlier` was taken) are kept at their
    /// full value; metrics only in `earlier` are dropped.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                let base = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(base))
            })
            .collect();
        let timers = self
            .timers
            .iter()
            .map(|(k, v)| {
                let base = earlier.timers.get(k).copied().unwrap_or_default();
                (k.clone(), v.since(&base))
            })
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|(k, v)| {
                let base = earlier.hists.get(k).cloned().unwrap_or_default();
                (k.clone(), v.since(&base))
            })
            .collect();
        Snapshot {
            counters,
            timers,
            hists,
        }
    }

    /// JSON object: `{"counters": {...}, "timers": {name: {count,
    /// total_ms, max_ms}}}`.
    pub fn to_json(&self) -> JsonValue {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::from(*v)))
            .collect();
        let timers = self
            .timers
            .iter()
            .map(|(k, v)| {
                let obj = JsonValue::object(vec![
                    ("count", JsonValue::from(v.count)),
                    ("total_ms", JsonValue::from(v.total_ns as f64 / 1e6)),
                    ("max_ms", JsonValue::from(v.max_ns as f64 / 1e6)),
                ]);
                (k.clone(), obj)
            })
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json()))
            .collect();
        JsonValue::Object(vec![
            ("counters".to_owned(), JsonValue::Object(counters)),
            ("timers".to_owned(), JsonValue::Object(timers)),
            ("hists".to_owned(), JsonValue::Object(hists)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counter_is_get_or_create() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("a").add(2);
        assert_eq!(r.snapshot().counter("a"), 3);
        assert_eq!(r.snapshot().counter("missing"), 0);
    }

    #[test]
    fn register_counter_keeps_existing() {
        let r = Registry::new();
        let first = r.counter("x");
        first.inc();
        let external = Counter::new();
        external.add(100);
        let resolved = r.register_counter("x", external);
        // The pre-existing counter wins; the external one is discarded.
        assert_eq!(resolved.get(), 1);
        resolved.inc();
        assert_eq!(first.get(), 2);
    }

    #[test]
    fn register_counter_adopts_external_handle() {
        let r = Registry::new();
        let external = Counter::new();
        let resolved = r.register_counter("y", external.clone());
        external.add(7);
        assert_eq!(resolved.get(), 7);
        assert_eq!(r.snapshot().counter("y"), 7);
    }

    #[test]
    fn snapshot_since_isolates_new_work() {
        let r = Registry::new();
        r.counter("io").add(10);
        r.timer("phase").record(Duration::from_millis(1));
        let before = r.snapshot();
        r.counter("io").add(5);
        r.counter("fresh").add(2);
        r.timer("phase").record(Duration::from_millis(3));
        let delta = r.snapshot().since(&before);
        assert_eq!(delta.counter("io"), 5);
        assert_eq!(delta.counter("fresh"), 2);
        assert_eq!(delta.timers["phase"].count, 1);
        assert_eq!(delta.timers["phase"].total_ns, 3_000_000);
    }

    #[test]
    fn clones_share_the_store() {
        let r = Registry::new();
        let r2 = r.clone();
        r.counter("shared").inc();
        assert_eq!(r2.snapshot().counter("shared"), 1);
    }

    #[test]
    fn concurrent_counting_loses_nothing() {
        let r = Registry::new();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let r = r.clone();
                s.spawn(move || {
                    // Hot-path idiom: fetch the handle once, then count
                    // lock-free.
                    let c = r.counter("hits");
                    for _ in 0..per_thread {
                        c.inc();
                    }
                    r.timer("work").record(Duration::from_nanos(100));
                });
            }
        });
        let s = r.snapshot();
        assert_eq!(s.counter("hits"), threads * per_thread);
        assert_eq!(s.timers["work"].count, threads);
    }

    #[test]
    fn concurrent_registration_converges() {
        let r = Registry::new();
        let threads = 8;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let r = r.clone();
                s.spawn(move || {
                    // Every thread races to register its own counter under
                    // the same name; all must end up on one shared handle.
                    let own = Counter::new();
                    let resolved = r.register_counter("raced", own);
                    resolved.inc();
                });
            }
        });
        assert_eq!(r.snapshot().counter("raced"), threads);
    }

    #[test]
    fn hist_is_get_or_create_and_snapshots_delta() {
        let r = Registry::new();
        r.hist("lat").record(100);
        let before = r.snapshot();
        r.hist("lat").record(200);
        let delta = r.snapshot().since(&before);
        assert_eq!(delta.hist("lat").unwrap().count, 1);
        assert_eq!(delta.hist("lat").unwrap().sum, 200);
        assert!(delta.hist("missing").is_none());
    }

    #[test]
    fn register_hist_keeps_existing() {
        let r = Registry::new();
        r.hist("h").record(1);
        let external = Hist::new();
        external.record(2);
        let resolved = r.register_hist("h", external);
        assert_eq!(resolved.snapshot().count, 1, "pre-existing hist wins");
        let adopted = r.register_hist("fresh", Hist::new());
        adopted.record(9);
        assert_eq!(r.snapshot().hist("fresh").unwrap().count, 1);
    }

    #[test]
    fn snapshot_json_shape() {
        let r = Registry::new();
        r.counter("io").add(3);
        r.timer("t").record(Duration::from_millis(2));
        let s = r.snapshot().to_json().render();
        assert!(s.contains("\"io\":3"), "{s}");
        assert!(s.contains("\"count\":1"), "{s}");
    }
}
